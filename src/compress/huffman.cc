#include "huffman.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace latte
{

namespace
{

struct TreeNode
{
    std::uint64_t weight;
    int index;              //!< entry in the symbol table; -1 = internal
    int left = -1;
    int right = -1;
    // Tie-break on creation order for deterministic trees.
    std::uint64_t order;
};

} // namespace

HuffmanCode
HuffmanCode::build(const std::vector<Freq> &freqs,
                   std::uint64_t escape_weight)
{
    latte_assert(escape_weight >= 1);

    // Symbol table: all nonzero-weight values plus the escape at the end.
    struct Entry { std::uint32_t symbol; std::uint64_t weight; bool esc; };
    std::vector<Entry> entries;
    entries.reserve(freqs.size() + 1);
    for (const auto &[symbol, weight] : freqs) {
        if (weight > 0)
            entries.push_back({symbol, weight, false});
    }
    entries.push_back({0, escape_weight, true});

    // Standard Huffman construction with deterministic tie-breaking.
    std::vector<TreeNode> pool;
    pool.reserve(entries.size() * 2);
    auto cmp = [&pool](int a, int b) {
        if (pool[a].weight != pool[b].weight)
            return pool[a].weight > pool[b].weight;
        return pool[a].order > pool[b].order;
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

    for (std::size_t i = 0; i < entries.size(); ++i) {
        pool.push_back({entries[i].weight, static_cast<int>(i), -1, -1,
                        i});
        heap.push(static_cast<int>(pool.size()) - 1);
    }
    std::uint64_t order = entries.size();
    while (heap.size() > 1) {
        const int a = heap.top(); heap.pop();
        const int b = heap.top(); heap.pop();
        pool.push_back({pool[a].weight + pool[b].weight, -1, a, b,
                        order++});
        heap.push(static_cast<int>(pool.size()) - 1);
    }

    // Collect code lengths by walking the tree.
    std::vector<unsigned> lengths(entries.size(), 0);
    struct StackItem { int node; unsigned depth; };
    std::vector<StackItem> stack{{heap.top(), 0}};
    while (!stack.empty()) {
        const auto [node, depth] = stack.back();
        stack.pop_back();
        if (pool[node].index >= 0) {
            // A single-symbol tree still needs a 1-bit code.
            lengths[pool[node].index] = std::max(depth, 1u);
            continue;
        }
        stack.push_back({pool[node].left, depth + 1});
        stack.push_back({pool[node].right, depth + 1});
    }

    // Canonicalise: sort by (length, symbol) and assign increasing codes.
    std::vector<int> by_length(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        by_length[i] = static_cast<int>(i);
    std::sort(by_length.begin(), by_length.end(),
              [&](int a, int b) {
                  if (lengths[a] != lengths[b])
                      return lengths[a] < lengths[b];
                  if (entries[a].esc != entries[b].esc)
                      return entries[b].esc;
                  return entries[a].symbol < entries[b].symbol;
              });

    HuffmanCode book;
    std::uint64_t next_code = 0;
    unsigned prev_len = 0;
    for (const int idx : by_length) {
        const unsigned len = lengths[idx];
        latte_assert(len >= 1 && len <= 64, "code length {} out of range",
                     len);
        next_code <<= (len - prev_len);
        prev_len = len;
        CodeWord code{next_code, 0, len};
        ++next_code;
        book.insertCode(code, entries[idx].esc, entries[idx].symbol);
        book.maxBits_ = std::max(book.maxBits_, len);
    }
    book.buildFastTable();
    return book;
}

void
HuffmanCode::buildFastTable()
{
    if (codes_.empty())
        return;
    // Quarter-full at most, so linear probes terminate quickly.
    std::size_t capacity = 16;
    while (capacity < codes_.size() * 4)
        capacity *= 2;
    fast_.assign(capacity, {});
    fastMask_ = capacity - 1;
    for (const auto &[symbol, code] : codes_) {
        std::size_t i = (symbol * 0x9e3779b9u) & fastMask_;
        while (fast_[i].length != 0)
            i = (i + 1) & fastMask_;
        fast_[i] = {code.rbits, symbol, code.length};
    }

    // Quarter-full like the code table: the membership filter below
    // keeps misses from touching it at all, so only hit-chain length
    // matters here.
    std::size_t len_capacity = 16;
    while (len_capacity < codes_.size() * 4)
        len_capacity *= 2;
    lens_.assign(len_capacity, {});
    lenMask_ = len_capacity - 1;
    for (const auto &[symbol, code] : codes_) {
        std::size_t i = (symbol * 0x9e3779b9u) & lenMask_;
        while (lens_[i].bits != 0)
            i = (i + 1) & lenMask_;
        lens_[i] = {symbol, code.length};
    }

    // One-hash membership filter, eight bits per symbol (12.5% false
    // positives): uncoded values — the common case on noisy lines —
    // resolve to "escape" with a single load from a ~1 KiB bitmap
    // instead of a probe chain through the tables.
    std::size_t filter_bits = 64;
    while (filter_bits < codes_.size() * 8)
        filter_bits *= 2;
    filter_.assign(filter_bits / 64, 0);
    filterMask_ = filter_bits - 1;
    for (const auto &[symbol, code] : codes_) {
        const std::size_t bit = (symbol * 0x9e3779b9u) & filterMask_;
        filter_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
}

void
HuffmanCode::insertCode(const CodeWord &code_in, bool escape,
                        std::uint32_t symbol)
{
    CodeWord code = code_in;
    code.rbits = 0;
    for (unsigned i = 0; i < code.length; ++i)
        code.rbits |= ((code.bits >> i) & 1) << (code.length - 1 - i);

    if (nodes_.empty())
        nodes_.push_back({});
    int node = 0;
    for (unsigned i = 0; i < code.length; ++i) {
        // Codes are assigned MSB-first; emit/walk them MSB-first too.
        const bool bit = (code.bits >> (code.length - 1 - i)) & 1;
        int child = bit ? nodes_[node].right : nodes_[node].left;
        if (child < 0) {
            child = static_cast<int>(nodes_.size());
            nodes_.push_back({});
            // (push_back may reallocate: re-index, don't hold references)
            if (bit)
                nodes_[node].right = child;
            else
                nodes_[node].left = child;
        }
        node = child;
    }
    latte_assert(!nodes_[node].leaf, "duplicate Huffman code");
    nodes_[node].leaf = true;
    nodes_[node].escape = escape;
    nodes_[node].symbol = symbol;
    if (escape)
        escapeCode_ = code;
    else
        codes_[symbol] = code;
}

unsigned
HuffmanCode::encodedBits(std::uint32_t value) const
{
    const auto it = codes_.find(value);
    return it != codes_.end() ? it->second.length
                              : escapeCode_.length + 32;
}

std::uint32_t
HuffmanCode::decode(BitReader &br) const
{
    latte_assert(valid(), "decode on an empty code book");
    int node = 0;
    while (!nodes_[node].leaf) {
        const bool bit = br.readBit();
        node = bit ? nodes_[node].right : nodes_[node].left;
        latte_assert(node >= 0, "invalid Huffman bit stream");
    }
    if (nodes_[node].escape)
        return static_cast<std::uint32_t>(br.read(32));
    return nodes_[node].symbol;
}

} // namespace latte
