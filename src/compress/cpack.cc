#include "cpack.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace latte
{

namespace
{

// Code words from the C-PACK paper (pattern -> (code, code length)):
//   zzzz : 00                      (2)  zero word
//   xxxx : 01   + 32-bit word      (34) no match, push to dictionary
//   mmmm : 10   + 4-bit index      (6)  full dictionary match
//   mmxx : 1100 + idx + 16 bits    (24) upper-half match
//   zzzx : 1101 + 8 bits           (12) zero except low byte
//   mmmx : 1110 + idx + 8 bits     (16) match except low byte
constexpr unsigned kIdxBits = 4;

/** Fixed-capacity FIFO dictionary (no heap, rebuilt per line). */
struct Dict
{
    std::array<std::uint32_t, CpackCompressor::kDictWords> words;
    unsigned size = 0;
    unsigned fifoHead = 0;

    void
    push(std::uint32_t word)
    {
        if (size < CpackCompressor::kDictWords) {
            words[size++] = word;
        } else {
            words[fifoHead] = word;
            fifoHead = (fifoHead + 1) % CpackCompressor::kDictWords;
        }
    }
};

/**
 * Stream the line through the dictionary, emitting codes into @p sink.
 * Shared by compress() (BitWriter) and probe() (BitCounter): the
 * dictionary evolution is part of the encoding, so the probe must run
 * the identical match loop to get the exact size.
 */
template <typename Sink>
void
encodeWords(std::span<const std::uint8_t> line, Sink &sink)
{
    const unsigned n_words = kLineBytes / 4;
    Dict dict;

    for (unsigned i = 0; i < n_words; ++i) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(loadLe(line.data() + 4 * i, 4));

        if (word == 0) {
            sink.write(0b00, 2);
            continue;
        }

        // Look for the best dictionary match.
        int full = -1, upper24 = -1, upper16 = -1;
        for (unsigned d = 0; d < dict.size; ++d) {
            if (dict.words[d] == word && full < 0)
                full = static_cast<int>(d);
            else if ((dict.words[d] >> 8) == (word >> 8) && upper24 < 0)
                upper24 = static_cast<int>(d);
            else if ((dict.words[d] >> 16) == (word >> 16) && upper16 < 0)
                upper16 = static_cast<int>(d);
        }

        if (full >= 0) {
            sink.write(0b01, 2); // 'mmmm' (10 LSB-first)
            sink.write(static_cast<std::uint64_t>(full), kIdxBits);
        } else if ((word & 0xffffff00u) == 0) {
            sink.write(0b0111, 4); // 'zzzx': bits 1,1,1,0
            sink.write(word & 0xff, 8);
        } else if (upper24 >= 0) {
            sink.write(0b1011, 4); // 'mmmx': bits 1,1,0,1
            sink.write(static_cast<std::uint64_t>(upper24), kIdxBits);
            sink.write(word & 0xff, 8);
            dict.push(word);
        } else if (upper16 >= 0) {
            sink.write(0b0011, 4); // 'mmxx' (1100 LSB-first)
            sink.write(static_cast<std::uint64_t>(upper16), kIdxBits);
            sink.write(word & 0xffff, 16);
            dict.push(word);
        } else {
            sink.write(0b10, 2); // 'xxxx' (01 LSB-first)
            sink.write(word, 32);
            dict.push(word);
        }
    }
}

bool
allZero(std::span<const std::uint8_t> line)
{
    return std::all_of(line.begin(), line.end(),
                       [](std::uint8_t b) { return b == 0; });
}

} // namespace

CpackCompressor::CpackCompressor(const CompressorTimings &timings)
    : decompressLat_(timings.cpackDecompress)
{}

void
CpackCompressor::probeLines(std::span<const std::uint8_t> lines,
                            std::span<LineMeta> out)
{
    latte_assert(lines.size() == out.size() * kLineBytes);

    // The dictionary evolution is inherently serial per line, so the
    // batch form is a plain loop — it still amortises the virtual
    // dispatch and keeps callers on one API shape.
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::span<const std::uint8_t> line =
            lines.subspan(i * kLineBytes, kLineBytes);
        if (allZero(line)) {
            out[i] = makeProbedMeta(CompressorId::CpackZ, kEncZeroLine,
                                    8);
            continue;
        }
        BitCounter counter;
        encodeWords(line, counter);
        out[i] = makeProbedMeta(
            CompressorId::CpackZ, kEncPacked,
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(counter.bitSize(), kLineBits)));
    }
}

CompressedLine
CpackCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    if (allZero(line)) {
        CompressedLine out;
        out.algo = CompressorId::CpackZ;
        out.encoding = kEncZeroLine;
        out.sizeBits = 8;
        return out;
    }

    BitWriter bw;
    encodeWords(line, bw);
    if (bw.bitSize() >= kLineBits)
        return makeRawLine(CompressorId::CpackZ, line);

    CompressedLine out;
    out.algo = CompressorId::CpackZ;
    out.encoding = kEncPacked;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload.assign(bw.bytes());
    return out;
}

void
CpackCompressor::decompressInto(const CompressedLine &line,
                                std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::CpackZ);
    latte_assert(out.size() == kLineBytes);
    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }
    if (line.encoding == kEncZeroLine) {
        std::fill(out.begin(), out.end(), 0);
        return;
    }

    const unsigned n_words = kLineBytes / 4;
    Dict dict;

    BitReader br(line.payload, line.sizeBits);
    for (unsigned i = 0; i < n_words; ++i) {
        std::uint32_t word = 0;
        const bool b0 = br.readBit();
        const bool b1 = br.readBit();
        if (!b0 && !b1) {               // 00: zero
            word = 0;
        } else if (b0 && !b1) {         // 01 LSB-first = code 10: mmmm
            const auto idx = br.read(kIdxBits);
            latte_assert(idx < dict.size, "CPACK index out of range");
            word = dict.words[idx];
        } else if (!b0 && b1) {         // 10 LSB-first = code 01: xxxx
            word = static_cast<std::uint32_t>(br.read(32));
            dict.push(word);
        } else {                        // 11..: 4-bit codes
            const bool b2 = br.readBit();
            const bool b3 = br.readBit();
            if (!b2 && !b3) {           // 1100: mmxx
                const auto idx = br.read(kIdxBits);
                latte_assert(idx < dict.size);
                word = (dict.words[idx] & 0xffff0000u) |
                       static_cast<std::uint32_t>(br.read(16));
                dict.push(word);
            } else if (b2 && !b3) {     // 1101: zzzx
                word = static_cast<std::uint32_t>(br.read(8));
            } else if (!b2 && b3) {     // 1110: mmmx
                const auto idx = br.read(kIdxBits);
                latte_assert(idx < dict.size);
                word = (dict.words[idx] & 0xffffff00u) |
                       static_cast<std::uint32_t>(br.read(8));
                dict.push(word);
            } else {
                latte_panic("bad CPACK code 1111");
            }
        }
        storeLe(out.data() + 4 * i, word, 4);
    }
}

} // namespace latte
