#include "compressor.hh"

#include "common/logging.hh"

namespace latte
{

const char *
compressorName(CompressorId id)
{
    switch (id) {
      case CompressorId::None: return "None";
      case CompressorId::Bdi: return "BDI";
      case CompressorId::Fpc: return "FPC";
      case CompressorId::CpackZ: return "CPACK-Z";
      case CompressorId::Bpc: return "BPC";
      case CompressorId::Sc: return "SC";
    }
    latte_panic("unknown compressor id {}", static_cast<int>(id));
}

CompressedLine
makeRawLine(CompressorId id, std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);
    CompressedLine out;
    out.algo = id;
    out.encoding = kRawEncoding;
    out.sizeBits = kLineBits;
    out.payload.assign(line.begin(), line.end());
    return out;
}

std::vector<std::uint8_t>
decodeRawLine(const CompressedLine &line)
{
    latte_assert(line.encoding == kRawEncoding);
    latte_assert(line.payload.size() == kLineBytes);
    return line.payload;
}

} // namespace latte
