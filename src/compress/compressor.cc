#include "compressor.hh"

#include "common/logging.hh"

namespace latte
{

CompressedLine
makeRawLine(CompressorId id, std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);
    CompressedLine out;
    static_cast<LineMeta &>(out) = makeRawMeta(id);
    out.payload.assign(line);
    return out;
}

LineMeta
makeRawMeta(CompressorId id)
{
    LineMeta meta;
    meta.algo = id;
    meta.encoding = kRawEncoding;
    meta.sizeBits = kLineBits;
    return meta;
}

std::vector<std::uint8_t>
decodeRawLine(const CompressedLine &line)
{
    std::vector<std::uint8_t> out(kLineBytes);
    decodeRawLineInto(line, out);
    return out;
}

void
decodeRawLineInto(const CompressedLine &line, std::span<std::uint8_t> out)
{
    latte_assert(line.encoding == kRawEncoding);
    latte_assert(line.payload.size() == kLineBytes);
    latte_assert(out.size() == kLineBytes);
    std::memcpy(out.data(), line.payload.data(), kLineBytes);
}

} // namespace latte
