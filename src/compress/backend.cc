#include "backend.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace latte
{

namespace
{

/**
 * The dispatch table. Scalar is unconditional; the accelerated rows
 * exist only when CMake compiled their translation units (per-file ISA
 * flags + LATTE_SIMD_* definitions), so a non-x86 build degrades to a
 * scalar-only table instead of failing to link. The SSE4 row reuses
 * the scalar SC kernel — the slot gather needs AVX2.
 */
constexpr CompressorBackend kBackends[] = {
    {"scalar", IsaLevel::Scalar, &simd::scalar::bdiScan,
     &simd::scalar::fpcCountBits, &simd::scalar::scLineBits},
#if defined(LATTE_SIMD_SSE4)
    {"sse4", IsaLevel::Sse4, &simd::sse4::bdiScan,
     &simd::sse4::fpcCountBits, &simd::scalar::scLineBits},
#endif
#if defined(LATTE_SIMD_AVX2)
    {"avx2", IsaLevel::Avx2, &simd::avx2::bdiScan,
     &simd::avx2::fpcCountBits, &simd::avx2::scLineBits},
#endif
};

bool
isaSupported(IsaLevel isa)
{
    switch (isa) {
      case IsaLevel::Scalar:
        return true;
      case IsaLevel::Sse4:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("sse4.1");
#else
        return false;
#endif
      case IsaLevel::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
    }
    return false;
}

const CompressorBackend *
bestSupported()
{
    const CompressorBackend *best = &kBackends[0];
    for (const auto &backend : kBackends) {
        if (compressorBackendSupported(backend))
            best = &backend;
    }
    return best;
}

const CompressorBackend *
initialBackend()
{
    if (const char *env = std::getenv("LATTE_COMPRESS_BACKEND")) {
        std::string error;
        if (const CompressorBackend *backend =
                resolveCompressorBackend(env, &error)) {
            return backend;
        }
        latte_warn("LATTE_COMPRESS_BACKEND: {}; using auto", error);
    }
    return bestSupported();
}

std::atomic<const CompressorBackend *> &
activeSlot()
{
    // Lazy so the env override applies no matter which binary's main()
    // we are in; atomic so concurrent sweep cells flipping backends
    // stay TSan-clean (all backends are bit-identical, so a racing
    // probe is benign either way).
    static std::atomic<const CompressorBackend *> active{
        initialBackend()};
    return active;
}

} // namespace

std::span<const CompressorBackend>
compressorBackends()
{
    return kBackends;
}

bool
compressorBackendSupported(const CompressorBackend &backend)
{
    return isaSupported(backend.isa);
}

const CompressorBackend *
resolveCompressorBackend(std::string_view name, std::string *error)
{
    if (name.empty() || name == "auto")
        return bestSupported();
    for (const auto &backend : kBackends) {
        if (name != backend.name)
            continue;
        if (!compressorBackendSupported(backend)) {
            if (error) {
                *error = "compress backend '" + std::string(name) +
                         "' is not supported on this host";
            }
            return nullptr;
        }
        return &backend;
    }
    if (error) {
        std::string known = "auto";
        for (const auto &backend : kBackends)
            known += std::string("|") + backend.name;
        *error = "unknown compress backend '" + std::string(name) +
                 "' (expected " + known + ")";
    }
    return nullptr;
}

const CompressorBackend &
activeCompressorBackend()
{
    return *activeSlot().load(std::memory_order_relaxed);
}

void
setCompressorBackend(const CompressorBackend &backend)
{
    activeSlot().store(&backend, std::memory_order_relaxed);
}

} // namespace latte
