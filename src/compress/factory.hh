/**
 * @file
 * Construction helpers for compression engines.
 */

#ifndef LATTE_COMPRESS_FACTORY_HH
#define LATTE_COMPRESS_FACTORY_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "compressor.hh"

namespace latte
{

/** Instantiate the engine for @p id (None is not a valid engine). */
std::unique_ptr<Compressor>
makeCompressor(CompressorId id, const CompressorTimings &timings = {},
               const LatteParams &params = {});

/** All five algorithm ids studied in the paper, in Table I order. */
const std::vector<CompressorId> &allCompressorIds();

} // namespace latte

#endif // LATTE_COMPRESS_FACTORY_HH
