/**
 * @file
 * Decompression-engine contention model. Each SM has one decompressor
 * per compression algorithm; hits to compressed lines queue for it. The
 * effective hit latency follows Eq. (3) of the paper:
 *
 *   effective_hit_latency = decompression_latency
 *                         + (queue_insertion_pos + 1)
 */

#ifndef LATTE_COMPRESS_DECOMP_QUEUE_HH
#define LATTE_COMPRESS_DECOMP_QUEUE_HH

#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace latte
{

/** Single-algorithm decompression queue. */
class DecompressionQueue : public StatGroup
{
  public:
    DecompressionQueue(std::string name, StatGroup *parent)
        : StatGroup(std::move(name), parent),
          requests(this, "requests", "lines decompressed"),
          queuePos(this, "queue_pos", "average insertion position"),
          peakDepth(this, "peak_depth", "deepest queue observed")
    {}

    /**
     * Enqueue a decompression starting at @p now with pipeline latency
     * @p latency.
     * @return the cycle the decompressed data is ready.
     */
    Cycles
    enqueue(Cycles now, Cycles latency)
    {
        while (!pending_.empty() && pending_.front() <= now)
            pending_.pop_front();

        const auto pos = static_cast<Cycles>(pending_.size());
        const Cycles ready = now + latency + pos + 1;
        pending_.push_back(ready);

        ++requests;
        queuePos.sample(static_cast<double>(pos));
        if (pending_.size() > static_cast<std::size_t>(peakDepth.count()))
            peakDepth += pending_.size() - peakDepth.count();
        return ready;
    }

    /** Entries still draining at @p now. */
    std::size_t
    depth(Cycles now) const
    {
        std::size_t n = 0;
        for (const Cycles c : pending_)
            if (c > now)
                ++n;
        return n;
    }

    /** Expected queue position a hit at @p now would get (for AMAT). */
    Cycles
    expectedPos(Cycles now) const
    {
        return static_cast<Cycles>(depth(now));
    }

    void clear() { pending_.clear(); }

    Counter requests;
    Average queuePos;
    Counter peakDepth;

  private:
    std::deque<Cycles> pending_;
};

} // namespace latte

#endif // LATTE_COMPRESS_DECOMP_QUEUE_HH
