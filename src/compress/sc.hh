/**
 * @file
 * Huffman-based statistical compression (SC; Arelakis & Stenström,
 * ISCA 2014), the paper's high-capacity compression mode. A 1024-entry
 * value-frequency table (VFT) with 12-bit saturating counters samples the
 * 32-bit words of inserted lines; a canonical Huffman code book is built
 * from the VFT at period boundaries (Section IV-C2). Lines encoded under
 * a retired code generation can no longer be decoded and must be
 * invalidated by the cache.
 */

#ifndef LATTE_COMPRESS_SC_HH
#define LATTE_COMPRESS_SC_HH

#include <cstdint>
#include <unordered_map>

#include "common/config.hh"
#include "compressor.hh"
#include "huffman.hh"

namespace latte
{

/** The value-frequency table feeding SC's code construction. */
class ValueFrequencyTable
{
  public:
    explicit ValueFrequencyTable(std::uint32_t entries = 1024,
                                 std::uint32_t counter_bits = 12);

    /** Record one 32-bit word from an inserted line. */
    void record(std::uint32_t value);

    /** Record all words of a 128 B line. */
    void recordLine(std::span<const std::uint8_t> line);

    /** Clear all entries (start of a new sampling window). */
    void clear();

    std::size_t size() const { return counts_.size(); }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t samples() const { return samples_; }

    /** Snapshot for Huffman construction. */
    std::vector<HuffmanCode::Freq> snapshot() const;

  private:
    std::uint32_t capacity_;
    std::uint32_t counterMax_;
    std::unordered_map<std::uint32_t, std::uint32_t> counts_;
    std::uint64_t misses_ = 0;   //!< inserts rejected because table full
    std::uint64_t samples_ = 0;
};

/** SC compressor/decompressor engine with generational code books. */
class ScCompressor : public Compressor
{
  public:
    explicit ScCompressor(const CompressorTimings &timings = {},
                          const LatteParams &params = {});

    CompressorId id() const override { return CompressorId::Sc; }
    std::string name() const override { return "SC"; }

    CompressedLine compress(std::span<const std::uint8_t> line) override;
    void probeLines(std::span<const std::uint8_t> lines,
                    std::span<LineMeta> out) override;
    void decompressInto(const CompressedLine &line,
                        std::span<std::uint8_t> out) const override;

    Cycles compressLatency() const override { return compressLat_; }
    Cycles decompressLatency() const override { return decompressLat_; }
    double compressEnergyNj() const override { return compressNj_; }
    double decompressEnergyNj() const override { return decompressNj_; }

    /** Train the VFT on a line streaming into the cache. */
    void trainLine(std::span<const std::uint8_t> line);

    /**
     * Build a new code book from the VFT, retire the old generation and
     * clear the VFT for the next sampling window.
     * @return the new generation number.
     */
    std::uint32_t rebuildCodes();

    /** Generation of the code book compress() currently uses. */
    std::uint32_t generation() const { return generation_; }

    /** True once a code book exists (before that, lines go raw). */
    bool hasCodes() const { return codes_.valid(); }

    /**
     * How much the sampled value distribution has drifted from the
     * current code book: the fraction of the VFT's most frequent values
     * (up to 64) that have no code. 1.0 when no codes exist. The policy
     * layer uses this to skip rebuilds (and the costly invalidation of
     * all SC lines) when the value palette is stable.
     */
    double codeDivergence() const;

    /** Discard the sampling window without touching the code book. */
    void discardVft() { vft_.clear(); }

    const ValueFrequencyTable &vft() const { return vft_; }

  private:
    ValueFrequencyTable vft_;
    HuffmanCode codes_;
    std::uint32_t generation_ = 0;
    Cycles compressLat_;
    Cycles decompressLat_;
    double compressNj_;
    double decompressNj_;
};

} // namespace latte

#endif // LATTE_COMPRESS_SC_HH
