/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood, ISCA 2004). Each
 * 32-bit word is encoded with a 3-bit prefix naming one of seven frequent
 * patterns, or stored verbatim. Zero words are run-length encoded.
 */

#ifndef LATTE_COMPRESS_FPC_HH
#define LATTE_COMPRESS_FPC_HH

#include "common/config.hh"
#include "compressor.hh"

namespace latte
{

/** FPC compressor/decompressor engine. */
class FpcCompressor : public Compressor
{
  public:
    explicit FpcCompressor(const CompressorTimings &timings = {});

    CompressorId id() const override { return CompressorId::Fpc; }
    std::string name() const override { return "FPC"; }

    CompressedLine compress(std::span<const std::uint8_t> line) override;
    void probeLines(std::span<const std::uint8_t> lines,
                    std::span<LineMeta> out) override;
    void decompressInto(const CompressedLine &line,
                        std::span<std::uint8_t> out) const override;

    Cycles compressLatency() const override { return 5; }
    Cycles decompressLatency() const override { return decompressLat_; }
    double compressEnergyNj() const override { return 0.25; }
    double decompressEnergyNj() const override { return 0.10; }

    /** 3-bit word prefixes. */
    enum Prefix : std::uint8_t
    {
        kZeroRun = 0,       //!< run of 1..8 zero words (3-bit length)
        kSigned4 = 1,       //!< 4-bit sign-extended
        kSigned8 = 2,       //!< 8-bit sign-extended
        kSigned16 = 3,      //!< 16-bit sign-extended
        kZeroPadded = 4,    //!< lower 16 bits zero, upper half stored
        kTwoHalfSigned8 = 5,//!< two halfwords, each 8-bit sign-extended
        kRepeatedByte = 6,  //!< all four bytes identical
        kUncompressed = 7,  //!< raw 32-bit word
    };

  private:
    Cycles decompressLat_;
};

} // namespace latte

#endif // LATTE_COMPRESS_FPC_HH
