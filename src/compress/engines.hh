/**
 * @file
 * The per-SM set of compression engines available to the L1 data cache:
 * BDI (low-latency mode), SC (high-capacity mode) and BPC (alternative
 * high-capacity mode, Section V-E).
 */

#ifndef LATTE_COMPRESS_ENGINES_HH
#define LATTE_COMPRESS_ENGINES_HH

#include "common/config.hh"
#include "compress/bdi.hh"
#include "compress/bpc.hh"
#include "compress/cpack.hh"
#include "compress/fpc.hh"
#include "compress/sc.hh"

namespace latte
{

/** Bundle of the compression engines wired into one SM's L1. */
class CompressionEngines
{
  public:
    explicit CompressionEngines(const GpuConfig &cfg)
        : bdi(cfg.timings), sc(cfg.timings, cfg.latte), bpc(cfg.timings),
          fpc(cfg.timings), cpack(cfg.timings)
    {}

    /** Engine lookup; nullptr for CompressorId::None. */
    Compressor *
    get(CompressorId id)
    {
        switch (id) {
          case CompressorId::None: return nullptr;
          case CompressorId::Bdi: return &bdi;
          case CompressorId::Sc: return &sc;
          case CompressorId::Bpc: return &bpc;
          case CompressorId::Fpc: return &fpc;
          case CompressorId::CpackZ: return &cpack;
        }
        latte_panic("engine {} not wired into the L1 path",
                    compressorName(id));
    }

    BdiCompressor bdi;
    ScCompressor sc;
    BpcCompressor bpc;
    FpcCompressor fpc;
    CpackCompressor cpack;
};

} // namespace latte

#endif // LATTE_COMPRESS_ENGINES_HH
