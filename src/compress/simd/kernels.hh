/**
 * @file
 * The three data-parallel probe kernels behind the CompressorBackend
 * dispatch table: the BDI base+delta layout scan, the FPC word
 * classifier and the SC Huffman length lookup. Each exists in a scalar
 * reference implementation (always compiled, the bit-identity anchor)
 * and, where the build enables them, SSE4/AVX2 variants compiled in
 * their own translation units with per-file ISA flags.
 *
 * Every variant of a kernel must return bit-identical results for every
 * input line — the golden tests and the BackendFuzz differential fuzzer
 * pin this. Kernels take a raw pointer to exactly kLineBytes; batching
 * over many lines (and the span plumbing) lives in the compressors'
 * probeLines() implementations, so a kernel is just the per-line inner
 * loop body.
 */

#ifndef LATTE_COMPRESS_SIMD_KERNELS_HH
#define LATTE_COMPRESS_SIMD_KERNELS_HH

#include <cstdint>

#include "compress/bdi.hh"
#include "compress/huffman.hh"

namespace latte::simd
{

/** Outcome of one BDI feasibility scan: first-fit encoding + size. */
struct BdiScanResult
{
    std::uint8_t encoding = kRawEncoding;
    std::uint32_t sizeBits = kLineBits;
};

/** Encoded size of a BDI (base, delta) layout; pure shape arithmetic. */
constexpr std::uint32_t
bdiSizeBits(unsigned base_bytes, unsigned delta_bytes)
{
    const std::uint32_t n_blocks = kLineBytes / base_bytes;
    return 8u * base_bytes + n_blocks + n_blocks * 8u * delta_bytes;
}

/** BDI probe over one kLineBytes line. */
using BdiScanFn = BdiScanResult (*)(const std::uint8_t *line);

/** Exact FPC encoded bit count of one kLineBytes line. */
using FpcCountBitsFn = std::uint32_t (*)(const std::uint8_t *line);

/** Exact SC encoded bit count of one line against a borrowed book. */
using ScLineBitsFn = std::uint64_t (*)(const std::uint8_t *line,
                                       const HuffmanCode::LengthView &view);

/**
 * Scalar Huffman length lookup against a LengthView — the exact
 * control flow of HuffmanCode::encodedBitsFast(), restated over the
 * borrowed tables so SIMD kernels can fall back to it for the slot
 * walk of unresolved lanes.
 */
inline std::uint32_t
scLookupBits(std::uint32_t value, const HuffmanCode::LengthView &view)
{
    if (view.empty)
        return view.escapeBits;
    const std::uint32_t hash = value * 0x9e3779b9u;
    std::uint32_t i = hash & view.slotMask;
    HuffmanCode::LenSlot slot = view.slots[i];
    const std::uint32_t bit = hash & view.filterMask;
    if (!((view.filter[bit / 64] >> (bit % 64)) & 1))
        return view.escapeBits;
    while (slot.bits != 0) {
        if (slot.symbol == value)
            return slot.bits;
        i = (i + 1) & view.slotMask;
        slot = view.slots[i];
    }
    return view.escapeBits;
}

namespace detail
{

inline bool
bdiAllZero(const std::uint8_t *line)
{
    // Word-at-a-time scan; lines are a multiple of 8 bytes.
    for (unsigned off = 0; off < kLineBytes; off += 8) {
        if (loadLe(line + off, 8) != 0)
            return false;
    }
    return true;
}

inline bool
bdiRepeated8(const std::uint8_t *line)
{
    const std::uint64_t first = loadLe(line, 8);
    for (unsigned off = 8; off < kLineBytes; off += 8) {
        if (loadLe(line + off, 8) != first)
            return false;
    }
    return true;
}

/**
 * Classify each block as immediate (delta from zero fits) or
 * base-relative; the first non-immediate block defines the base.
 * Feasibility only — no outputs kept. The block and delta widths are
 * template parameters so the per-block loads and range checks compile
 * to fixed-width instructions. Shared here so the SIMD kernels can
 * reuse it for the layouts they leave scalar (B2D1, the last-resort
 * 592-bit layout, is not worth a 16-bit-lane vector path).
 */
template <unsigned BaseBytes, unsigned DeltaBytes>
inline bool
bdiLayoutFits(const std::uint8_t *line)
{
    constexpr unsigned n_blocks = kLineBytes / BaseBytes;

    std::uint64_t base = 0;
    bool have_base = false;

    for (unsigned i = 0; i < n_blocks; ++i) {
        const std::uint64_t raw = loadLe(line + i * BaseBytes, BaseBytes);
        const std::int64_t value = signExtend(raw, 8 * BaseBytes);
        if (fitsSigned(value, DeltaBytes))
            continue;
        if (!have_base) {
            base = raw;
            have_base = true;
        }
        // Modular (wrap-around) difference, reinterpreted as a signed
        // delta of the block width; matches the hardware subtractor.
        const std::int64_t delta = signExtend(raw - base, 8 * BaseBytes);
        if (!fitsSigned(delta, DeltaBytes))
            return false;
    }
    return true;
}

} // namespace detail

namespace scalar
{
BdiScanResult bdiScan(const std::uint8_t *line);
std::uint32_t fpcCountBits(const std::uint8_t *line);
std::uint64_t scLineBits(const std::uint8_t *line,
                         const HuffmanCode::LengthView &view);
} // namespace scalar

#if defined(LATTE_SIMD_SSE4)
namespace sse4
{
BdiScanResult bdiScan(const std::uint8_t *line);
std::uint32_t fpcCountBits(const std::uint8_t *line);
// No scLineBits: the slot gather needs AVX2; the SSE4 backend reuses
// the scalar SC kernel.
} // namespace sse4
#endif

#if defined(LATTE_SIMD_AVX2)
namespace avx2
{
BdiScanResult bdiScan(const std::uint8_t *line);
std::uint32_t fpcCountBits(const std::uint8_t *line);
std::uint64_t scLineBits(const std::uint8_t *line,
                         const HuffmanCode::LengthView &view);
} // namespace avx2
#endif

} // namespace latte::simd

#endif // LATTE_COMPRESS_SIMD_KERNELS_HH
