/**
 * @file
 * Scalar reference kernels — the exact per-line probe loops the
 * compressors ran before the backend split, moved here verbatim. Every
 * accelerated kernel is pinned bit-identical to these.
 */

#include "compress/simd/kernels.hh"

#include <bit>

#include "common/bit_utils.hh"

namespace latte::simd::scalar
{

BdiScanResult
bdiScan(const std::uint8_t *line)
{
    if (detail::bdiAllZero(line))
        return {BdiCompressor::kEncZeros, 8};
    if (detail::bdiRepeated8(line))
        return {BdiCompressor::kEncRep8, 64};

    // Layout sizes are compile-time constants, so "smallest feasible
    // layout, ties to the earlier probe" is a first-fit scan in
    // ascending size order: B8D1 (208), B4D1 (320), B8D2 (336),
    // B4D2 (576), B8D4 (592), B2D1 (592; loses the tie to B8D4 as it
    // comes later in the layout table).
    if (detail::bdiLayoutFits<8, 1>(line))
        return {BdiCompressor::kEncB8D1, bdiSizeBits(8, 1)};
    if (detail::bdiLayoutFits<4, 1>(line))
        return {BdiCompressor::kEncB4D1, bdiSizeBits(4, 1)};
    if (detail::bdiLayoutFits<8, 2>(line))
        return {BdiCompressor::kEncB8D2, bdiSizeBits(8, 2)};
    if (detail::bdiLayoutFits<4, 2>(line))
        return {BdiCompressor::kEncB4D2, bdiSizeBits(4, 2)};
    if (detail::bdiLayoutFits<8, 4>(line))
        return {BdiCompressor::kEncB8D4, bdiSizeBits(8, 4)};
    if (detail::bdiLayoutFits<2, 1>(line))
        return {BdiCompressor::kEncB2D1, bdiSizeBits(2, 1)};
    return {kRawEncoding, kLineBits};
}

std::uint32_t
fpcCountBits(const std::uint8_t *line)
{
    // Bits for one nonzero word. folded == value for positives, ~value
    // for negatives, so the narrow signed ranges become plain width
    // thresholds (width 0 is word == 0xffffffff, i.e. kSigned4's -1).
    const auto classify = [](std::uint32_t word) -> std::uint32_t {
        const std::uint32_t folded =
            word ^ static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(word) >> 31);
        if (folded < 0x8000) {
            // kSigned4 (7 bits) below 8, kSigned8 (11) below 128,
            // kSigned16 (19) below 32768 — flag arithmetic keeps the
            // narrow band branch-free, with no bit-scan in the chain.
            return 7 + 4u * (folded > 7) + 8u * (folded > 127);
        }

        // Branchless pick of the wide classes — which one a noisy word
        // lands in is data-dependent, so branches here mispredict.
        // Priority order inverted: later assignments win. The only
        // overlap (kZeroPadded vs kTwoHalfSigned8 when lo == 0 and hi
        // is a small signed half) selects 19 bits either way.
        const std::uint16_t lo = word & 0xffff;
        const std::uint16_t hi = word >> 16;
        std::uint32_t wide = 35; // kUncompressed
        if (word == (word & 0xff) * 0x01010101u)
            wide = 11; // kRepeatedByte
        if (fitsSigned(signExtend(lo, 16), 1) &&
            fitsSigned(signExtend(hi, 16), 1))
            wide = 19; // kTwoHalfSigned8
        if (lo == 0)
            wide = 19; // kZeroPadded
        return wide;
    };

    // Single pass: classify every word as it streams by (each word is
    // one half of a 64-bit load) and collect a map of the zero ones.
    // Zero words classify as kSigned4 (7 bits); that contribution is
    // subtracted below and replaced by the zero-run tokens, keeping the
    // loop free of data-dependent branches.
    std::uint64_t zero_mask = 0;
    std::uint32_t bits = 0;
    for (unsigned k = 0; k < kLineBytes / 8; ++k) {
        const std::uint64_t pair = loadLe(line + 8 * k, 8);
        const auto w0 = static_cast<std::uint32_t>(pair);
        const auto w1 = static_cast<std::uint32_t>(pair >> 32);
        const std::uint64_t lo_zero = w0 == 0;
        const std::uint64_t hi_zero = w1 == 0;
        zero_mask |= (lo_zero | (hi_zero << 1)) << (2 * k);
        bits += classify(w0) + classify(w1);
    }

    // Zero runs: a maximal run of L zero words emits ceil(L/8) tokens of
    // 6 bits each (kZeroRun prefix + 3-bit length), exactly matching
    // the encoder's greedy up-to-8 scan. The "- 7 * run" retracts the
    // kSigned4 bits the branch-free loop above charged per zero word.
    while (zero_mask) {
        zero_mask >>= std::countr_zero(zero_mask);
        const unsigned run = std::countr_one(zero_mask);
        zero_mask >>= run;
        bits += 6 * static_cast<std::uint32_t>(divCeil(run, 8)) -
                7 * run;
    }
    return bits;
}

std::uint64_t
scLineBits(const std::uint8_t *line, const HuffmanCode::LengthView &view)
{
    // Four accumulators so the adds of neighbouring lookups don't
    // serialise behind one register.
    std::uint64_t bits0 = 0, bits1 = 0, bits2 = 0, bits3 = 0;
    for (unsigned off = 0; off < kLineBytes; off += 16) {
        const std::uint64_t pa = loadLe(line + off, 8);
        const std::uint64_t pb = loadLe(line + off + 8, 8);
        bits0 += scLookupBits(static_cast<std::uint32_t>(pa), view);
        bits1 += scLookupBits(static_cast<std::uint32_t>(pa >> 32), view);
        bits2 += scLookupBits(static_cast<std::uint32_t>(pb), view);
        bits3 += scLookupBits(static_cast<std::uint32_t>(pb >> 32), view);
    }
    return (bits0 + bits1) + (bits2 + bits3);
}

} // namespace latte::simd::scalar
