/**
 * @file
 * AVX2 probe kernels. Compiled with -mavx2 via per-file CMake flags;
 * only reachable through the backend dispatch table after a runtime
 * __builtin_cpu_supports("avx2") check.
 *
 * Bit-identity notes (each pinned by Backend golden tests + BackendFuzz):
 *  - BDI: fitsSigned(v, d) <=> ((v + 2^(8d-1)) & ~(2^(8d)-1)) == 0 in
 *    the block's modular arithmetic, so a layout scan is two masked
 *    compare passes (immediates, then deltas against the first
 *    non-immediate base). Lane subtraction wraps exactly like the
 *    scalar signExtend(raw - base, 8 * BaseBytes). B2D1 (the 592-bit
 *    last resort, 16-bit lanes) stays scalar.
 *  - FPC: folded values are always non-negative, so signed lane
 *    compares reproduce the scalar unsigned thresholds; the wide-class
 *    blends apply in the scalar code's inverted priority order and the
 *    zero-run fixup loop is byte-for-byte the scalar one.
 *  - SC: one 8-byte gather fetches each word's home LenSlot. An empty
 *    slot is an escape regardless of the filter, and a symbol match in
 *    the home slot always passes the filter (its bit was set when the
 *    symbol was inserted), so only collision lanes fall back to the
 *    scalar walk. Sums are exact integers, so lane order is free.
 */

#include <immintrin.h>

#include <bit>

#include "common/bit_utils.hh"
#include "compress/simd/kernels.hh"

namespace latte::simd::avx2
{

namespace
{

inline __m256i
loadVec(const std::uint8_t *line, unsigned i)
{
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(line) + i);
}

inline bool
allZero(const std::uint8_t *line)
{
    const __m256i acc = _mm256_or_si256(
        _mm256_or_si256(loadVec(line, 0), loadVec(line, 1)),
        _mm256_or_si256(loadVec(line, 2), loadVec(line, 3)));
    return _mm256_testz_si256(acc, acc);
}

inline bool
repeated8(const std::uint8_t *line)
{
    const __m256i first =
        _mm256_set1_epi64x(static_cast<long long>(loadLe(line, 8)));
    __m256i acc = _mm256_setzero_si256();
    for (unsigned i = 0; i < 4; ++i)
        acc = _mm256_or_si256(acc,
                              _mm256_xor_si256(loadVec(line, i), first));
    return _mm256_testz_si256(acc, acc);
}

/** 8-byte-base layouts: 16 blocks as 4 vectors of 4 qword lanes. */
template <unsigned DeltaBytes>
inline bool
layoutFitsB8(const std::uint8_t *line)
{
    const __m256i bias =
        _mm256_set1_epi64x(std::int64_t{1} << (8 * DeltaBytes - 1));
    const __m256i himask = _mm256_set1_epi64x(static_cast<long long>(
        ~((std::uint64_t{1} << (8 * DeltaBytes)) - 1)));
    const __m256i zero = _mm256_setzero_si256();

    __m256i v[4];
    unsigned imm_mask = 0;
    for (unsigned k = 0; k < 4; ++k) {
        v[k] = loadVec(line, k);
        const __m256i t =
            _mm256_and_si256(_mm256_add_epi64(v[k], bias), himask);
        const __m256i ok = _mm256_cmpeq_epi64(t, zero);
        imm_mask |= static_cast<unsigned>(_mm256_movemask_pd(
                        _mm256_castsi256_pd(ok)))
                    << (4 * k);
    }
    if (imm_mask == 0xffffu)
        return true;

    const unsigned base_idx = std::countr_zero(~imm_mask & 0xffffu);
    const __m256i base = _mm256_set1_epi64x(
        static_cast<long long>(loadLe(line + 8 * base_idx, 8)));
    unsigned ok_mask = imm_mask;
    for (unsigned k = 0; k < 4; ++k) {
        const __m256i t = _mm256_and_si256(
            _mm256_add_epi64(_mm256_sub_epi64(v[k], base), bias), himask);
        const __m256i ok = _mm256_cmpeq_epi64(t, zero);
        ok_mask |= static_cast<unsigned>(_mm256_movemask_pd(
                       _mm256_castsi256_pd(ok)))
                   << (4 * k);
    }
    return ok_mask == 0xffffu;
}

/** 4-byte-base layouts: 32 blocks as 4 vectors of 8 dword lanes. */
template <unsigned DeltaBytes>
inline bool
layoutFitsB4(const std::uint8_t *line)
{
    const __m256i bias = _mm256_set1_epi32(1 << (8 * DeltaBytes - 1));
    const __m256i himask = _mm256_set1_epi32(
        static_cast<int>(~((1u << (8 * DeltaBytes)) - 1)));
    const __m256i zero = _mm256_setzero_si256();

    __m256i v[4];
    std::uint32_t imm_mask = 0;
    for (unsigned k = 0; k < 4; ++k) {
        v[k] = loadVec(line, k);
        const __m256i t =
            _mm256_and_si256(_mm256_add_epi32(v[k], bias), himask);
        const __m256i ok = _mm256_cmpeq_epi32(t, zero);
        imm_mask |= static_cast<std::uint32_t>(_mm256_movemask_ps(
                        _mm256_castsi256_ps(ok)))
                    << (8 * k);
    }
    if (imm_mask == 0xffffffffu)
        return true;

    const unsigned base_idx = std::countr_zero(~imm_mask);
    const __m256i base = _mm256_set1_epi32(
        static_cast<int>(loadLe(line + 4 * base_idx, 4)));
    std::uint32_t ok_mask = imm_mask;
    for (unsigned k = 0; k < 4; ++k) {
        const __m256i t = _mm256_and_si256(
            _mm256_add_epi32(_mm256_sub_epi32(v[k], base), bias), himask);
        const __m256i ok = _mm256_cmpeq_epi32(t, zero);
        ok_mask |= static_cast<std::uint32_t>(_mm256_movemask_ps(
                       _mm256_castsi256_ps(ok)))
                   << (8 * k);
    }
    return ok_mask == 0xffffffffu;
}

} // namespace

BdiScanResult
bdiScan(const std::uint8_t *line)
{
    if (allZero(line))
        return {BdiCompressor::kEncZeros, 8};
    if (repeated8(line))
        return {BdiCompressor::kEncRep8, 64};

    // Same first-fit order as the scalar scan (ascending size, ties to
    // the earlier probe).
    if (layoutFitsB8<1>(line))
        return {BdiCompressor::kEncB8D1, bdiSizeBits(8, 1)};
    if (layoutFitsB4<1>(line))
        return {BdiCompressor::kEncB4D1, bdiSizeBits(4, 1)};
    if (layoutFitsB8<2>(line))
        return {BdiCompressor::kEncB8D2, bdiSizeBits(8, 2)};
    if (layoutFitsB4<2>(line))
        return {BdiCompressor::kEncB4D2, bdiSizeBits(4, 2)};
    if (layoutFitsB8<4>(line))
        return {BdiCompressor::kEncB8D4, bdiSizeBits(8, 4)};
    if (detail::bdiLayoutFits<2, 1>(line))
        return {BdiCompressor::kEncB2D1, bdiSizeBits(2, 1)};
    return {kRawEncoding, kLineBits};
}

std::uint32_t
fpcCountBits(const std::uint8_t *line)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c7 = _mm256_set1_epi32(7);
    const __m256i c127 = _mm256_set1_epi32(127);
    const __m256i c4 = _mm256_set1_epi32(4);
    const __m256i c8 = _mm256_set1_epi32(8);
    const __m256i narrow_lim = _mm256_set1_epi32(0x8000);
    const __m256i lo16 = _mm256_set1_epi32(0xffff);
    const __m256i byte_mask = _mm256_set1_epi32(0xff);
    const __m256i rep_mul = _mm256_set1_epi32(0x01010101);
    const __m256i half_bias = _mm256_set1_epi16(128);
    const __m256i half_mask =
        _mm256_set1_epi16(static_cast<short>(0xff00));
    const __m256i w35 = _mm256_set1_epi32(35);
    const __m256i w11 = _mm256_set1_epi32(11);
    const __m256i w19 = _mm256_set1_epi32(19);

    __m256i acc = zero;
    std::uint64_t zero_mask = 0;
    for (unsigned k = 0; k < 4; ++k) {
        const __m256i v = loadVec(line, k);

        // folded is non-negative in every lane, so the signed lane
        // compares below match the scalar unsigned thresholds.
        const __m256i folded =
            _mm256_xor_si256(v, _mm256_srai_epi32(v, 31));
        const __m256i is_narrow = _mm256_cmpgt_epi32(narrow_lim, folded);
        __m256i narrow = _mm256_add_epi32(
            c7, _mm256_and_si256(_mm256_cmpgt_epi32(folded, c7), c4));
        narrow = _mm256_add_epi32(
            narrow,
            _mm256_and_si256(_mm256_cmpgt_epi32(folded, c127), c8));

        const __m256i lo = _mm256_and_si256(v, lo16);
        const __m256i is_rep = _mm256_cmpeq_epi32(
            _mm256_mullo_epi32(_mm256_and_si256(v, byte_mask), rep_mul),
            v);
        // Both 16-bit halves fit a signed byte <=> (half + 128) mod
        // 2^16 has no bits above 0xff in either half of the lane.
        const __m256i is_two_half = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_add_epi16(v, half_bias), half_mask),
            zero);
        const __m256i is_lo_zero = _mm256_cmpeq_epi32(lo, zero);

        __m256i wide = w35;
        wide = _mm256_blendv_epi8(wide, w11, is_rep);
        wide = _mm256_blendv_epi8(wide, w19, is_two_half);
        wide = _mm256_blendv_epi8(wide, w19, is_lo_zero);

        acc = _mm256_add_epi32(
            acc, _mm256_blendv_epi8(wide, narrow, is_narrow));

        const __m256i is_zero = _mm256_cmpeq_epi32(v, zero);
        zero_mask |= static_cast<std::uint64_t>(
                         static_cast<unsigned>(_mm256_movemask_ps(
                             _mm256_castsi256_ps(is_zero))))
                     << (8 * k);
    }

    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    std::uint32_t bits =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));

    // Zero-run retraction, identical to the scalar kernel.
    while (zero_mask) {
        zero_mask >>= std::countr_zero(zero_mask);
        const unsigned run = std::countr_one(zero_mask);
        zero_mask >>= run;
        bits += 6 * static_cast<std::uint32_t>(divCeil(run, 8)) -
                7 * run;
    }
    return bits;
}

std::uint64_t
scLineBits(const std::uint8_t *line, const HuffmanCode::LengthView &view)
{
    if (view.empty)
        return std::uint64_t{kLineBytes / 4} * view.escapeBits;

    const __m128i mul = _mm_set1_epi32(static_cast<int>(0x9e3779b9u));
    const __m128i slot_mask =
        _mm_set1_epi32(static_cast<int>(view.slotMask));
    const __m128i esc =
        _mm_set1_epi32(static_cast<int>(view.escapeBits));
    const __m128i zero = _mm_setzero_si128();
    const __m128i ones = _mm_set1_epi32(-1);
    // Gathered slots carry symbol in the low dword, bits in the high
    // dword; this permutation splits them into two 4-lane vectors.
    const __m256i split_idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    const auto *slot_base =
        reinterpret_cast<const long long *>(view.slots);

    std::uint64_t total = 0;
    __m128i acc = zero;
    for (unsigned off = 0; off < kLineBytes; off += 16) {
        const __m128i vals = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(line + off));
        const __m128i idx = _mm_and_si128(
            _mm_mullo_epi32(vals, mul), slot_mask);
        const __m256i slots = _mm256_i32gather_epi64(slot_base, idx, 8);
        const __m256i split =
            _mm256_permutevar8x32_epi32(slots, split_idx);
        const __m128i sym = _mm256_castsi256_si128(split);
        const __m128i sbits = _mm256_extracti128_si256(split, 1);

        // Resolved lanes: an empty home slot escapes (the filter could
        // only agree), and a home-slot symbol match returns slot.bits
        // (a present symbol always passes the filter). Collision lanes
        // take the scalar walk, filter check included.
        const __m128i empty_slot = _mm_cmpeq_epi32(sbits, zero);
        const __m128i hit =
            _mm_andnot_si128(empty_slot, _mm_cmpeq_epi32(sym, vals));
        acc = _mm_add_epi32(
            acc, _mm_or_si128(_mm_and_si128(empty_slot, esc),
                              _mm_and_si128(hit, sbits)));

        unsigned pending = static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_andnot_si128(
                _mm_or_si128(empty_slot, hit), ones))));
        if (pending) {
            alignas(16) std::uint32_t words[4];
            _mm_store_si128(reinterpret_cast<__m128i *>(words), vals);
            do {
                const unsigned lane =
                    static_cast<unsigned>(std::countr_zero(pending));
                pending &= pending - 1;
                total += scLookupBits(words[lane], view);
            } while (pending);
        }
    }

    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
    total += static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
    return total;
}

} // namespace latte::simd::avx2
