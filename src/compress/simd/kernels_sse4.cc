/**
 * @file
 * SSE4.1 probe kernels — the AVX2 designs at 128-bit width (see
 * kernels_avx2.cc for the bit-identity arguments; they carry over lane
 * for lane). No scLineBits here: the slot gather needs AVX2, so the
 * SSE4 backend keeps the scalar SC kernel. Compiled with -msse4.1 via
 * per-file CMake flags and only dispatched after a runtime
 * __builtin_cpu_supports("sse4.1") check.
 */

#include <smmintrin.h>

#include <bit>

#include "common/bit_utils.hh"
#include "compress/simd/kernels.hh"

namespace latte::simd::sse4
{

namespace
{

inline __m128i
loadVec(const std::uint8_t *line, unsigned i)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(line) + i);
}

inline bool
allZero(const std::uint8_t *line)
{
    __m128i acc = loadVec(line, 0);
    for (unsigned i = 1; i < 8; ++i)
        acc = _mm_or_si128(acc, loadVec(line, i));
    return _mm_testz_si128(acc, acc);
}

inline bool
repeated8(const std::uint8_t *line)
{
    const __m128i first =
        _mm_set1_epi64x(static_cast<long long>(loadLe(line, 8)));
    __m128i acc = _mm_setzero_si128();
    for (unsigned i = 0; i < 8; ++i)
        acc = _mm_or_si128(acc, _mm_xor_si128(loadVec(line, i), first));
    return _mm_testz_si128(acc, acc);
}

/** 8-byte-base layouts: 16 blocks as 8 vectors of 2 qword lanes. */
template <unsigned DeltaBytes>
inline bool
layoutFitsB8(const std::uint8_t *line)
{
    const __m128i bias =
        _mm_set1_epi64x(std::int64_t{1} << (8 * DeltaBytes - 1));
    const __m128i himask = _mm_set1_epi64x(static_cast<long long>(
        ~((std::uint64_t{1} << (8 * DeltaBytes)) - 1)));
    const __m128i zero = _mm_setzero_si128();

    __m128i v[8];
    unsigned imm_mask = 0;
    for (unsigned k = 0; k < 8; ++k) {
        v[k] = loadVec(line, k);
        const __m128i t =
            _mm_and_si128(_mm_add_epi64(v[k], bias), himask);
        const __m128i ok = _mm_cmpeq_epi64(t, zero);
        imm_mask |= static_cast<unsigned>(
                        _mm_movemask_pd(_mm_castsi128_pd(ok)))
                    << (2 * k);
    }
    if (imm_mask == 0xffffu)
        return true;

    const unsigned base_idx = std::countr_zero(~imm_mask & 0xffffu);
    const __m128i base = _mm_set1_epi64x(
        static_cast<long long>(loadLe(line + 8 * base_idx, 8)));
    unsigned ok_mask = imm_mask;
    for (unsigned k = 0; k < 8; ++k) {
        const __m128i t = _mm_and_si128(
            _mm_add_epi64(_mm_sub_epi64(v[k], base), bias), himask);
        const __m128i ok = _mm_cmpeq_epi64(t, zero);
        ok_mask |= static_cast<unsigned>(
                       _mm_movemask_pd(_mm_castsi128_pd(ok)))
                   << (2 * k);
    }
    return ok_mask == 0xffffu;
}

/** 4-byte-base layouts: 32 blocks as 8 vectors of 4 dword lanes. */
template <unsigned DeltaBytes>
inline bool
layoutFitsB4(const std::uint8_t *line)
{
    const __m128i bias = _mm_set1_epi32(1 << (8 * DeltaBytes - 1));
    const __m128i himask = _mm_set1_epi32(
        static_cast<int>(~((1u << (8 * DeltaBytes)) - 1)));
    const __m128i zero = _mm_setzero_si128();

    __m128i v[8];
    std::uint32_t imm_mask = 0;
    for (unsigned k = 0; k < 8; ++k) {
        v[k] = loadVec(line, k);
        const __m128i t =
            _mm_and_si128(_mm_add_epi32(v[k], bias), himask);
        const __m128i ok = _mm_cmpeq_epi32(t, zero);
        imm_mask |= static_cast<std::uint32_t>(
                        _mm_movemask_ps(_mm_castsi128_ps(ok)))
                    << (4 * k);
    }
    if (imm_mask == 0xffffffffu)
        return true;

    const unsigned base_idx = std::countr_zero(~imm_mask);
    const __m128i base = _mm_set1_epi32(
        static_cast<int>(loadLe(line + 4 * base_idx, 4)));
    std::uint32_t ok_mask = imm_mask;
    for (unsigned k = 0; k < 8; ++k) {
        const __m128i t = _mm_and_si128(
            _mm_add_epi32(_mm_sub_epi32(v[k], base), bias), himask);
        const __m128i ok = _mm_cmpeq_epi32(t, zero);
        ok_mask |= static_cast<std::uint32_t>(
                       _mm_movemask_ps(_mm_castsi128_ps(ok)))
                   << (4 * k);
    }
    return ok_mask == 0xffffffffu;
}

} // namespace

BdiScanResult
bdiScan(const std::uint8_t *line)
{
    if (allZero(line))
        return {BdiCompressor::kEncZeros, 8};
    if (repeated8(line))
        return {BdiCompressor::kEncRep8, 64};

    if (layoutFitsB8<1>(line))
        return {BdiCompressor::kEncB8D1, bdiSizeBits(8, 1)};
    if (layoutFitsB4<1>(line))
        return {BdiCompressor::kEncB4D1, bdiSizeBits(4, 1)};
    if (layoutFitsB8<2>(line))
        return {BdiCompressor::kEncB8D2, bdiSizeBits(8, 2)};
    if (layoutFitsB4<2>(line))
        return {BdiCompressor::kEncB4D2, bdiSizeBits(4, 2)};
    if (layoutFitsB8<4>(line))
        return {BdiCompressor::kEncB8D4, bdiSizeBits(8, 4)};
    if (detail::bdiLayoutFits<2, 1>(line))
        return {BdiCompressor::kEncB2D1, bdiSizeBits(2, 1)};
    return {kRawEncoding, kLineBits};
}

std::uint32_t
fpcCountBits(const std::uint8_t *line)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i c7 = _mm_set1_epi32(7);
    const __m128i c127 = _mm_set1_epi32(127);
    const __m128i c4 = _mm_set1_epi32(4);
    const __m128i c8 = _mm_set1_epi32(8);
    const __m128i narrow_lim = _mm_set1_epi32(0x8000);
    const __m128i lo16 = _mm_set1_epi32(0xffff);
    const __m128i byte_mask = _mm_set1_epi32(0xff);
    const __m128i rep_mul = _mm_set1_epi32(0x01010101);
    const __m128i half_bias = _mm_set1_epi16(128);
    const __m128i half_mask = _mm_set1_epi16(static_cast<short>(0xff00));
    const __m128i w35 = _mm_set1_epi32(35);
    const __m128i w11 = _mm_set1_epi32(11);
    const __m128i w19 = _mm_set1_epi32(19);

    __m128i acc = zero;
    std::uint64_t zero_mask = 0;
    for (unsigned k = 0; k < 8; ++k) {
        const __m128i v = loadVec(line, k);

        const __m128i folded = _mm_xor_si128(v, _mm_srai_epi32(v, 31));
        const __m128i is_narrow = _mm_cmpgt_epi32(narrow_lim, folded);
        __m128i narrow = _mm_add_epi32(
            c7, _mm_and_si128(_mm_cmpgt_epi32(folded, c7), c4));
        narrow = _mm_add_epi32(
            narrow, _mm_and_si128(_mm_cmpgt_epi32(folded, c127), c8));

        const __m128i lo = _mm_and_si128(v, lo16);
        const __m128i is_rep = _mm_cmpeq_epi32(
            _mm_mullo_epi32(_mm_and_si128(v, byte_mask), rep_mul), v);
        const __m128i is_two_half = _mm_cmpeq_epi32(
            _mm_and_si128(_mm_add_epi16(v, half_bias), half_mask), zero);
        const __m128i is_lo_zero = _mm_cmpeq_epi32(lo, zero);

        __m128i wide = w35;
        wide = _mm_blendv_epi8(wide, w11, is_rep);
        wide = _mm_blendv_epi8(wide, w19, is_two_half);
        wide = _mm_blendv_epi8(wide, w19, is_lo_zero);

        acc = _mm_add_epi32(acc, _mm_blendv_epi8(wide, narrow,
                                                 is_narrow));

        const __m128i is_zero = _mm_cmpeq_epi32(v, zero);
        zero_mask |= static_cast<std::uint64_t>(
                         static_cast<unsigned>(_mm_movemask_ps(
                             _mm_castsi128_ps(is_zero))))
                     << (4 * k);
    }

    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
    std::uint32_t bits =
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));

    while (zero_mask) {
        zero_mask >>= std::countr_zero(zero_mask);
        const unsigned run = std::countr_one(zero_mask);
        zero_mask >>= run;
        bits += 6 * static_cast<std::uint32_t>(divCeil(run, 8)) -
                7 * run;
    }
    return bits;
}

} // namespace latte::simd::sse4
