/**
 * @file
 * C-PACK (Cache Packer, Chen et al., TVLSI 2010) with zero-line
 * detection, the CPACK-Z configuration of the paper. Words are matched
 * against a small FIFO dictionary built while the line streams through the
 * compressor; full/partial matches and zero patterns are emitted as short
 * codes. The dictionary is rebuilt per line so every line decompresses
 * independently.
 */

#ifndef LATTE_COMPRESS_CPACK_HH
#define LATTE_COMPRESS_CPACK_HH

#include "common/config.hh"
#include "compressor.hh"

namespace latte
{

/** C-PACK + zero-line compressor/decompressor engine. */
class CpackCompressor : public Compressor
{
  public:
    explicit CpackCompressor(const CompressorTimings &timings = {});

    CompressorId id() const override { return CompressorId::CpackZ; }
    std::string name() const override { return "CPACK-Z"; }

    CompressedLine compress(std::span<const std::uint8_t> line) override;
    void probeLines(std::span<const std::uint8_t> lines,
                    std::span<LineMeta> out) override;
    void decompressInto(const CompressedLine &line,
                        std::span<std::uint8_t> out) const override;

    Cycles compressLatency() const override { return 8; }
    Cycles decompressLatency() const override { return decompressLat_; }
    double compressEnergyNj() const override { return 0.30; }
    double decompressEnergyNj() const override { return 0.15; }

    /** Dictionary capacity in 32-bit words (64 B, per the C-PACK paper). */
    static constexpr unsigned kDictWords = 16;

    /** Encoding ids. */
    static constexpr std::uint8_t kEncZeroLine = 0x0;
    static constexpr std::uint8_t kEncPacked = 0x1;

  private:
    Cycles decompressLat_;
};

} // namespace latte

#endif // LATTE_COMPRESS_CPACK_HH
