#include "bpc.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace latte
{

namespace
{

// Per-plane symbol codes, written LSB-first (first bit listed is the
// first bit on the wire). Scan order is plane 32 down to plane 0 so the
// decoder always knows DBP[b+1] before decoding plane b.
//   zero-run 2..33 : 0,1        + 5-bit (run-2)
//   single zero    : 0,0,1
//   all ones       : 0,0,0,0,0
//   DBP plane zero : 0,0,0,0,1
//   two consec 1s  : 0,0,0,1,0  + 5-bit position (low bit of the pair)
//   single 1       : 0,0,0,1,1  + 5-bit position
//   uncompressed   : 1          + 31 raw bits

template <typename Sink>
void
baseEncode(Sink &sink, std::uint32_t base)
{
    const std::int64_t value = signExtend(base, 32);
    if (base == 0) {
        sink.write(0b00, 2);
    } else if (value >= -8 && value <= 7) {
        sink.write(0b01, 2);
        sink.write(base & 0xf, 4);
    } else if (fitsSigned(value, 2)) {
        sink.write(0b10, 2);
        sink.write(base & 0xffff, 16);
    } else {
        sink.write(0b11, 2);
        sink.write(base, 32);
    }
}

std::uint32_t
baseDecode(BitReader &br)
{
    const auto tag = br.read(2);
    switch (tag) {
      case 0b00: return 0;
      case 0b01:
        return static_cast<std::uint32_t>(signExtend(br.read(4), 4));
      case 0b10:
        return static_cast<std::uint32_t>(signExtend(br.read(16), 16));
      default:
        return static_cast<std::uint32_t>(br.read(32));
    }
}

constexpr std::uint64_t kPlaneMask = (std::uint64_t{1} << 31) - 1;

/**
 * The full BPC pipeline — delta, DBP transpose, DBX, plane coding —
 * emitting into @p sink. Shared by compress() (BitWriter) and probe()
 * (BitCounter).
 */
template <typename Sink>
void
encodeLine(std::span<const std::uint8_t> line, Sink &sink)
{
    constexpr unsigned kWords = BpcCompressor::kWords;
    constexpr unsigned kDeltas = BpcCompressor::kDeltas;
    constexpr unsigned kPlanes = BpcCompressor::kPlanes;

    std::array<std::uint32_t, kWords> words;
    for (unsigned i = 0; i < kWords; ++i)
        words[i] = static_cast<std::uint32_t>(loadLe(line.data() + 4 * i,
                                                     4));

    // 33-bit two's-complement deltas between consecutive words.
    std::array<std::uint64_t, kDeltas> deltas;
    for (unsigned i = 0; i < kDeltas; ++i) {
        const std::uint64_t diff =
            static_cast<std::uint64_t>(words[i + 1]) -
            static_cast<std::uint64_t>(words[i]);
        deltas[i] = diff & ((std::uint64_t{1} << 33) - 1);
    }

    // DBP: transpose -> 33 planes of 31 bits.
    std::array<std::uint64_t, kPlanes> dbp{};
    for (unsigned b = 0; b < kPlanes; ++b) {
        std::uint64_t plane = 0;
        for (unsigned i = 0; i < kDeltas; ++i)
            plane |= ((deltas[i] >> b) & 1) << i;
        dbp[b] = plane;
    }

    // DBX: XOR each plane with the plane above it.
    std::array<std::uint64_t, kPlanes> dbx{};
    dbx[kPlanes - 1] = dbp[kPlanes - 1];
    for (unsigned b = 0; b + 1 < kPlanes; ++b)
        dbx[b] = dbp[b] ^ dbp[b + 1];

    baseEncode(sink, words[0]);

    // Scan planes top-down (32 .. 0).
    int b = kPlanes - 1;
    while (b >= 0) {
        // Count a run of zero DBX planes.
        unsigned run = 0;
        while (b - static_cast<int>(run) >= 0 &&
               dbx[b - run] == 0 && run < 33) {
            ++run;
        }
        if (run >= 2) {
            sink.write(0b10, 2);          // bits 0,1
            sink.write(run - 2, 5);
            b -= static_cast<int>(run);
            continue;
        }
        if (run == 1) {
            sink.write(0b100, 3);         // bits 0,0,1
            --b;
            continue;
        }

        const std::uint64_t plane = dbx[b];
        if (plane == kPlaneMask) {
            sink.write(0b00000, 5);
        } else if (dbp[b] == 0) {
            sink.write(0b10000, 5);       // bits 0,0,0,0,1
        } else {
            // Count set bits / find positions.
            unsigned ones = 0;
            unsigned first = 0;
            for (unsigned i = 0; i < kDeltas; ++i) {
                if ((plane >> i) & 1) {
                    if (ones == 0)
                        first = i;
                    ++ones;
                }
            }
            const bool two_consec =
                ones == 2 && ((plane >> (first + 1)) & 1);
            if (ones == 1) {
                sink.write(0b11000, 5);   // bits 0,0,0,1,1
                sink.write(first, 5);
            } else if (two_consec) {
                sink.write(0b01000, 5);   // bits 0,0,0,1,0
                sink.write(first, 5);
            } else {
                sink.pushBit(true);       // uncompressed plane
                sink.write(plane, 31);
            }
        }
        --b;
    }
}

} // namespace

BpcCompressor::BpcCompressor(const CompressorTimings &timings)
    : compressLat_(timings.bpcCompress),
      decompressLat_(timings.bpcDecompress),
      compressNj_(timings.bpcCompressNj),
      decompressNj_(timings.bpcDecompressNj)
{}

void
BpcCompressor::probeLines(std::span<const std::uint8_t> lines,
                          std::span<LineMeta> out)
{
    latte_assert(lines.size() == out.size() * kLineBytes);

    // The delta/DBP/DBX pipeline is already plane-parallel inside
    // encodeLine(); the batch form is a plain loop sharing the API
    // shape (and the amortised dispatch) with the other compressors.
    for (std::size_t i = 0; i < out.size(); ++i) {
        BitCounter counter;
        encodeLine(lines.subspan(i * kLineBytes, kLineBytes), counter);
        out[i] = makeProbedMeta(
            CompressorId::Bpc, 0,
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(counter.bitSize(), kLineBits)));
    }
}

CompressedLine
BpcCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    BitWriter bw;
    encodeLine(line, bw);
    if (bw.bitSize() >= kLineBits)
        return makeRawLine(CompressorId::Bpc, line);

    CompressedLine out;
    out.algo = CompressorId::Bpc;
    out.encoding = 0;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload.assign(bw.bytes());
    return out;
}

void
BpcCompressor::decompressInto(const CompressedLine &line,
                              std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::Bpc);
    latte_assert(out.size() == kLineBytes);
    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }

    BitReader br(line.payload, line.sizeBits);
    const std::uint32_t base = baseDecode(br);

    std::array<std::uint64_t, kPlanes> dbp{};
    int b = kPlanes - 1;
    auto dbp_above = [&](int idx) -> std::uint64_t {
        return idx + 1 < static_cast<int>(kPlanes) ? dbp[idx + 1] : 0;
    };

    while (b >= 0) {
        if (br.readBit()) {             // '1' -> uncompressed plane
            const std::uint64_t plane = br.read(31);
            dbp[b] = plane ^ dbp_above(b);
            --b;
            continue;
        }
        if (br.readBit()) {             // '01' -> zero run
            const unsigned run = static_cast<unsigned>(br.read(5)) + 2;
            for (unsigned k = 0; k < run; ++k) {
                latte_assert(b >= 0, "BPC run overruns planes");
                dbp[b] = dbp_above(b);  // DBX == 0
                --b;
            }
            continue;
        }
        if (br.readBit()) {             // '001' -> single zero plane
            dbp[b] = dbp_above(b);
            --b;
            continue;
        }
        if (br.readBit()) {             // '0001x' -> positional codes
            if (br.readBit()) {         // 00011: single one
                const unsigned pos = static_cast<unsigned>(br.read(5));
                dbp[b] = (std::uint64_t{1} << pos) ^ dbp_above(b);
            } else {                    // 00010: two consecutive ones
                const unsigned pos = static_cast<unsigned>(br.read(5));
                dbp[b] = (std::uint64_t{3} << pos) ^ dbp_above(b);
            }
            --b;
            continue;
        }
        if (br.readBit()) {             // 00001: DBP plane is zero
            dbp[b] = 0;
        } else {                        // 00000: all-ones DBX plane
            dbp[b] = kPlaneMask ^ dbp_above(b);
        }
        --b;
    }

    // Reassemble deltas from the bit planes.
    std::array<std::uint64_t, kDeltas> deltas{};
    for (unsigned bb = 0; bb < kPlanes; ++bb) {
        for (unsigned i = 0; i < kDeltas; ++i)
            deltas[i] |= ((dbp[bb] >> i) & 1) << bb;
    }

    std::uint32_t word = base;
    storeLe(out.data(), word, 4);
    for (unsigned i = 0; i < kDeltas; ++i) {
        const std::int64_t delta = signExtend(deltas[i], 33);
        word = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(word) +
            static_cast<std::uint64_t>(delta));
        storeLe(out.data() + 4 * (i + 1), word, 4);
    }
}

} // namespace latte
