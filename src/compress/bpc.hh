/**
 * @file
 * Bit-Plane Compression (Kim et al., ISCA 2016). The line is viewed as 32
 * consecutive 32-bit words; 31 inter-word deltas are bit-plane transposed
 * (DBP) and adjacent planes XORed (DBX), turning the low-variance bits
 * common in GPU data into long zero runs that compress with short codes.
 */

#ifndef LATTE_COMPRESS_BPC_HH
#define LATTE_COMPRESS_BPC_HH

#include "common/config.hh"
#include "compressor.hh"

namespace latte
{

/** BPC compressor/decompressor engine. */
class BpcCompressor : public Compressor
{
  public:
    explicit BpcCompressor(const CompressorTimings &timings = {});

    CompressorId id() const override { return CompressorId::Bpc; }
    std::string name() const override { return "BPC"; }

    CompressedLine compress(std::span<const std::uint8_t> line) override;
    void probeLines(std::span<const std::uint8_t> lines,
                    std::span<LineMeta> out) override;
    void decompressInto(const CompressedLine &line,
                        std::span<std::uint8_t> out) const override;

    Cycles compressLatency() const override { return compressLat_; }
    Cycles decompressLatency() const override { return decompressLat_; }
    double compressEnergyNj() const override { return compressNj_; }
    double decompressEnergyNj() const override { return decompressNj_; }

    static constexpr unsigned kWords = kLineBytes / 4;   // 32
    static constexpr unsigned kDeltas = kWords - 1;      // 31
    static constexpr unsigned kPlanes = 33;              // 33-bit deltas

  private:
    Cycles compressLat_;
    Cycles decompressLat_;
    double compressNj_;
    double decompressNj_;
};

} // namespace latte

#endif // LATTE_COMPRESS_BPC_HH
