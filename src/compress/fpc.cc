#include "fpc.hh"

#include "backend.hh"
#include "common/logging.hh"

namespace latte
{

namespace
{

/**
 * Encode every word of @p line into @p sink. Shared by compress()
 * (sink = BitWriter) and probe() (sink = BitCounter) so the two can
 * never disagree on a size.
 */
template <typename Sink>
void
encodeWords(std::span<const std::uint8_t> line, Sink &sink)
{
    const unsigned n_words = kLineBytes / 4;
    unsigned i = 0;
    while (i < n_words) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(loadLe(line.data() + 4 * i, 4));

        if (word == 0) {
            // Zero run of up to 8 words.
            unsigned run = 1;
            while (i + run < n_words && run < 8 &&
                   loadLe(line.data() + 4 * (i + run), 4) == 0) {
                ++run;
            }
            sink.write(FpcCompressor::kZeroRun, 3);
            sink.write(run - 1, 3);
            i += run;
            continue;
        }

        const std::int64_t value = signExtend(word, 32);
        const std::uint16_t lo = word & 0xffff;
        const std::uint16_t hi = word >> 16;

        if (value >= -8 && value <= 7) {
            sink.write(FpcCompressor::kSigned4, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xf, 4);
        } else if (fitsSigned(value, 1)) {
            sink.write(FpcCompressor::kSigned8, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xff, 8);
        } else if (fitsSigned(value, 2)) {
            sink.write(FpcCompressor::kSigned16, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xffff, 16);
        } else if (lo == 0) {
            sink.write(FpcCompressor::kZeroPadded, 3);
            sink.write(hi, 16);
        } else if (fitsSigned(signExtend(lo, 16), 1) &&
                   fitsSigned(signExtend(hi, 16), 1)) {
            sink.write(FpcCompressor::kTwoHalfSigned8, 3);
            sink.write(lo & 0xff, 8);
            sink.write(hi & 0xff, 8);
        } else if (word == (word & 0xff) * 0x01010101u) {
            sink.write(FpcCompressor::kRepeatedByte, 3);
            sink.write(word & 0xff, 8);
        } else {
            sink.write(FpcCompressor::kUncompressed, 3);
            sink.write(word, 32);
        }
        ++i;
    }
}

} // namespace

FpcCompressor::FpcCompressor(const CompressorTimings &timings)
    : decompressLat_(timings.fpcDecompress)
{}

void
FpcCompressor::probeLines(std::span<const std::uint8_t> lines,
                          std::span<LineMeta> out)
{
    latte_assert(lines.size() == out.size() * kLineBytes);

    // The size-only twin of encodeWords() is the backend's word
    // classifier kernel; test_properties pins probe() == compress()
    // across all profiles and backends.
    const simd::FpcCountBitsFn count =
        activeCompressorBackend().fpcCountBits;
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = makeProbedMeta(CompressorId::Fpc, 0,
                                count(lines.data() + i * kLineBytes));
    }
}

CompressedLine
FpcCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    BitWriter bw;
    encodeWords(line, bw);
    if (bw.bitSize() >= kLineBits)
        return makeRawLine(CompressorId::Fpc, line);

    CompressedLine out;
    out.algo = CompressorId::Fpc;
    out.encoding = 0;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload.assign(bw.bytes());
    return out;
}

void
FpcCompressor::decompressInto(const CompressedLine &line,
                              std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::Fpc);
    latte_assert(out.size() == kLineBytes);
    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }

    const unsigned n_words = kLineBytes / 4;
    BitReader br(line.payload, line.sizeBits);

    unsigned i = 0;
    while (i < n_words) {
        const auto prefix = static_cast<Prefix>(br.read(3));
        switch (prefix) {
          case kZeroRun: {
            const unsigned run = static_cast<unsigned>(br.read(3)) + 1;
            latte_assert(i + run <= n_words);
            for (unsigned k = 0; k < run; ++k)
                storeLe(out.data() + 4 * (i + k), 0, 4);
            i += run;
            break;
          }
          case kSigned4: {
            const auto v = signExtend(br.read(4), 4);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kSigned8: {
            const auto v = signExtend(br.read(8), 8);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kSigned16: {
            const auto v = signExtend(br.read(16), 16);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kZeroPadded: {
            const std::uint32_t hi =
                static_cast<std::uint32_t>(br.read(16));
            storeLe(out.data() + 4 * i, hi << 16, 4);
            ++i;
            break;
          }
          case kTwoHalfSigned8: {
            const std::uint16_t lo = static_cast<std::uint16_t>(
                signExtend(br.read(8), 8));
            const std::uint16_t hi = static_cast<std::uint16_t>(
                signExtend(br.read(8), 8));
            storeLe(out.data() + 4 * i,
                    (static_cast<std::uint32_t>(hi) << 16) | lo, 4);
            ++i;
            break;
          }
          case kRepeatedByte: {
            const std::uint32_t b =
                static_cast<std::uint32_t>(br.read(8));
            storeLe(out.data() + 4 * i,
                    b | (b << 8) | (b << 16) | (b << 24), 4);
            ++i;
            break;
          }
          case kUncompressed: {
            storeLe(out.data() + 4 * i, br.read(32), 4);
            ++i;
            break;
          }
          default:
            latte_panic("bad FPC prefix");
        }
    }
}

} // namespace latte
