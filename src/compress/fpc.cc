#include "fpc.hh"

#include <bit>

#include "common/logging.hh"

namespace latte
{

namespace
{

/**
 * Encode every word of @p line into @p sink. Shared by compress()
 * (sink = BitWriter) and probe() (sink = BitCounter) so the two can
 * never disagree on a size.
 */
template <typename Sink>
void
encodeWords(std::span<const std::uint8_t> line, Sink &sink)
{
    const unsigned n_words = kLineBytes / 4;
    unsigned i = 0;
    while (i < n_words) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(loadLe(line.data() + 4 * i, 4));

        if (word == 0) {
            // Zero run of up to 8 words.
            unsigned run = 1;
            while (i + run < n_words && run < 8 &&
                   loadLe(line.data() + 4 * (i + run), 4) == 0) {
                ++run;
            }
            sink.write(FpcCompressor::kZeroRun, 3);
            sink.write(run - 1, 3);
            i += run;
            continue;
        }

        const std::int64_t value = signExtend(word, 32);
        const std::uint16_t lo = word & 0xffff;
        const std::uint16_t hi = word >> 16;

        if (value >= -8 && value <= 7) {
            sink.write(FpcCompressor::kSigned4, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xf, 4);
        } else if (fitsSigned(value, 1)) {
            sink.write(FpcCompressor::kSigned8, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xff, 8);
        } else if (fitsSigned(value, 2)) {
            sink.write(FpcCompressor::kSigned16, 3);
            sink.write(static_cast<std::uint64_t>(value) & 0xffff, 16);
        } else if (lo == 0) {
            sink.write(FpcCompressor::kZeroPadded, 3);
            sink.write(hi, 16);
        } else if (fitsSigned(signExtend(lo, 16), 1) &&
                   fitsSigned(signExtend(hi, 16), 1)) {
            sink.write(FpcCompressor::kTwoHalfSigned8, 3);
            sink.write(lo & 0xff, 8);
            sink.write(hi & 0xff, 8);
        } else if (word == (word & 0xff) * 0x01010101u) {
            sink.write(FpcCompressor::kRepeatedByte, 3);
            sink.write(word & 0xff, 8);
        } else {
            sink.write(FpcCompressor::kUncompressed, 3);
            sink.write(word, 32);
        }
        ++i;
    }
}

/**
 * Size-only twin of encodeWords(): the same word classification, with
 * the three narrow signed classes folded into one bit-width lookup so
 * the probe spends at most two well-predicted branches per word.
 * test_properties pins probe() == compress() across all profiles.
 */
std::uint32_t
countBits(std::span<const std::uint8_t> line)
{
    // Bits for one nonzero word. folded == value for positives, ~value
    // for negatives, so the narrow signed ranges become plain width
    // thresholds (width 0 is word == 0xffffffff, i.e. kSigned4's -1).
    const auto classify = [](std::uint32_t word) -> std::uint32_t {
        const std::uint32_t folded =
            word ^ static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(word) >> 31);
        if (folded < 0x8000) {
            // kSigned4 (7 bits) below 8, kSigned8 (11) below 128,
            // kSigned16 (19) below 32768 — flag arithmetic keeps the
            // narrow band branch-free, with no bit-scan in the chain.
            return 7 + 4u * (folded > 7) + 8u * (folded > 127);
        }

        // Branchless pick of the wide classes — which one a noisy word
        // lands in is data-dependent, so branches here mispredict.
        // Priority order inverted: later assignments win. The only
        // overlap (kZeroPadded vs kTwoHalfSigned8 when lo == 0 and hi
        // is a small signed half) selects 19 bits either way.
        const std::uint16_t lo = word & 0xffff;
        const std::uint16_t hi = word >> 16;
        std::uint32_t wide = 35; // kUncompressed
        if (word == (word & 0xff) * 0x01010101u)
            wide = 11; // kRepeatedByte
        if (fitsSigned(signExtend(lo, 16), 1) &&
            fitsSigned(signExtend(hi, 16), 1))
            wide = 19; // kTwoHalfSigned8
        if (lo == 0)
            wide = 19; // kZeroPadded
        return wide;
    };

    // Single pass: classify every word as it streams by (each word is
    // one half of a 64-bit load) and collect a map of the zero ones.
    // Zero words classify as kSigned4 (7 bits); that contribution is
    // subtracted below and replaced by the zero-run tokens, keeping the
    // loop free of data-dependent branches.
    const std::uint8_t *p = line.data();
    std::uint64_t zero_mask = 0;
    std::uint32_t bits = 0;
    for (unsigned k = 0; k < kLineBytes / 8; ++k) {
        const std::uint64_t pair = loadLe(p + 8 * k, 8);
        const auto w0 = static_cast<std::uint32_t>(pair);
        const auto w1 = static_cast<std::uint32_t>(pair >> 32);
        const std::uint64_t lo_zero = w0 == 0;
        const std::uint64_t hi_zero = w1 == 0;
        zero_mask |= (lo_zero | (hi_zero << 1)) << (2 * k);
        bits += classify(w0) + classify(w1);
    }

    // Zero runs: a maximal run of L zero words emits ceil(L/8) tokens of
    // 6 bits each (kZeroRun prefix + 3-bit length), exactly matching
    // encodeWords()'s greedy up-to-8 scan. The "- 7 * run" retracts the
    // kSigned4 bits the branch-free loop above charged per zero word.
    while (zero_mask) {
        zero_mask >>= std::countr_zero(zero_mask);
        const unsigned run = std::countr_one(zero_mask);
        zero_mask >>= run;
        bits += 6 * static_cast<std::uint32_t>(divCeil(run, 8)) -
                7 * run;
    }
    return bits;
}

} // namespace

FpcCompressor::FpcCompressor(const CompressorTimings &timings)
    : decompressLat_(timings.fpcDecompress)
{}

LineMeta
FpcCompressor::probe(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    const std::uint32_t bits = countBits(line);
    if (bits >= kLineBits)
        return makeRawMeta(CompressorId::Fpc);

    LineMeta meta;
    meta.algo = CompressorId::Fpc;
    meta.encoding = 0;
    meta.sizeBits = bits;
    return meta;
}

CompressedLine
FpcCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    BitWriter bw;
    encodeWords(line, bw);
    if (bw.bitSize() >= kLineBits)
        return makeRawLine(CompressorId::Fpc, line);

    CompressedLine out;
    out.algo = CompressorId::Fpc;
    out.encoding = 0;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload.assign(bw.bytes());
    return out;
}

void
FpcCompressor::decompressInto(const CompressedLine &line,
                              std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::Fpc);
    latte_assert(out.size() == kLineBytes);
    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }

    const unsigned n_words = kLineBytes / 4;
    BitReader br(line.payload, line.sizeBits);

    unsigned i = 0;
    while (i < n_words) {
        const auto prefix = static_cast<Prefix>(br.read(3));
        switch (prefix) {
          case kZeroRun: {
            const unsigned run = static_cast<unsigned>(br.read(3)) + 1;
            latte_assert(i + run <= n_words);
            for (unsigned k = 0; k < run; ++k)
                storeLe(out.data() + 4 * (i + k), 0, 4);
            i += run;
            break;
          }
          case kSigned4: {
            const auto v = signExtend(br.read(4), 4);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kSigned8: {
            const auto v = signExtend(br.read(8), 8);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kSigned16: {
            const auto v = signExtend(br.read(16), 16);
            storeLe(out.data() + 4 * i,
                    static_cast<std::uint64_t>(v), 4);
            ++i;
            break;
          }
          case kZeroPadded: {
            const std::uint32_t hi =
                static_cast<std::uint32_t>(br.read(16));
            storeLe(out.data() + 4 * i, hi << 16, 4);
            ++i;
            break;
          }
          case kTwoHalfSigned8: {
            const std::uint16_t lo = static_cast<std::uint16_t>(
                signExtend(br.read(8), 8));
            const std::uint16_t hi = static_cast<std::uint16_t>(
                signExtend(br.read(8), 8));
            storeLe(out.data() + 4 * i,
                    (static_cast<std::uint32_t>(hi) << 16) | lo, 4);
            ++i;
            break;
          }
          case kRepeatedByte: {
            const std::uint32_t b =
                static_cast<std::uint32_t>(br.read(8));
            storeLe(out.data() + 4 * i,
                    b | (b << 8) | (b << 16) | (b << 24), 4);
            ++i;
            break;
          }
          case kUncompressed: {
            storeLe(out.data() + 4 * i, br.read(32), 4);
            ++i;
            break;
          }
          default:
            latte_panic("bad FPC prefix");
        }
    }
}

} // namespace latte
