/**
 * @file
 * Runtime-dispatched compression kernel backends. Each backend is a
 * descriptor naming an ISA tier and the three hot probe kernels (BDI
 * layout scan, FPC word classifier, SC Huffman length lookup); the
 * scalar backend is always compiled and every accelerated backend is
 * pinned bit-identical to it, so switching backends can never change a
 * simulation result — only how fast probes run.
 *
 * Dispatch is process-wide: one atomic pointer, resolved lazily on
 * first use to the best ISA the host supports (overridable with the
 * LATTE_COMPRESS_BACKEND environment variable or --compress-backend).
 * A future ISA-L/AVX-512 backend is one more table row — callers go
 * through the descriptor and never name an ISA directly.
 */

#ifndef LATTE_COMPRESS_BACKEND_HH
#define LATTE_COMPRESS_BACKEND_HH

#include <span>
#include <string>
#include <string_view>

#include "compress/simd/kernels.hh"

namespace latte
{

/** Instruction-set tier a backend's kernels are compiled for. */
enum class IsaLevel : std::uint8_t
{
    Scalar = 0,
    Sse4,
    Avx2,
};

/** One row of the kernel dispatch table. */
struct CompressorBackend
{
    const char *name;             //!< CLI / env / metadata identifier
    IsaLevel isa;                 //!< host support requirement
    simd::BdiScanFn bdiScan;
    simd::FpcCountBitsFn fpcCountBits;
    simd::ScLineBitsFn scLineBits;
};

/** Every compiled-in backend, scalar first, fastest last. */
std::span<const CompressorBackend> compressorBackends();

/** True if the host CPU can execute @p backend's kernels. */
bool compressorBackendSupported(const CompressorBackend &backend);

/**
 * Look up a backend by name; "auto" (or empty) picks the fastest
 * supported one. Returns nullptr for unknown or unsupported names,
 * with a human-readable reason in @p error when provided.
 */
const CompressorBackend *resolveCompressorBackend(std::string_view name,
                                                  std::string *error);

/**
 * The backend every compressor probe dispatches through. Initialised
 * lazily: LATTE_COMPRESS_BACKEND if set and valid (invalid values warn
 * and fall back), otherwise the fastest supported backend.
 */
const CompressorBackend &activeCompressorBackend();

/** Install @p backend process-wide (--compress-backend, tests). */
void setCompressorBackend(const CompressorBackend &backend);

} // namespace latte

#endif // LATTE_COMPRESS_BACKEND_HH
