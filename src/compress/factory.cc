#include "factory.hh"

#include "bdi.hh"
#include "bpc.hh"
#include "common/logging.hh"
#include "cpack.hh"
#include "fpc.hh"
#include "sc.hh"

namespace latte
{

std::unique_ptr<Compressor>
makeCompressor(CompressorId id, const CompressorTimings &timings,
               const LatteParams &params)
{
    switch (id) {
      case CompressorId::Bdi:
        return std::make_unique<BdiCompressor>(timings);
      case CompressorId::Fpc:
        return std::make_unique<FpcCompressor>(timings);
      case CompressorId::CpackZ:
        return std::make_unique<CpackCompressor>(timings);
      case CompressorId::Bpc:
        return std::make_unique<BpcCompressor>(timings);
      case CompressorId::Sc:
        return std::make_unique<ScCompressor>(timings, params);
      case CompressorId::None:
        break;
    }
    latte_panic("no engine for compressor id {}", static_cast<int>(id));
}

const std::vector<CompressorId> &
allCompressorIds()
{
    static const std::vector<CompressorId> ids = {
        CompressorId::Bdi, CompressorId::Fpc, CompressorId::CpackZ,
        CompressorId::Bpc, CompressorId::Sc,
    };
    return ids;
}

} // namespace latte
