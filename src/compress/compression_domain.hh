/**
 * @file
 * The level-generic core of a compressed cache: an expanded tag array
 * (tagFactor x the baseline tags), sub-block allocation of compressed
 * payloads, replacement state, and the per-algorithm decompression
 * queues of Eq. (3). The L1 (CompressedCache) and the L2 (L2Cache with
 * --l2-compress) both instantiate one of these with their own
 * CacheLevelConfig; everything level-specific — counters, traces, MSHRs,
 * the policy hookup — stays with the owner.
 */

#ifndef LATTE_COMPRESS_COMPRESSION_DOMAIN_HH
#define LATTE_COMPRESS_COMPRESSION_DOMAIN_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "compressor.hh"
#include "decomp_queue.hh"

namespace latte
{

/** Tag array + sub-block accounting + decompression queues of one level. */
class CompressionDomain
{
  public:
    struct TagEntry
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;          //!< LRU: touch, FIFO: fill
        std::uint8_t rrpv = 3;               //!< SRRIP re-reference bits
        CompressorId mode = CompressorId::None;
        std::uint8_t encoding = 0;
        std::uint32_t sizeBits = 0;
        std::uint32_t generation = 0;
        std::uint8_t subBlocks = 0;
        std::vector<std::uint8_t> payload;   //!< verifyRoundTrip only
    };

    /**
     * @p queue_parent owns the decompression-queue stats ("decomp_bdi"
     * etc. appear directly under it, exactly where the pre-extraction
     * CompressedCache registered them). @p capacity_benefit false makes
     * every compressed line occupy a full line's worth of sub-blocks
     * (the Figure 4 study).
     */
    CompressionDomain(const CacheLevelConfig &level,
                      GpuConfig::ReplPolicy repl, bool capacity_benefit,
                      StatGroup *queue_parent);

    // --- Geometry ---
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t tagsPerSet() const { return tagsPerSet_; }
    std::uint32_t subBlocksPerSet() const { return subBlocksPerSet_; }
    std::uint32_t setIndexOf(Addr addr) const;
    Addr tagOf(Addr line_addr) const;

    // --- Lookup / replacement ---
    TagEntry *setBase(std::uint32_t set_index);
    const TagEntry *setBase(std::uint32_t set_index) const;
    TagEntry *findLine(Addr line_addr);
    TagEntry *pickVictim(std::uint32_t set_index);
    void touchOnHit(TagEntry &entry);
    void touchOnFill(TagEntry &entry);

    /** Sub-blocks a line with @p meta occupies under this geometry. */
    std::uint8_t subBlocksFor(const LineMeta &meta) const;

    /** Invalidate @p entry and release its sub-blocks in @p set_index. */
    void releaseLine(TagEntry &entry, std::uint32_t set_index);

    /**
     * Evict until a tag and @p need sub-blocks are free in
     * @p set_index, then return the slot to fill. @p on_evict observes
     * every released victim (its tag/mode fields stay readable) so the
     * owner can count and trace evictions.
     */
    template <typename EvictObserver>
    TagEntry &
    allocateSlot(std::uint32_t set_index, std::uint8_t need,
                 EvictObserver &&on_evict)
    {
        TagEntry *ways = setBase(set_index);
        TagEntry *slot = nullptr;
        for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
            if (!ways[w].valid) {
                slot = &ways[w];
                break;
            }
        }
        while (!slot ||
               setUsedSubBlocks_[set_index] + need > subBlocksPerSet_) {
            TagEntry *victim = pickVictim(set_index);
            releaseLine(*victim, set_index);
            on_evict(*victim);
            if (!slot)
                slot = victim;
        }
        return *slot;
    }

    /** Fill @p slot with @p meta's line (payload stays owner business). */
    void commitFill(TagEntry &slot, Addr tag, const LineMeta &meta,
                    std::uint8_t need, std::uint32_t set_index);

    // --- Occupancy introspection ---
    std::uint64_t usedSubBlocks() const;
    std::uint32_t usedSubBlocksInSet(std::uint32_t set_index) const;
    std::uint32_t
    usedSubBlocksCounter(std::uint32_t set_index) const
    {
        return setUsedSubBlocks_[set_index];
    }
    std::uint64_t validLines() const;
    /** Sum of the *uncompressed* size of all valid lines. */
    std::uint64_t
    effectiveCapacityBytes() const
    {
        return validLines() * level_.lineBytes;
    }

    /** Decompression queue for @p mode (never None). */
    DecompressionQueue &queueFor(CompressorId mode);
    const DecompressionQueue &queueFor(CompressorId mode) const;

    /**
     * Invalidate SC lines not encoded with @p current_generation.
     * @return the number of lines dropped.
     */
    std::uint64_t invalidateScGeneration(std::uint32_t current_generation);

    /**
     * Drop compressed lines left in the sampling sets (set % stride <
     * n_modes) that are neither uncompressed nor in @p keep mode.
     */
    void invalidateSampleMismatch(std::uint32_t stride,
                                  std::uint32_t n_modes, CompressorId keep);

    /** Drop every line and drain every queue (between kernels / runs). */
    void invalidateAll();

  private:
    const CacheLevelConfig &level_;
    GpuConfig::ReplPolicy repl_;
    bool capacityBenefit_;

    std::uint32_t numSets_;
    std::uint32_t tagsPerSet_;
    std::uint32_t subBlocksPerSet_;
    std::vector<TagEntry> tags_;
    /** Per-set allocated sub-blocks, maintained on insert/release. */
    std::vector<std::uint32_t> setUsedSubBlocks_;
    std::uint64_t lruClock_ = 0;

    DecompressionQueue bdiQueue_;
    DecompressionQueue scQueue_;
    DecompressionQueue bpcQueue_;
    DecompressionQueue fpcQueue_;
    DecompressionQueue cpackQueue_;
};

} // namespace latte

#endif // LATTE_COMPRESS_COMPRESSION_DOMAIN_HH
