#include "sc.hh"

#include <algorithm>

#include "backend.hh"
#include "common/logging.hh"

namespace latte
{

ValueFrequencyTable::ValueFrequencyTable(std::uint32_t entries,
                                         std::uint32_t counter_bits)
    : capacity_(entries),
      counterMax_((1u << counter_bits) - 1)
{
    latte_assert(entries > 0 && counter_bits > 0 && counter_bits <= 31);
}

void
ValueFrequencyTable::record(std::uint32_t value)
{
    ++samples_;
    const auto it = counts_.find(value);
    if (it != counts_.end()) {
        if (it->second < counterMax_)
            ++it->second;
        return;
    }
    if (counts_.size() < capacity_) {
        counts_.emplace(value, 1);
    } else {
        // A hardware VFT drops values once full; the table is rebuilt
        // every period so the staleness window is bounded.
        ++misses_;
    }
}

void
ValueFrequencyTable::recordLine(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() % 4 == 0);
    for (std::size_t off = 0; off < line.size(); off += 4)
        record(static_cast<std::uint32_t>(loadLe(line.data() + off, 4)));
}

void
ValueFrequencyTable::clear()
{
    counts_.clear();
    misses_ = 0;
    samples_ = 0;
}

std::vector<HuffmanCode::Freq>
ValueFrequencyTable::snapshot() const
{
    std::vector<HuffmanCode::Freq> freqs;
    freqs.reserve(counts_.size());
    for (const auto &[value, count] : counts_)
        freqs.emplace_back(value, count);
    // Deterministic order regardless of hash iteration.
    std::sort(freqs.begin(), freqs.end());
    return freqs;
}

ScCompressor::ScCompressor(const CompressorTimings &timings,
                           const LatteParams &params)
    : vft_(params.vftEntries, params.vftCounterBits),
      compressLat_(timings.scCompress),
      decompressLat_(timings.scDecompress),
      compressNj_(timings.scCompressNj),
      decompressNj_(timings.scDecompressNj)
{}

void
ScCompressor::trainLine(std::span<const std::uint8_t> line)
{
    vft_.recordLine(line);
}

std::uint32_t
ScCompressor::rebuildCodes()
{
    const std::uint64_t escape_weight = std::max<std::uint64_t>(
        1, vft_.misses() / 4);
    codes_ = HuffmanCode::build(vft_.snapshot(), escape_weight);
    vft_.clear();
    return ++generation_;
}

double
ScCompressor::codeDivergence() const
{
    if (!codes_.valid())
        return 1.0;
    auto freqs = vft_.snapshot();
    if (freqs.empty())
        return 0.0;
    std::sort(freqs.begin(), freqs.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    const std::size_t top = std::min<std::size_t>(freqs.size(), 64);
    std::size_t missing = 0;
    for (std::size_t i = 0; i < top; ++i) {
        if (!codes_.hasCode(freqs[i].first))
            ++missing;
    }
    return static_cast<double>(missing) / static_cast<double>(top);
}

void
ScCompressor::probeLines(std::span<const std::uint8_t> lines,
                         std::span<LineMeta> out)
{
    latte_assert(lines.size() == out.size() * kLineBytes);

    if (!codes_.valid()) {
        for (LineMeta &meta : out)
            meta = makeProbedMeta(CompressorId::Sc, 0, kLineBits,
                                  generation_);
        return;
    }

    // No per-word early exit in the kernel: the running size is
    // monotone, so the total crosses kLineBits iff compress()'s capped
    // stream does, and both sides then report the same raw line. The
    // length-table view is borrowed once for the whole batch — the
    // code book cannot change mid-call.
    const simd::ScLineBitsFn lineBits =
        activeCompressorBackend().scLineBits;
    const HuffmanCode::LengthView view = codes_.lengthView();
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t bits =
            lineBits(lines.data() + i * kLineBytes, view);
        out[i] = makeProbedMeta(
            CompressorId::Sc, 0,
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(bits, kLineBits)),
            generation_);
    }
}

CompressedLine
ScCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);
    if (!codes_.valid()) {
        auto out = makeRawLine(CompressorId::Sc, line);
        out.generation = generation_;
        return out;
    }

    BitWriter bw;
    for (unsigned off = 0; off < kLineBytes; off += 4) {
        // Bail before the stream can outgrow the writer's inline
        // capacity — a stream at >= kLineBits falls back to raw anyway.
        if (bw.bitSize() >= kLineBits)
            break;
        codes_.encode(
            static_cast<std::uint32_t>(loadLe(line.data() + off, 4)), bw);
    }

    if (bw.bitSize() >= kLineBits) {
        auto out = makeRawLine(CompressorId::Sc, line);
        out.generation = generation_;
        return out;
    }

    CompressedLine out;
    out.algo = CompressorId::Sc;
    out.encoding = 0;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload.assign(bw.bytes());
    out.generation = generation_;
    return out;
}

void
ScCompressor::decompressInto(const CompressedLine &line,
                             std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::Sc);
    latte_assert(out.size() == kLineBytes);
    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }

    latte_assert(line.generation == generation_,
                 "decoding an SC line from a retired code generation");

    BitReader br(line.payload, line.sizeBits);
    for (unsigned off = 0; off < kLineBytes; off += 4)
        storeLe(out.data() + off, codes_.decode(br), 4);
}

} // namespace latte
