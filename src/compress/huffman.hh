/**
 * @file
 * Canonical Huffman coding over 32-bit symbols, used by the statistical
 * compressor (SC). Supports an escape symbol for values outside the
 * code table.
 */

#ifndef LATTE_COMPRESS_HUFFMAN_HH
#define LATTE_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bit_utils.hh"

namespace latte
{

/** An immutable Huffman code book with escape support. */
class HuffmanCode
{
  public:
    /** (symbol value, weight) training pair. */
    using Freq = std::pair<std::uint32_t, std::uint64_t>;

    HuffmanCode() = default;

    /**
     * Build a code book over @p freqs plus an escape symbol of weight
     * @p escape_weight (>= 1). Zero-weight symbols are dropped.
     */
    static HuffmanCode build(const std::vector<Freq> &freqs,
                             std::uint64_t escape_weight);

    /** True once build() populated the book. */
    bool valid() const { return !nodes_.empty(); }

    /** Number of coded symbols, not counting the escape. */
    std::size_t numSymbols() const { return codes_.size(); }

    /**
     * Emit the code for @p value if it is in the book; otherwise emit the
     * escape prefix followed by the raw 32-bit value.
     * @return true if the value was in the book.
     */
    bool encode(std::uint32_t value, BitWriter &bw) const;

    /** Bits the encoder would emit for @p value. */
    unsigned encodedBits(std::uint32_t value) const;

    /** True if @p value has a dedicated code (no escape needed). */
    bool
    hasCode(std::uint32_t value) const
    {
        return codes_.contains(value);
    }

    /** Decode one symbol; reads the raw value itself after an escape. */
    std::uint32_t decode(BitReader &br) const;

    /** Length in bits of the longest code (diagnostics). */
    unsigned maxCodeBits() const { return maxBits_; }

  private:
    struct CodeWord
    {
        std::uint64_t bits = 0;
        unsigned length = 0;
    };

    struct Node
    {
        int left = -1;        //!< child on bit 0
        int right = -1;       //!< child on bit 1
        bool leaf = false;
        bool escape = false;
        std::uint32_t symbol = 0;
    };

    void insertCode(const CodeWord &code, bool escape,
                    std::uint32_t symbol);

    std::unordered_map<std::uint32_t, CodeWord> codes_;
    CodeWord escapeCode_;
    std::vector<Node> nodes_;   //!< decode trie; node 0 is the root
    unsigned maxBits_ = 0;
};

} // namespace latte

#endif // LATTE_COMPRESS_HUFFMAN_HH
