/**
 * @file
 * Canonical Huffman coding over 32-bit symbols, used by the statistical
 * compressor (SC). Supports an escape symbol for values outside the
 * code table.
 */

#ifndef LATTE_COMPRESS_HUFFMAN_HH
#define LATTE_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bit_utils.hh"

namespace latte
{

/** An immutable Huffman code book with escape support. */
class HuffmanCode
{
  public:
    /** (symbol value, weight) training pair. */
    using Freq = std::pair<std::uint32_t, std::uint64_t>;

    /** Length-only slot for encodedBitsFast(); bits == 0 marks empty. */
    struct LenSlot
    {
        std::uint32_t symbol = 0;
        std::uint32_t bits = 0;
    };

    /**
     * A borrowed, read-only view of the length-lookup state, in the
     * exact layout encodedBitsFast() walks: the open-addressing LenSlot
     * table, the membership filter bitmap and the escape cost. The SIMD
     * probe kernels take this view so they can batch the hash + table
     * walk without friending their way into the code book; it stays
     * valid until the next build(). An invalid/empty book yields
     * empty == true, where every value costs escapeBits.
     */
    struct LengthView
    {
        const LenSlot *slots = nullptr;
        std::uint32_t slotMask = 0;
        const std::uint64_t *filter = nullptr;
        std::uint32_t filterMask = 0;
        std::uint32_t escapeBits = 0; //!< escape prefix + 32 raw bits
        bool empty = true;
    };

    HuffmanCode() = default;

    /**
     * Build a code book over @p freqs plus an escape symbol of weight
     * @p escape_weight (>= 1). Zero-weight symbols are dropped.
     */
    static HuffmanCode build(const std::vector<Freq> &freqs,
                             std::uint64_t escape_weight);

    /** True once build() populated the book. */
    bool valid() const { return !nodes_.empty(); }

    /** Number of coded symbols, not counting the escape. */
    std::size_t numSymbols() const { return codes_.size(); }

    /**
     * Emit the code for @p value if it is in the book; otherwise emit the
     * escape prefix followed by the raw 32-bit value. @p Sink is
     * BitWriter (materialise) or BitCounter (size-only probe).
     * @return true if the value was in the book.
     */
    template <typename Sink>
    bool
    encode(std::uint32_t value, Sink &sink) const
    {
        latte_assert(valid(), "encode on an empty code book");
        // rbits holds the code bit-reversed so one word-at-a-time write
        // emits it MSB-first on the LSB-first wire.
        if (const Slot *slot = findFast(value)) {
            sink.write(slot->rbits, slot->length);
            return true;
        }
        sink.write(escapeCode_.rbits, escapeCode_.length);
        sink.write(value, 32);
        return false;
    }

    /** Bits the encoder would emit for @p value. */
    unsigned encodedBits(std::uint32_t value) const;

    /**
     * Hot-path variant of encodedBits() backed by a compact flat table
     * (8-byte slots, half the cache footprint of the encode table) —
     * the whole cost of an SC size-only probe is this lookup.
     */
    unsigned
    encodedBitsFast(std::uint32_t value) const
    {
        if (lens_.empty())
            return escapeCode_.length + 32;
        const std::uint32_t hash = value * 0x9e3779b9u;
        std::size_t i = hash & lenMask_;
        // First slot load issues in parallel with the filter load — the
        // two addresses are independent, so a hit pays one load latency
        // instead of two.
        LenSlot slot = lens_[i];
        if (!mayHaveCode(hash))
            return escapeCode_.length + 32;
        while (slot.bits != 0) {
            if (slot.symbol == value)
                return slot.bits;
            i = (i + 1) & lenMask_;
            slot = lens_[i];
        }
        return escapeCode_.length + 32;
    }

    /** Borrow the encodedBitsFast() state for batched/SIMD probing. */
    LengthView
    lengthView() const
    {
        LengthView view;
        view.escapeBits = escapeCode_.length + 32;
        view.empty = lens_.empty();
        if (!view.empty) {
            view.slots = lens_.data();
            view.slotMask = static_cast<std::uint32_t>(lenMask_);
            view.filter = filter_.data();
            view.filterMask = static_cast<std::uint32_t>(filterMask_);
        }
        return view;
    }

    /** True if @p value has a dedicated code (no escape needed). */
    bool
    hasCode(std::uint32_t value) const
    {
        return codes_.contains(value);
    }

    /** Decode one symbol; reads the raw value itself after an escape. */
    std::uint32_t decode(BitReader &br) const;

    /** Length in bits of the longest code (diagnostics). */
    unsigned maxCodeBits() const { return maxBits_; }

  private:
    struct CodeWord
    {
        std::uint64_t bits = 0;   //!< canonical code, MSB-first
        std::uint64_t rbits = 0;  //!< same code bit-reversed (wire order)
        unsigned length = 0;
    };

    struct Node
    {
        int left = -1;        //!< child on bit 0
        int right = -1;       //!< child on bit 1
        bool leaf = false;
        bool escape = false;
        std::uint32_t symbol = 0;
    };

    /**
     * One entry of the open-addressing symbol->code table that backs
     * encode(). 16 bytes so four slots share a cache line; length == 0
     * marks an empty slot (no real code is shorter than one bit).
     */
    struct Slot
    {
        std::uint64_t rbits = 0;
        std::uint32_t symbol = 0;
        std::uint32_t length = 0;
    };

    /** Membership pre-check; false means "definitely not in the book". */
    bool
    mayHaveCode(std::uint32_t hash) const
    {
        const std::size_t bit = hash & filterMask_;
        return (filter_[bit / 64] >> (bit % 64)) & 1;
    }

    /** Flat-table lookup; nullptr means "escape this value". */
    const Slot *
    findFast(std::uint32_t value) const
    {
        if (fast_.empty())
            return nullptr;
        // Fibonacci mix spreads clustered values (small ints, pointers).
        const std::uint32_t hash = value * 0x9e3779b9u;
        if (!mayHaveCode(hash))
            return nullptr;
        std::size_t i = hash & fastMask_;
        while (fast_[i].length != 0) {
            if (fast_[i].symbol == value)
                return &fast_[i];
            i = (i + 1) & fastMask_;
        }
        return nullptr;
    }

    void insertCode(const CodeWord &code, bool escape,
                    std::uint32_t symbol);
    void buildFastTable();

    std::unordered_map<std::uint32_t, CodeWord> codes_;
    CodeWord escapeCode_;
    std::vector<Slot> fast_;    //!< open-addressing view of codes_
    std::size_t fastMask_ = 0;
    std::vector<LenSlot> lens_; //!< length-only view for size probes
    std::size_t lenMask_ = 0;
    std::vector<std::uint64_t> filter_; //!< membership bitmap
    std::size_t filterMask_ = 0;
    std::vector<Node> nodes_;   //!< decode trie; node 0 is the root
    unsigned maxBits_ = 0;
};

} // namespace latte

#endif // LATTE_COMPRESS_HUFFMAN_HH
