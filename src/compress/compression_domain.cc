#include "compression_domain.hh"

#include <algorithm>

#include "common/bit_utils.hh"

namespace latte
{

CompressionDomain::CompressionDomain(const CacheLevelConfig &level,
                                     GpuConfig::ReplPolicy repl,
                                     bool capacity_benefit,
                                     StatGroup *queue_parent)
    : level_(level), repl_(repl), capacityBenefit_(capacity_benefit),
      numSets_(level.numSets()),
      tagsPerSet_(level.assoc * level.tagFactor),
      subBlocksPerSet_(level.assoc * (level.lineBytes / level.subBlockBytes)),
      tags_(static_cast<std::size_t>(numSets_) * tagsPerSet_),
      setUsedSubBlocks_(numSets_, 0),
      bdiQueue_("decomp_bdi", queue_parent),
      scQueue_("decomp_sc", queue_parent),
      bpcQueue_("decomp_bpc", queue_parent),
      fpcQueue_("decomp_fpc", queue_parent),
      cpackQueue_("decomp_cpack", queue_parent)
{
    latte_assert(numSets_ > 0);
    latte_assert(level.lineBytes == kLineBytes);
}

std::uint32_t
CompressionDomain::setIndexOf(Addr addr) const
{
    // Modulo rather than mask: set counts are not always powers of two
    // (96 sets in the 48 KB L1 of Section V-E, 768 sets in the L2).
    return static_cast<std::uint32_t>(
        (addr / level_.lineBytes) % numSets_);
}

Addr
CompressionDomain::tagOf(Addr line_addr) const
{
    return line_addr / level_.lineBytes / numSets_;
}

CompressionDomain::TagEntry *
CompressionDomain::setBase(std::uint32_t set_index)
{
    return &tags_[static_cast<std::size_t>(set_index) * tagsPerSet_];
}

const CompressionDomain::TagEntry *
CompressionDomain::setBase(std::uint32_t set_index) const
{
    return &tags_[static_cast<std::size_t>(set_index) * tagsPerSet_];
}

CompressionDomain::TagEntry *
CompressionDomain::findLine(Addr line_addr)
{
    TagEntry *ways = setBase(setIndexOf(line_addr));
    const Addr tag = tagOf(line_addr);
    for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return &ways[w];
    }
    return nullptr;
}

void
CompressionDomain::touchOnHit(TagEntry &entry)
{
    switch (repl_) {
      case GpuConfig::ReplPolicy::LRU:
        entry.lruStamp = ++lruClock_;
        break;
      case GpuConfig::ReplPolicy::FIFO:
        break; // insertion order only
      case GpuConfig::ReplPolicy::SRRIP:
        entry.rrpv = 0;
        break;
    }
}

void
CompressionDomain::touchOnFill(TagEntry &entry)
{
    entry.lruStamp = ++lruClock_;
    // SRRIP inserts with a "long" (but not distant) prediction.
    entry.rrpv = 2;
}

CompressionDomain::TagEntry *
CompressionDomain::pickVictim(std::uint32_t set_index)
{
    TagEntry *ways = setBase(set_index);

    if (repl_ == GpuConfig::ReplPolicy::SRRIP) {
        // Find an RRPV-3 line, aging the set until one exists.
        for (;;) {
            for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
                if (ways[w].valid && ways[w].rrpv >= 3)
                    return &ways[w];
            }
            for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
                if (ways[w].valid && ways[w].rrpv < 3)
                    ++ways[w].rrpv;
            }
        }
    }

    // LRU and FIFO: smallest stamp (touch order vs fill order).
    TagEntry *victim = nullptr;
    for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
        if (ways[w].valid &&
            (!victim || ways[w].lruStamp < victim->lruStamp)) {
            victim = &ways[w];
        }
    }
    latte_assert(victim, "no victim but set is full");
    return victim;
}

std::uint8_t
CompressionDomain::subBlocksFor(const LineMeta &meta) const
{
    const std::uint32_t full = level_.lineBytes / level_.subBlockBytes;
    if (!capacityBenefit_ || !meta.compressed() ||
        meta.encoding == kRawEncoding) {
        return static_cast<std::uint8_t>(full);
    }
    const auto blocks = static_cast<std::uint32_t>(
        divCeil(std::max<std::uint32_t>(meta.sizeBytes(), 1),
                level_.subBlockBytes));
    return static_cast<std::uint8_t>(std::min(blocks, full));
}

void
CompressionDomain::releaseLine(TagEntry &entry, std::uint32_t set_index)
{
    latte_assert(entry.valid);
    latte_assert(setUsedSubBlocks_[set_index] >= entry.subBlocks);
    setUsedSubBlocks_[set_index] -= entry.subBlocks;
    entry.valid = false;
    entry.payload.clear();
}

void
CompressionDomain::commitFill(TagEntry &slot, Addr tag,
                              const LineMeta &meta, std::uint8_t need,
                              std::uint32_t set_index)
{
    slot.valid = true;
    slot.tag = tag;
    touchOnFill(slot);
    slot.mode = meta.algo;
    slot.encoding = meta.encoding;
    slot.sizeBits = meta.sizeBits;
    slot.generation = meta.generation;
    slot.subBlocks = need;
    setUsedSubBlocks_[set_index] += need;
}

std::uint64_t
CompressionDomain::usedSubBlocks() const
{
    std::uint64_t used = 0;
    for (const auto &entry : tags_) {
        if (entry.valid)
            used += entry.subBlocks;
    }
    return used;
}

std::uint32_t
CompressionDomain::usedSubBlocksInSet(std::uint32_t set_index) const
{
    const TagEntry *ways = setBase(set_index);
    std::uint32_t used = 0;
    for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
        if (ways[w].valid)
            used += ways[w].subBlocks;
    }
    return used;
}

std::uint64_t
CompressionDomain::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &entry : tags_) {
        if (entry.valid)
            ++n;
    }
    return n;
}

DecompressionQueue &
CompressionDomain::queueFor(CompressorId mode)
{
    switch (mode) {
      case CompressorId::Bdi: return bdiQueue_;
      case CompressorId::Sc: return scQueue_;
      case CompressorId::Bpc: return bpcQueue_;
      case CompressorId::Fpc: return fpcQueue_;
      case CompressorId::CpackZ: return cpackQueue_;
      case CompressorId::None: break;
    }
    latte_panic("no decompression queue for {}", compressorName(mode));
}

const DecompressionQueue &
CompressionDomain::queueFor(CompressorId mode) const
{
    return const_cast<CompressionDomain *>(this)->queueFor(mode);
}

std::uint64_t
CompressionDomain::invalidateScGeneration(std::uint32_t current_generation)
{
    std::uint64_t dropped = 0;
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        TagEntry *ways = setBase(set);
        for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
            TagEntry &entry = ways[w];
            if (entry.valid && entry.mode == CompressorId::Sc &&
                entry.generation != current_generation) {
                releaseLine(entry, set);
                ++dropped;
            }
        }
    }
    return dropped;
}

void
CompressionDomain::invalidateSampleMismatch(std::uint32_t stride,
                                            std::uint32_t n_modes,
                                            CompressorId keep)
{
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        if (set % stride >= n_modes)
            continue;
        TagEntry *ways = setBase(set);
        for (std::uint32_t w = 0; w < tagsPerSet_; ++w) {
            TagEntry &entry = ways[w];
            if (entry.valid && entry.mode != CompressorId::None &&
                entry.mode != keep) {
                releaseLine(entry, set);
            }
        }
    }
}

void
CompressionDomain::invalidateAll()
{
    for (auto &entry : tags_) {
        entry.valid = false;
        entry.payload.clear();
    }
    std::fill(setUsedSubBlocks_.begin(), setUsedSubBlocks_.end(), 0);
    bdiQueue_.clear();
    scQueue_.clear();
    bpcQueue_.clear();
    fpcQueue_.clear();
    cpackQueue_.clear();
}

} // namespace latte
