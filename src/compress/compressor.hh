/**
 * @file
 * Abstract interface for cache-line compression algorithms. All five
 * algorithms studied in the paper (Table I) implement this interface with
 * bit-exact, round-trippable encoders so compression ratios are measured
 * on real bytes rather than assumed.
 *
 * The interface splits size determination from payload materialisation
 * (the same split Pekhimenko et al. make in hardware): probe() computes
 * the exact encoded bit count without building the bit stream, and
 * compress() additionally materialises the payload. Most simulated fills
 * only ever need the size — admission checks, sampler votes, sub-block
 * accounting — so the cache calls probe() on its hot path and reserves
 * compress() for lines whose bytes must actually round-trip.
 */

#ifndef LATTE_COMPRESS_COMPRESSOR_HH
#define LATTE_COMPRESS_COMPRESSOR_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bit_utils.hh"
#include "common/compress_id.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace latte
{

/** Uncompressed cache-line size used throughout the paper. */
constexpr std::uint32_t kLineBytes = 128;
constexpr std::uint32_t kLineBits = kLineBytes * 8;

/**
 * Size-only description of one compressed line: everything the cache
 * needs for admission, replacement and sub-block accounting, without the
 * encoded payload. probe() returns exactly this; CompressedLine extends
 * it with the bit stream.
 */
struct LineMeta
{
    CompressorId algo = CompressorId::None;
    /** Algorithm-specific encoding id (e.g. BDI's 4-bit compression_enc). */
    std::uint8_t encoding = 0;
    /** Exact encoded size in bits, including per-line metadata. */
    std::uint32_t sizeBits = kLineBits;
    /**
     * Compressor-state generation the line was encoded under. Only SC uses
     * this: lines encoded with a retired Huffman code generation can no
     * longer be decoded and must be invalidated (Section IV-C2).
     */
    std::uint32_t generation = 0;

    std::uint32_t
    sizeBytes() const
    {
        return static_cast<std::uint32_t>(divCeil(sizeBits, 8));
    }

    bool compressed() const { return algo != CompressorId::None; }

    /** Compression ratio vs. the 128 B uncompressed line. */
    double
    ratio() const
    {
        return static_cast<double>(kLineBits) /
               static_cast<double>(sizeBits == 0 ? 1 : sizeBits);
    }
};

/**
 * Fixed-capacity inline byte buffer for encoded payloads. A cache line
 * is 128 B and every encoder falls back to raw at kLineBits, so the
 * worst payload is the raw line itself; 160 B of headroom keeps the
 * whole CompressedLine allocation-free.
 */
class InlineBytes
{
  public:
    static constexpr std::size_t kCapacity = 160;

    InlineBytes() = default;

    void
    assign(std::span<const std::uint8_t> bytes)
    {
        latte_assert(bytes.size() <= kCapacity,
                     "payload overflows inline capacity");
        std::memcpy(data_.data(), bytes.data(), bytes.size());
        size_ = bytes.size();
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const std::uint8_t *data() const { return data_.data(); }
    std::uint8_t *data() { return data_.data(); }
    const std::uint8_t *begin() const { return data_.data(); }
    const std::uint8_t *end() const { return data_.data() + size_; }
    std::uint8_t operator[](std::size_t i) const { return data_[i]; }

    std::span<const std::uint8_t> span() const { return {data(), size_}; }
    operator std::span<const std::uint8_t>() const { return span(); }

    bool
    operator==(const InlineBytes &other) const
    {
        return size_ == other.size_ &&
               std::memcmp(data_.data(), other.data_.data(), size_) == 0;
    }

  private:
    std::array<std::uint8_t, kCapacity> data_{};
    std::size_t size_ = 0;
};

/**
 * The result of compressing one cache line: the exact encoded bit count
 * plus the payload needed to reverse the encoding. Payload storage is
 * inline — copying a CompressedLine never touches the heap.
 */
struct CompressedLine : LineMeta
{
    /** Encoded payload (LSB-first bit stream packed into bytes). */
    InlineBytes payload;

    /** The size-only view of this line. */
    const LineMeta &meta() const { return *this; }
};

/** Abstract cache-line compressor. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    virtual CompressorId id() const = 0;
    virtual std::string name() const = 0;

    /**
     * Compress one 128 B line. Implementations must fall back to a raw
     * encoding (sizeBits == kLineBits) when the algorithm would expand
     * the line.
     */
    virtual CompressedLine compress(std::span<const std::uint8_t> line) = 0;

    /**
     * Size-only fast path over a batch: for each of the out.size()
     * lines concatenated in @p lines (exactly kLineBytes apiece, no
     * alignment requirement beyond what the caller's buffer gives),
     * the exact LineMeta compress() would produce — same algo,
     * encoding, sizeBits and generation — without materialising any
     * bit stream. Batching is the primitive: it amortises the virtual
     * dispatch and the backend's SIMD setup across the whole set, so
     * hot callers (the compressed L1 fill path, the mode-provider
     * sampler, the throughput bench) should hand over every line they
     * have rather than loop over probe(). Results are independent per
     * line and bit-identical across backends and batch sizes. Pinned
     * to compress() by the ProbeMatchesCompress property test.
     *
     * @pre lines.size() == out.size() * kLineBytes.
     */
    virtual void probeLines(std::span<const std::uint8_t> lines,
                            std::span<LineMeta> out) = 0;

    /**
     * Single-line convenience over probeLines() — source-compatible
     * with the pre-batching interface for external callers; hot paths
     * should batch.
     */
    LineMeta
    probe(std::span<const std::uint8_t> line)
    {
        LineMeta meta;
        probeLines(line, {&meta, 1});
        return meta;
    }

    /**
     * Reverse compress() into caller-provided storage (exactly
     * kLineBytes). @pre line.algo == id() and, for stateful algorithms,
     * line.generation is still decodable.
     */
    virtual void decompressInto(const CompressedLine &line,
                                std::span<std::uint8_t> out) const = 0;

    /** Convenience wrapper allocating the output vector. */
    std::vector<std::uint8_t>
    decompress(const CompressedLine &line) const
    {
        std::vector<std::uint8_t> out(kLineBytes);
        decompressInto(line, out);
        return out;
    }

    /** Pipeline latency of the compression engine in core cycles. */
    virtual Cycles compressLatency() const = 0;

    /** Pipeline latency of the decompression engine in core cycles. */
    virtual Cycles decompressLatency() const = 0;

    /** Energy per compression event (nJ). */
    virtual double compressEnergyNj() const = 0;

    /** Energy per decompression event (nJ). */
    virtual double decompressEnergyNj() const = 0;
};

/** Produce a raw (uncompressed) encoding of @p line. */
CompressedLine makeRawLine(CompressorId id,
                           std::span<const std::uint8_t> line);

/** The LineMeta of a raw encoding (what probe() returns on fallback). */
LineMeta makeRawMeta(CompressorId id);

/**
 * The LineMeta of a probe that measured @p size_bits: the shared
 * reject-path helper. Every compressor funnels its probe results
 * through here so the raw fallback (anything at or above kLineBits)
 * can't drift between algorithms — one place owns the uncompressed
 * size and tag. @p generation is threaded through for SC.
 */
inline LineMeta
makeProbedMeta(CompressorId id, std::uint8_t encoding,
               std::uint32_t size_bits, std::uint32_t generation = 0)
{
    LineMeta meta;
    if (size_bits >= kLineBits) {
        meta = makeRawMeta(id);
    } else {
        meta.algo = id;
        meta.encoding = encoding;
        meta.sizeBits = size_bits;
    }
    meta.generation = generation;
    return meta;
}

/** Recover the bytes of a raw encoding. */
std::vector<std::uint8_t> decodeRawLine(const CompressedLine &line);

/** Recover the bytes of a raw encoding into caller storage. */
void decodeRawLineInto(const CompressedLine &line,
                       std::span<std::uint8_t> out);

/** Encoding id shared by all algorithms for the raw fallback. */
constexpr std::uint8_t kRawEncoding = 0xf;

} // namespace latte

#endif // LATTE_COMPRESS_COMPRESSOR_HH
