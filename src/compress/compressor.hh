/**
 * @file
 * Abstract interface for cache-line compression algorithms. All five
 * algorithms studied in the paper (Table I) implement this interface with
 * bit-exact, round-trippable encoders so compression ratios are measured
 * on real bytes rather than assumed.
 */

#ifndef LATTE_COMPRESS_COMPRESSOR_HH
#define LATTE_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bit_utils.hh"
#include "common/types.hh"

namespace latte
{

/** Identifier of a compression algorithm / operating mode. */
enum class CompressorId : std::uint8_t
{
    None = 0,
    Bdi,
    Fpc,
    CpackZ,
    Bpc,
    Sc,
};

/** Human-readable algorithm name. */
const char *compressorName(CompressorId id);

/** Uncompressed cache-line size used throughout the paper. */
constexpr std::uint32_t kLineBytes = 128;
constexpr std::uint32_t kLineBits = kLineBytes * 8;

/**
 * The result of compressing one cache line: the exact encoded bit count
 * plus the payload needed to reverse the encoding.
 */
struct CompressedLine
{
    CompressorId algo = CompressorId::None;
    /** Algorithm-specific encoding id (e.g. BDI's 4-bit compression_enc). */
    std::uint8_t encoding = 0;
    /** Exact encoded size in bits, including per-line metadata. */
    std::uint32_t sizeBits = kLineBits;
    /** Encoded payload (LSB-first bit stream packed into bytes). */
    std::vector<std::uint8_t> payload;
    /**
     * Compressor-state generation the line was encoded under. Only SC uses
     * this: lines encoded with a retired Huffman code generation can no
     * longer be decoded and must be invalidated (Section IV-C2).
     */
    std::uint32_t generation = 0;

    std::uint32_t
    sizeBytes() const
    {
        return static_cast<std::uint32_t>(divCeil(sizeBits, 8));
    }

    bool compressed() const { return algo != CompressorId::None; }

    /** Compression ratio vs. the 128 B uncompressed line. */
    double
    ratio() const
    {
        return static_cast<double>(kLineBits) /
               static_cast<double>(sizeBits == 0 ? 1 : sizeBits);
    }
};

/** Abstract cache-line compressor. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    virtual CompressorId id() const = 0;
    virtual std::string name() const = 0;

    /**
     * Compress one 128 B line. Implementations must fall back to a raw
     * encoding (sizeBits == kLineBits) when the algorithm would expand
     * the line.
     */
    virtual CompressedLine compress(std::span<const std::uint8_t> line) = 0;

    /**
     * Reverse compress(). @pre line.algo == id() and, for stateful
     * algorithms, line.generation is still decodable.
     */
    virtual std::vector<std::uint8_t>
    decompress(const CompressedLine &line) const = 0;

    /** Pipeline latency of the compression engine in core cycles. */
    virtual Cycles compressLatency() const = 0;

    /** Pipeline latency of the decompression engine in core cycles. */
    virtual Cycles decompressLatency() const = 0;

    /** Energy per compression event (nJ). */
    virtual double compressEnergyNj() const = 0;

    /** Energy per decompression event (nJ). */
    virtual double decompressEnergyNj() const = 0;
};

/** Produce a raw (uncompressed) encoding of @p line. */
CompressedLine makeRawLine(CompressorId id,
                           std::span<const std::uint8_t> line);

/** Recover the bytes of a raw encoding. */
std::vector<std::uint8_t> decodeRawLine(const CompressedLine &line);

/** Encoding id shared by all algorithms for the raw fallback. */
constexpr std::uint8_t kRawEncoding = 0xf;

} // namespace latte

#endif // LATTE_COMPRESS_COMPRESSOR_HH
