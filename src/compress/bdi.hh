/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012), the
 * paper's low-latency compression mode. A line is represented as one
 * arbitrary base plus per-block narrow deltas; blocks whose value is small
 * enough are stored as "immediates" (deltas from an implicit zero base),
 * selected by a per-block mask. Ten encodings are probed and the smallest
 * is kept (Section IV-C1 of the LATTE-CC paper).
 */

#ifndef LATTE_COMPRESS_BDI_HH
#define LATTE_COMPRESS_BDI_HH

#include "common/config.hh"
#include "compressor.hh"

namespace latte
{

/** One (base size, delta size) probe of the BDI family. */
struct BdiLayout
{
    std::uint8_t encoding;      //!< value of the 4-bit compression_enc
    std::uint8_t baseBytes;     //!< base width
    std::uint8_t deltaBytes;    //!< delta width (0 = all blocks repeat base)
};

/** BDI compressor/decompressor engine. */
class BdiCompressor : public Compressor
{
  public:
    explicit BdiCompressor(const CompressorTimings &timings = {});

    CompressorId id() const override { return CompressorId::Bdi; }
    std::string name() const override { return "BDI"; }

    CompressedLine compress(std::span<const std::uint8_t> line) override;
    void probeLines(std::span<const std::uint8_t> lines,
                    std::span<LineMeta> out) override;
    void decompressInto(const CompressedLine &line,
                        std::span<std::uint8_t> out) const override;

    Cycles compressLatency() const override { return compressLat_; }
    Cycles decompressLatency() const override { return decompressLat_; }
    double compressEnergyNj() const override { return compressNj_; }
    double decompressEnergyNj() const override { return decompressNj_; }

    /** Encoding ids (stored in the 4-bit compression_enc tag field). */
    static constexpr std::uint8_t kEncZeros = 0x0;
    static constexpr std::uint8_t kEncRep8 = 0x1;
    static constexpr std::uint8_t kEncB8D1 = 0x2;
    static constexpr std::uint8_t kEncB8D2 = 0x3;
    static constexpr std::uint8_t kEncB8D4 = 0x4;
    static constexpr std::uint8_t kEncB4D1 = 0x5;
    static constexpr std::uint8_t kEncB4D2 = 0x6;
    static constexpr std::uint8_t kEncB2D1 = 0x7;

  private:
    /** Try one base/delta layout; returns nullopt-equivalent via ok flag. */
    bool tryLayout(std::span<const std::uint8_t> line,
                   const BdiLayout &layout, CompressedLine &out) const;

    Cycles compressLat_;
    Cycles decompressLat_;
    double compressNj_;
    double decompressNj_;
};

} // namespace latte

#endif // LATTE_COMPRESS_BDI_HH
