#include "bdi.hh"

#include <algorithm>
#include <array>

#include "backend.hh"
#include "common/logging.hh"

namespace latte
{

namespace
{

/** The base+delta probes, in the order they are attempted. */
constexpr std::array<BdiLayout, 6> kLayouts = {{
    {BdiCompressor::kEncB8D1, 8, 1},
    {BdiCompressor::kEncB8D2, 8, 2},
    {BdiCompressor::kEncB4D1, 4, 1},
    {BdiCompressor::kEncB8D4, 8, 4},
    {BdiCompressor::kEncB4D2, 4, 2},
    {BdiCompressor::kEncB2D1, 2, 1},
}};

/**
 * A layout's encoded size is fully determined by its shape: base,
 * immediate mask, then one delta per block. This is what makes BDI's
 * probe() a pure feasibility test.
 */
constexpr std::uint32_t
layoutSizeBits(const BdiLayout &layout)
{
    const std::uint32_t n_blocks = kLineBytes / layout.baseBytes;
    return 8u * layout.baseBytes + n_blocks +
           n_blocks * 8u * layout.deltaBytes;
}

/**
 * Classify each block as immediate (delta from zero fits) or
 * base-relative; the first non-immediate block defines the base.
 * Returns false as soon as any delta overflows the layout's width.
 * On success fills the immediate mask (bit i = block i) and the
 * per-block deltas.
 */
bool
classifyLayout(std::span<const std::uint8_t> line, const BdiLayout &layout,
               std::uint64_t &base_out, std::uint64_t &mask_out,
               std::array<std::int64_t, 64> &deltas_out)
{
    const unsigned base_bytes = layout.baseBytes;
    const unsigned delta_bytes = layout.deltaBytes;
    const unsigned n_blocks = kLineBytes / base_bytes;

    std::uint64_t base = 0;
    bool have_base = false;
    std::uint64_t mask = 0;

    for (unsigned i = 0; i < n_blocks; ++i) {
        const std::uint64_t raw = loadLe(line.data() + i * base_bytes,
                                         base_bytes);
        const std::int64_t value = signExtend(raw, 8 * base_bytes);
        if (fitsSigned(value, delta_bytes)) {
            mask |= std::uint64_t{1} << i;
            deltas_out[i] = value;
            continue;
        }
        if (!have_base) {
            base = raw;
            have_base = true;
        }
        // Modular (wrap-around) difference, reinterpreted as a signed
        // delta of the block width; matches the hardware subtractor.
        const std::int64_t delta = signExtend(raw - base, 8 * base_bytes);
        if (!fitsSigned(delta, delta_bytes))
            return false;
        deltas_out[i] = delta;
    }

    base_out = base;
    mask_out = mask;
    return true;
}

} // namespace

BdiCompressor::BdiCompressor(const CompressorTimings &timings)
    : compressLat_(timings.bdiCompress),
      decompressLat_(timings.bdiDecompress),
      compressNj_(timings.bdiCompressNj),
      decompressNj_(timings.bdiDecompressNj)
{}

bool
BdiCompressor::tryLayout(std::span<const std::uint8_t> line,
                         const BdiLayout &layout, CompressedLine &out) const
{
    std::uint64_t base = 0;
    std::uint64_t mask = 0;
    std::array<std::int64_t, 64> deltas;
    if (!classifyLayout(line, layout, base, mask, deltas))
        return false;

    const unsigned base_bytes = layout.baseBytes;
    const unsigned delta_bytes = layout.deltaBytes;
    const unsigned n_blocks = kLineBytes / base_bytes;

    // Serialise: base, immediate mask, then the per-block deltas.
    BitWriter bw;
    bw.write(base, 8 * base_bytes);
    bw.write(mask, n_blocks);
    for (unsigned i = 0; i < n_blocks; ++i) {
        bw.write(static_cast<std::uint64_t>(deltas[i]), 8 * delta_bytes);
    }

    out.algo = CompressorId::Bdi;
    out.encoding = layout.encoding;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    latte_assert(out.sizeBits == layoutSizeBits(layout));
    out.payload.assign(bw.bytes());
    return out.sizeBits < kLineBits;
}

void
BdiCompressor::probeLines(std::span<const std::uint8_t> lines,
                          std::span<LineMeta> out)
{
    latte_assert(lines.size() == out.size() * kLineBytes);

    // The layout scan (zero line, repeated qword, then first-fit over
    // the base+delta layouts in ascending size order) lives in the
    // backend kernel; hoisting the dispatch out of the loop is what
    // batching buys.
    const simd::BdiScanFn scan = activeCompressorBackend().bdiScan;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const simd::BdiScanResult r =
            scan(lines.data() + i * kLineBytes);
        out[i] = makeProbedMeta(CompressorId::Bdi, r.encoding,
                                r.sizeBits);
    }
}

CompressedLine
BdiCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    const LineMeta meta = probe(line);
    CompressedLine out;
    static_cast<LineMeta &>(out) = meta;

    if (meta.encoding == kEncZeros)
        return out;

    if (meta.encoding == kEncRep8) {
        out.payload.assign(line.subspan(0, 8));
        return out;
    }

    if (meta.encoding == kRawEncoding)
        return makeRawLine(CompressorId::Bdi, line);

    for (const auto &layout : kLayouts) {
        if (layout.encoding != meta.encoding)
            continue;
        const bool ok = tryLayout(line, layout, out);
        latte_assert(ok, "probe-selected BDI layout no longer fits");
        return out;
    }
    latte_panic("bad BDI probe encoding {}", static_cast<int>(meta.encoding));
}

void
BdiCompressor::decompressInto(const CompressedLine &line,
                              std::span<std::uint8_t> out) const
{
    latte_assert(line.algo == CompressorId::Bdi);
    latte_assert(out.size() == kLineBytes);

    if (line.encoding == kRawEncoding) {
        decodeRawLineInto(line, out);
        return;
    }

    if (line.encoding == kEncZeros) {
        std::fill(out.begin(), out.end(), 0);
        return;
    }

    if (line.encoding == kEncRep8) {
        latte_assert(line.payload.size() >= 8);
        for (unsigned off = 0; off < kLineBytes; off += 8)
            std::copy_n(line.payload.begin(), 8, out.begin() + off);
        return;
    }

    const BdiLayout *layout = nullptr;
    for (const auto &probe : kLayouts) {
        if (probe.encoding == line.encoding)
            layout = &probe;
    }
    latte_assert(layout, "bad BDI encoding {}",
                 static_cast<int>(line.encoding));

    const unsigned base_bytes = layout->baseBytes;
    const unsigned delta_bytes = layout->deltaBytes;
    const unsigned n_blocks = kLineBytes / base_bytes;

    BitReader br(line.payload, line.sizeBits);
    const std::uint64_t base = br.read(8 * base_bytes);
    const std::uint64_t mask = br.read(n_blocks);

    for (unsigned i = 0; i < n_blocks; ++i) {
        const std::int64_t delta =
            signExtend(br.read(8 * delta_bytes), 8 * delta_bytes);
        const bool immediate = (mask >> i) & 1;
        const std::uint64_t value =
            (immediate ? 0 : base) + static_cast<std::uint64_t>(delta);
        storeLe(out.data() + i * base_bytes, value, base_bytes);
    }
}

} // namespace latte
