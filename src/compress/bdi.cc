#include "bdi.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace latte
{

namespace
{

/** The eight base+delta probes, in the order they are attempted. */
constexpr std::array<BdiLayout, 6> kLayouts = {{
    {BdiCompressor::kEncB8D1, 8, 1},
    {BdiCompressor::kEncB8D2, 8, 2},
    {BdiCompressor::kEncB4D1, 4, 1},
    {BdiCompressor::kEncB8D4, 8, 4},
    {BdiCompressor::kEncB4D2, 4, 2},
    {BdiCompressor::kEncB2D1, 2, 1},
}};

bool
allZero(std::span<const std::uint8_t> line)
{
    return std::all_of(line.begin(), line.end(),
                       [](std::uint8_t b) { return b == 0; });
}

bool
repeated8(std::span<const std::uint8_t> line)
{
    const std::uint64_t first = loadLe(line.data(), 8);
    for (std::size_t off = 8; off < line.size(); off += 8) {
        if (loadLe(line.data() + off, 8) != first)
            return false;
    }
    return true;
}

} // namespace

BdiCompressor::BdiCompressor(const CompressorTimings &timings)
    : compressLat_(timings.bdiCompress),
      decompressLat_(timings.bdiDecompress),
      compressNj_(timings.bdiCompressNj),
      decompressNj_(timings.bdiDecompressNj)
{}

bool
BdiCompressor::tryLayout(std::span<const std::uint8_t> line,
                         const BdiLayout &layout, CompressedLine &out) const
{
    const unsigned base_bytes = layout.baseBytes;
    const unsigned delta_bytes = layout.deltaBytes;
    const unsigned n_blocks = kLineBytes / base_bytes;

    // Pass 1: classify each block as immediate (delta from zero fits) or
    // base-relative; the first non-immediate block defines the base.
    std::uint64_t base = 0;
    bool have_base = false;
    std::vector<bool> immediate(n_blocks);
    std::vector<std::int64_t> deltas(n_blocks);

    for (unsigned i = 0; i < n_blocks; ++i) {
        const std::uint64_t raw = loadLe(line.data() + i * base_bytes,
                                         base_bytes);
        const std::int64_t value = signExtend(raw, 8 * base_bytes);
        if (fitsSigned(value, delta_bytes)) {
            immediate[i] = true;
            deltas[i] = value;
            continue;
        }
        if (!have_base) {
            base = raw;
            have_base = true;
        }
        // Modular (wrap-around) difference, reinterpreted as a signed
        // delta of the block width; matches the hardware subtractor.
        const std::int64_t delta = signExtend(raw - base, 8 * base_bytes);
        if (!fitsSigned(delta, delta_bytes))
            return false;
        immediate[i] = false;
        deltas[i] = delta;
    }

    // Serialise: base, immediate mask, then the per-block deltas.
    BitWriter bw;
    bw.write(base, 8 * base_bytes);
    for (unsigned i = 0; i < n_blocks; ++i)
        bw.pushBit(immediate[i]);
    for (unsigned i = 0; i < n_blocks; ++i) {
        bw.write(static_cast<std::uint64_t>(deltas[i]), 8 * delta_bytes);
    }

    out.algo = CompressorId::Bdi;
    out.encoding = layout.encoding;
    out.sizeBits = static_cast<std::uint32_t>(bw.bitSize());
    out.payload = bw.bytes();
    return out.sizeBits < kLineBits;
}

CompressedLine
BdiCompressor::compress(std::span<const std::uint8_t> line)
{
    latte_assert(line.size() == kLineBytes);

    if (allZero(line)) {
        CompressedLine out;
        out.algo = CompressorId::Bdi;
        out.encoding = kEncZeros;
        out.sizeBits = 8; // one zero byte of payload in the data array
        return out;
    }

    if (repeated8(line)) {
        CompressedLine out;
        out.algo = CompressorId::Bdi;
        out.encoding = kEncRep8;
        out.sizeBits = 64;
        out.payload.assign(line.begin(), line.begin() + 8);
        return out;
    }

    CompressedLine best = makeRawLine(CompressorId::Bdi, line);
    for (const auto &layout : kLayouts) {
        CompressedLine candidate;
        if (tryLayout(line, layout, candidate) &&
            candidate.sizeBits < best.sizeBits) {
            best = candidate;
        }
    }
    return best;
}

std::vector<std::uint8_t>
BdiCompressor::decompress(const CompressedLine &line) const
{
    latte_assert(line.algo == CompressorId::Bdi);

    if (line.encoding == kRawEncoding)
        return decodeRawLine(line);

    if (line.encoding == kEncZeros)
        return std::vector<std::uint8_t>(kLineBytes, 0);

    if (line.encoding == kEncRep8) {
        latte_assert(line.payload.size() >= 8);
        std::vector<std::uint8_t> out(kLineBytes);
        for (unsigned off = 0; off < kLineBytes; off += 8)
            std::copy_n(line.payload.begin(), 8, out.begin() + off);
        return out;
    }

    const BdiLayout *layout = nullptr;
    for (const auto &probe : kLayouts) {
        if (probe.encoding == line.encoding)
            layout = &probe;
    }
    latte_assert(layout, "bad BDI encoding {}",
                 static_cast<int>(line.encoding));

    const unsigned base_bytes = layout->baseBytes;
    const unsigned delta_bytes = layout->deltaBytes;
    const unsigned n_blocks = kLineBytes / base_bytes;

    BitReader br(line.payload, line.sizeBits);
    const std::uint64_t base = br.read(8 * base_bytes);

    std::vector<bool> immediate(n_blocks);
    for (unsigned i = 0; i < n_blocks; ++i)
        immediate[i] = br.readBit();

    std::vector<std::uint8_t> out(kLineBytes);
    for (unsigned i = 0; i < n_blocks; ++i) {
        const std::int64_t delta =
            signExtend(br.read(8 * delta_bytes), 8 * delta_bytes);
        const std::uint64_t value =
            (immediate[i] ? 0 : base) + static_cast<std::uint64_t>(delta);
        storeLe(out.data() + i * base_bytes, value, base_bytes);
    }
    return out;
}

} // namespace latte
