#include "energy_model.hh"

namespace latte
{

UsageCounts
UsageCounts::operator-(const UsageCounts &rhs) const
{
    UsageCounts out;
    out.cycles = cycles - rhs.cycles;
    out.instructions = instructions - rhs.instructions;
    out.l1Accesses = l1Accesses - rhs.l1Accesses;
    out.l2Accesses = l2Accesses - rhs.l2Accesses;
    out.nocBytes = nocBytes - rhs.nocBytes;
    out.dramBytes = dramBytes - rhs.dramBytes;
    out.bdiCompressions = bdiCompressions - rhs.bdiCompressions;
    out.scCompressions = scCompressions - rhs.scCompressions;
    out.bpcCompressions = bpcCompressions - rhs.bpcCompressions;
    out.bdiDecompressions = bdiDecompressions - rhs.bdiDecompressions;
    out.scDecompressions = scDecompressions - rhs.scDecompressions;
    out.bpcDecompressions = bpcDecompressions - rhs.bpcDecompressions;
    out.l2BdiCompressions = l2BdiCompressions - rhs.l2BdiCompressions;
    out.l2BpcCompressions = l2BpcCompressions - rhs.l2BpcCompressions;
    out.l2BdiDecompressions =
        l2BdiDecompressions - rhs.l2BdiDecompressions;
    out.l2BpcDecompressions =
        l2BpcDecompressions - rhs.l2BpcDecompressions;
    out.linkTransfers = linkTransfers - rhs.linkTransfers;
    return out;
}

UsageCounts
harvestUsage(Gpu &gpu)
{
    UsageCounts usage;
    usage.cycles = gpu.cyclesElapsed.count();
    usage.instructions = gpu.totalInstructions();
    usage.l2Accesses = gpu.l2().reads.count() + gpu.l2().writes.count();
    usage.nocBytes = gpu.noc().bytesMoved.count();
    usage.dramBytes = gpu.dram().bytesTransferred.count();
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        auto &cache = gpu.sm(i).cache();
        usage.l1Accesses += cache.loads.count() + cache.stores.count();
        usage.bdiCompressions += cache.bdiCompressions.count();
        usage.scCompressions += cache.scCompressions.count();
        usage.bpcCompressions += cache.bpcCompressions.count();
        usage.bdiDecompressions +=
            cache.queueFor(CompressorId::Bdi).requests.count();
        usage.scDecompressions +=
            cache.queueFor(CompressorId::Sc).requests.count();
        usage.bpcDecompressions +=
            cache.queueFor(CompressorId::Bpc).requests.count();
    }
    if (const auto *stats = gpu.l2().compressStats()) {
        usage.l2BdiCompressions = stats->bdiCompressions.count();
        usage.l2BpcCompressions = stats->bpcCompressions.count();
    }
    if (const CompressionDomain *domain = gpu.l2().domain()) {
        usage.l2BdiDecompressions =
            domain->queueFor(CompressorId::Bdi).requests.count();
        usage.l2BpcDecompressions =
            domain->queueFor(CompressorId::Bpc).requests.count();
    }
    if (const auto *link = gpu.l2().linkStats())
        usage.linkTransfers = link->transfers.count();
    return usage;
}

EnergyReport
EnergyModel::compute(const UsageCounts &usage) const
{
    constexpr double kNjToMj = 1e-6;
    const auto &t = cfg_.timings;

    EnergyReport report;
    report.coreDynamicMj =
        usage.instructions * params_.instructionNj * kNjToMj;
    report.l1Mj = usage.l1Accesses * params_.l1AccessNj * kNjToMj;
    report.l2Mj = usage.l2Accesses * params_.l2AccessNj * kNjToMj;
    report.nocMj = usage.nocBytes * params_.nocByteNj * kNjToMj;
    report.dramMj = usage.dramBytes * params_.dramByteNj * kNjToMj;
    report.compressionMj =
        (usage.bdiCompressions * t.bdiCompressNj +
         usage.bdiDecompressions * t.bdiDecompressNj +
         usage.scCompressions * t.scCompressNj +
         usage.scDecompressions * t.scDecompressNj +
         usage.bpcCompressions * t.bpcCompressNj +
         usage.bpcDecompressions * t.bpcDecompressNj) *
        kNjToMj;
    report.l2CompressionMj =
        (usage.l2BdiCompressions * t.bdiCompressNj +
         usage.l2BdiDecompressions * t.bdiDecompressNj +
         usage.l2BpcCompressions * t.bpcCompressNj +
         usage.l2BpcDecompressions * t.bpcDecompressNj) *
        kNjToMj;
    if (usage.linkTransfers) {
        // One compress (memory side) and one decompress (L2 side) per
        // transfer, at the configured link algorithm's energies. Only
        // BDI/SC/BPC have published figures; the others are modelled
        // at the BPC cost as the nearest published design point.
        double per_transfer = t.bpcCompressNj + t.bpcDecompressNj;
        switch (cfg_.linkCompress) {
          case CompressorId::Bdi:
            per_transfer = t.bdiCompressNj + t.bdiDecompressNj;
            break;
          case CompressorId::Sc:
            per_transfer = t.scCompressNj + t.scDecompressNj;
            break;
          default:
            break;
        }
        report.linkCompressionMj =
            usage.linkTransfers * per_transfer * kNjToMj;
    }
    report.staticMj = usage.cycles * params_.staticNjPerCycle * kNjToMj;
    return report;
}

} // namespace latte
