#include "energy_model.hh"

namespace latte
{

UsageCounts
UsageCounts::operator-(const UsageCounts &rhs) const
{
    UsageCounts out;
    out.cycles = cycles - rhs.cycles;
    out.instructions = instructions - rhs.instructions;
    out.l1Accesses = l1Accesses - rhs.l1Accesses;
    out.l2Accesses = l2Accesses - rhs.l2Accesses;
    out.nocBytes = nocBytes - rhs.nocBytes;
    out.dramBytes = dramBytes - rhs.dramBytes;
    out.bdiCompressions = bdiCompressions - rhs.bdiCompressions;
    out.scCompressions = scCompressions - rhs.scCompressions;
    out.bpcCompressions = bpcCompressions - rhs.bpcCompressions;
    out.bdiDecompressions = bdiDecompressions - rhs.bdiDecompressions;
    out.scDecompressions = scDecompressions - rhs.scDecompressions;
    out.bpcDecompressions = bpcDecompressions - rhs.bpcDecompressions;
    return out;
}

UsageCounts
harvestUsage(Gpu &gpu)
{
    UsageCounts usage;
    usage.cycles = gpu.cyclesElapsed.count();
    usage.instructions = gpu.totalInstructions();
    usage.l2Accesses = gpu.l2().reads.count() + gpu.l2().writes.count();
    usage.nocBytes = gpu.noc().bytesMoved.count();
    usage.dramBytes = gpu.dram().bytesTransferred.count();
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        auto &cache = gpu.sm(i).cache();
        usage.l1Accesses += cache.loads.count() + cache.stores.count();
        usage.bdiCompressions += cache.bdiCompressions.count();
        usage.scCompressions += cache.scCompressions.count();
        usage.bpcCompressions += cache.bpcCompressions.count();
        usage.bdiDecompressions +=
            cache.queueFor(CompressorId::Bdi).requests.count();
        usage.scDecompressions +=
            cache.queueFor(CompressorId::Sc).requests.count();
        usage.bpcDecompressions +=
            cache.queueFor(CompressorId::Bpc).requests.count();
    }
    return usage;
}

EnergyReport
EnergyModel::compute(const UsageCounts &usage) const
{
    constexpr double kNjToMj = 1e-6;
    const auto &t = cfg_.timings;

    EnergyReport report;
    report.coreDynamicMj =
        usage.instructions * params_.instructionNj * kNjToMj;
    report.l1Mj = usage.l1Accesses * params_.l1AccessNj * kNjToMj;
    report.l2Mj = usage.l2Accesses * params_.l2AccessNj * kNjToMj;
    report.nocMj = usage.nocBytes * params_.nocByteNj * kNjToMj;
    report.dramMj = usage.dramBytes * params_.dramByteNj * kNjToMj;
    report.compressionMj =
        (usage.bdiCompressions * t.bdiCompressNj +
         usage.bdiDecompressions * t.bdiDecompressNj +
         usage.scCompressions * t.scCompressNj +
         usage.scDecompressions * t.scDecompressNj +
         usage.bpcCompressions * t.bpcCompressNj +
         usage.bpcDecompressions * t.bpcDecompressNj) *
        kNjToMj;
    report.staticMj = usage.cycles * params_.staticNjPerCycle * kNjToMj;
    return report;
}

} // namespace latte
