/**
 * @file
 * GPU energy model in the spirit of GPUWattch (the paper's Section IV-A
 * methodology): per-event dynamic energies for the core, caches,
 * interconnect and DRAM, the paper's published compressor/decompressor
 * energies (Section IV-C), and a leakage term proportional to execution
 * time. Absolute joules are representative of a Fermi-class part; the
 * evaluation uses energy *normalised to the uncompressed baseline*, as
 * the paper does.
 */

#ifndef LATTE_ENERGY_ENERGY_MODEL_HH
#define LATTE_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/config.hh"
#include "sim/gpu.hh"

namespace latte
{

/** Event totals harvested from a run (or the delta between snapshots). */
struct UsageCounts
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t nocBytes = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t bdiCompressions = 0;
    std::uint64_t scCompressions = 0;
    std::uint64_t bpcCompressions = 0;
    std::uint64_t bdiDecompressions = 0;
    std::uint64_t scDecompressions = 0;
    std::uint64_t bpcDecompressions = 0;
    // L2-level compression events (zero unless --l2-compress is on).
    std::uint64_t l2BdiCompressions = 0;
    std::uint64_t l2BpcCompressions = 0;
    std::uint64_t l2BdiDecompressions = 0;
    std::uint64_t l2BpcDecompressions = 0;
    /** Compressed L2<->DRAM transfers (zero unless --link-compress). */
    std::uint64_t linkTransfers = 0;

    UsageCounts operator-(const UsageCounts &rhs) const;
};

/** Pull current totals out of the simulated GPU. */
UsageCounts harvestUsage(Gpu &gpu);

/** Energy in millijoules, with the Figure 14 style breakdown. */
struct EnergyReport
{
    double coreDynamicMj = 0;
    double l1Mj = 0;
    double l2Mj = 0;
    double nocMj = 0;
    double dramMj = 0;
    double compressionMj = 0;    //!< L1 compress + decompress events
    double l2CompressionMj = 0;  //!< compressed-L2 events
    double linkCompressionMj = 0; //!< L2<->DRAM link (de)compression
    double staticMj = 0;         //!< leakage over execution time

    double
    totalMj() const
    {
        return coreDynamicMj + l1Mj + l2Mj + nocMj + dramMj +
               compressionMj + l2CompressionMj + linkCompressionMj +
               staticMj;
    }

    /** Data-movement slice (L2 + NoC + DRAM), as Figure 14 groups it. */
    double dataMovementMj() const { return l2Mj + nocMj + dramMj; }
};

/** Per-event energy constants (nJ) and the leakage rate. */
struct EnergyParams
{
    double instructionNj = 0.8;      //!< warp instruction, 32 lanes
    double l1AccessNj = 0.06;
    double l2AccessNj = 0.35;
    double nocByteNj = 0.012;
    double dramByteNj = 0.16;
    double staticNjPerCycle = 18.0;  //!< chip leakage at core clock
};

/** The energy model proper. */
class EnergyModel
{
  public:
    explicit EnergyModel(const GpuConfig &cfg, EnergyParams params = {})
        : cfg_(cfg), params_(params)
    {}

    EnergyReport compute(const UsageCounts &usage) const;

  private:
    GpuConfig cfg_;
    EnergyParams params_;
};

} // namespace latte

#endif // LATTE_ENERGY_ENERGY_MODEL_HH
