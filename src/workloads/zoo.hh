/**
 * @file
 * The workload zoo: synthetic stand-ins for the paper's Table III
 * benchmarks. Each entry reproduces the benchmark's documented character
 * along four axes: data-value locality (which compressors work), cache
 * sensitivity, latency tolerance (warp-level parallelism and dependence
 * structure), and temporal phase behaviour. See DESIGN.md for the
 * substitution rationale.
 *
 * Note: the paper abbreviates Streamcluster as "SC", colliding with
 * Statistical Compression; we use "STC" for the benchmark.
 */

#ifndef LATTE_WORKLOADS_ZOO_HH
#define LATTE_WORKLOADS_ZOO_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/memory_image.hh"
#include "synthetic_kernel.hh"

namespace latte
{

/** One benchmark: memory contents plus a sequence of kernels. */
struct Workload
{
    std::string abbr;
    std::string fullName;
    std::string suite;
    bool cacheSensitive = false;
    std::uint64_t seed = 1;
    /** Install the value-generator regions this workload reads. */
    std::function<void(MemoryImage &)> setup;
    /** Kernel sequence (executed in order, like the app's launches). */
    std::vector<KernelSpec> kernels;
};

/** All workloads, paper Table III order (C-InSens then C-Sens). */
const std::vector<Workload> &workloadZoo();

/** Lookup by abbreviation; nullptr if unknown. */
const Workload *findWorkload(const std::string &abbr);

/** Only the cache-sensitive (or only the insensitive) workloads. */
std::vector<const Workload *> workloadsByCategory(bool cache_sensitive);

/**
 * Instantiate fresh KernelProgram objects for a workload. A nonzero
 * @p seed_mix is splitmix-folded into every kernel's baked-in seed so
 * a sweep can draw per-request independent (but still deterministic)
 * access streams; 0 keeps the zoo's canonical seeds.
 */
std::vector<std::unique_ptr<SyntheticKernel>>
makeKernels(const Workload &workload, std::uint64_t seed_mix = 0);

} // namespace latte

#endif // LATTE_WORKLOADS_ZOO_HH
