#include "value_gens.hh"

#include <cmath>
#include <cstring>

#include "common/bit_utils.hh"
#include "common/logging.hh"

namespace latte
{

std::uint64_t
mixHash(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
    x ^= c + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
ZeroGen::generate(Addr, std::span<std::uint8_t> out)
{
    std::fill(out.begin(), out.end(), 0);
}

void
RandomGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    Rng rng(mixHash(seed_, line_addr));
    for (std::size_t i = 0; i < out.size(); i += 8)
        storeLe(out.data() + i, rng.next(),
                static_cast<unsigned>(std::min<std::size_t>(
                    8, out.size() - i)));
}

void
IntArrayGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    Rng rng(mixHash(seed_, line_addr));
    for (std::size_t i = 0; i + 4 <= out.size(); i += 4) {
        const std::uint64_t element = (line_addr + i) / 4;
        std::uint32_t value = base_ +
            static_cast<std::uint32_t>(element * addrScale_);
        if (noise_ > 0)
            value += static_cast<std::uint32_t>(rng.below(noise_));
        storeLe(out.data() + i, value, 4);
    }
}

void
PointerArrayGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    Rng rng(mixHash(seed_, line_addr));
    for (std::size_t i = 0; i + 8 <= out.size(); i += 8) {
        const std::uint64_t ptr =
            heapBase_ + (rng.below(heapSpan_ / 8) * 8);
        storeLe(out.data() + i, ptr, 8);
    }
}

PaletteGen::PaletteGen(std::uint64_t seed, std::uint32_t palette_size,
                       bool float_values, double zipf_s,
                       double noise_fraction)
    : seed_(seed), noiseFraction_(noise_fraction)
{
    latte_assert(palette_size >= 1);
    Rng rng(mixHash(seed, 0x9a1e));
    palette_.reserve(palette_size);
    for (std::uint32_t i = 0; i < palette_size; ++i) {
        if (float_values) {
            // Distinct float values spread over a couple of decades.
            const float value = 0.001f +
                static_cast<float>(rng.uniform()) * 1000.0f;
            std::uint32_t bits;
            std::memcpy(&bits, &value, 4);
            palette_.push_back(bits);
        } else {
            palette_.push_back(static_cast<std::uint32_t>(rng.next()));
        }
    }

    // Zipf-like CDF so a few palette entries dominate (as real data does).
    cdf_.resize(palette_size);
    double sum = 0;
    for (std::uint32_t i = 0; i < palette_size; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    double acc = 0;
    for (std::uint32_t i = 0; i < palette_size; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s) / sum;
        cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
}

void
PaletteGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    Rng rng(mixHash(seed_, line_addr));
    for (std::size_t i = 0; i + 4 <= out.size(); i += 4) {
        if (noiseFraction_ > 0 && rng.chance(noiseFraction_)) {
            storeLe(out.data() + i,
                    static_cast<std::uint32_t>(rng.next()), 4);
            continue;
        }
        const double u = rng.uniform();
        // Binary search the CDF.
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        storeLe(out.data() + i, palette_[lo], 4);
    }
}

void
FloatNoiseGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    Rng rng(mixHash(seed_, line_addr));
    for (std::size_t i = 0; i + 4 <= out.size(); i += 4) {
        const float value = mean_ *
            (1.0f + relNoise_ *
                        (static_cast<float>(rng.uniform()) - 0.5f));
        std::uint32_t bits;
        std::memcpy(&bits, &value, 4);
        storeLe(out.data() + i, bits, 4);
    }
}

void
MixGen::generate(Addr line_addr, std::span<std::uint8_t> out)
{
    const bool use_a =
        (mixHash(seed_, line_addr, 0x77) % 1000) <
        static_cast<std::uint64_t>(aFraction_ * 1000.0);
    (use_a ? a_ : b_)->generate(line_addr, out);
}

} // namespace latte
