#include "synthetic_kernel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/memory_image.hh"
#include "value_gens.hh"

namespace latte
{

namespace
{

constexpr std::uint32_t kWarpLanes = 32;
constexpr std::uint64_t kLine = 128;

std::uint64_t
bodyLength(const PhaseSpec &phase)
{
    return phase.loadsPerIter + phase.aluPerIter + phase.storesPerIter;
}

} // namespace

SyntheticKernel::SyntheticKernel(KernelSpec spec)
    : spec_(std::move(spec))
{
    latte_assert(!spec_.phases.empty(), "kernel needs at least one phase");
    latte_assert(spec_.warpsPerCta >= 1 && spec_.ctas >= 1);

    std::uint64_t instr = 0;
    std::uint64_t iter = 0;
    for (const auto &phase : spec_.phases) {
        latte_assert(bodyLength(phase) > 0,
                     "phase body must not be empty");
        latte_assert(phase.pattern.sizeBytes >= kLine);
        phaseInstrStart_.push_back(instr);
        phaseIterStart_.push_back(iter);
        instr += bodyLength(phase) * phase.iterations;
        iter += phase.iterations;
    }
    totalInstrs_ = instr;
}

DecodedInstr
SyntheticKernel::fetch(std::uint32_t global_warp, std::uint64_t pc)
{
    if (pc >= totalInstrs_)
        return DecodedInstr{}; // Op::Exit

    // Locate the phase containing pc.
    std::size_t p = phaseInstrStart_.size() - 1;
    while (phaseInstrStart_[p] > pc)
        --p;
    const PhaseSpec &phase = spec_.phases[p];
    const std::uint64_t body = bodyLength(phase);
    const std::uint64_t rel = pc - phaseInstrStart_[p];
    const std::uint64_t iter = phaseIterStart_[p] + rel / body;
    const std::uint64_t slot = rel % body;

    DecodedInstr instr;
    if (slot < phase.loadsPerIter) {
        instr.op = Op::Load;
        fillLaneAddrs(instr, phase.pattern, global_warp, iter,
                      static_cast<std::uint32_t>(slot));
    } else if (slot < phase.loadsPerIter + phase.aluPerIter) {
        instr.op = Op::Alu;
        instr.latency = phase.aluLatency;
    } else {
        instr.op = Op::Store;
        fillLaneAddrs(instr, phase.pattern, global_warp, iter,
                      static_cast<std::uint32_t>(slot) + 64);
    }
    return instr;
}

void
SyntheticKernel::fillLaneAddrs(DecodedInstr &instr, const Pattern &pattern,
                               std::uint32_t global_warp,
                               std::uint64_t iter,
                               std::uint32_t mem_idx) const
{
    instr.laneAddrs.resize(kWarpLanes);
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
        instr.laneAddrs[lane] =
            laneAddr(pattern, global_warp, iter, mem_idx, lane);
    }
}

Addr
SyntheticKernel::laneAddr(const Pattern &pattern,
                          std::uint32_t global_warp, std::uint64_t iter,
                          std::uint32_t mem_idx, std::uint32_t lane) const
{
    const std::uint32_t cta = global_warp / spec_.warpsPerCta;
    const std::uint64_t h =
        mixHash(spec_.seed + mem_idx * 0x1000193u,
                (static_cast<std::uint64_t>(global_warp) << 24) ^ iter);

    switch (pattern.kind) {
      case PatternKind::Streaming: {
        const std::uint64_t total_threads =
            static_cast<std::uint64_t>(spec_.ctas) * spec_.warpsPerCta *
            kWarpLanes;
        const std::uint64_t tid =
            static_cast<std::uint64_t>(global_warp) * kWarpLanes + lane;
        const std::uint64_t idx =
            (tid + iter * total_threads + mem_idx * 977) *
            pattern.elemBytes;
        return pattern.base + idx % pattern.sizeBytes;
      }

      case PatternKind::HotReuse: {
        const std::uint64_t slices =
            std::max<std::uint64_t>(1,
                                    pattern.sizeBytes /
                                        pattern.sliceBytes);
        const std::uint64_t slice_off =
            (cta % slices) * pattern.sliceBytes;
        const bool hot =
            (h % 1024) <
            static_cast<std::uint64_t>(pattern.hotFraction * 1024.0);
        const std::uint64_t span =
            std::max<std::uint64_t>(kLine,
                                    hot ? pattern.hotBytes
                                        : pattern.sliceBytes);
        const std::uint64_t line_idx =
            mixHash(h, 0x51u) % (span / kLine);
        return pattern.base + slice_off + line_idx * kLine +
               (lane * 4) % kLine;
      }

      case PatternKind::Irregular: {
        const std::uint64_t slices =
            std::max<std::uint64_t>(1,
                                    pattern.sizeBytes /
                                        pattern.sliceBytes);
        const std::uint64_t slice_off =
            (cta % slices) * pattern.sliceBytes;
        const std::uint32_t lanes_per_group = std::max<std::uint32_t>(
            1, kWarpLanes / std::max<std::uint32_t>(
                   1, pattern.divergentLanes));
        const std::uint32_t group = lane / lanes_per_group;
        const std::uint64_t hg = mixHash(h, group + 11);
        const bool hot =
            (hg % 1024) <
            static_cast<std::uint64_t>(pattern.hotFraction * 1024.0);
        const std::uint64_t span =
            std::max<std::uint64_t>(kLine,
                                    hot ? pattern.hotBytes
                                        : pattern.sliceBytes);
        const std::uint64_t line_idx = mixHash(hg, 0x7fu) % (span / kLine);
        return pattern.base + slice_off + line_idx * kLine +
               (lane * 4) % kLine;
      }

      case PatternKind::Tiled: {
        const std::uint64_t slices =
            std::max<std::uint64_t>(1,
                                    pattern.sizeBytes /
                                        pattern.sliceBytes);
        const std::uint64_t slice_off =
            (cta % slices) * pattern.sliceBytes;
        const std::uint64_t lines_in_slice =
            std::max<std::uint64_t>(1, pattern.sliceBytes / kLine);
        const std::uint64_t line_idx =
            (iter + mem_idx * 7 +
             (global_warp % spec_.warpsPerCta) * 3) % lines_in_slice;
        return pattern.base + slice_off + line_idx * kLine +
               (lane * 4) % kLine;
      }
    }
    latte_panic("unknown pattern kind");
}

} // namespace latte
