/**
 * @file
 * Data-value generators. Section II-A of the paper ties each benchmark's
 * compressibility to the value locality of its data: integer/pointer data
 * has low bit-variance (spatial locality, BDI/BPC-friendly), repeated
 * floating-point values have temporal locality (SC-friendly). These
 * generators synthesise backing-store bytes with those statistics so the
 * real compressors reproduce the paper's per-algorithm affinities.
 */

#ifndef LATTE_WORKLOADS_VALUE_GENS_HH
#define LATTE_WORKLOADS_VALUE_GENS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mem/memory_image.hh"

namespace latte
{

/** Deterministic per-line hash for value generation. */
std::uint64_t mixHash(std::uint64_t a, std::uint64_t b,
                      std::uint64_t c = 0x243f6a8885a308d3ull);

/** All bytes zero (freshly-allocated buffers, sparse matrices). */
class ZeroGen : public LineGenerator
{
  public:
    void generate(Addr, std::span<std::uint8_t> out) override;
};

/** Uniformly random bytes: incompressible under every algorithm. */
class RandomGen : public LineGenerator
{
  public:
    explicit RandomGen(std::uint64_t seed) : seed_(seed) {}
    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

  private:
    std::uint64_t seed_;
};

/**
 * 32-bit integers that grow slowly with the address plus small noise:
 * strong *spatial* value locality (BDI's narrow deltas, BPC's quiet bit
 * planes). Models index arrays, degree counts, coordinates.
 */
class IntArrayGen : public LineGenerator
{
  public:
    IntArrayGen(std::uint64_t seed, std::uint32_t base,
                std::uint32_t addr_scale, std::uint32_t noise)
        : seed_(seed), base_(base), addrScale_(addr_scale), noise_(noise)
    {}

    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

  private:
    std::uint64_t seed_;
    std::uint32_t base_;
    std::uint32_t addrScale_;   //!< value increase per 4 B element
    std::uint32_t noise_;       //!< uniform per-element jitter
};

/**
 * 64-bit pointers into a small heap: one large shared base with small
 * deltas (BDI's 8-byte-base encodings). Models linked structures.
 */
class PointerArrayGen : public LineGenerator
{
  public:
    PointerArrayGen(std::uint64_t seed, std::uint64_t heap_base,
                    std::uint64_t heap_span)
        : seed_(seed), heapBase_(heap_base), heapSpan_(heap_span)
    {}

    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

  private:
    std::uint64_t seed_;
    std::uint64_t heapBase_;
    std::uint64_t heapSpan_;
};

/**
 * 32-bit words drawn from a small palette of distinct values: strong
 * *temporal* value locality (SC's Huffman table captures the palette)
 * with poor spatial locality when palette values are far apart. Models
 * quantised floating-point data, categorical codes, lookup tables.
 */
class PaletteGen : public LineGenerator
{
  public:
    /**
     * @param noise_fraction fraction of words replaced by random values
     *        (escape pressure for SC; caps the achievable ratio at
     *        realistic levels — the paper reports ~3.2x for SS).
     */
    PaletteGen(std::uint64_t seed, std::uint32_t palette_size,
               bool float_values, double zipf_s = 1.2,
               double noise_fraction = 0.0);

    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

    const std::vector<std::uint32_t> &palette() const { return palette_; }

  private:
    std::uint64_t seed_;
    std::vector<std::uint32_t> palette_;
    std::vector<double> cdf_;   //!< Zipf-like popularity skew
    double noiseFraction_;
};

/**
 * IEEE-754 floats around a mean with relative jitter: high mantissa
 * entropy, few repeated values — resists all algorithms except partially
 * BPC (shared exponents). Models raw sensor/simulation data.
 */
class FloatNoiseGen : public LineGenerator
{
  public:
    FloatNoiseGen(std::uint64_t seed, float mean, float rel_noise)
        : seed_(seed), mean_(mean), relNoise_(rel_noise)
    {}

    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

  private:
    std::uint64_t seed_;
    float mean_;
    float relNoise_;
};

/**
 * Blend of two generators: each line comes from A with probability
 * @p a_fraction, else from B. Models structures-of-arrays with mixed
 * member types.
 */
class MixGen : public LineGenerator
{
  public:
    MixGen(std::uint64_t seed, std::shared_ptr<LineGenerator> a,
           std::shared_ptr<LineGenerator> b, double a_fraction)
        : seed_(seed), a_(std::move(a)), b_(std::move(b)),
          aFraction_(a_fraction)
    {}

    void generate(Addr line_addr, std::span<std::uint8_t> out) override;

  private:
    std::uint64_t seed_;
    std::shared_ptr<LineGenerator> a_;
    std::shared_ptr<LineGenerator> b_;
    double aFraction_;
};

} // namespace latte

#endif // LATTE_WORKLOADS_VALUE_GENS_HH
