#include "zoo.hh"

#include "common/logging.hh"
#include "value_gens.hh"

namespace latte
{

namespace
{

constexpr Addr kBase = 0x10000000;
constexpr std::uint64_t kRegion = 32ull << 20;
constexpr std::uint64_t kKiB = 1024;

// ---- Pattern builders -------------------------------------------------

Pattern
hotPat(std::uint64_t slice, std::uint64_t hot, double frac)
{
    Pattern p;
    p.kind = PatternKind::HotReuse;
    p.base = kBase;
    p.sizeBytes = kRegion;
    p.sliceBytes = slice;
    p.hotBytes = hot;
    p.hotFraction = frac;
    return p;
}

Pattern
irregPat(std::uint64_t slice, std::uint64_t hot, double frac,
         std::uint32_t divergent)
{
    Pattern p = hotPat(slice, hot, frac);
    p.kind = PatternKind::Irregular;
    p.divergentLanes = divergent;
    return p;
}

Pattern
streamPat(std::uint64_t span)
{
    Pattern p;
    p.kind = PatternKind::Streaming;
    p.base = kBase;
    p.sizeBytes = span;
    p.elemBytes = 4;
    return p;
}

Pattern
tiledPat(std::uint64_t slice)
{
    Pattern p;
    p.kind = PatternKind::Tiled;
    p.base = kBase;
    p.sizeBytes = kRegion;
    p.sliceBytes = slice;
    return p;
}

PhaseSpec
phase(std::uint32_t iters, std::uint32_t loads, std::uint32_t alus,
      Cycles alu_lat, std::uint32_t stores, Pattern pattern)
{
    PhaseSpec ph;
    ph.iterations = iters;
    ph.loadsPerIter = loads;
    ph.aluPerIter = alus;
    ph.aluLatency = alu_lat;
    ph.storesPerIter = stores;
    ph.pattern = pattern;
    return ph;
}

KernelSpec
kernel(std::string name, std::uint32_t ctas, std::uint32_t wpc,
       std::uint64_t seed, std::vector<PhaseSpec> phases)
{
    KernelSpec spec;
    spec.name = std::move(name);
    spec.ctas = ctas;
    spec.warpsPerCta = wpc;
    spec.seed = seed;
    spec.phases = std::move(phases);
    return spec;
}

// ---- Value-profile builders -------------------------------------------

/** Small-delta integers: BDI-friendly (and BPC-friendly). */
std::function<void(MemoryImage &)>
intData(std::uint64_t seed, std::uint32_t scale, std::uint32_t noise)
{
    return [=](MemoryImage &mem) {
        mem.addRegion(kBase, kRegion,
                      std::make_shared<IntArrayGen>(seed, 1000, scale,
                                                    noise));
    };
}

/** Large constant-stride integers: BPC-friendly, BDI-resistant. */
std::function<void(MemoryImage &)>
rampData(std::uint64_t seed, std::uint32_t scale)
{
    return [=](MemoryImage &mem) {
        mem.addRegion(kBase, kRegion,
                      std::make_shared<IntArrayGen>(seed, 12345, scale,
                                                    0));
    };
}

/**
 * Mostly large-stride ramps with a small-delta component: BPC achieves
 * the best ratio, BDI/SC a moderate one — the CLR/MIS profile of
 * Figure 2 ("show affinity to BPC" but still compressible elsewhere).
 */
std::function<void(MemoryImage &)>
rampMixData(std::uint64_t seed, std::uint32_t scale)
{
    return [=](MemoryImage &mem) {
        auto ramp =
            std::make_shared<IntArrayGen>(seed, 12345, scale, 0);
        auto small = std::make_shared<IntArrayGen>(seed ^ 0x9d, 77, 2, 5);
        mem.addRegion(kBase, kRegion,
                      std::make_shared<MixGen>(seed ^ 0x31, ramp, small,
                                               0.55));
    };
}

/** Repeated (quantised) float values: SC-friendly, BDI-resistant. */
std::function<void(MemoryImage &)>
paletteData(std::uint64_t seed, std::uint32_t palette,
            double noise = 0.18)
{
    return [=](MemoryImage &mem) {
        mem.addRegion(kBase, kRegion,
                      std::make_shared<PaletteGen>(seed, palette, true,
                                                   1.2, noise));
    };
}

/** High-entropy floats: nearly incompressible. */
std::function<void(MemoryImage &)>
floatData(std::uint64_t seed, float mean, float noise)
{
    return [=](MemoryImage &mem) {
        mem.addRegion(kBase, kRegion,
                      std::make_shared<FloatNoiseGen>(seed, mean, noise));
    };
}

/**
 * Integer + palette blend: strong spatial locality (BDI) with a modest
 * temporal component, so SC achieves a small ratio — it pays its
 * latency without a matching capacity benefit (the BC/FW/DJK profile).
 */
std::function<void(MemoryImage &)>
graphData(std::uint64_t seed, double int_fraction)
{
    return [=](MemoryImage &mem) {
        auto ints =
            std::make_shared<IntArrayGen>(seed, 4096, 3, 6);
        auto pal = std::make_shared<PaletteGen>(seed ^ 0xa5, 48, false,
                                                1.2, 0.25);
        mem.addRegion(kBase, kRegion,
                      std::make_shared<MixGen>(seed ^ 0x11, ints, pal,
                                               int_fraction));
    };
}

/** Pointer-rich node records: BDI 8-byte-base friendly. */
std::function<void(MemoryImage &)>
pointerData(std::uint64_t seed)
{
    return [=](MemoryImage &mem) {
        auto ptrs = std::make_shared<PointerArrayGen>(
            seed, 0x7f0000000000ull, 1ull << 20);
        auto ints = std::make_shared<IntArrayGen>(seed ^ 0x3, 7, 2, 4);
        mem.addRegion(kBase, kRegion,
                      std::make_shared<MixGen>(seed ^ 0x29, ptrs, ints,
                                               0.6));
    };
}

/** Zero-dominated text processing buffers. */
std::function<void(MemoryImage &)>
zeroHeavyData(std::uint64_t seed)
{
    return [=](MemoryImage &mem) {
        auto zeros = std::make_shared<ZeroGen>();
        auto ints = std::make_shared<IntArrayGen>(seed, 32, 1, 200);
        mem.addRegion(kBase, kRegion,
                      std::make_shared<MixGen>(seed ^ 0x55, zeros, ints,
                                               0.55));
    };
}

std::vector<Workload>
buildZoo()
{
    std::vector<Workload> zoo;
    auto add = [&zoo](Workload w) { zoo.push_back(std::move(w)); };

    // ================= Cache-insensitive workloads =================

    add({"BO", "Binomial Options", "NVIDIA SDK", false, 101,
         floatData(101, 50.0f, 0.8f),
         {kernel("bo_price", 60, 8, 101,
                 {phase(180, 1, 10, 3, 1, streamPat(2 << 20))})}});

    add({"PTH", "Path Finder", "Rodinia", false, 102,
         intData(102, 2, 5),
         {kernel("pth_dynproc", 100, 6, 102,
                 {phase(200, 2, 3, 3, 1, streamPat(8 << 20))})}});

    add({"HOT", "Hotspot", "Rodinia", false, 103,
         floatData(103, 340.0f, 0.2f),
         {kernel("hot_stencil", 96, 6, 103,
                 {phase(240, 2, 4, 4, 1, tiledPat(1536))})}});

    add({"FWT", "Fast Walsh Transform", "NVIDIA SDK", false, 104,
         floatData(104, 1.0f, 1.5f),
         {kernel("fwt_pass", 80, 8, 104,
                 {phase(150, 2, 4, 3, 1, streamPat(4 << 20))})}});

    add({"BP", "Back Propagation", "Rodinia", false, 105,
         floatData(105, 0.5f, 1.0f),
         {kernel("bp_forward", 90, 8, 105,
                 {phase(140, 2, 5, 3, 1, hotPat(1536, 512, 0.5))}),
          kernel("bp_adjust", 90, 8, 1105,
                 {phase(110, 2, 4, 3, 1, streamPat(4 << 20))})}});

    add({"NW", "Needleman-Wunsch", "Rodinia", false, 106,
         intData(106, 3, 8),
         {kernel("nw_wavefront", 40, 2, 106,
                 {phase(400, 2, 3, 6, 1, tiledPat(2048))})}});

    add({"SR1", "SRAD1", "Rodinia", false, 107,
         floatData(107, 0.1f, 1.2f),
         {kernel("srad_main", 90, 8, 107,
                 {phase(150, 2, 6, 3, 1, streamPat(8 << 20))})}});

    add({"HW", "Heartwall", "Rodinia", false, 108,
         floatData(108, 128.0f, 0.6f),
         {kernel("hw_track", 45, 3, 108,
                 {phase(1000, 3, 3, 5, 0, tiledPat(1792))})}});

    add({"STC", "Streamcluster", "Rodinia", false, 109,
         paletteData(109, 96),
         {kernel("stc_gain", 60, 4, 109,
                 {phase(900, 2, 4, 5, 0, hotPat(1280, 512, 0.75))})}});

    add({"BT", "B+Tree", "Rodinia", false, 110,
         pointerData(110),
         {kernel("bt_findk", 80, 6, 110,
                 {phase(450, 2, 3, 3, 0,
                        irregPat(2048, 1024, 0.75, 8))})}});

    add({"WC", "Word Count", "Mars", false, 111,
         zeroHeavyData(111),
         {kernel("wc_map", 80, 8, 111,
                 {phase(150, 2, 3, 3, 1, streamPat(8 << 20))})}});

    add({"BFS", "Breadth First Search", "Rodinia", false, 112,
         graphData(112, 0.6),
         {kernel("bfs_frontier", 100, 8, 112,
                 {phase(40, 2, 2, 3, 1,
                        irregPat(64 * kKiB, 32 * kKiB, 0.3, 8))})}});

    // ================= Cache-sensitive workloads =================

    add({"PF", "Particle Filter", "Rodinia", true, 201,
         intData(201, 2, 3),
         {kernel("pf_likelihood", 90, 6, 201,
                 {phase(400, 2, 3, 2, 0,
                        hotPat(12 * kKiB, 4 * kKiB, 0.85)),
                  phase(300, 2, 5, 1, 0,
                        hotPat(12 * kKiB, 4 * kKiB, 0.9))})}});

    add({"SS", "Similarity Score", "Mars", true, 202,
         paletteData(202, 96),
         {kernel("ss_score", 90, 8, 202,
                 {// High tolerance: plenty of ready warps, SC worthwhile.
                  phase(200, 2, 6, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85)),
                  // Moderate tolerance.
                  phase(150, 2, 4, 2, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85)),
                  // Low tolerance: dependence-bound over a small hot set
                  // that fits uncompressed (plus a thin incompressible
                  // cold spread) — here SC only adds hit latency.
                  phase(120, 1, 3, 12, 0,
                        hotPat(64 * kKiB, 3584, 0.94))})}});

    add({"MM", "Matrix Multiplication", "Mars", true, 203,
         paletteData(203, 128),
         {kernel("mm_tiles", 90, 8, 203,
                 {phase(180, 2, 6, 1, 0, tiledPat(8 * kKiB)),
                  phase(70, 1, 3, 12, 0,
                        hotPat(64 * kKiB, 3584, 0.94)),
                  phase(150, 2, 6, 1, 0, tiledPat(8 * kKiB))})}});

    add({"KM", "Kmeans", "Rodinia", true, 204,
         paletteData(204, 64),
         {kernel("km_assign", 90, 8, 204,
                 {phase(100, 2, 4, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85)),
                  phase(60, 1, 3, 12, 0,
                        hotPat(64 * kKiB, 3584, 0.94)),
                  phase(100, 2, 4, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85)),
                  phase(60, 1, 3, 12, 0,
                        hotPat(64 * kKiB, 3584, 0.94)),
                  phase(100, 2, 4, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85))})}});

    add({"VM", "Vector Median", "Mars", true, 205,
         paletteData(205, 80),
         {kernel("vm_filter", 90, 8, 205,
                 {phase(140, 2, 5, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85)),
                  phase(60, 1, 3, 12, 0,
                        hotPat(64 * kKiB, 3584, 0.94)),
                  phase(120, 2, 5, 1, 0,
                        hotPat(10 * kKiB, 3 * kKiB, 0.85))})}});

    add({"BC", "Betweenness Centrality", "Pannotia", true, 206,
         graphData(206, 0.7),
         {kernel("bc_forward", 120, 3, 206,
                 {phase(650, 2, 2, 4, 0,
                        hotPat(8 * kKiB, 3 * kKiB, 0.9))}),
          kernel("bc_backward", 120, 3, 1206,
                 {phase(500, 2, 3, 4, 0,
                        hotPat(8 * kKiB, 3 * kKiB, 0.9))})}});

    add({"CLR", "Graph Coloring", "Pannotia", true, 207,
         rampMixData(207, 50000),
         {kernel("clr_color", 90, 8, 207,
                 {phase(500, 2, 4, 1, 0,
                        hotPat(12 * kKiB, 4 * kKiB, 0.9))})}});

    add({"FW", "Floyd Warshall", "Pannotia", true, 208,
         graphData(208, 0.7),
         {kernel("fw_relax", 50, 2, 208,
                 {phase(500, 2, 1, 6, 1,
                        hotPat(12 * kKiB, 5 * kKiB, 0.85))})}});

    add({"PRK", "Pagerank (SPMV)", "Pannotia", true, 209,
         paletteData(209, 48),
         {kernel("prk_spmv", 120, 8, 209,
                 {phase(200, 2, 6, 1, 0,
                        hotPat(14 * kKiB, 5 * kKiB, 0.85))})}});

    add({"DJK", "Dijkstra-ALL", "Pannotia", true, 210,
         pointerData(210),
         {kernel("djk_init", 100, 4, 210,
                 {phase(300, 2, 3, 3, 0,
                        hotPat(8 * kKiB, 3 * kKiB, 0.8))}),
          kernel("djk_relax", 100, 4, 1210,
                 {phase(550, 2, 2, 4, 0,
                        irregPat(8 * kKiB, 3 * kKiB, 0.85, 4))})}});

    add({"MIS", "Maximal Independent Set", "Pannotia", true, 211,
         rampMixData(211, 65000),
         {kernel("mis_select", 90, 8, 211,
                 {phase(450, 2, 4, 1, 0,
                        hotPat(12 * kKiB, 4 * kKiB, 0.9))})}});

    return zoo;
}

} // namespace

const std::vector<Workload> &
workloadZoo()
{
    static const std::vector<Workload> zoo = buildZoo();
    return zoo;
}

const Workload *
findWorkload(const std::string &abbr)
{
    for (const auto &workload : workloadZoo()) {
        if (workload.abbr == abbr)
            return &workload;
    }
    return nullptr;
}

std::vector<const Workload *>
workloadsByCategory(bool cache_sensitive)
{
    std::vector<const Workload *> out;
    for (const auto &workload : workloadZoo()) {
        if (workload.cacheSensitive == cache_sensitive)
            out.push_back(&workload);
    }
    return out;
}

std::vector<std::unique_ptr<SyntheticKernel>>
makeKernels(const Workload &workload, std::uint64_t seed_mix)
{
    std::vector<std::unique_ptr<SyntheticKernel>> kernels;
    kernels.reserve(workload.kernels.size());
    for (const auto &spec : workload.kernels) {
        if (seed_mix == 0) {
            kernels.push_back(std::make_unique<SyntheticKernel>(spec));
            continue;
        }
        KernelSpec mixed = spec;
        // splitmix64 finalizer keeps remixed seeds well-distributed.
        std::uint64_t z = mixed.seed ^ seed_mix;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        mixed.seed = z ^ (z >> 31);
        kernels.push_back(std::make_unique<SyntheticKernel>(mixed));
    }
    return kernels;
}

} // namespace latte
