/**
 * @file
 * A parameterised kernel program. Each warp executes a sequence of
 * phases; each phase repeats a loop body of loads, dependent ALU work and
 * stores over an address pattern. Everything is a pure function of
 * (warp, pc), so execution is deterministic and replayable. The phase
 * structure is what gives workloads the *time-varying* latency tolerance
 * and compression affinity that LATTE-CC exploits (Section II-C).
 */

#ifndef LATTE_WORKLOADS_SYNTHETIC_KERNEL_HH
#define LATTE_WORKLOADS_SYNTHETIC_KERNEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/instruction.hh"

namespace latte
{

/** Memory reference pattern of one phase. */
enum class PatternKind : std::uint8_t
{
    Streaming,  //!< sweep the region once per pass; no reuse
    HotReuse,   //!< per-CTA slice with a hot subset; coalesced
    Irregular,  //!< divergent (multi-line) accesses within the slice
    Tiled,      //!< sequential sweep of the slice; heavy short-term reuse
};

/** Address-pattern parameters. */
struct Pattern
{
    PatternKind kind = PatternKind::HotReuse;
    Addr base = 0x10000000;
    std::uint64_t sizeBytes = 1ull << 20;
    /** Per-CTA private working slice (HotReuse/Irregular/Tiled). */
    std::uint64_t sliceBytes = 8 * 1024;
    /** Hot subset within the slice (HotReuse/Irregular). */
    std::uint64_t hotBytes = 2 * 1024;
    double hotFraction = 0.8;
    /** Distinct lines touched per divergent load (1..32, Irregular). */
    std::uint32_t divergentLanes = 8;
    /** Per-thread element size (Streaming). */
    std::uint32_t elemBytes = 4;
};

/** One phase of the loop nest. */
struct PhaseSpec
{
    std::uint32_t iterations = 100;
    std::uint32_t loadsPerIter = 1;
    std::uint32_t aluPerIter = 4;
    Cycles aluLatency = 4;
    std::uint32_t storesPerIter = 0;
    Pattern pattern;
};

/** Full kernel description. */
struct KernelSpec
{
    std::string name = "kernel";
    std::uint32_t ctas = 120;
    std::uint32_t warpsPerCta = 8;
    std::uint64_t seed = 1;
    std::vector<PhaseSpec> phases;
};

/** KernelProgram driven by a KernelSpec. */
class SyntheticKernel : public KernelProgram
{
  public:
    explicit SyntheticKernel(KernelSpec spec);

    std::string name() const override { return spec_.name; }
    std::uint32_t numCtas() const override { return spec_.ctas; }
    std::uint32_t warpsPerCta() const override
    {
        return spec_.warpsPerCta;
    }

    DecodedInstr fetch(std::uint32_t global_warp,
                       std::uint64_t pc) override;

    /** Instructions each warp executes (excluding Exit). */
    std::uint64_t instructionsPerWarp() const { return totalInstrs_; }

    const KernelSpec &spec() const { return spec_; }

  private:
    Addr laneAddr(const Pattern &pattern, std::uint32_t global_warp,
                  std::uint64_t iter, std::uint32_t mem_idx,
                  std::uint32_t lane) const;

    void fillLaneAddrs(DecodedInstr &instr, const Pattern &pattern,
                       std::uint32_t global_warp, std::uint64_t iter,
                       std::uint32_t mem_idx) const;

    KernelSpec spec_;
    std::vector<std::uint64_t> phaseInstrStart_;
    std::vector<std::uint64_t> phaseIterStart_;
    std::uint64_t totalInstrs_ = 0;
};

} // namespace latte

#endif // LATTE_WORKLOADS_SYNTHETIC_KERNEL_HH
