/**
 * @file
 * The event taxonomy of the observability layer: one POD TraceEvent per
 * hook point plus the AccessEvent struct the compressed L1 hands to its
 * CompressionModeProvider (the same struct the tracer hooks consume, so
 * the cache describes an access exactly once).
 *
 * TraceEvent is deliberately flat and fixed-size (32 bytes): the tracer
 * stores them in a preallocated ring buffer, so recording an event is a
 * couple of stores and never allocates.
 */

#ifndef LATTE_TRACE_EVENTS_HH
#define LATTE_TRACE_EVENTS_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "compress/compressor.hh"

namespace latte
{

/**
 * One L1 data-cache access as reported to the compression management
 * policy and the tracer. `lineMode` is the compression mode of the line
 * that hit (None on a miss).
 */
struct AccessEvent
{
    Cycles now = 0;
    std::uint32_t setIndex = 0;
    bool hit = false;
    bool isWrite = false;
    CompressorId lineMode = CompressorId::None;
};

/** Every kind of event the simulator can emit. */
enum class TraceEventKind : std::uint8_t
{
    // --- kernels / SM front end ---
    KernelBegin,   //!< arg0 = kernel index
    KernelEnd,     //!< arg0 = kernel index, arg1 = completed (0/1)
    WarpIssue,     //!< scheduler issued a warp; arg0 = global warp id

    // --- compressed L1 ---
    L1Hit,         //!< arg0 = line addr, arg1 = set, mode = line mode
    L1Miss,        //!< primary miss; arg0 = line addr, arg1 = set
    L1MissMerged,  //!< secondary miss merged into an MSHR
    L1Reject,      //!< access refused (MSHR file full)
    L1Insert,      //!< fill inserted; mode = storage mode, value = ratio
    L1Evict,       //!< victim dropped; arg1 = set, mode = victim mode
    L1WriteInval,  //!< write-avoid invalidation; arg0 = line addr

    // --- decompression / MSHR ---
    DecompEnqueue, //!< hit queued for decompression; arg1 = queue depth
    MshrAlloc,     //!< primary miss allocated an MSHR; arg1 = in use
    MshrFull,      //!< allocation refused; arg1 = capacity

    // --- shared memory system ---
    L2Hit,         //!< arg0 = line addr
    L2Miss,        //!< arg0 = line addr
    DramAccess,    //!< arg1 = bytes, value = queue delay (cycles)

    // --- LATTE-CC controller ---
    EpBoundary,    //!< EP closed; value = latency tolerance, mode = winner
    SamplerVote,   //!< per-candidate AMAT_GPU; mode = candidate, value = AMAT
    ModeChange,    //!< the winner flipped; mode = new winner
    ScRebuild,     //!< SC code book rebuilt; arg0 = new generation

    // --- compressed L2 (--l2-compress) ---
    L2Insert,        //!< fill inserted; mode = storage mode, value = ratio
    L2Evict,         //!< victim dropped; arg1 = set, mode = victim mode
    L2WriteInval,    //!< write dropped a compressed copy; arg0 = line addr
    L2DecompEnqueue, //!< L2 hit queued for decompression; arg1 = depth
    L2EpBoundary,    //!< L2 EP closed; value = tolerance, mode = winner
    L2SamplerVote,   //!< L2 candidate AMAT; mode = candidate, value = AMAT
    L2ModeChange,    //!< L2 winner flipped; mode = new winner

    // --- link compression (--link-compress) ---
    LinkCompress,    //!< arg1 = transferred bytes, value = ratio
};

/** Number of TraceEventKind values (for per-kind counter arrays). */
constexpr std::size_t kNumTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::LinkCompress) + 1;

/** Stable lower_snake_case name (used as the Chrome trace event name). */
const char *traceEventKindName(TraceEventKind kind);

/** Chrome trace category for @p kind ("sm", "l1", "mem", "latte"). */
const char *traceEventKindCategory(TraceEventKind kind);

/** One recorded event. Interpretation of the payload depends on kind. */
struct TraceEvent
{
    Cycles ts = 0;             //!< simulated cycle
    std::uint64_t arg0 = 0;    //!< address-sized payload
    double value = 0.0;        //!< real-valued payload (tolerance, AMAT...)
    std::uint32_t arg1 = 0;    //!< small integer payload
    TraceEventKind kind = TraceEventKind::KernelBegin;
    std::uint8_t mode = 0;     //!< CompressorId payload
    std::uint16_t sm = 0;      //!< originating SM (kNoTraceSm if shared)
};

/** `sm` value for events from shared units (L2, DRAM, driver). */
constexpr std::uint16_t kNoTraceSm = 0xffff;

/** Convenience builder: the common (ts, kind, sm) prefix. */
inline TraceEvent
makeTraceEvent(Cycles ts, TraceEventKind kind, std::uint16_t sm = kNoTraceSm)
{
    TraceEvent event;
    event.ts = ts;
    event.kind = kind;
    event.sm = sm;
    return event;
}

} // namespace latte

#endif // LATTE_TRACE_EVENTS_HH
