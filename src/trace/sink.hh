/**
 * @file
 * Trace export. A TraceSink consumes the events a Tracer recorded for
 * one or more simulation runs; ChromeTraceSink writes them in the Chrome
 * trace-event JSON format, loadable in chrome://tracing and Perfetto
 * (ui.perfetto.dev). Future sinks (binary, streaming) implement the same
 * interface and slot into the same --trace-out plumbing.
 */

#ifndef LATTE_TRACE_SINK_HH
#define LATTE_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "tracer.hh"

namespace latte
{

/** Consumer of recorded trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Emit every event @p tracer retained, as one traced run labelled
     * @p label. May be called once per run; runs appear side by side in
     * the exported trace.
     */
    virtual void writeRun(const std::string &label,
                          const Tracer &tracer) = 0;

    /** Write any trailer. No writeRun() may follow. */
    virtual void finish() = 0;
};

/**
 * Chrome trace-event JSON writer. Each run becomes one "process" (pid),
 * each SM one "thread" (tid) inside it; events are instants, EP
 * boundaries additionally emit latency-tolerance counter tracks.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Streams to @p os; the caller keeps the stream alive. */
    explicit ChromeTraceSink(std::ostream &os);

    void writeRun(const std::string &label, const Tracer &tracer) override;
    void finish() override;

  private:
    void emit(const TraceEvent &event, std::uint32_t pid);

    std::ostream &os_;
    std::uint32_t nextPid_ = 0;
    bool firstEvent_ = true;
    bool finished_ = false;
};

} // namespace latte

#endif // LATTE_TRACE_SINK_HH
