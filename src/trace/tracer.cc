#include "tracer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace latte
{

namespace
{

struct KindInfo
{
    const char *name;
    const char *category;
};

constexpr KindInfo kKindInfo[kNumTraceEventKinds] = {
    {"kernel_begin", "sm"},      // KernelBegin
    {"kernel_end", "sm"},        // KernelEnd
    {"warp_issue", "sm"},        // WarpIssue
    {"l1_hit", "l1"},            // L1Hit
    {"l1_miss", "l1"},           // L1Miss
    {"l1_miss_merged", "l1"},    // L1MissMerged
    {"l1_reject", "l1"},         // L1Reject
    {"l1_insert", "l1"},         // L1Insert
    {"l1_evict", "l1"},          // L1Evict
    {"l1_write_inval", "l1"},    // L1WriteInval
    {"decomp_enqueue", "l1"},    // DecompEnqueue
    {"mshr_alloc", "l1"},        // MshrAlloc
    {"mshr_full", "l1"},         // MshrFull
    {"l2_hit", "mem"},           // L2Hit
    {"l2_miss", "mem"},          // L2Miss
    {"dram_access", "mem"},      // DramAccess
    {"ep_boundary", "latte"},    // EpBoundary
    {"sampler_vote", "latte"},   // SamplerVote
    {"mode_change", "latte"},    // ModeChange
    {"sc_rebuild", "latte"},     // ScRebuild
    {"l2_insert", "mem"},          // L2Insert
    {"l2_evict", "mem"},           // L2Evict
    {"l2_write_inval", "mem"},     // L2WriteInval
    {"l2_decomp_enqueue", "mem"},  // L2DecompEnqueue
    {"l2_ep_boundary", "mem"},     // L2EpBoundary
    {"l2_sampler_vote", "mem"},    // L2SamplerVote
    {"l2_mode_change", "mem"},     // L2ModeChange
    {"link_compress", "mem"},      // LinkCompress
};

} // namespace

const char *
traceEventKindName(TraceEventKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    latte_assert(index < kNumTraceEventKinds, "bad trace event kind");
    return kKindInfo[index].name;
}

const char *
traceEventKindCategory(TraceEventKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    latte_assert(index < kNumTraceEventKinds, "bad trace event kind");
    return kKindInfo[index].category;
}

Tracer::Tracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{}

void
Tracer::clear()
{
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
    counts_.fill(0);
}

} // namespace latte
