#include "sink.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace latte
{

namespace
{

/** JSON string literal with the escapes a run label can need. */
std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
number(std::uint64_t u)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
    return buf;
}

std::string
number(double d)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream &os)
    : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

void
ChromeTraceSink::writeRun(const std::string &label, const Tracer &tracer)
{
    latte_assert(!finished_, "writeRun() after finish()");
    const std::uint32_t pid = nextPid_++;

    if (!firstEvent_)
        os_ << ',';
    firstEvent_ = false;
    os_ << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":" << quoted(label) << "}}";

    tracer.forEach([&](const TraceEvent &event) { emit(event, pid); });

    if (tracer.dropped() > 0) {
        os_ << ",\n{\"ph\":\"M\",\"name\":\"trace_dropped_events\","
               "\"pid\":" << pid << ",\"tid\":0,\"args\":{\"count\":"
            << tracer.dropped() << "}}";
    }
}

void
ChromeTraceSink::emit(const TraceEvent &event, std::uint32_t pid)
{
    const std::uint32_t tid =
        event.sm == kNoTraceSm ? 9999u : event.sm;
    const auto mode = static_cast<CompressorId>(event.mode);

    os_ << ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
        << traceEventKindName(event.kind) << "\",\"cat\":\""
        << traceEventKindCategory(event.kind) << "\",\"ts\":"
        << number(event.ts) << ",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"arg0\":" << number(event.arg0) << ",\"arg1\":"
        << event.arg1 << ",\"mode\":\"" << compressorName(mode)
        << "\",\"value\":" << number(event.value) << "}}";

    // EP boundaries additionally feed a per-SM counter track so the
    // Fig. 5 tolerance curve is directly visible in Perfetto.
    if (event.kind == TraceEventKind::EpBoundary) {
        os_ << ",\n{\"ph\":\"C\",\"name\":\"sm" << tid
            << "_latency_tolerance\",\"ts\":" << number(event.ts)
            << ",\"pid\":" << pid << ",\"args\":{\"cycles\":"
            << number(event.value) << "}}";
    }
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
}

} // namespace latte
