/**
 * @file
 * The structured event tracer: a flight recorder backed by a fixed-size
 * ring buffer. Components hold a `Tracer *` that is null when tracing is
 * off, so the disabled hot path costs a single branch and the enabled
 * path a bounds check plus a 32-byte store — no allocation, no locks
 * (each simulation run owns its own tracer and runs on one thread).
 *
 * When the ring fills, the oldest events are overwritten (classic
 * flight-recorder semantics) but the per-kind counters keep the exact
 * totals, so event counts always reconcile with the StatGroup counters
 * even after drops.
 */

#ifndef LATTE_TRACE_TRACER_HH
#define LATTE_TRACE_TRACER_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "events.hh"

namespace latte
{

/** Ring-buffer event recorder; one per simulated run. */
class Tracer
{
  public:
    /** Default ring capacity (events), ~8 MiB of buffer. */
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Runtime gate; a disabled tracer drops events after one branch. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Staging mode, for the parallel simulation phase: the buffer grows
     * instead of wrapping (so no event is ever lost before the barrier
     * replays it into the run's real tracer) and the per-kind counters
     * are left untouched (the replay will count each event exactly
     * once). A staging tracer is a per-SM holding pen, never exported.
     */
    void setStaging(bool staging) { staging_ = staging; }
    bool staging() const { return staging_; }

    /** Event @p i of a staging tracer, in record order. */
    const TraceEvent &stagedAt(std::size_t i) const { return ring_[i]; }

    /** Record one event (hot path). */
    void
    record(const TraceEvent &event)
    {
        if (!enabled_)
            return;
        if (staging_) {
            if (head_ == ring_.size())
                ring_.resize(std::max<std::size_t>(ring_.size() * 2, 64));
            ring_[head_++] = event;
            ++size_;
            return;
        }
        counts_[static_cast<std::size_t>(event.kind)]++;
        ++recorded_;
        ring_[head_] = event;
        if (++head_ == ring_.size())
            head_ = 0;
        if (size_ < ring_.size())
            ++size_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Events currently held in the ring. */
    std::size_t size() const { return size_; }

    /** Total record() calls while enabled (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return recorded_ - size_; }

    /** Exact number of events of @p kind recorded (drops included). */
    std::uint64_t
    countOf(TraceEventKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }

    /** Visit retained events oldest-to-newest. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t start =
            size_ < ring_.size() ? 0 : head_; // oldest retained slot
        for (std::size_t i = 0; i < size_; ++i)
            fn(ring_[(start + i) % ring_.size()]);
    }

    /** Drop all recorded events and counters. */
    void clear();

  private:
    bool enabled_ = true;
    bool staging_ = false;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::array<std::uint64_t, kNumTraceEventKinds> counts_{};
};

} // namespace latte

#endif // LATTE_TRACE_TRACER_HH
