#include "sweep.hh"

#include <chrono>
#include <fstream>

#include "common/logging.hh"
#include "json.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"
#include "sim/thread_pool.hh"
#include "trace/sink.hh"

namespace latte::runner
{

namespace
{

RunnerOptions
toRunnerOptions(const SweepCliOptions &cli)
{
    if (!cli.resumePath.empty() && cli.cacheDir.empty())
        latte_warn("--resume without --cache-dir: finished ok cells "
                   "have no stored results and will re-run");
    return RunnerOptions{
        .threads = cli.jobs,
        .cacheDir = cli.cacheDir,
        .progress = cli.progress,
        .journalPath = cli.resumePath,
        .cellTimeoutMs = cli.cellTimeoutMs,
        .cellCycleBudget = cli.cellCycleBudget,
        .maxRetries = cli.retries,
        .retryBackoffMs = cli.retryBackoffMs,
    };
}

} // namespace

Sweep::Sweep(int &argc, char **argv, DriverOptions defaults)
    : Sweep(parseSweepArgs(argc, argv), std::move(defaults))
{}

Sweep::Sweep(SweepCliOptions cli, DriverOptions defaults)
    : defaults_(std::move(defaults)), runner_(toRunnerOptions(cli)),
      jsonPath_(cli.jsonPath), traceOut_(cli.traceOut),
      timelineOut_(cli.timelineOut), metricsOut_(cli.metricsOut),
      metricsInterval_(cli.metricsInterval), benchOut_(cli.benchOut)
{
    if (cli.profile)
        metrics::setProfilerEnabled(true);
    // --compress-backend already switched the process-wide dispatch at
    // parse time; recording it here makes every cell's result envelope
    // carry the name (it is not part of the result-cache key).
    if (!cli.compressBackend.empty())
        defaults_.compressBackend = cli.compressBackend;
    // --l2-compress / --link-compress change simulated behaviour (and
    // thus the cell fingerprints, via the config JSON); both were
    // syntax-validated at parse time.
    if (!cli.l2Compress.empty())
        parseLevelCompressSpec(cli.l2Compress, defaults_.cfg.l2);
    if (!cli.linkCompress.empty())
        parseLinkCompressSpec(cli.linkCompress,
                              defaults_.cfg.linkCompress);
    // --sim-threads is per-run, not process-wide: the driver resolves
    // it when each cell starts. Also speed-only, also not cache-keyed.
    if (!cli.simThreads.empty()) {
        defaults_.simThreads = cli.simThreads;
        // -j worker threads each drive their own SM pool, so the two
        // knobs multiply; epoch barriers thrash once threads exceed
        // cores.
        if (cli.jobs != 1 &&
            resolveSimThreads(cli.simThreads, nullptr) > 1)
            latte_warn("--sim-threads with -j != 1 multiplies thread "
                       "counts; prefer -j 1 for parallel-SM sweeps");
    }
}

void
Sweep::addBenchExtra(const std::string &key, Json value)
{
    benchExtra_[key] = std::move(value);
}

Sweep::~Sweep()
{
    writeJson();
    writeTrace();
    writeTimeline();
    writeMetrics();
    writeBench();
}

void
Sweep::add(const Workload &workload, PolicyKind kind)
{
    add(workload, kind, defaults_);
}

void
Sweep::add(const Workload &workload, PolicyKind kind,
           const DriverOptions &options)
{
    RunRequest request;
    request.workload = &workload;
    request.policy = kind;
    request.options = options;
    add(std::move(request));
}

void
Sweep::add(RunRequest request)
{
    indexOf(request);
}

void
Sweep::add(const SweepSpec &spec)
{
    std::vector<RunRequest> cells;
    std::string error;
    if (!spec.expand(cells, &error, defaults_))
        latte_fatal("invalid sweep spec{}{}: {}",
                    spec.name.empty() ? "" : " ",
                    spec.name, error);
    for (RunRequest &cell : cells)
        add(std::move(cell));
}

std::size_t
Sweep::indexOf(const RunRequest &request)
{
    const RunKey key = RunKey::of(request);
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;

    const std::size_t slot = requests_.size();
    requests_.push_back(request);
    outcomes_.emplace_back();
    done_.push_back(false);
    // Under --trace-out every cell records into its own flight
    // recorder; a non-null tracer also makes the runner bypass the
    // disk cache, so events are always produced.
    tracers_.push_back(traceOut_.empty()
                           ? nullptr
                           : std::make_unique<Tracer>(kCellTraceCapacity));
    requests_.back().tracer = tracers_.back().get();
    // Same deal for --metrics-out: a per-cell registry (cells run on
    // worker threads, so sharing one would race) that also forces a
    // real simulation.
    metrics_.push_back(metricsOut_.empty()
                           ? nullptr
                           : std::make_unique<metrics::MetricRegistry>(
                                 metricsInterval_));
    requests_.back().metrics = metrics_.back().get();
    pending_.push_back(slot);
    index_.emplace(key, slot);
    return slot;
}

void
Sweep::run()
{
    if (pending_.empty())
        return;

    std::vector<RunRequest> batch;
    batch.reserve(pending_.size());
    for (const std::size_t slot : pending_)
        batch.push_back(requests_[slot]);

    const auto start = std::chrono::steady_clock::now();
    std::vector<RunOutcome> batch_outcomes = runner_.runAll(batch);
    runSeconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        outcomes_[pending_[i]] = std::move(batch_outcomes[i]);
        done_[pending_[i]] = true;
    }
    pending_.clear();
}

const WorkloadRunResult &
Sweep::get(const Workload &workload, PolicyKind kind)
{
    return get(workload, kind, defaults_);
}

const WorkloadRunResult &
Sweep::get(const Workload &workload, PolicyKind kind,
           const DriverOptions &options)
{
    RunRequest request;
    request.workload = &workload;
    request.policy = kind;
    request.options = options;
    return get(request);
}

const WorkloadRunResult &
Sweep::get(const RunRequest &request)
{
    const RunOutcome &cell = outcome(request);
    if (!cell.ok()) {
        // get() is the binary boundary of the failure-as-values API:
        // callers asking for the numbers of a cell that has none get a
        // diagnostic exit, not a dangling reference.
        latte_fatal("sweep cell {}/{} seed {} did not finish: {}",
                    cell.error.workload, cell.error.policyLabel,
                    cell.error.seed, to_string(cell.error));
    }
    return cell.value();
}

const RunOutcome &
Sweep::outcome(const Workload &workload, PolicyKind kind)
{
    return outcome(workload, kind, defaults_);
}

const RunOutcome &
Sweep::outcome(const Workload &workload, PolicyKind kind,
               const DriverOptions &options)
{
    RunRequest request;
    request.workload = &workload;
    request.policy = kind;
    request.options = options;
    return outcome(request);
}

const RunOutcome &
Sweep::outcome(const RunRequest &request)
{
    const std::size_t slot = indexOf(request);
    if (!done_[slot])
        run();
    return outcomes_[slot];
}

void
Sweep::writeJson() const
{
    if (jsonPath_.empty())
        return;

    metrics::ProfileScope profile(metrics::ProfileZone::RunnerSerialize);
    // Every finished cell is exported, failed ones included: a partial
    // sweep still yields a complete document whose failed cells carry
    // their cause and retry history in the outcome envelope.
    std::vector<RunOutcome> finished;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (done_[i])
            finished.push_back(outcomes_[i]);
    }

    std::ofstream out(jsonPath_);
    if (!out) {
        latte_warn("cannot write --json file {}", jsonPath_);
        return;
    }
    out << outcomesToJson(finished).dump(2) << "\n";
}

void
Sweep::writeTrace() const
{
    if (traceOut_.empty())
        return;

    std::ofstream out(traceOut_);
    if (!out) {
        latte_warn("cannot write --trace-out file {}", traceOut_);
        return;
    }
    ChromeTraceSink sink(out);
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (!done_[i] || !tracers_[i] || !outcomes_[i].result)
            continue;
        const WorkloadRunResult &result = *outcomes_[i].result;
        std::string label = result.workload + "/" + result.policyLabel;
        if (result.seed != 0)
            label += strfmt("/seed{}", result.seed);
        sink.writeRun(label, *tracers_[i]);
    }
    sink.finish();
}

void
Sweep::writeTimeline() const
{
    if (timelineOut_.empty())
        return;

    std::vector<WorkloadRunResult> finished;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (done_[i] && outcomes_[i].result)
            finished.push_back(*outcomes_[i].result);
    }

    std::ofstream out(timelineOut_);
    if (!out) {
        latte_warn("cannot write --timeline-out file {}", timelineOut_);
        return;
    }
    out << timelineToJson(finished).dump(2) << "\n";
}

void
Sweep::writeMetrics() const
{
    if (metricsOut_.empty())
        return;

    std::ofstream out(metricsOut_);
    if (!out) {
        latte_warn("cannot write --metrics-out file {}", metricsOut_);
        return;
    }

    const metrics::ExportFormat format =
        metrics::exportFormatForPath(metricsOut_);
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (!done_[i] || !metrics_[i] || !outcomes_[i].result)
            continue;
        const WorkloadRunResult &result = *outcomes_[i].result;
        metrics::MetricRegistry::Labels labels = {
            {"workload", result.workload},
            {"policy", result.policyLabel},
        };
        if (result.seed != 0)
            labels.emplace_back("seed", strfmt("{}", result.seed));
        metrics_[i]->exportAs(out, format, labels);
    }

    // Profiler totals are process-wide, so they are appended once
    // rather than per cell. CSV stays a pure per-cell time series.
    if (metrics::profilerEnabled()) {
        if (format == metrics::ExportFormat::Jsonl)
            metrics::writeProfileJsonl(out);
        else if (format == metrics::ExportFormat::Prometheus)
            metrics::writeProfilePrometheus(out);
    }
}

void
Sweep::writeBench() const
{
    if (benchOut_.empty())
        return;

    std::uint64_t cycles = 0, instructions = 0, accesses = 0;
    std::size_t cells = 0;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        if (!done_[i] || !outcomes_[i].result)
            continue;
        const WorkloadRunResult &result = *outcomes_[i].result;
        ++cells;
        cycles += result.cycles;
        instructions += result.instructions;
        accesses += result.hits + result.misses;
    }

    const ExperimentRunner::Stats &stats = runner_.stats();
    Json::Object report;
    report["schema"] = "latte-bench-v1";
    report["cells"] = static_cast<std::uint64_t>(cells);
    report["executed"] = static_cast<std::uint64_t>(stats.executed);
    report["cache_hits"] = static_cast<std::uint64_t>(stats.cacheHits);
    report["journal_skips"] =
        static_cast<std::uint64_t>(stats.journalSkips);
    report["failed_cells"] = static_cast<std::uint64_t>(stats.failed);
    report["retried_cells"] = static_cast<std::uint64_t>(stats.retried);
    report["threads"] = runner_.effectiveThreads(cells ? cells : 1);
    report["wall_seconds"] = runSeconds_;
    report["sim_cycles"] = cycles;
    report["sim_instructions"] = instructions;
    report["l1_accesses"] = accesses;
    report["cycles_per_second"] =
        runSeconds_ > 0 ? static_cast<double>(cycles) / runSeconds_ : 0.0;
    report["instructions_per_second"] =
        runSeconds_ > 0 ? static_cast<double>(instructions) / runSeconds_
                        : 0.0;
    report["near_miss_cells"] =
        static_cast<std::uint64_t>(stats.nearMisses);

    // Runtime introspection of the --sim-threads pool: process-wide
    // aggregate over every pool the sweep's runs created. Purely
    // observational — deliberately outside the result documents.
    {
        const SimPoolStats pool = simPoolGlobalStats();
        Json::Object poolJson;
        poolJson["epochs"] = pool.epochs;
        poolJson["items"] = pool.items;
        poolJson["caller_items"] = pool.callerItems;
        poolJson["sleep_transitions"] = pool.sleepTransitions;
        Json::Object wait;
        wait["count"] = pool.barrierWaitNs.count();
        wait["p50_ns"] = pool.barrierWaitNs.percentile(50.0);
        wait["p90_ns"] = pool.barrierWaitNs.percentile(90.0);
        wait["p99_ns"] = pool.barrierWaitNs.percentile(99.0);
        wait["max_ns"] = pool.barrierWaitNs.max();
        poolJson["barrier_wait"] = Json(std::move(wait));
        report["sim_pool"] = Json(std::move(poolJson));
    }

    // Cell wall-time distribution of this sweep, in milliseconds.
    {
        const metrics::LatencyHistogram &wall = runner_.cellWallMs();
        Json::Object wallJson;
        wallJson["count"] = wall.count();
        wallJson["p50_ms"] = wall.percentile(50.0);
        wallJson["p90_ms"] = wall.percentile(90.0);
        wallJson["max_ms"] = wall.max();
        report["cell_wall_ms"] = Json(std::move(wallJson));
    }

    for (const auto &[key, value] : benchExtra_)
        report[key] = value;

    std::ofstream out(benchOut_);
    if (!out) {
        latte_warn("cannot write --bench-out file {}", benchOut_);
        return;
    }
    out << Json(std::move(report)).dump(2) << "\n";
}

} // namespace latte::runner
