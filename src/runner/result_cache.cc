#include "result_cache.hh"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "json.hh"
#include "metrics/profiler.hh"

namespace latte::runner
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

RunKey
RunKey::of(const RunRequest &request)
{
    latte_assert(request.workload != nullptr);
    return RunKey{
        .workload = request.workload->abbr,
        .policyLabel = runRequestLabel(request),
        .seed = request.seed,
        .configHash = fnv1a(toJson(request.options).dump()),
    };
}

std::string
RunKey::fingerprint() const
{
    std::string safe_label;
    for (const char c : policyLabel) {
        safe_label += (std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '-' || c == '_')
                          ? c
                          : '_';
    }
    char tail[40];
    std::snprintf(tail, sizeof(tail), "%016llx-%llu",
                  static_cast<unsigned long long>(configHash),
                  static_cast<unsigned long long>(seed));
    return workload + "-" + safe_label + "-" + tail;
}

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory))
{
    latte_assert(!directory_.empty(),
                 "ResultCache needs a directory path");
}

std::string
ResultCache::path(const RunKey &key) const
{
    return directory_ + "/" + key.fingerprint() + ".json";
}

std::optional<RunOutcome>
ResultCache::lookup(const RunKey &key) const
{
    std::ifstream in(path(key));
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();

    std::string error;
    const Json json = Json::parse(text.str(), &error);
    if (!error.empty()) {
        latte_warn("result cache: ignoring unparsable {} ({})",
                   path(key), error);
        return std::nullopt;
    }
    RunOutcome outcome;
    if (!fromJson(json, outcome) || !outcome.ok()) {
        latte_warn("result cache: ignoring stale-schema {}", path(key));
        return std::nullopt;
    }
    return outcome;
}

void
ResultCache::store(const RunKey &key, const RunOutcome &outcome) const
{
    latte_assert(outcome.ok(),
                 "only Ok outcomes belong in the result cache");
    metrics::ProfileScope profile(metrics::ProfileZone::RunnerSerialize);
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        latte_warn("result cache: cannot create {} ({})", directory_,
                   ec.message());
        return;
    }

    const std::string final_path = path(key);
    // Unique temp name per writer; rename makes the publish atomic, so
    // concurrent writers of the same cell cannot interleave bytes. The
    // pid is part of the name because a cache directory may be shared
    // by several processes (two sweeps, or the latted daemon next to a
    // direct run) whose thread-id hashes can collide.
    const std::string tmp_path = strfmt(
        "{}.tmp{}-{}", final_path,
        static_cast<std::uint64_t>(::getpid()),
        std::hash<std::thread::id>{}(std::this_thread::get_id()));

    {
        std::ofstream out(tmp_path);
        if (!out) {
            latte_warn("result cache: cannot write {}", tmp_path);
            return;
        }
        out << toJson(outcome).dump(2) << "\n";
    }
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        latte_warn("result cache: cannot publish {} ({})", final_path,
                   ec.message());
        std::filesystem::remove(tmp_path, ec);
    }
}

} // namespace latte::runner
