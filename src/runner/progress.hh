/**
 * @file
 * Thread-safe sweep progress/ETA reporting. One line per completed
 * cell: counter, label, wall time, cache-hit marker and a
 * remaining-time estimate from the mean completed-cell duration scaled
 * by the worker count. Lines are emitted through the logger's
 * serialized sink (logRawLine), so they cannot tear against concurrent
 * log output and stay machine-readable under --log-json.
 */

#ifndef LATTE_RUNNER_PROGRESS_HH
#define LATTE_RUNNER_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace latte::runner
{

class ProgressReporter
{
  public:
    /** @p enabled false silences all output (tests, --json pipelines). */
    ProgressReporter(std::size_t total, unsigned workers, bool enabled);

    /** Record one finished cell. @p cached marks disk-cache hits. */
    void completed(const std::string &label, double seconds, bool cached);

  private:
    std::mutex mutex_;
    std::size_t total_;
    std::size_t done_ = 0;
    unsigned workers_;
    bool enabled_;
    double busySeconds_ = 0; //!< summed wall time of executed cells
    std::size_t executed_ = 0;
};

} // namespace latte::runner

#endif // LATTE_RUNNER_PROGRESS_HH
