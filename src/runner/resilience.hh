/**
 * @file
 * The resilience subsystem of sweep execution:
 *
 *  - SweepJournal: an append-only on-disk manifest of completed cells,
 *    keyed by the RunKey fingerprint. Each finished cell (ok or not)
 *    appends one JSONL record; on --resume the journal is replayed and
 *    finished cells are skipped — ok cells are served from the result
 *    cache, failures are reconstructed from the journal — so a sweep
 *    SIGKILLed mid-run resumes to a byte-identical final export.
 *    A truncated trailing line (the kill landed mid-write) degrades to
 *    "cell not finished", never to a wrong result.
 *
 *  - Watchdog: a monitor thread enforcing the per-cell wall-clock
 *    budget. Workers arm their attempt's CancelToken before running a
 *    cell; the watchdog cancels tokens whose deadline passed with
 *    reason WallClockTimeout, and the GPU cycle loop winds the cell
 *    down cooperatively.
 *
 *  - RetryPolicy: bounded retry-with-backoff for failed cells.
 */

#ifndef LATTE_RUNNER_RESILIENCE_HH
#define LATTE_RUNNER_RESILIENCE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hh"

namespace latte::runner
{

/** Bounded retry-with-backoff for transiently failing cells. */
struct RetryPolicy
{
    /** Extra attempts after the first failure (0 = fail fast). */
    std::uint32_t maxRetries = 0;
    /** Sleep before retry k is backoffMs * 2^(k-1), capped below. */
    std::uint64_t backoffMs = 100;
    std::uint64_t maxBackoffMs = 5'000;

    /** Whether a @p status outcome is worth another attempt. */
    bool
    shouldRetry(RunStatus status, std::uint32_t attempt) const
    {
        if (attempt > maxRetries)
            return false;
        // External cancellation is a decision, not a transient fault.
        return status == RunStatus::Failed ||
               status == RunStatus::TimedOut;
    }

    std::uint64_t
    backoffForRetry(std::uint32_t retry) const
    {
        std::uint64_t backoff = backoffMs;
        for (std::uint32_t i = 1; i < retry && backoff < maxBackoffMs;
             ++i)
            backoff *= 2;
        return std::min(backoff, maxBackoffMs);
    }
};

/**
 * Append-only manifest of finished sweep cells. Thread-safe: workers
 * record cells concurrently; each record is one flushed JSONL line, so
 * a SIGKILL loses at most the line being written.
 */
class SweepJournal
{
  public:
    /** Opens @p path for append, replaying any existing records. */
    explicit SweepJournal(std::string path);

    /**
     * The recorded outcome of @p fingerprint, if that cell finished in
     * a previous (or this) invocation. Ok entries carry no result body
     * — the result lives in the result cache; failures are complete.
     */
    std::optional<RunOutcome> find(const std::string &fingerprint) const;

    /** Append one finished cell (the result body is not journaled). */
    void record(const std::string &fingerprint,
                const RunOutcome &outcome);

    /** Records loaded from disk plus records appended this run. */
    std::size_t size() const;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    mutable std::mutex mutex_;
    std::map<std::string, RunOutcome> entries_;
    std::ofstream out_;
};

/**
 * Wall-clock watchdog: cancels armed tokens whose deadline passed.
 * One instance monitors all worker threads of a sweep.
 */
class Watchdog
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Starts the monitor thread; @p pollMs bounds cancel latency. */
    explicit Watchdog(std::uint64_t pollMs = 10);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Watch @p token and cancel it (reason WallClockTimeout) if it is
     * still armed after @p timeoutMs. Returns a slot id for disarm().
     * @p label names the guarded cell in the watchdog's own log lines
     * (the monitor thread has no access to the worker's log context).
     */
    std::uint64_t arm(CancelToken *token, std::uint64_t timeoutMs,
                      std::string label = {});

    /** Stop watching slot @p id (the cell finished). */
    void disarm(std::uint64_t id);

    /** Tokens the watchdog has cancelled since construction. */
    std::uint64_t expiredCount() const;

    /**
     * Cells that finished inside their budget but consumed more than
     * half of it — the early-warning signal that a config's timeout is
     * about to start biting.
     */
    std::uint64_t nearMissCount() const;

  private:
    void loop();

    struct Slot
    {
        CancelToken *token;
        Clock::time_point deadline;
        Clock::time_point armedAt;
        std::uint64_t timeoutMs;
        std::string label;
    };

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::map<std::uint64_t, Slot> slots_;
    std::uint64_t nextId_ = 1;
    std::uint64_t expired_ = 0;
    std::uint64_t nearMisses_ = 0;
    bool stop_ = false;
    std::chrono::milliseconds poll_;
    std::thread thread_;
};

/**
 * RAII guard pairing Watchdog::arm/disarm around one cell attempt.
 * A null watchdog (wall-clock budget disabled) makes it a no-op.
 */
class WatchdogScope
{
  public:
    WatchdogScope(Watchdog *watchdog, CancelToken *token,
                  std::uint64_t timeoutMs, std::string label = {})
        : watchdog_(watchdog),
          id_(watchdog ? watchdog->arm(token, timeoutMs,
                                       std::move(label))
                       : 0)
    {}

    ~WatchdogScope()
    {
        if (watchdog_)
            watchdog_->disarm(id_);
    }

    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

  private:
    Watchdog *watchdog_;
    std::uint64_t id_;
};

} // namespace latte::runner

#endif // LATTE_RUNNER_RESILIENCE_HH
