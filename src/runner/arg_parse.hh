/**
 * @file
 * The tiny shared command-line parser every bench binary and example
 * uses for the sweep-runner flags:
 *
 *   -j N, --jobs N     worker threads (0 = hardware concurrency)
 *   --cache-dir DIR    on-disk result cache directory
 *   --json PATH        write all sweep results as a JSON array
 *   --trace-out PATH   write a Chrome trace-event JSON of all runs
 *   --timeline-out PATH write the per-EP time series of all runs
 *   --metrics-out PATH write sampled time-series metrics (format by
 *                      extension: .prom/.txt Prometheus, .csv CSV,
 *                      anything else JSONL)
 *   --metrics-interval N  cycles between metric samples (default 100k)
 *   --profile          enable the wall-clock zone self-profiler
 *   --bench-out PATH   write an end-to-end throughput report JSON
 *   --no-progress      suppress the stderr progress/ETA lines
 *
 * Recognised flags are consumed (argc/argv are compacted in place);
 * everything else — positional workload names, google-benchmark flags —
 * is left for the caller.
 */

#ifndef LATTE_RUNNER_ARG_PARSE_HH
#define LATTE_RUNNER_ARG_PARSE_HH

#include <cstdint>
#include <string>

namespace latte::runner
{

struct SweepCliOptions
{
    unsigned jobs = 0;       //!< 0 = hardware concurrency
    std::string cacheDir;    //!< empty = no persistent cache
    std::string jsonPath;    //!< empty = no JSON export
    std::string traceOut;    //!< empty = no Chrome trace export
    std::string timelineOut; //!< empty = no per-EP time-series export
    std::string metricsOut;  //!< empty = no metrics export
    /** Cycles between metric samples (0 = registry default). */
    std::uint64_t metricsInterval = 0;
    bool profile = false;    //!< enable the zone self-profiler
    std::string benchOut;    //!< empty = no throughput report
    bool progress = true;
};

/**
 * Strip the sweep flags out of @p argv, returning the parsed options.
 * Malformed values (e.g. a missing argument) latte_fatal() with usage.
 */
SweepCliOptions parseSweepArgs(int &argc, char **argv);

/** One-line usage text for the shared flags (for --help output). */
const char *sweepArgsUsage();

} // namespace latte::runner

#endif // LATTE_RUNNER_ARG_PARSE_HH
