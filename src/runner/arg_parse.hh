/**
 * @file
 * The shared command-line surface every bench binary and example gets
 * through Sweep: one declarative ArgSpec table defines each flag's
 * names, value placeholder, help line and parse action, and both the
 * parser and the generated --help output are derived from it — so a
 * new flag (as --resume and the watchdog knobs were) lands once and
 * appears in every sweep binary.
 *
 *   -j N, --jobs N        worker threads (0 = hardware concurrency)
 *   --cache-dir DIR       on-disk result cache directory
 *   --resume PATH         sweep journal: record finished cells, skip
 *                         them when re-invoked after a crash/kill
 *   --cell-timeout SECS   per-cell wall-clock watchdog budget
 *   --cell-cycle-budget N per-cell simulated-cycle budget
 *   --retries N           extra attempts for failed/timed-out cells
 *   --retry-backoff-ms N  base backoff between attempts
 *   --json PATH           write all sweep outcomes as a JSON array
 *   --trace-out PATH      write a Chrome trace-event JSON of all runs
 *   --timeline-out PATH   write the per-EP time series of all runs
 *   --metrics-out PATH    write sampled time-series metrics (format by
 *                         extension: .prom/.txt Prometheus, .csv CSV,
 *                         anything else JSONL)
 *   --metrics-interval N  cycles between metric samples (default 100k)
 *   --profile             enable the wall-clock zone self-profiler
 *   --bench-out PATH      write an end-to-end throughput report JSON
 *   --no-progress         suppress the stderr progress/ETA lines
 *   --compress-backend B  compression kernel backend
 *                         (auto|scalar|sse4|avx2; speed only)
 *   --sim-threads N       SM-stepping threads inside each run
 *                         (count or "auto"; speed only)
 *   --log-level L         stderr log threshold
 *                         (error|warn|info|debug|trace)
 *   --log-json            JSON-lines log records
 *   -q, --quiet           no progress lines, threshold raised to warn
 *   --help                print the generated flag table and exit
 *
 * Recognised flags are consumed (argc/argv are compacted in place);
 * everything else — positional workload names, google-benchmark flags —
 * is left for the caller.
 */

#ifndef LATTE_RUNNER_ARG_PARSE_HH
#define LATTE_RUNNER_ARG_PARSE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace latte::runner
{

struct SweepCliOptions
{
    unsigned jobs = 0;       //!< 0 = hardware concurrency
    std::string cacheDir;    //!< empty = no persistent cache
    std::string jsonPath;    //!< empty = no JSON export
    std::string traceOut;    //!< empty = no Chrome trace export
    std::string timelineOut; //!< empty = no per-EP time-series export
    std::string metricsOut;  //!< empty = no metrics export
    /** Cycles between metric samples (0 = registry default). */
    std::uint64_t metricsInterval = 0;
    bool profile = false;    //!< enable the zone self-profiler
    std::string benchOut;    //!< empty = no throughput report
    bool progress = true;
    /**
     * Compression kernel backend (auto|scalar|sse4|avx2). Applied
     * process-wide at parse time and recorded in DriverOptions for the
     * result envelopes; bit-identical results either way, so it is not
     * part of the result-cache key. Empty = auto.
     */
    std::string compressBackend;
    /**
     * SM-stepping threads inside each run ("auto", a positive count, or
     * empty = LATTE_SIM_THREADS / default 1). The parallel cycle loop
     * is bit-identical to sequential, so like compressBackend this is
     * speed only and not part of the result-cache key.
     */
    std::string simThreads;
    /**
     * Compressed-L2 spec ("off", "static:<algo>", "latte"). Unlike the
     * two knobs above this one changes simulated behaviour: the Sweep
     * ctor applies it to the default DriverOptions, and it reaches the
     * RunKey fingerprint through the config JSON (emitted only when
     * not "off", so existing fingerprints are untouched). Empty =
     * leave the defaults alone.
     */
    std::string l2Compress;
    /** Link-compression spec ("off" or an algorithm); empty = keep. */
    std::string linkCompress;

    // --- Resilience ----------------------------------------------------
    std::string resumePath;  //!< sweep journal; empty = no resume
    /** Per-cell wall-clock budget in ms (0 = unlimited). */
    std::uint64_t cellTimeoutMs = 0;
    /** Per-cell simulated-cycle budget (0 = unlimited). */
    std::uint64_t cellCycleBudget = 0;
    /** Extra attempts for Failed/TimedOut cells. */
    std::uint32_t retries = 0;
    /** Base backoff before a retry, doubled per attempt. */
    std::uint64_t retryBackoffMs = 100;

    // --- Observability -------------------------------------------------
    /**
     * Log threshold name (error|warn|info|debug|trace). Applied
     * process-wide at parse time via setLogLevel(); empty = default
     * (info, or LATTE_LOG_LEVEL). Observational only.
     */
    std::string logLevel;
    /** JSON-lines log records instead of text (setLogJson at parse). */
    bool logJson = false;
    /** --quiet: no progress lines, log threshold raised to warn. */
    bool quiet = false;
};

/**
 * One entry of the declarative flag table: the parser loop and the
 * --help text are both generated from kSweepArgSpecs.
 */
struct ArgSpec
{
    const char *name;  //!< long form, e.g. "--cache-dir"
    const char *alias; //!< short form ("-j") or nullptr
    const char *value; //!< value placeholder ("<dir>") or nullptr
    const char *help;  //!< one-line description
    /** Consume the (possibly empty) value into @p options. */
    void (*apply)(SweepCliOptions &options, const std::string &value);
};

/** The flag table itself, for tools that want to reflect over it. */
const ArgSpec *sweepArgSpecs(std::size_t &count);

/**
 * A grouped declarative command-line parser. Binaries that need flags
 * beyond the shared sweep set build one of these instead of hand-rolled
 * argv loops: registerCommonFlags() pulls in the whole sweep table
 * once, add() declares the binary-specific flags, and the generated
 * --help output keeps the two groups visually separate.
 *
 *   ArgParser parser("lattesim");
 *   parser.registerCommonFlags(cli);            // --json, --cache-dir, ...
 *   parser.beginGroup("lattesim options");
 *   parser.add("--workload", nullptr, "<abbr>", "workload to run",
 *              [&](const std::string &v) { abbr = v; });
 *   parser.parse(argc, argv);                   // strips known flags
 */
class ArgParser
{
  public:
    /** One registered flag; a null/empty `value` marks a boolean. */
    struct Flag
    {
        std::string name;  //!< long form, e.g. "--workload"
        std::string alias; //!< short form ("-w") or empty
        std::string value; //!< value placeholder ("<abbr>") or empty
        std::string help;  //!< one-line description
        std::function<void(const std::string &)> apply;
    };

    explicit ArgParser(std::string program);

    /**
     * Register the shared sweep flag table (--jobs/--cache-dir/--json/
     * --metrics-out/--retries/...) once, parsing into @p options, under
     * a "sweep options" help group. @p options must outlive parse().
     */
    void registerCommonFlags(SweepCliOptions &options);

    /** Start a titled help group; subsequent add()s land in it. */
    void beginGroup(std::string title);

    /** Declare one binary-specific flag in the current group. */
    void add(Flag flag);
    void add(const char *name, const char *alias, const char *value,
             const char *help,
             std::function<void(const std::string &)> apply);

    /**
     * Strip every registered flag out of @p argv (compacted in place;
     * unknown arguments are left for the caller). Malformed values
     * latte_fatal() with the usage text; `--help` prints the grouped
     * flag table and exits 0. `-jN` joined form is accepted when the
     * common flags are registered.
     */
    void parse(int &argc, char **argv);

    /** The grouped usage text --help prints. */
    std::string usage() const;

  private:
    struct Group
    {
        std::string title;
        std::vector<Flag> flags;
    };

    const Flag *find(const std::string &arg) const;

    std::string program_;
    std::vector<Group> groups_;
    bool hasCommon_ = false;
};

/**
 * Strip the sweep flags out of @p argv, returning the parsed options.
 * Equivalent to an ArgParser with only registerCommonFlags(). Malformed
 * values (e.g. a missing argument) latte_fatal() with usage; `--help`
 * prints the generated flag table and exits 0.
 */
SweepCliOptions parseSweepArgs(int &argc, char **argv);

/** Usage text generated from the ArgSpec table (for --help output). */
const char *sweepArgsUsage();

} // namespace latte::runner

#endif // LATTE_RUNNER_ARG_PARSE_HH
