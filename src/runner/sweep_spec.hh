/**
 * @file
 * SweepSpec: the declarative, serializable description of a whole
 * experiment sweep — the one sweep-construction API shared by the
 * per-figure bench binaries (via bench_util's grid builders), the
 * latte_client CLI and the latted job service.
 *
 * A spec names a grid:
 *
 *   workloads x policies x seeds x (the cross product of option axes)
 *
 * plus fixed DriverOptions overrides and the resilience knobs a
 * supervising runner may honour (retries, per-cell budgets). It has a
 * canonical JSON form (sorted keys, round-trippable numbers — built on
 * runner/json.*) so the same spec always dumps to the same bytes; that
 * text doubles as the daemon wire format and as the job fingerprint.
 *
 * Option keys are dotted snake_case paths over DriverOptions
 * ("cfg.l1_size_bytes", "cfg.latte.ep_accesses",
 * "max_instructions_per_kernel", ...); sweepOptionKeys() lists them.
 * Cells produced by expand() use the same RunKey material as hand-built
 * RunRequests, so results are shared with (and cache-compatible with)
 * every other front end.
 */

#ifndef LATTE_RUNNER_SWEEP_SPEC_HH
#define LATTE_RUNNER_SWEEP_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json.hh"

namespace latte::runner
{

/** One grid axis: a DriverOptions knob swept over a value list. */
struct SweepAxis
{
    std::string key;          //!< dotted option key
    std::vector<Json> values; //!< numbers (or strings for enum knobs)
};

struct SweepSpec
{
    /** Display name (job label in the service; optional). */
    std::string name;
    /**
     * Workload abbreviations ("KM", "SS", ...). Empty = the whole zoo
     * in Table III order.
     */
    std::vector<std::string> workloads;
    /** Policy names as in policyName(): "Baseline", "LATTE-CC", ... */
    std::vector<std::string> policies;
    /** Per-cell seeds; empty = {0} (the workloads' canonical seeds). */
    std::vector<std::uint64_t> seeds;
    /** Fixed DriverOptions overrides applied to every cell. */
    std::map<std::string, Json> options;
    /** Swept option axes (cross product, declaration order). */
    std::vector<SweepAxis> axes;

    // --- Resilience/execution knobs a supervising runner may honour ---
    std::uint32_t retries = 0;
    std::uint64_t retryBackoffMs = 100;
    std::uint64_t cellTimeoutMs = 0;
    std::uint64_t cellCycleBudget = 0;

    /**
     * First problem with the spec (unknown workload/policy/option key,
     * bad axis value, empty policy list...), or "" when sound.
     */
    std::string validate() const;

    /** Number of cells expand() would produce. */
    std::size_t cellCount() const;

    /**
     * Materialize every cell over @p base options, in the canonical
     * order: workload (outer) x axis combination (first axis slowest)
     * x policy x seed. Cells of a spec with axes get a
     * "Policy[key=value,...]" label so every axis point stays
     * distinguishable in exports and cache keys; specs without axes
     * leave labels empty (identical cells to hand-built requests).
     * Returns false and sets @p error on an invalid spec.
     */
    bool expand(std::vector<RunRequest> &out, std::string *error,
                const DriverOptions &base = {}) const;

    /** Canonical JSON (sorted keys; every field always present). */
    Json toJson() const;

    /** Parse; false + @p error on malformed input (not validated). */
    static bool fromJson(const Json &json, SweepSpec &spec,
                         std::string *error);

    /** FNV-1a of the canonical dump — the spec's identity. */
    std::uint64_t hash() const;
};

/** Every option key applyOption() understands, sorted. */
const std::vector<std::string> &sweepOptionKeys();

/**
 * Apply one dotted-key override to @p options. Returns false and sets
 * @p error on an unknown key or a value of the wrong type/domain.
 */
bool applyOption(DriverOptions &options, const std::string &key,
                 const Json &value, std::string *error);

} // namespace latte::runner

#endif // LATTE_RUNNER_SWEEP_SPEC_HH
