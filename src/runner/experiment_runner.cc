#include "experiment_runner.hh"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "json.hh"
#include "metrics/live.hh"
#include "metrics/profiler.hh"
#include "progress.hh"
#include "resilience.hh"
#include "result_cache.hh"
#include "sim/thread_pool.hh"
#include "trace/tracer.hh"

namespace latte::runner
{

namespace
{

/** Make a cell label safe to use as a file name. */
std::string
sanitizeLabel(std::string label)
{
    for (char &c : label) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '.';
        if (!ok)
            c = '_';
    }
    return label;
}

/** Retained trace events included in a diagnostics snapshot. */
constexpr std::size_t kDiagTraceTail = 64;

/**
 * Dump a correlation-tagged JSON snapshot of a failed cell: the outcome
 * envelope plus whatever observational state the process holds at that
 * moment (profiler zones, sim pool counters, trace tail). Best-effort —
 * a write failure is a warning, never an error, and the snapshot is
 * never read back by the runner itself.
 */
void
writeDiagnostics(const std::string &dir, std::size_t index,
                 const std::string &cell, const RunRequest &request,
                 const RunOutcome &outcome, double wallMs)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    Json::Object doc;
    doc.emplace("schema", "latte-diag-v1");
    doc.emplace("context", logContext());
    doc.emplace("cell", cell);
    doc.emplace("cell_index", static_cast<std::uint64_t>(index));
    doc.emplace("workload", request.workload ? request.workload->abbr
                                             : std::string());
    doc.emplace("policy", runRequestLabel(request));
    doc.emplace("seed", static_cast<std::uint64_t>(request.seed));
    doc.emplace("wall_ms", wallMs);

    RunOutcome envelope = outcome;
    envelope.result.reset();
    doc.emplace("outcome", toJson(envelope));

    if (metrics::profilerEnabled()) {
        const auto zones = metrics::profilerSnapshot();
        Json::Object zonesJson;
        for (std::size_t z = 0; z < zones.size(); ++z) {
            Json::Object zone;
            zone.emplace("calls", zones[z].calls);
            zone.emplace("nanos", zones[z].nanos);
            zonesJson.emplace(
                metrics::profileZoneName(
                    static_cast<metrics::ProfileZone>(z)),
                Json(std::move(zone)));
        }
        doc.emplace("profiler_zones", Json(std::move(zonesJson)));
    }

    const SimPoolStats pool = simPoolGlobalStats();
    Json::Object poolJson;
    poolJson.emplace("epochs", pool.epochs);
    poolJson.emplace("items", pool.items);
    poolJson.emplace("caller_items", pool.callerItems);
    poolJson.emplace("sleep_transitions", pool.sleepTransitions);
    poolJson.emplace("barrier_waits", pool.barrierWaitNs.count());
    doc.emplace("sim_pool", Json(std::move(poolJson)));

    if (request.tracer) {
        const std::size_t total = request.tracer->size();
        const std::size_t skip =
            total > kDiagTraceTail ? total - kDiagTraceTail : 0;
        std::size_t seen = 0;
        Json::Array tail;
        request.tracer->forEach([&](const TraceEvent &event) {
            if (seen++ < skip)
                return;
            Json::Object entry;
            entry.emplace("ts", static_cast<std::uint64_t>(event.ts));
            entry.emplace("kind", traceEventKindName(event.kind));
            entry.emplace("arg0", event.arg0);
            entry.emplace("arg1", event.arg1);
            entry.emplace("value", event.value);
            entry.emplace("sm", static_cast<std::uint64_t>(event.sm));
            tail.push_back(Json(std::move(entry)));
        });
        doc.emplace("trace_tail", Json(std::move(tail)));
        doc.emplace("trace_recorded", request.tracer->recorded());
        doc.emplace("trace_dropped", request.tracer->dropped());
    }

    const std::string path = dir + "/" + sanitizeLabel(cell) + "-" +
                             std::to_string(index) + ".json";
    std::ofstream out(path);
    if (!out) {
        latte_warn("diagnostics: cannot write {}", path);
        return;
    }
    out << Json(std::move(doc)).dump(2) << "\n";
    latte_inform("cell {} failed; diagnostics snapshot at {}", cell,
                 path);
}

} // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options))
{}

unsigned
ExperimentRunner::effectiveThreads(std::size_t cells) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (cells < threads)
        threads = static_cast<unsigned>(cells);
    return threads ? threads : 1;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    stats_ = Stats{};
    cellWallMs_ = metrics::LatencyHistogram();
    std::vector<RunOutcome> outcomes(requests.size());
    if (requests.empty())
        return outcomes;

    std::unique_ptr<ResultCache> cache;
    if (!options_.cacheDir.empty())
        cache = std::make_unique<ResultCache>(options_.cacheDir);
    std::unique_ptr<SweepJournal> journal;
    if (!options_.journalPath.empty())
        journal = std::make_unique<SweepJournal>(options_.journalPath);
    std::unique_ptr<Watchdog> watchdog;
    if (options_.cellTimeoutMs > 0)
        watchdog = std::make_unique<Watchdog>();

    // Failed cells dump a diagnostics snapshot next to the journal
    // unless the caller pointed the snapshots somewhere else.
    std::string diag_dir = options_.diagnosticsDir;
    if (diag_dir.empty() && !options_.journalPath.empty())
        diag_dir = (std::filesystem::path(options_.journalPath)
                        .parent_path() /
                    "diagnostics")
                       .string();

    const RetryPolicy retry{.maxRetries = options_.maxRetries,
                            .backoffMs = options_.retryBackoffMs};

    const unsigned threads = effectiveThreads(requests.size());
    ProgressReporter progress(requests.size(), threads,
                              options_.progress);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> cache_hits{0};
    std::atomic<std::size_t> journal_skips{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> retried{0};
    std::mutex wall_mutex;
    metrics::LatencyHistogram wall_ms;

    // One cell, all attempts: each attempt gets a fresh cancel token
    // (unless the request carries its own), the runner's cycle budget
    // when the request sets none, and only the fault points armed for
    // that attempt number — so a transient FaultPoint{firstAttempts=1}
    // clears on retry. The watchdog guards every attempt separately.
    auto attemptCell = [&](const RunRequest &request,
                           const std::string &cell_name) -> RunOutcome {
        std::vector<RunError> history;
        for (std::uint32_t attempt = 1;; ++attempt) {
            RunRequest attempt_request = request;
            attempt_request.control.faults =
                request.control.faults.armedFor(attempt);
            if (attempt_request.control.cycleBudget == 0)
                attempt_request.control.cycleBudget =
                    options_.cellCycleBudget;
            CancelToken local_token;
            if (attempt_request.control.cancel == nullptr)
                attempt_request.control.cancel = &local_token;

            RunOutcome outcome;
            {
                WatchdogScope guard(watchdog.get(),
                                    attempt_request.control.cancel,
                                    options_.cellTimeoutMs, cell_name);
                outcome = run(attempt_request);
            }
            outcome.attempts = attempt;
            outcome.retryHistory = history;
            if (outcome.ok() ||
                !retry.shouldRetry(outcome.status, attempt))
                return outcome;

            history.push_back(outcome.error);
            const std::uint64_t backoff = retry.backoffForRetry(attempt);
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
        }
    };

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            const RunRequest &request = requests[i];
            const auto start = std::chrono::steady_clock::now();

            // Every log line this cell emits — from the runner, the
            // simulator or the watchdog-adjacent retry machinery —
            // carries the same correlation id.
            LogScope cell_ctx(options_.logContext + "cell-" +
                              std::to_string(i));

            const std::string cell_name =
                (request.workload ? request.workload->abbr
                                  : std::string("?")) +
                "/" + runRequestLabel(request);

            // Sweep-level cancel: cells not yet started complete as
            // Cancelled outcomes without touching cache or journal
            // (the journal treats Cancelled as re-runnable, and these
            // cells never ran). In-flight cells finish normally.
            if (options_.cancel && options_.cancel->cancelled()) {
                RunError error;
                error.code = RunErrorCode::Cancelled;
                error.message = "sweep cancelled before the cell started";
                error.workload =
                    request.workload ? request.workload->abbr : "";
                error.policyLabel = runRequestLabel(request);
                error.seed = request.seed;
                outcomes[i] = RunOutcome::failure(std::move(error));
                failed.fetch_add(1, std::memory_order_relaxed);
                if (options_.onCellDone)
                    options_.onCellDone(i, outcomes[i], false);
                progress.completed(cell_name, 0.0, true);
                continue;
            }

            bool shortcut = false;
            // An observed request must actually simulate — a disk hit
            // would return the result without producing any events,
            // metric samples or profile time — so the cache is
            // bypassed entirely for every observational output
            // (tracer, metric registry, self-profiler). None of them
            // is part of RunKey, and an observed result must not
            // shadow an unobserved one. A request with injected faults
            // shares its fingerprint with the healthy cell, so it must
            // touch neither the cache nor the journal.
            const bool observed = request.tracer != nullptr ||
                                  request.metrics != nullptr ||
                                  metrics::profilerEnabled();
            const bool faulted = !request.control.faults.empty();
            const bool keyed = !observed && !faulted &&
                               request.workload != nullptr;

            const RunKey key =
                keyed && (cache || journal) ? RunKey::of(request) : RunKey{};

            bool done = false;
            if (keyed && journal) {
                // The journal gates resume: ok cells are served from
                // the result cache (the journal stores no result
                // bytes), terminal failures are reconstructed as-is,
                // and Cancelled cells — the user interrupted, not the
                // cell — run again.
                if (auto entry = journal->find(key.fingerprint())) {
                    if (entry->ok()) {
                        if (cache) {
                            if (auto hit = cache->lookup(key)) {
                                outcomes[i] = std::move(*hit);
                                outcomes[i].attempts = entry->attempts;
                                outcomes[i].retryHistory =
                                    entry->retryHistory;
                                done = shortcut = true;
                                journal_skips.fetch_add(
                                    1, std::memory_order_relaxed);
                            }
                        }
                    } else if (entry->status != RunStatus::Cancelled) {
                        outcomes[i] = std::move(*entry);
                        done = shortcut = true;
                        journal_skips.fetch_add(
                            1, std::memory_order_relaxed);
                        failed.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }
            if (!done && keyed && cache) {
                if (auto hit = cache->lookup(key)) {
                    outcomes[i] = std::move(*hit);
                    done = shortcut = true;
                    cache_hits.fetch_add(1, std::memory_order_relaxed);
                    if (journal &&
                        !journal->find(key.fingerprint()))
                        journal->record(key.fingerprint(), outcomes[i]);
                }
            }
            if (!done) {
                // Register with the live-metrics surface so a /metrics
                // scrape mid-run sees this cell's cycle/instruction
                // progress (the Gpu publishes into the thread's slot).
                metrics::live::CellScope live(cell_name);
                outcomes[i] = attemptCell(request, cell_name);
                executed.fetch_add(1, std::memory_order_relaxed);
                if (!outcomes[i].ok())
                    failed.fetch_add(1, std::memory_order_relaxed);
                if (outcomes[i].attempts > 1)
                    retried.fetch_add(1, std::memory_order_relaxed);
                if (keyed) {
                    if (cache && outcomes[i].ok())
                        cache->store(key, outcomes[i]);
                    if (journal)
                        journal->record(key.fingerprint(), outcomes[i]);
                }
            }

            if (options_.onCellDone)
                options_.onCellDone(i, outcomes[i], shortcut);

            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            {
                std::lock_guard<std::mutex> lock(wall_mutex);
                wall_ms.record(seconds * 1e3);
            }
            if (!diag_dir.empty() && !shortcut && !outcomes[i].ok() &&
                outcomes[i].status != RunStatus::Cancelled)
                writeDiagnostics(diag_dir, i, cell_name, request,
                                 outcomes[i], seconds * 1e3);
            progress.completed(cell_name, seconds, shortcut);
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back([&worker, t] {
                setLogThreadName(strfmt("run-w{}", t));
                worker();
            });
        for (std::thread &thread : pool)
            thread.join();
    }

    stats_.executed = executed.load();
    stats_.cacheHits = cache_hits.load();
    stats_.journalSkips = journal_skips.load();
    stats_.failed = failed.load();
    stats_.retried = retried.load();
    stats_.nearMisses =
        watchdog ? static_cast<std::size_t>(watchdog->nearMissCount())
                 : 0;
    cellWallMs_ = wall_ms;
    return outcomes;
}

} // namespace latte::runner
