#include "experiment_runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "metrics/profiler.hh"
#include "progress.hh"
#include "resilience.hh"
#include "result_cache.hh"

namespace latte::runner
{

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options))
{}

unsigned
ExperimentRunner::effectiveThreads(std::size_t cells) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (cells < threads)
        threads = static_cast<unsigned>(cells);
    return threads ? threads : 1;
}

std::vector<RunOutcome>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    stats_ = Stats{};
    std::vector<RunOutcome> outcomes(requests.size());
    if (requests.empty())
        return outcomes;

    std::unique_ptr<ResultCache> cache;
    if (!options_.cacheDir.empty())
        cache = std::make_unique<ResultCache>(options_.cacheDir);
    std::unique_ptr<SweepJournal> journal;
    if (!options_.journalPath.empty())
        journal = std::make_unique<SweepJournal>(options_.journalPath);
    std::unique_ptr<Watchdog> watchdog;
    if (options_.cellTimeoutMs > 0)
        watchdog = std::make_unique<Watchdog>();

    const RetryPolicy retry{.maxRetries = options_.maxRetries,
                            .backoffMs = options_.retryBackoffMs};

    const unsigned threads = effectiveThreads(requests.size());
    ProgressReporter progress(requests.size(), threads,
                              options_.progress);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> cache_hits{0};
    std::atomic<std::size_t> journal_skips{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> retried{0};

    // One cell, all attempts: each attempt gets a fresh cancel token
    // (unless the request carries its own), the runner's cycle budget
    // when the request sets none, and only the fault points armed for
    // that attempt number — so a transient FaultPoint{firstAttempts=1}
    // clears on retry. The watchdog guards every attempt separately.
    auto attemptCell = [&](const RunRequest &request) -> RunOutcome {
        std::vector<RunError> history;
        for (std::uint32_t attempt = 1;; ++attempt) {
            RunRequest attempt_request = request;
            attempt_request.control.faults =
                request.control.faults.armedFor(attempt);
            if (attempt_request.control.cycleBudget == 0)
                attempt_request.control.cycleBudget =
                    options_.cellCycleBudget;
            CancelToken local_token;
            if (attempt_request.control.cancel == nullptr)
                attempt_request.control.cancel = &local_token;

            RunOutcome outcome;
            {
                WatchdogScope guard(watchdog.get(),
                                    attempt_request.control.cancel,
                                    options_.cellTimeoutMs);
                outcome = run(attempt_request);
            }
            outcome.attempts = attempt;
            outcome.retryHistory = history;
            if (outcome.ok() ||
                !retry.shouldRetry(outcome.status, attempt))
                return outcome;

            history.push_back(outcome.error);
            const std::uint64_t backoff = retry.backoffForRetry(attempt);
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
        }
    };

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            const RunRequest &request = requests[i];
            const auto start = std::chrono::steady_clock::now();

            const std::string cell_name =
                (request.workload ? request.workload->abbr
                                  : std::string("?")) +
                "/" + runRequestLabel(request);

            // Sweep-level cancel: cells not yet started complete as
            // Cancelled outcomes without touching cache or journal
            // (the journal treats Cancelled as re-runnable, and these
            // cells never ran). In-flight cells finish normally.
            if (options_.cancel && options_.cancel->cancelled()) {
                RunError error;
                error.code = RunErrorCode::Cancelled;
                error.message = "sweep cancelled before the cell started";
                error.workload =
                    request.workload ? request.workload->abbr : "";
                error.policyLabel = runRequestLabel(request);
                error.seed = request.seed;
                outcomes[i] = RunOutcome::failure(std::move(error));
                failed.fetch_add(1, std::memory_order_relaxed);
                if (options_.onCellDone)
                    options_.onCellDone(i, outcomes[i], false);
                progress.completed(cell_name, 0.0, true);
                continue;
            }

            bool shortcut = false;
            // An observed request must actually simulate — a disk hit
            // would return the result without producing any events,
            // metric samples or profile time — so the cache is
            // bypassed entirely for every observational output
            // (tracer, metric registry, self-profiler). None of them
            // is part of RunKey, and an observed result must not
            // shadow an unobserved one. A request with injected faults
            // shares its fingerprint with the healthy cell, so it must
            // touch neither the cache nor the journal.
            const bool observed = request.tracer != nullptr ||
                                  request.metrics != nullptr ||
                                  metrics::profilerEnabled();
            const bool faulted = !request.control.faults.empty();
            const bool keyed = !observed && !faulted &&
                               request.workload != nullptr;

            const RunKey key =
                keyed && (cache || journal) ? RunKey::of(request) : RunKey{};

            bool done = false;
            if (keyed && journal) {
                // The journal gates resume: ok cells are served from
                // the result cache (the journal stores no result
                // bytes), terminal failures are reconstructed as-is,
                // and Cancelled cells — the user interrupted, not the
                // cell — run again.
                if (auto entry = journal->find(key.fingerprint())) {
                    if (entry->ok()) {
                        if (cache) {
                            if (auto hit = cache->lookup(key)) {
                                outcomes[i] = std::move(*hit);
                                outcomes[i].attempts = entry->attempts;
                                outcomes[i].retryHistory =
                                    entry->retryHistory;
                                done = shortcut = true;
                                journal_skips.fetch_add(
                                    1, std::memory_order_relaxed);
                            }
                        }
                    } else if (entry->status != RunStatus::Cancelled) {
                        outcomes[i] = std::move(*entry);
                        done = shortcut = true;
                        journal_skips.fetch_add(
                            1, std::memory_order_relaxed);
                        failed.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }
            if (!done && keyed && cache) {
                if (auto hit = cache->lookup(key)) {
                    outcomes[i] = std::move(*hit);
                    done = shortcut = true;
                    cache_hits.fetch_add(1, std::memory_order_relaxed);
                    if (journal &&
                        !journal->find(key.fingerprint()))
                        journal->record(key.fingerprint(), outcomes[i]);
                }
            }
            if (!done) {
                outcomes[i] = attemptCell(request);
                executed.fetch_add(1, std::memory_order_relaxed);
                if (!outcomes[i].ok())
                    failed.fetch_add(1, std::memory_order_relaxed);
                if (outcomes[i].attempts > 1)
                    retried.fetch_add(1, std::memory_order_relaxed);
                if (keyed) {
                    if (cache && outcomes[i].ok())
                        cache->store(key, outcomes[i]);
                    if (journal)
                        journal->record(key.fingerprint(), outcomes[i]);
                }
            }

            if (options_.onCellDone)
                options_.onCellDone(i, outcomes[i], shortcut);

            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            progress.completed(cell_name, seconds, shortcut);
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    stats_.executed = executed.load();
    stats_.cacheHits = cache_hits.load();
    stats_.journalSkips = journal_skips.load();
    stats_.failed = failed.load();
    stats_.retried = retried.load();
    return outcomes;
}

} // namespace latte::runner
