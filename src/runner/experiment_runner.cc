#include "experiment_runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "metrics/profiler.hh"
#include "progress.hh"
#include "result_cache.hh"

namespace latte::runner
{

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options))
{}

unsigned
ExperimentRunner::effectiveThreads(std::size_t cells) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (cells < threads)
        threads = static_cast<unsigned>(cells);
    return threads ? threads : 1;
}

std::vector<WorkloadRunResult>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    stats_ = Stats{};
    std::vector<WorkloadRunResult> results(requests.size());
    if (requests.empty())
        return results;

    std::unique_ptr<ResultCache> cache;
    if (!options_.cacheDir.empty())
        cache = std::make_unique<ResultCache>(options_.cacheDir);

    const unsigned threads = effectiveThreads(requests.size());
    ProgressReporter progress(requests.size(), threads,
                              options_.progress);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> cache_hits{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            const RunRequest &request = requests[i];
            const auto start = std::chrono::steady_clock::now();

            bool cached = false;
            // An observed request must actually simulate — a disk hit
            // would return the result without producing any events,
            // metric samples or profile time — so the cache is
            // bypassed entirely for every observational output
            // (tracer, metric registry, self-profiler). None of them
            // is part of RunKey, and an observed result must not
            // shadow an unobserved one.
            const bool observed = request.tracer != nullptr ||
                                  request.metrics != nullptr ||
                                  metrics::profilerEnabled();
            if (cache && !observed) {
                const RunKey key = RunKey::of(request);
                if (auto hit = cache->lookup(key)) {
                    results[i] = std::move(*hit);
                    cached = true;
                    cache_hits.fetch_add(1, std::memory_order_relaxed);
                } else {
                    results[i] = run(request);
                    cache->store(key, results[i]);
                    executed.fetch_add(1, std::memory_order_relaxed);
                }
            } else {
                results[i] = run(request);
                executed.fetch_add(1, std::memory_order_relaxed);
            }

            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            progress.completed(request.workload->abbr + "/" +
                                   runRequestLabel(request),
                               seconds, cached);
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    stats_.executed = executed.load();
    stats_.cacheHits = cache_hits.load();
    return results;
}

} // namespace latte::runner
