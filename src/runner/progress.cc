#include "progress.hh"

#include <cstdio>

namespace latte::runner
{

ProgressReporter::ProgressReporter(std::size_t total, unsigned workers,
                                   bool enabled)
    : total_(total), workers_(workers ? workers : 1), enabled_(enabled)
{}

void
ProgressReporter::completed(const std::string &label, double seconds,
                            bool cached)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (!cached) {
        busySeconds_ += seconds;
        ++executed_;
    }
    if (!enabled_)
        return;

    const std::size_t remaining = total_ - done_;
    std::string eta = "?";
    if (executed_ > 0) {
        const double mean = busySeconds_ / static_cast<double>(executed_);
        const double estimate =
            mean * static_cast<double>(remaining) /
            static_cast<double>(workers_);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0fs", estimate);
        eta = buf;
    }
    std::fprintf(stderr, "[%zu/%zu] %-28s %6.2fs%s  eta %s\n", done_,
                 total_, label.c_str(), seconds,
                 cached ? " (cached)" : "         ", eta.c_str());
    std::fflush(stderr);
}

} // namespace latte::runner
