#include "progress.hh"

#include <cstdio>

#include "common/logging.hh"

namespace latte::runner
{

ProgressReporter::ProgressReporter(std::size_t total, unsigned workers,
                                   bool enabled)
    : total_(total), workers_(workers ? workers : 1), enabled_(enabled)
{}

void
ProgressReporter::completed(const std::string &label, double seconds,
                            bool cached)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (!cached) {
        busySeconds_ += seconds;
        ++executed_;
    }
    if (!enabled_)
        return;

    const std::size_t remaining = total_ - done_;
    std::string eta = "?";
    if (executed_ > 0) {
        const double mean = busySeconds_ / static_cast<double>(executed_);
        const double estimate =
            mean * static_cast<double>(remaining) /
            static_cast<double>(workers_);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0fs", estimate);
        eta = buf;
    }
    // Built whole, emitted through the logger's serialized sink:
    // progress lines can never tear against concurrent log lines.
    char line[192];
    std::snprintf(line, sizeof(line), "[%zu/%zu] %-28s %6.2fs%s  eta %s",
                  done_, total_, label.c_str(), seconds,
                  cached ? " (cached)" : "         ", eta.c_str());
    logRawLine(line);
}

} // namespace latte::runner
