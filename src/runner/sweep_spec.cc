#include "sweep_spec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/backend.hh"
#include "result_cache.hh"
#include "sim/thread_pool.hh"
#include "workloads/zoo.hh"

namespace latte::runner
{

namespace
{

bool
setError(std::string *error, std::string text)
{
    if (error)
        *error = std::move(text);
    return false;
}

/** A whole-number JSON value (Uint, or a Double that is integral). */
bool
uintOf(const Json &value, std::uint64_t &out)
{
    if (value.type() == Json::Type::Uint) {
        out = value.asUint();
        return true;
    }
    if (value.type() == Json::Type::Double) {
        const double d = value.asDouble();
        if (d < 0 || d != static_cast<double>(
                              static_cast<std::uint64_t>(d)))
            return false;
        out = static_cast<std::uint64_t>(d);
        return true;
    }
    return false;
}

/** One settable DriverOptions knob. */
struct OptionEntry
{
    const char *key;
    bool (*apply)(DriverOptions &, const Json &, std::string *);
};

template <typename Field>
bool
applyUint(Field &field, const char *key, const Json &value,
          std::string *error)
{
    std::uint64_t v = 0;
    if (!uintOf(value, v)) {
        return setError(error, std::string(key) +
                                   ": expected a non-negative integer");
    }
    field = static_cast<Field>(v);
    return true;
}

bool
applyDouble(double &field, const char *key, const Json &value,
            std::string *error)
{
    if (!value.isNumber())
        return setError(error, std::string(key) + ": expected a number");
    field = value.asDouble();
    return true;
}

// Each entry is a lambda decayed to a function pointer: no captures, so
// the table stays constexpr-friendly and cheap to scan.
#define LATTE_UINT_OPTION(KEY, FIELD)                                    \
    {KEY, [](DriverOptions &o, const Json &v, std::string *e) {          \
         return applyUint(o.FIELD, KEY, v, e);                           \
     }}
#define LATTE_DOUBLE_OPTION(KEY, FIELD)                                  \
    {KEY, [](DriverOptions &o, const Json &v, std::string *e) {          \
         return applyDouble(o.FIELD, KEY, v, e);                         \
     }}

const OptionEntry kOptionTable[] = {
    LATTE_UINT_OPTION("max_instructions_per_kernel",
                      maxInstructionsPerKernel),
    // --- SM organisation ---
    LATTE_UINT_OPTION("cfg.num_sms", cfg.numSms),
    LATTE_UINT_OPTION("cfg.max_warps_per_sm", cfg.maxWarpsPerSm),
    LATTE_UINT_OPTION("cfg.max_blocks_per_sm", cfg.maxBlocksPerSm),
    LATTE_UINT_OPTION("cfg.schedulers_per_sm", cfg.schedulersPerSm),
    // --- L1 ---
    LATTE_UINT_OPTION("cfg.l1_size_bytes", cfg.l1.sizeBytes),
    LATTE_UINT_OPTION("cfg.l1_line_bytes", cfg.l1.lineBytes),
    LATTE_UINT_OPTION("cfg.l1_assoc", cfg.l1.assoc),
    LATTE_UINT_OPTION("cfg.l1_hit_latency", cfg.l1.hitLatency),
    LATTE_UINT_OPTION("cfg.l1_tag_factor", cfg.l1.tagFactor),
    LATTE_UINT_OPTION("cfg.l1_sub_block_bytes", cfg.l1.subBlockBytes),
    LATTE_UINT_OPTION("cfg.l1_mshr_entries", cfg.l1.mshrEntries),
    // --- L2 / DRAM ---
    LATTE_UINT_OPTION("cfg.l2_size_bytes", cfg.l2.sizeBytes),
    LATTE_UINT_OPTION("cfg.l2_assoc", cfg.l2.assoc),
    LATTE_UINT_OPTION("cfg.l2_banks", cfg.l2.banks),
    LATTE_UINT_OPTION("cfg.l2_min_latency", cfg.l2.minLatency),
    LATTE_UINT_OPTION("cfg.l2_bank_service_cycles",
                      cfg.l2.bankServiceCycles),
    LATTE_UINT_OPTION("cfg.l2_miss_penalty_cycles",
                      cfg.l2.missPenaltyCycles),
    LATTE_UINT_OPTION("cfg.dram_min_latency", cfg.dramMinLatency),
    LATTE_DOUBLE_OPTION("cfg.dram_bytes_per_cycle",
                        cfg.dramBytesPerCycle),
    LATTE_DOUBLE_OPTION("cfg.noc_bytes_per_cycle", cfg.nocBytesPerCycle),
    // --- Decompression engine ---
    LATTE_UINT_OPTION("cfg.decomp_queue_entries",
                      cfg.decompQueueEntries),
    // --- LATTE-CC controller ---
    LATTE_UINT_OPTION("cfg.latte.ep_accesses", cfg.latte.epAccesses),
    LATTE_UINT_OPTION("cfg.latte.period_eps", cfg.latte.periodEps),
    LATTE_UINT_OPTION("cfg.latte.learning_eps", cfg.latte.learningEps),
    LATTE_UINT_OPTION("cfg.latte.dedicated_sets_per_mode",
                      cfg.latte.dedicatedSetsPerMode),
    LATTE_UINT_OPTION("cfg.latte.vft_entries", cfg.latte.vftEntries),
    // --- Enumerated knobs (string-valued) ---
    {"cfg.sched_policy",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "cfg.sched_policy: expected a string");
         const std::string &name = v.asString();
         if (name == "gto")
             o.cfg.schedPolicy = GpuConfig::SchedPolicy::GTO;
         else if (name == "lrr")
             o.cfg.schedPolicy = GpuConfig::SchedPolicy::LRR;
         else
             return setError(e, "cfg.sched_policy: unknown scheduler '" +
                                    name + "' (gto|lrr)");
         return true;
     }},
    {"cfg.l1_repl",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "cfg.l1_repl: expected a string");
         const std::string &name = v.asString();
         if (name == "lru")
             o.cfg.l1Repl = GpuConfig::ReplPolicy::LRU;
         else if (name == "fifo")
             o.cfg.l1Repl = GpuConfig::ReplPolicy::FIFO;
         else if (name == "srrip")
             o.cfg.l1Repl = GpuConfig::ReplPolicy::SRRIP;
         else
             return setError(e, "cfg.l1_repl: unknown policy '" + name +
                                    "' (lru|fifo|srrip)");
         return true;
     }},
    {"l2.compress",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "l2.compress: expected a string");
         if (!parseLevelCompressSpec(v.asString(), o.cfg.l2)) {
             return setError(e, "l2.compress: bad spec '" +
                                    v.asString() +
                                    "' (off|static:<algo>|latte)");
         }
         // Semantic restrictions (SC below the L1, dedicated-set
         // geometry) are left to GpuConfig::validationError() so they
         // surface as structured per-cell outcomes.
         return true;
     }},
    {"link.compress",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "link.compress: expected a string");
         if (!parseLinkCompressSpec(v.asString(), o.cfg.linkCompress)) {
             return setError(e, "link.compress: bad spec '" +
                                    v.asString() + "' (off|<algo>)");
         }
         return true;
     }},
    {"compress_backend",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "compress_backend: expected a string");
         // Validated against the backend registry here so a backend
         // this host lacks fails at submit time, not per cell. The
         // resolved backend is execution speed only (bit-identical
         // results) and is excluded from the RunKey fingerprint.
         std::string resolve_error;
         if (!resolveCompressorBackend(v.asString(), &resolve_error))
             return setError(e, "compress_backend: " + resolve_error);
         o.compressBackend = v.asString();
         return true;
     }},
    {"sim_threads",
     [](DriverOptions &o, const Json &v, std::string *e) {
         if (v.type() != Json::Type::String)
             return setError(e, "sim_threads: expected a string");
         // Validated here so a bad spelling fails at submit time, not
         // per cell. The parallel cycle loop is bit-identical to
         // sequential, so like compress_backend this is execution
         // speed only and excluded from the RunKey fingerprint.
         std::string resolve_error;
         if (resolveSimThreads(v.asString(), &resolve_error) == 0)
             return setError(e, "sim_threads: " + resolve_error);
         o.simThreads = v.asString();
         return true;
     }},
};

#undef LATTE_UINT_OPTION
#undef LATTE_DOUBLE_OPTION

/** Human-readable axis value for cell labels ("32768", "lrr"). */
std::string
valueLabel(const Json &value)
{
    if (value.type() == Json::Type::String)
        return value.asString();
    return value.dump();
}

} // namespace

const std::vector<std::string> &
sweepOptionKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> out;
        for (const OptionEntry &entry : kOptionTable)
            out.push_back(entry.key);
        std::sort(out.begin(), out.end());
        return out;
    }();
    return keys;
}

bool
applyOption(DriverOptions &options, const std::string &key,
            const Json &value, std::string *error)
{
    for (const OptionEntry &entry : kOptionTable) {
        if (key == entry.key)
            return entry.apply(options, value, error);
    }
    return setError(error, "unknown option key '" + key + "'");
}

std::string
SweepSpec::validate() const
{
    std::string error;
    for (const std::string &abbr : workloads) {
        if (!findWorkload(abbr))
            return "unknown workload '" + abbr + "'";
    }
    if (policies.empty())
        return "spec names no policies";
    for (const std::string &policy : policies) {
        if (!policyKindFromName(policy))
            return "unknown policy '" + policy + "'";
    }

    // Fixed overrides and axis values must all apply cleanly to a
    // scratch DriverOptions, so bad values surface at submit time
    // rather than as per-cell failures mid-sweep.
    DriverOptions scratch;
    for (const auto &[key, value] : options) {
        if (!applyOption(scratch, key, value, &error))
            return error;
    }
    std::vector<std::string> seen;
    for (const SweepAxis &axis : axes) {
        if (axis.values.empty())
            return "axis '" + axis.key + "' has no values";
        if (std::find(seen.begin(), seen.end(), axis.key) != seen.end())
            return "axis '" + axis.key + "' declared twice";
        seen.push_back(axis.key);
        if (options.count(axis.key))
            return "axis '" + axis.key +
                   "' also appears in fixed options";
        for (const Json &value : axis.values) {
            if (!applyOption(scratch, axis.key, value, &error))
                return error;
        }
    }
    return "";
}

std::size_t
SweepSpec::cellCount() const
{
    std::size_t cells = workloads.empty() ? workloadZoo().size()
                                          : workloads.size();
    cells *= policies.size();
    cells *= seeds.empty() ? 1 : seeds.size();
    for (const SweepAxis &axis : axes)
        cells *= axis.values.size();
    return cells;
}

bool
SweepSpec::expand(std::vector<RunRequest> &out, std::string *error,
                  const DriverOptions &base) const
{
    const std::string problem = validate();
    if (!problem.empty())
        return setError(error, problem);

    // Resolve the workload set (empty = whole zoo, Table III order).
    std::vector<const Workload *> resolved;
    if (workloads.empty()) {
        for (const Workload &workload : workloadZoo())
            resolved.push_back(&workload);
    } else {
        for (const std::string &abbr : workloads)
            resolved.push_back(findWorkload(abbr));
    }

    DriverOptions fixed = base;
    for (const auto &[key, value] : options) {
        if (!applyOption(fixed, key, value, error))
            return false;
    }

    const std::vector<std::uint64_t> seed_list =
        seeds.empty() ? std::vector<std::uint64_t>{0} : seeds;

    // Odometer over the axes: first axis is the slowest-moving digit.
    std::vector<std::size_t> digits(axes.size(), 0);
    const std::size_t combos = [&] {
        std::size_t n = 1;
        for (const SweepAxis &axis : axes)
            n *= axis.values.size();
        return n;
    }();

    for (const Workload *workload : resolved) {
        for (std::size_t combo = 0; combo < combos; ++combo) {
            // Decode this combination and build its options + label.
            std::size_t rest = combo;
            for (std::size_t a = axes.size(); a-- > 0;) {
                digits[a] = rest % axes[a].values.size();
                rest /= axes[a].values.size();
            }
            DriverOptions cell_options = fixed;
            std::string suffix;
            for (std::size_t a = 0; a < axes.size(); ++a) {
                const Json &value = axes[a].values[digits[a]];
                if (!applyOption(cell_options, axes[a].key, value,
                                 error))
                    return false;
                if (!suffix.empty())
                    suffix += ",";
                suffix += axes[a].key + "=" + valueLabel(value);
            }

            for (const std::string &policy : policies) {
                for (const std::uint64_t seed : seed_list) {
                    RunRequest &request = out.emplace_back();
                    request.workload = workload;
                    request.policy = *policyKindFromName(policy);
                    request.options = cell_options;
                    request.seed = seed;
                    // Axis cells get a "Policy[axis=value]" label so
                    // every grid point stays distinguishable in
                    // exports, cache keys and journal keys; plain
                    // specs leave the label empty and stay
                    // cache-compatible with hand-built requests.
                    if (!suffix.empty())
                        request.label = policy + "[" + suffix + "]";
                }
            }
        }
    }
    return true;
}

Json
SweepSpec::toJson() const
{
    Json::Object object;
    object["name"] = Json(name);

    Json::Array workload_array;
    for (const std::string &abbr : workloads)
        workload_array.push_back(Json(abbr));
    object["workloads"] = Json(std::move(workload_array));

    Json::Array policy_array;
    for (const std::string &policy : policies)
        policy_array.push_back(Json(policy));
    object["policies"] = Json(std::move(policy_array));

    Json::Array seed_array;
    for (const std::uint64_t seed : seeds)
        seed_array.push_back(Json(seed));
    object["seeds"] = Json(std::move(seed_array));

    Json::Object option_object;
    for (const auto &[key, value] : options)
        option_object[key] = value;
    object["options"] = Json(std::move(option_object));

    Json::Array axis_array;
    for (const SweepAxis &axis : axes) {
        Json::Object axis_object;
        axis_object["key"] = Json(axis.key);
        axis_object["values"] = Json(Json::Array(axis.values));
        axis_array.push_back(Json(std::move(axis_object)));
    }
    object["axes"] = Json(std::move(axis_array));

    object["retries"] = Json(static_cast<std::uint64_t>(retries));
    object["retry_backoff_ms"] = Json(retryBackoffMs);
    object["cell_timeout_ms"] = Json(cellTimeoutMs);
    object["cell_cycle_budget"] = Json(cellCycleBudget);
    return Json(std::move(object));
}

bool
SweepSpec::fromJson(const Json &json, SweepSpec &spec,
                    std::string *error)
{
    if (json.type() != Json::Type::Object)
        return setError(error, "spec: expected a JSON object");
    spec = SweepSpec{};

    auto stringList = [&](const char *key,
                          std::vector<std::string> &out) {
        if (!json.contains(key))
            return true;
        const Json &value = json.at(key);
        if (value.type() != Json::Type::Array)
            return setError(error,
                            std::string(key) + ": expected an array");
        for (const Json &item : value.asArray()) {
            if (item.type() != Json::Type::String)
                return setError(error, std::string(key) +
                                           ": expected strings");
            out.push_back(item.asString());
        }
        return true;
    };
    auto uintField = [&](const char *key, auto &out) {
        if (!json.contains(key))
            return true;
        std::uint64_t value = 0;
        if (!uintOf(json.at(key), value))
            return setError(error, std::string(key) +
                                       ": expected an integer");
        out = static_cast<std::decay_t<decltype(out)>>(value);
        return true;
    };

    if (json.contains("name")) {
        if (json.at("name").type() != Json::Type::String)
            return setError(error, "name: expected a string");
        spec.name = json.at("name").asString();
    }
    if (!stringList("workloads", spec.workloads) ||
        !stringList("policies", spec.policies))
        return false;
    if (json.contains("seeds")) {
        const Json &value = json.at("seeds");
        if (value.type() != Json::Type::Array)
            return setError(error, "seeds: expected an array");
        for (const Json &item : value.asArray()) {
            std::uint64_t seed = 0;
            if (!uintOf(item, seed))
                return setError(error, "seeds: expected integers");
            spec.seeds.push_back(seed);
        }
    }
    if (json.contains("options")) {
        const Json &value = json.at("options");
        if (value.type() != Json::Type::Object)
            return setError(error, "options: expected an object");
        for (const auto &[key, item] : value.asObject())
            spec.options.emplace(key, item);
    }
    if (json.contains("axes")) {
        const Json &value = json.at("axes");
        if (value.type() != Json::Type::Array)
            return setError(error, "axes: expected an array");
        for (const Json &item : value.asArray()) {
            if (item.type() != Json::Type::Object ||
                !item.contains("key") || !item.contains("values") ||
                item.at("key").type() != Json::Type::String ||
                item.at("values").type() != Json::Type::Array) {
                return setError(
                    error, "axes: expected {key, values[]} objects");
            }
            SweepAxis axis;
            axis.key = item.at("key").asString();
            axis.values = item.at("values").asArray();
            spec.axes.push_back(std::move(axis));
        }
    }
    if (!uintField("retries", spec.retries) ||
        !uintField("retry_backoff_ms", spec.retryBackoffMs) ||
        !uintField("cell_timeout_ms", spec.cellTimeoutMs) ||
        !uintField("cell_cycle_budget", spec.cellCycleBudget))
        return false;
    return true;
}

std::uint64_t
SweepSpec::hash() const
{
    return fnv1a(toJson().dump());
}

} // namespace latte::runner
