#include "json.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "compress/backend.hh"
#include "compress/compressor.hh"

namespace latte::runner
{

// --- Accessors ---------------------------------------------------------

bool
Json::asBool() const
{
    latte_assert(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

std::uint64_t
Json::asUint() const
{
    if (type_ == Type::Double) {
        latte_assert(double_ >= 0 &&
                         double_ == static_cast<double>(
                                        static_cast<std::uint64_t>(double_)),
                     "JSON number is not an unsigned integer");
        return static_cast<std::uint64_t>(double_);
    }
    latte_assert(type_ == Type::Uint, "JSON value is not a number");
    return uint_;
}

double
Json::asDouble() const
{
    if (type_ == Type::Uint)
        return static_cast<double>(uint_);
    latte_assert(type_ == Type::Double, "JSON value is not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    latte_assert(type_ == Type::String, "JSON value is not a string");
    return string_;
}

const Json::Array &
Json::asArray() const
{
    latte_assert(type_ == Type::Array, "JSON value is not an array");
    return array_;
}

const Json::Object &
Json::asObject() const
{
    latte_assert(type_ == Type::Object, "JSON value is not an object");
    return object_;
}

const Json &
Json::at(const std::string &key) const
{
    const Object &obj = asObject();
    const auto it = obj.find(key);
    latte_assert(it != obj.end(), "JSON object lacks key {}", key);
    return it->second;
}

bool
Json::contains(const std::string &key) const
{
    return type_ == Type::Object && object_.count(key) != 0;
}

// --- Serialization -----------------------------------------------------

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double d)
{
    char buf[32];
    // max_digits10 for a binary64: the text parses back to the same bits.
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
    // Bare integers-looking text would re-parse as Uint; keep the type.
    if (!std::strpbrk(buf, ".eEn"))
        out += ".0";
}

void
dumpTo(const Json &json, std::string &out, int indent, int depth)
{
    const auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (json.type()) {
      case Json::Type::Null:
        out += "null";
        break;
      case Json::Type::Bool:
        out += json.asBool() ? "true" : "false";
        break;
      case Json::Type::Uint: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, json.asUint());
        out += buf;
        break;
      }
      case Json::Type::Double:
        appendDouble(out, json.asDouble());
        break;
      case Json::Type::String:
        appendEscaped(out, json.asString());
        break;
      case Json::Type::Array: {
        const auto &array = json.asArray();
        if (array.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Json &elem : array) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            dumpTo(elem, out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Json::Type::Object: {
        const auto &object = json.asObject();
        if (object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, value] : object) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            appendEscaped(out, key);
            out += indent < 0 ? ":" : ": ";
            dumpTo(value, out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

} // namespace

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(*this, out, indent, 0);
    return out;
}

// --- Parsing -----------------------------------------------------------

namespace
{

struct Parser
{
    const char *p;
    const char *end;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *text)
    {
        const std::size_t n = std::strlen(text);
        if (static_cast<std::size_t>(end - p) < n ||
            std::strncmp(p, text, n) != 0)
            return fail(strfmt("expected '{}'", text));
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                if (++p >= end)
                    return fail("dangling escape");
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (end - p < 5)
                        return fail("short \\u escape");
                    char hex[5] = {p[1], p[2], p[3], p[4], 0};
                    const long code = std::strtol(hex, nullptr, 16);
                    // Only the control-character range is ever emitted.
                    out += static_cast<char>(code & 0x7f);
                    p += 4;
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(Json &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                *p == '-'))
            ++p;
        const std::string text(start, p);
        if (text.empty())
            return fail("expected number");
        if (text.find_first_of(".eE-") == std::string::npos) {
            errno = 0;
            char *parse_end = nullptr;
            const std::uint64_t u =
                std::strtoull(text.c_str(), &parse_end, 10);
            if (errno == 0 && parse_end && *parse_end == '\0') {
                out = Json(u);
                return true;
            }
        }
        char *parse_end = nullptr;
        const double d = std::strtod(text.c_str(), &parse_end);
        if (!parse_end || *parse_end != '\0')
            return fail(strfmt("bad number '{}'", text));
        out = Json(d);
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case 'n':
            out = Json();
            return literal("null");
          case 't':
            out = Json(true);
            return literal("true");
          case 'f':
            out = Json(false);
            return literal("false");
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case '[': {
            ++p;
            Json::Array array;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                out = Json(std::move(array));
                return true;
            }
            for (;;) {
                Json elem;
                if (!parseValue(elem))
                    return false;
                array.push_back(std::move(elem));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    out = Json(std::move(array));
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++p;
            Json::Object object;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                out = Json(std::move(object));
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Json value;
                if (!parseValue(value))
                    return false;
                object.emplace(std::move(key), std::move(value));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    out = Json(std::move(object));
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    Json out;
    if (!parser.parseValue(out)) {
        if (error)
            *error = parser.error;
        return Json();
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (error)
            *error = "trailing characters after JSON value";
        return Json();
    }
    return out;
}

// --- Result serialization ----------------------------------------------

namespace
{

const char *
modeName(CompressorId id)
{
    return compressorName(id);
}

bool
modeFromName(const std::string &name, CompressorId &id)
{
    for (std::size_t m = 0; m < kNumModes; ++m) {
        const auto candidate = static_cast<CompressorId>(m);
        if (name == compressorName(candidate)) {
            id = candidate;
            return true;
        }
    }
    return false;
}

Json
modeAccessesJson(const std::array<std::uint64_t, kNumModes> &counts)
{
    Json::Array array;
    for (const std::uint64_t count : counts)
        array.emplace_back(count);
    return Json(std::move(array));
}

bool
modeAccessesFromJson(const Json &json,
                     std::array<std::uint64_t, kNumModes> &counts)
{
    if (json.type() != Json::Type::Array ||
        json.asArray().size() != kNumModes)
        return false;
    for (std::size_t m = 0; m < kNumModes; ++m)
        counts[m] = json.asArray()[m].asUint();
    return true;
}

} // namespace

Json
toJson(const UsageCounts &usage)
{
    Json::Object object{
        {"cycles", Json(usage.cycles)},
        {"instructions", Json(usage.instructions)},
        {"l1Accesses", Json(usage.l1Accesses)},
        {"l2Accesses", Json(usage.l2Accesses)},
        {"nocBytes", Json(usage.nocBytes)},
        {"dramBytes", Json(usage.dramBytes)},
        {"bdiCompressions", Json(usage.bdiCompressions)},
        {"scCompressions", Json(usage.scCompressions)},
        {"bpcCompressions", Json(usage.bpcCompressions)},
        {"bdiDecompressions", Json(usage.bdiDecompressions)},
        {"scDecompressions", Json(usage.scDecompressions)},
        {"bpcDecompressions", Json(usage.bpcDecompressions)},
    };
    // L2/link counts appear only when those levels compressed
    // anything, so documents of L1-only runs stay byte-identical.
    if (usage.l2BdiCompressions)
        object["l2BdiCompressions"] = Json(usage.l2BdiCompressions);
    if (usage.l2BpcCompressions)
        object["l2BpcCompressions"] = Json(usage.l2BpcCompressions);
    if (usage.l2BdiDecompressions)
        object["l2BdiDecompressions"] = Json(usage.l2BdiDecompressions);
    if (usage.l2BpcDecompressions)
        object["l2BpcDecompressions"] = Json(usage.l2BpcDecompressions);
    if (usage.linkTransfers)
        object["linkTransfers"] = Json(usage.linkTransfers);
    return Json(std::move(object));
}

bool
fromJson(const Json &json, UsageCounts &usage)
{
    if (json.type() != Json::Type::Object)
        return false;
    for (const char *key :
         {"cycles", "instructions", "l1Accesses", "l2Accesses",
          "nocBytes", "dramBytes", "bdiCompressions", "scCompressions",
          "bpcCompressions", "bdiDecompressions", "scDecompressions",
          "bpcDecompressions"}) {
        if (!json.contains(key))
            return false;
    }
    usage.cycles = json.at("cycles").asUint();
    usage.instructions = json.at("instructions").asUint();
    usage.l1Accesses = json.at("l1Accesses").asUint();
    usage.l2Accesses = json.at("l2Accesses").asUint();
    usage.nocBytes = json.at("nocBytes").asUint();
    usage.dramBytes = json.at("dramBytes").asUint();
    usage.bdiCompressions = json.at("bdiCompressions").asUint();
    usage.scCompressions = json.at("scCompressions").asUint();
    usage.bpcCompressions = json.at("bpcCompressions").asUint();
    usage.bdiDecompressions = json.at("bdiDecompressions").asUint();
    usage.scDecompressions = json.at("scDecompressions").asUint();
    usage.bpcDecompressions = json.at("bpcDecompressions").asUint();
    // Optional: emitted only by runs with a compressed L2 or link.
    if (json.contains("l2BdiCompressions"))
        usage.l2BdiCompressions = json.at("l2BdiCompressions").asUint();
    if (json.contains("l2BpcCompressions"))
        usage.l2BpcCompressions = json.at("l2BpcCompressions").asUint();
    if (json.contains("l2BdiDecompressions")) {
        usage.l2BdiDecompressions =
            json.at("l2BdiDecompressions").asUint();
    }
    if (json.contains("l2BpcDecompressions")) {
        usage.l2BpcDecompressions =
            json.at("l2BpcDecompressions").asUint();
    }
    if (json.contains("linkTransfers"))
        usage.linkTransfers = json.at("linkTransfers").asUint();
    return true;
}

Json
toJson(const EnergyReport &energy)
{
    Json::Object object{
        {"coreDynamicMj", Json(energy.coreDynamicMj)},
        {"l1Mj", Json(energy.l1Mj)},
        {"l2Mj", Json(energy.l2Mj)},
        {"nocMj", Json(energy.nocMj)},
        {"dramMj", Json(energy.dramMj)},
        {"compressionMj", Json(energy.compressionMj)},
        {"staticMj", Json(energy.staticMj)},
    };
    // Per-level terms appear only when nonzero (L1-only documents stay
    // byte-identical).
    if (energy.l2CompressionMj != 0)
        object["l2CompressionMj"] = Json(energy.l2CompressionMj);
    if (energy.linkCompressionMj != 0)
        object["linkCompressionMj"] = Json(energy.linkCompressionMj);
    return Json(std::move(object));
}

bool
fromJson(const Json &json, EnergyReport &energy)
{
    if (json.type() != Json::Type::Object)
        return false;
    for (const char *key : {"coreDynamicMj", "l1Mj", "l2Mj", "nocMj",
                            "dramMj", "compressionMj", "staticMj"}) {
        if (!json.contains(key))
            return false;
    }
    energy.coreDynamicMj = json.at("coreDynamicMj").asDouble();
    energy.l1Mj = json.at("l1Mj").asDouble();
    energy.l2Mj = json.at("l2Mj").asDouble();
    energy.nocMj = json.at("nocMj").asDouble();
    energy.dramMj = json.at("dramMj").asDouble();
    energy.compressionMj = json.at("compressionMj").asDouble();
    energy.staticMj = json.at("staticMj").asDouble();
    if (json.contains("l2CompressionMj"))
        energy.l2CompressionMj = json.at("l2CompressionMj").asDouble();
    if (json.contains("linkCompressionMj")) {
        energy.linkCompressionMj =
            json.at("linkCompressionMj").asDouble();
    }
    return true;
}

Json
toJson(const KernelSnapshot &snapshot)
{
    return Json(Json::Object{
        {"name", Json(snapshot.name)},
        {"cycles", Json(snapshot.cycles)},
        {"instructions", Json(snapshot.instructions)},
        {"hits", Json(snapshot.hits)},
        {"misses", Json(snapshot.misses)},
        {"usage", toJson(snapshot.usage)},
        {"modeAccesses", modeAccessesJson(snapshot.modeAccesses)},
    });
}

bool
fromJson(const Json &json, KernelSnapshot &snapshot)
{
    if (json.type() != Json::Type::Object || !json.contains("name") ||
        !json.contains("usage") || !json.contains("modeAccesses"))
        return false;
    snapshot.name = json.at("name").asString();
    snapshot.cycles = json.at("cycles").asUint();
    snapshot.instructions = json.at("instructions").asUint();
    snapshot.hits = json.at("hits").asUint();
    snapshot.misses = json.at("misses").asUint();
    return fromJson(json.at("usage"), snapshot.usage) &&
           modeAccessesFromJson(json.at("modeAccesses"),
                                snapshot.modeAccesses);
}

Json
toJson(const PolicyTracePoint &point)
{
    Json::Object object{
        {"cycle", Json(point.cycle)},
        {"tolerance", Json(point.latencyTolerance)},
        {"mode", Json(modeName(point.mode))},
        {"capacityBytes", Json(point.effectiveCapacityBytes)},
        {"decompQueueDepth", Json(point.decompQueueDepth)},
        {"samplerHits", modeAccessesJson(point.samplerHits)},
        {"samplerMisses", modeAccessesJson(point.samplerMisses)},
    };
    // L2-level fields only when a compressed-L2 controller ran.
    if (point.hasL2) {
        object["l2Mode"] = Json(modeName(point.l2Mode));
        object["l2Tolerance"] = Json(point.l2Tolerance);
    }
    return Json(std::move(object));
}

bool
fromJson(const Json &json, PolicyTracePoint &point)
{
    if (json.type() != Json::Type::Object || !json.contains("cycle") ||
        !json.contains("tolerance") || !json.contains("mode") ||
        !json.contains("capacityBytes") ||
        !json.contains("decompQueueDepth") ||
        !json.contains("samplerHits") || !json.contains("samplerMisses"))
        return false;
    point.cycle = json.at("cycle").asUint();
    point.latencyTolerance = json.at("tolerance").asDouble();
    point.effectiveCapacityBytes = json.at("capacityBytes").asUint();
    point.decompQueueDepth =
        static_cast<std::uint32_t>(json.at("decompQueueDepth").asUint());
    if (!modeAccessesFromJson(json.at("samplerHits"),
                              point.samplerHits) ||
        !modeAccessesFromJson(json.at("samplerMisses"),
                              point.samplerMisses))
        return false;
    if (json.contains("l2Mode")) {
        point.hasL2 = true;
        point.l2Tolerance = json.contains("l2Tolerance")
                                ? json.at("l2Tolerance").asDouble()
                                : 0.0;
        if (!modeFromName(json.at("l2Mode").asString(), point.l2Mode))
            return false;
    }
    return modeFromName(json.at("mode").asString(), point.mode);
}

Json
toJson(const WorkloadRunResult &result)
{
    Json::Array kernels;
    for (const KernelSnapshot &snapshot : result.kernels)
        kernels.push_back(toJson(snapshot));

    Json::Array best_modes;
    for (const CompressorId mode : result.kernelBestModes)
        best_modes.emplace_back(modeName(mode));

    Json::Array trace;
    for (const PolicyTracePoint &point : result.trace)
        trace.push_back(toJson(point));

    Json::Object stats;
    for (const auto &[name, value] : result.stats)
        stats.emplace(name, Json(value));

    return Json(Json::Object{
        // Bumped 2 -> 3 when the cell document grew the RunOutcome
        // envelope (status/error/attempts/retryHistory); stale cache
        // entries degrade to misses.
        {"schema", Json(std::uint64_t{3})},
        {"workload", Json(result.workload)},
        {"policyKind", Json(policyName(result.policy))},
        {"policyLabel", Json(result.policyLabel)},
        {"seed", Json(result.seed)},
        {"cycles", Json(result.cycles)},
        {"instructions", Json(result.instructions)},
        {"hits", Json(result.hits)},
        {"misses", Json(result.misses)},
        {"energy", toJson(result.energy)},
        {"kernels", Json(std::move(kernels))},
        {"kernelBestModes", Json(std::move(best_modes))},
        {"trace", Json(std::move(trace))},
        {"modeAccesses", modeAccessesJson(result.modeAccesses)},
        {"stats", Json(std::move(stats))},
    });
}

bool
fromJson(const Json &json, WorkloadRunResult &result)
{
    if (json.type() != Json::Type::Object)
        return false;
    for (const char *key :
         {"schema", "workload", "policyKind", "policyLabel", "seed",
          "cycles", "instructions", "hits", "misses", "energy",
          "kernels", "kernelBestModes", "trace", "modeAccesses",
          "stats"}) {
        if (!json.contains(key))
            return false;
    }
    if (json.at("schema").asUint() != 3)
        return false;

    result = WorkloadRunResult{};
    result.workload = json.at("workload").asString();
    const PolicyKind *kind =
        policyKindFromName(json.at("policyKind").asString());
    if (!kind)
        return false;
    result.policy = *kind;
    result.policyLabel = json.at("policyLabel").asString();
    result.seed = json.at("seed").asUint();
    result.cycles = json.at("cycles").asUint();
    result.instructions = json.at("instructions").asUint();
    result.hits = json.at("hits").asUint();
    result.misses = json.at("misses").asUint();
    if (!fromJson(json.at("energy"), result.energy))
        return false;

    for (const Json &elem : json.at("kernels").asArray()) {
        KernelSnapshot snapshot;
        if (!fromJson(elem, snapshot))
            return false;
        result.kernels.push_back(std::move(snapshot));
    }
    for (const Json &elem : json.at("kernelBestModes").asArray()) {
        CompressorId mode;
        if (!modeFromName(elem.asString(), mode))
            return false;
        result.kernelBestModes.push_back(mode);
    }
    for (const Json &elem : json.at("trace").asArray()) {
        PolicyTracePoint point;
        if (!fromJson(elem, point))
            return false;
        result.trace.push_back(point);
    }
    if (!modeAccessesFromJson(json.at("modeAccesses"),
                              result.modeAccesses))
        return false;
    for (const auto &[name, value] : json.at("stats").asObject())
        result.stats[name] = value.asDouble();
    return true;
}

Json
toJson(const RunError &error)
{
    return Json(Json::Object{
        {"code", Json(runErrorCodeName(error.code))},
        {"message", Json(error.message)},
        {"workload", Json(error.workload)},
        {"policyLabel", Json(error.policyLabel)},
        {"seed", Json(error.seed)},
        {"cycle", Json(error.cycle)},
    });
}

bool
fromJson(const Json &json, RunError &error)
{
    if (json.type() != Json::Type::Object)
        return false;
    for (const char *key : {"code", "message", "workload",
                            "policyLabel", "seed", "cycle"}) {
        if (!json.contains(key))
            return false;
    }
    const RunErrorCode *code =
        runErrorCodeFromName(json.at("code").asString());
    if (!code)
        return false;
    error.code = *code;
    error.message = json.at("message").asString();
    error.workload = json.at("workload").asString();
    error.policyLabel = json.at("policyLabel").asString();
    error.seed = json.at("seed").asUint();
    error.cycle = json.at("cycle").asUint();
    return true;
}

Json
toJson(const RunOutcome &outcome)
{
    Json::Object object;
    if (outcome.result) {
        object = toJson(*outcome.result).asObject();
    } else {
        // No result was produced: emit a zeroed body carrying the cell
        // context, so the export array stays uniformly shaped and
        // failed cells are still attributable.
        WorkloadRunResult stub;
        stub.workload = outcome.error.workload;
        stub.policyLabel = outcome.error.policyLabel;
        stub.seed = outcome.error.seed;
        object = toJson(stub).asObject();
    }

    object["status"] = Json(runStatusName(outcome.status));
    // Metadata only: which SIMD backend the compressors dispatched to.
    // Not part of the cell fingerprint (results are bit-identical
    // across backends), so fromJson() does not require or restore it.
    object["compressBackend"] =
        Json(std::string(activeCompressorBackend().name));
    // Metadata only, like compressBackend: how many SM-stepping threads
    // the run resolved to. Not part of the cell fingerprint (every
    // thread count is bit-identical); fromJson() restores it when
    // present so a cache-served cell reports the thread count of the
    // run that actually computed it.
    object["simThreads"] =
        Json(static_cast<std::uint64_t>(outcome.simThreads));
    object["error"] =
        outcome.error.ok() ? Json() : toJson(outcome.error);
    object["attempts"] =
        Json(static_cast<std::uint64_t>(outcome.attempts));
    Json::Array history;
    for (const RunError &error : outcome.retryHistory)
        history.push_back(toJson(error));
    object["retryHistory"] = Json(std::move(history));
    return Json(std::move(object));
}

Json
outcomesToJson(const std::vector<RunOutcome> &outcomes)
{
    Json::Array array;
    array.reserve(outcomes.size());
    for (const RunOutcome &outcome : outcomes)
        array.push_back(toJson(outcome));
    return Json(std::move(array));
}

bool
fromJson(const Json &json, RunOutcome &outcome)
{
    if (json.type() != Json::Type::Object)
        return false;
    for (const char *key :
         {"status", "error", "attempts", "retryHistory"}) {
        if (!json.contains(key))
            return false;
    }
    const RunStatus *status =
        runStatusFromName(json.at("status").asString());
    if (!status)
        return false;

    outcome = RunOutcome{};
    outcome.status = *status;
    if (json.at("error").type() != Json::Type::Null &&
        !fromJson(json.at("error"), outcome.error))
        return false;
    outcome.attempts =
        static_cast<std::uint32_t>(json.at("attempts").asUint());
    // Optional so pre-simThreads schema-3 cache entries stay valid.
    if (json.contains("simThreads")) {
        outcome.simThreads = static_cast<std::uint32_t>(
            json.at("simThreads").asUint());
    }
    for (const Json &elem : json.at("retryHistory").asArray()) {
        RunError error;
        if (!fromJson(elem, error))
            return false;
        outcome.retryHistory.push_back(std::move(error));
    }

    // The result body is only authoritative on successful outcomes;
    // failed cells keep their context in the error instead.
    if (outcome.ok()) {
        WorkloadRunResult result;
        if (!fromJson(json, result))
            return false;
        outcome.result = std::move(result);
    }
    return true;
}

namespace
{

/** StatVisitor building one nested Json object per StatGroup. */
class JsonStatVisitor : public StatVisitor
{
  public:
    void
    beginGroup(const StatGroup &, const std::string &) override
    {
        stack_.emplace_back();
    }

    void
    visitStat(const StatBase &stat, const std::string &) override
    {
        stack_.back().emplace(stat.name(), Json(stat.value()));
    }

    void
    endGroup(const StatGroup &group, const std::string &) override
    {
        Json::Object done = std::move(stack_.back());
        stack_.pop_back();
        if (stack_.empty())
            root_ = Json(std::move(done));
        else
            stack_.back().emplace(group.groupName(),
                                  Json(std::move(done)));
    }

    Json take() { return std::move(root_); }

  private:
    std::vector<Json::Object> stack_;
    Json root_;
};

} // namespace

Json
toJson(const StatGroup &group)
{
    JsonStatVisitor visitor;
    group.visit(visitor);
    return visitor.take();
}

Json
timelineToJson(const std::vector<WorkloadRunResult> &results)
{
    Json::Array runs;
    for (const WorkloadRunResult &result : results) {
        Json::Array points;
        for (const PolicyTracePoint &point : result.trace)
            points.push_back(toJson(point));
        runs.push_back(Json(Json::Object{
            {"workload", Json(result.workload)},
            {"policy", Json(result.policyLabel)},
            {"seed", Json(result.seed)},
            {"points", Json(std::move(points))},
        }));
    }
    return Json(Json::Object{
        {"schema", Json(std::uint64_t{1})},
        {"runs", Json(std::move(runs))},
    });
}

Json
toJson(const DriverOptions &options)
{
    const GpuConfig &cfg = options.cfg;
    const CompressorTimings &t = cfg.timings;
    const LatteParams &lp = cfg.latte;
    Json::Object cfg_object{
        {"numSms", Json(cfg.numSms)},
        {"maxWarpsPerSm", Json(cfg.maxWarpsPerSm)},
        {"maxBlocksPerSm", Json(cfg.maxBlocksPerSm)},
        {"schedulersPerSm", Json(cfg.schedulersPerSm)},
        {"warpSize", Json(cfg.warpSize)},
        {"registersPerSm", Json(cfg.registersPerSm)},
        {"sharedMemBytes", Json(cfg.sharedMemBytes)},
        {"l1SizeBytes", Json(cfg.l1.sizeBytes)},
        {"l1LineBytes", Json(cfg.l1.lineBytes)},
        {"l1Assoc", Json(cfg.l1.assoc)},
        {"l1HitLatency", Json(cfg.l1.hitLatency)},
        {"l1TagFactor", Json(cfg.l1.tagFactor)},
        {"l1SubBlockBytes", Json(cfg.l1.subBlockBytes)},
        {"l1MshrEntries", Json(cfg.l1.mshrEntries)},
        {"l1iSizeBytes", Json(cfg.l1iSizeBytes)},
        {"l2SizeBytes", Json(cfg.l2.sizeBytes)},
        {"l2LineBytes", Json(cfg.l2.lineBytes)},
        {"l2Assoc", Json(cfg.l2.assoc)},
        {"l2Banks", Json(cfg.l2.banks)},
        {"l2MinLatency", Json(cfg.l2.minLatency)},
        {"dramMinLatency", Json(cfg.dramMinLatency)},
        {"dramBytesPerCycle", Json(cfg.dramBytesPerCycle)},
        {"nocBytesPerCycle", Json(cfg.nocBytesPerCycle)},
        {"schedPolicy",
         Json(static_cast<std::uint64_t>(cfg.schedPolicy))},
        {"l1Repl", Json(static_cast<std::uint64_t>(cfg.l1Repl))},
        {"decompQueueEntries", Json(cfg.decompQueueEntries)},
    };
    // This JSON is the result-cache fingerprint, so the down-hierarchy
    // compression knobs are emitted only when set off their defaults:
    // every pre-existing configuration keeps its exact RunKey and its
    // cached/journaled cells stay hits.
    if (cfg.l2.compress != LevelCompress::Off)
        cfg_object["l2Compress"] = Json(levelCompressSpec(cfg.l2));
    if (cfg.linkCompress != CompressorId::None)
        cfg_object["linkCompress"] = Json(linkCompressSpec(cfg.linkCompress));
    {
        constexpr CacheLevelConfig l2_defaults =
            CacheLevelConfig::l2Defaults();
        if (cfg.l2.bankServiceCycles != l2_defaults.bankServiceCycles) {
            cfg_object["l2BankServiceCycles"] =
                Json(cfg.l2.bankServiceCycles);
        }
        if (cfg.l2.missPenaltyCycles != l2_defaults.missPenaltyCycles) {
            cfg_object["l2MissPenaltyCycles"] =
                Json(cfg.l2.missPenaltyCycles);
        }
    }
    return Json(Json::Object{
        {"cfg", Json(std::move(cfg_object))},
        {"timings",
         Json(Json::Object{
             {"bdiCompress", Json(t.bdiCompress)},
             {"bdiDecompress", Json(t.bdiDecompress)},
             {"fpcDecompress", Json(t.fpcDecompress)},
             {"cpackDecompress", Json(t.cpackDecompress)},
             {"bpcCompress", Json(t.bpcCompress)},
             {"bpcDecompress", Json(t.bpcDecompress)},
             {"scCompress", Json(t.scCompress)},
             {"scDecompress", Json(t.scDecompress)},
             {"bdiCompressNj", Json(t.bdiCompressNj)},
             {"bdiDecompressNj", Json(t.bdiDecompressNj)},
             {"scCompressNj", Json(t.scCompressNj)},
             {"scDecompressNj", Json(t.scDecompressNj)},
             {"bpcCompressNj", Json(t.bpcCompressNj)},
             {"bpcDecompressNj", Json(t.bpcDecompressNj)},
         })},
        {"latte",
         Json(Json::Object{
             {"epAccesses", Json(lp.epAccesses)},
             {"periodEps", Json(lp.periodEps)},
             {"learningEps", Json(lp.learningEps)},
             {"dedicatedSetsPerMode", Json(lp.dedicatedSetsPerMode)},
             {"vftEntries", Json(lp.vftEntries)},
             {"vftCounterBits", Json(lp.vftCounterBits)},
         })},
        {"tuning",
         Json(Json::Object{
             {"capacityBenefit", Json(options.tuning.capacityBenefit)},
             {"chargeDecompression",
              Json(options.tuning.chargeDecompression)},
             {"verifyRoundTrip", Json(options.tuning.verifyRoundTrip)},
             {"compressionMemo", Json(options.tuning.compressionMemo)},
         })},
        {"maxInstructionsPerKernel",
         Json(options.maxInstructionsPerKernel)},
        // options.compressBackend and options.simThreads are
        // deliberately absent: this JSON is the result-cache
        // fingerprint (RunKey.configHash), and every backend and every
        // SM-stepping thread count produce bit-identical results, so a
        // cached result must stay valid whichever computed it. Both
        // reach the sweep envelope via the RunOutcome JSON instead.
    });
}

void
flattenNumeric(const Json &json, const std::string &prefix,
               std::map<std::string, double> &out)
{
    switch (json.type()) {
      case Json::Type::Uint:
      case Json::Type::Double:
        out[prefix] = json.asDouble();
        break;
      case Json::Type::Array: {
        const Json::Array &array = json.asArray();
        for (std::size_t i = 0; i < array.size(); ++i)
            flattenNumeric(array[i], strfmt("{}[{}]", prefix, i), out);
        break;
      }
      case Json::Type::Object:
        for (const auto &[key, value] : json.asObject()) {
            flattenNumeric(value,
                           prefix.empty() ? key : prefix + "." + key,
                           out);
        }
        break;
      default:
        break; // booleans, strings and nulls are not metrics
    }
}

} // namespace latte::runner
