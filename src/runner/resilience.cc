#include "resilience.hh"

#include <filesystem>
#include <sstream>

#include "common/logging.hh"
#include "json.hh"

namespace latte::runner
{

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    latte_assert(!path_.empty(), "SweepJournal needs a file path");
    std::error_code ec;
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    std::ifstream in(path_);
    if (in) {
        std::string line;
        std::size_t bad = 0;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string error;
            const Json json = Json::parse(line, &error);
            RunOutcome outcome;
            if (!error.empty() || !json.contains("fingerprint") ||
                !json.contains("outcome") ||
                !fromJson(json.at("outcome"), outcome)) {
                // A truncated tail line is the expected SIGKILL scar;
                // the cell simply counts as unfinished.
                ++bad;
                continue;
            }
            // Ok entries are completion markers only — the result body
            // journaled alongside is a stub; the real bytes live in the
            // result cache.
            if (outcome.ok())
                outcome.result.reset();
            entries_.insert_or_assign(
                json.at("fingerprint").asString(), std::move(outcome));
        }
        if (bad > 0)
            latte_warn("sweep journal {}: skipped {} unreadable line(s)",
                       path_, bad);
    }

    out_.open(path_, std::ios::app);
    if (!out_)
        latte_warn("sweep journal: cannot append to {}", path_);
}

std::optional<RunOutcome>
SweepJournal::find(const std::string &fingerprint) const
{
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(fingerprint);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
SweepJournal::record(const std::string &fingerprint,
                     const RunOutcome &outcome)
{
    // Journal the envelope only: the result body of an ok cell is
    // cache-sized, and the cache already owns those bytes.
    RunOutcome entry = outcome;
    entry.result.reset();

    Json::Object line;
    line.emplace("fingerprint", fingerprint);
    line.emplace("outcome", toJson(entry));

    std::lock_guard lock(mutex_);
    if (out_) {
        out_ << Json(std::move(line)).dump() << "\n";
        out_.flush();  // one durable line per finished cell
    }
    entries_.insert_or_assign(fingerprint, std::move(entry));
}

std::size_t
SweepJournal::size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

Watchdog::Watchdog(std::uint64_t pollMs)
    : poll_(std::chrono::milliseconds(pollMs == 0 ? 1 : pollMs)),
      thread_([this] { loop(); })
{}

Watchdog::~Watchdog()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
}

std::uint64_t
Watchdog::arm(CancelToken *token, std::uint64_t timeoutMs,
              std::string label)
{
    latte_assert(token != nullptr, "Watchdog::arm needs a token");
    const auto now = Clock::now();
    const auto deadline = now + std::chrono::milliseconds(timeoutMs);
    std::uint64_t id;
    {
        std::lock_guard lock(mutex_);
        id = nextId_++;
        slots_.emplace(
            id, Slot{token, deadline, now, timeoutMs, std::move(label)});
    }
    wake_.notify_all();
    return id;
}

void
Watchdog::disarm(std::uint64_t id)
{
    if (id == 0)
        return;
    std::uint64_t elapsedMs = 0;
    std::uint64_t timeoutMs = 0;
    std::string label;
    bool nearMiss = false;
    {
        std::lock_guard lock(mutex_);
        const auto it = slots_.find(id);
        if (it == slots_.end())
            return;  // already expired; the cancel is the record
        const Slot &slot = it->second;
        elapsedMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - slot.armedAt)
                .count());
        // Finished in budget but past half of it: the early warning
        // that this config's --cell-timeout is about to start biting.
        if (slot.timeoutMs > 0 && elapsedMs * 2 >= slot.timeoutMs) {
            nearMiss = true;
            ++nearMisses_;
            timeoutMs = slot.timeoutMs;
            label = slot.label;
        }
        slots_.erase(it);
    }
    if (nearMiss)
        latte_warn("watchdog near-miss: {} took {} ms of a {} ms budget",
                   label.empty() ? "cell" : label.c_str(), elapsedMs,
                   timeoutMs);
}

std::uint64_t
Watchdog::expiredCount() const
{
    std::lock_guard lock(mutex_);
    return expired_;
}

std::uint64_t
Watchdog::nearMissCount() const
{
    std::lock_guard lock(mutex_);
    return nearMisses_;
}

void
Watchdog::loop()
{
    setLogThreadName("watchdog");
    std::unique_lock lock(mutex_);
    while (!stop_) {
        wake_.wait_for(lock, poll_);
        if (stop_)
            break;
        const auto now = Clock::now();
        for (auto it = slots_.begin(); it != slots_.end();) {
            Slot &slot = it->second;
            if (now >= slot.deadline) {
                slot.token->cancel(RunErrorCode::WallClockTimeout);
                ++expired_;
                latte_warn("watchdog expired: {} exceeded its {} ms "
                           "wall-clock budget, cancelling",
                           slot.label.empty() ? "cell"
                                              : slot.label.c_str(),
                           slot.timeoutMs);
                it = slots_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

} // namespace latte::runner
