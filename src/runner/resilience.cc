#include "resilience.hh"

#include <filesystem>
#include <sstream>

#include "common/logging.hh"
#include "json.hh"

namespace latte::runner
{

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    latte_assert(!path_.empty(), "SweepJournal needs a file path");
    std::error_code ec;
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    std::ifstream in(path_);
    if (in) {
        std::string line;
        std::size_t bad = 0;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string error;
            const Json json = Json::parse(line, &error);
            RunOutcome outcome;
            if (!error.empty() || !json.contains("fingerprint") ||
                !json.contains("outcome") ||
                !fromJson(json.at("outcome"), outcome)) {
                // A truncated tail line is the expected SIGKILL scar;
                // the cell simply counts as unfinished.
                ++bad;
                continue;
            }
            // Ok entries are completion markers only — the result body
            // journaled alongside is a stub; the real bytes live in the
            // result cache.
            if (outcome.ok())
                outcome.result.reset();
            entries_.insert_or_assign(
                json.at("fingerprint").asString(), std::move(outcome));
        }
        if (bad > 0)
            latte_warn("sweep journal {}: skipped {} unreadable line(s)",
                       path_, bad);
    }

    out_.open(path_, std::ios::app);
    if (!out_)
        latte_warn("sweep journal: cannot append to {}", path_);
}

std::optional<RunOutcome>
SweepJournal::find(const std::string &fingerprint) const
{
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(fingerprint);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
SweepJournal::record(const std::string &fingerprint,
                     const RunOutcome &outcome)
{
    // Journal the envelope only: the result body of an ok cell is
    // cache-sized, and the cache already owns those bytes.
    RunOutcome entry = outcome;
    entry.result.reset();

    Json::Object line;
    line.emplace("fingerprint", fingerprint);
    line.emplace("outcome", toJson(entry));

    std::lock_guard lock(mutex_);
    if (out_) {
        out_ << Json(std::move(line)).dump() << "\n";
        out_.flush();  // one durable line per finished cell
    }
    entries_.insert_or_assign(fingerprint, std::move(entry));
}

std::size_t
SweepJournal::size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

Watchdog::Watchdog(std::uint64_t pollMs)
    : poll_(std::chrono::milliseconds(pollMs == 0 ? 1 : pollMs)),
      thread_([this] { loop(); })
{}

Watchdog::~Watchdog()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
}

std::uint64_t
Watchdog::arm(CancelToken *token, std::uint64_t timeoutMs)
{
    latte_assert(token != nullptr, "Watchdog::arm needs a token");
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    std::uint64_t id;
    {
        std::lock_guard lock(mutex_);
        id = nextId_++;
        slots_.emplace(id, Slot{token, deadline});
    }
    wake_.notify_all();
    return id;
}

void
Watchdog::disarm(std::uint64_t id)
{
    if (id == 0)
        return;
    std::lock_guard lock(mutex_);
    slots_.erase(id);
}

std::uint64_t
Watchdog::expiredCount() const
{
    std::lock_guard lock(mutex_);
    return expired_;
}

void
Watchdog::loop()
{
    std::unique_lock lock(mutex_);
    while (!stop_) {
        wake_.wait_for(lock, poll_);
        if (stop_)
            break;
        const auto now = Clock::now();
        for (auto it = slots_.begin(); it != slots_.end();) {
            if (now >= it->second.deadline) {
                it->second.token->cancel(RunErrorCode::WallClockTimeout);
                ++expired_;
                it = slots_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

} // namespace latte::runner
