/**
 * @file
 * A minimal self-contained JSON value type plus serializers for the
 * driver's result structs. Built for two jobs: the on-disk experiment
 * result cache (exact round-trip, so unsigned 64-bit counters and
 * doubles are preserved bit-for-bit) and `--json` result export from
 * the bench harnesses.
 *
 * Serialization is canonical: object keys are emitted in sorted order
 * and doubles are printed with round-trippable precision, so the same
 * WorkloadRunResult always produces byte-identical text — the property
 * the determinism tests assert across thread counts.
 */

#ifndef LATTE_RUNNER_JSON_HH
#define LATTE_RUNNER_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/driver.hh"

namespace latte::runner
{

/** A JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Uint,    //!< integer token that fits std::uint64_t
        Double,  //!< any other number
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    /** std::map keeps key order canonical for byte-stable dumps. */
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::uint64_t u) : type_(Type::Uint), uint_(u) {}
    Json(std::uint32_t u) : Json(static_cast<std::uint64_t>(u)) {}
    Json(int i) : Json(static_cast<std::uint64_t>(i)) {}
    Json(double d) : type_(Type::Double), double_(d) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNumber() const
    {
        return type_ == Type::Uint || type_ == Type::Double;
    }

    bool asBool() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member access; dies if absent — use contains() first. */
    const Json &at(const std::string &key) const;
    bool contains(const std::string &key) const;

    /** Serialize. @p indent < 0 means compact single-line output. */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text. On failure returns a Null value and, when @p error
     * is non-null, stores a message describing the first problem.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

// --- Result serialization ----------------------------------------------

Json toJson(const UsageCounts &usage);
Json toJson(const EnergyReport &energy);
Json toJson(const KernelSnapshot &snapshot);
Json toJson(const PolicyTracePoint &point);
Json toJson(const WorkloadRunResult &result);
Json toJson(const RunError &error);

/**
 * The schema-3 cell document: the result body (or a zeroed stub
 * carrying the cell context when the run failed) extended with the
 * outcome envelope — "status", "error" (null when ok), "attempts" and
 * "retryHistory". This is what the result cache persists and what the
 * sweep --json export emits, so failed cells still appear in partial
 * results with their cause and retry history.
 */
Json toJson(const RunOutcome &outcome);

/**
 * The sweep export document: every outcome as a schema-3 cell document
 * in sweep order. One function shared by Sweep::writeJson, the latted
 * service and latte_client's in-process runner, so the same outcomes
 * always serialize to byte-identical export text regardless of which
 * front end produced them.
 */
Json outcomesToJson(const std::vector<RunOutcome> &outcomes);

/**
 * Serialize a whole stat hierarchy as nested objects, one per
 * StatGroup, via StatGroup::visit() — the one traversal shared with
 * dump() and collect().
 */
Json toJson(const StatGroup &group);

/** Canonical dump of every DriverOptions field (cache-key material). */
Json toJson(const DriverOptions &options);

/**
 * The --timeline-out document: per-EP time series (latency tolerance,
 * chosen mode, effective capacity, decompression-queue occupancy,
 * sampler counters) of every run in @p results.
 */
Json timelineToJson(const std::vector<WorkloadRunResult> &results);

/**
 * Flatten every numeric leaf of @p json into @p out under dotted key
 * paths rooted at @p prefix: object members as `parent.child`, array
 * elements as `parent[i]`. Booleans, strings and nulls are skipped.
 * Used by metrics_diff to compare two arbitrary result documents
 * metric by metric.
 */
void flattenNumeric(const Json &json, const std::string &prefix,
                    std::map<std::string, double> &out);

/** Reconstruction, for disk-cache hits. False on schema mismatch. */
bool fromJson(const Json &json, UsageCounts &usage);
bool fromJson(const Json &json, EnergyReport &energy);
bool fromJson(const Json &json, KernelSnapshot &snapshot);
bool fromJson(const Json &json, PolicyTracePoint &point);
bool fromJson(const Json &json, WorkloadRunResult &result);
bool fromJson(const Json &json, RunError &error);
bool fromJson(const Json &json, RunOutcome &outcome);

} // namespace latte::runner

#endif // LATTE_RUNNER_JSON_HH
