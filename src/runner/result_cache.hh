/**
 * @file
 * The sweep cell key and the on-disk experiment result cache.
 *
 * A RunKey identifies a simulation cell by workload, policy label,
 * seed, and a hash of the *entire* DriverOptions (config, tuning and
 * instruction budget) — so two sweeps with different tunings can never
 * alias, the collision the old abbr+"/"+policyName string key allowed.
 *
 * The disk cache stores one JSON file per cell under a caller-chosen
 * directory; lookups re-parse and re-validate, so a stale or truncated
 * file degrades to a miss, never a wrong result.
 */

#ifndef LATTE_RUNNER_RESULT_CACHE_HH
#define LATTE_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/driver.hh"

namespace latte::runner
{

/** FNV-1a 64-bit hash (stable across platforms and runs). */
std::uint64_t fnv1a(const std::string &text);

/** Identity of one sweep cell. */
struct RunKey
{
    std::string workload;
    std::string policyLabel;
    std::uint64_t seed = 0;
    /** Hash of the canonical JSON dump of the full DriverOptions. */
    std::uint64_t configHash = 0;

    /** Key for @p request (label from runRequestLabel()). */
    static RunKey of(const RunRequest &request);

    /** Filesystem-safe unique name, e.g. "KM-LATTE-CC-0-1a2b...". */
    std::string fingerprint() const;

    auto
    operator<=>(const RunKey &) const = default;
};

/** One-JSON-file-per-cell persistent result store. */
class ResultCache
{
  public:
    /** Results live in @p directory (created on first store). */
    explicit ResultCache(std::string directory);

    /** Parse the cell's file; nullopt on miss or schema mismatch. */
    std::optional<RunOutcome> lookup(const RunKey &key) const;

    /**
     * Atomically (write + rename) persist the cell's outcome. Only Ok
     * outcomes are stored: failures may be transient (watchdog trips,
     * injected faults) and are journaled, never cached.
     */
    void store(const RunKey &key, const RunOutcome &outcome) const;

    const std::string &directory() const { return directory_; }

  private:
    std::string path(const RunKey &key) const;

    std::string directory_;
};

} // namespace latte::runner

#endif // LATTE_RUNNER_RESULT_CACHE_HH
