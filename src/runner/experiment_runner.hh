/**
 * @file
 * ExperimentRunner: executes a declarative sweep — a vector of
 * RunRequest cells — across a fixed-size thread pool.
 *
 * Determinism: outcomes are returned in request order, each cell is a
 * pure function of its RunRequest (the simulator has no global mutable
 * state and every stochastic stream is seeded from the request), and
 * the worker threads only race on *which* index they pull next — so
 * the output is bit-identical for any thread count and any completion
 * order.
 *
 * With a cache directory set, each cell is first looked up in the
 * on-disk ResultCache and only simulated on a miss; fresh Ok results
 * are persisted for the next invocation.
 *
 * Resilience (see resilience.hh): a journal path makes finished cells
 * — ok or failed — skippable on resume; a wall-clock or cycle budget
 * arms a watchdog that cancels hung cells cooperatively; maxRetries
 * re-attempts Failed/TimedOut cells with exponential backoff. No cell
 * can take the sweep down: every failure is a RunOutcome, not an
 * exception or exit.
 */

#ifndef LATTE_RUNNER_EXPERIMENT_RUNNER_HH
#define LATTE_RUNNER_EXPERIMENT_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "metrics/latency_histogram.hh"

namespace latte::runner
{

struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** On-disk result cache directory; empty = no persistent cache. */
    std::string cacheDir;
    /** Progress/ETA lines on stderr. */
    bool progress = true;

    // --- Observability -------------------------------------------------
    /**
     * Correlation prefix for every log line a cell emits: worker
     * threads push "<logContext>cell-<i>" as their log context while a
     * cell runs, so one grep for the prefix reconstructs a job's
     * lifetime across threads. The service sets "job-<id>/".
     */
    std::string logContext;
    /**
     * Directory for crash-diagnostics snapshots: every cell that
     * finishes with a non-Ok outcome dumps a correlation-tagged JSON
     * snapshot (error, attempts, pool counters, profiler zones, trace
     * tail) here. Empty derives "<journal dir>/diagnostics" when a
     * journal path is set; with neither, no snapshots are written.
     */
    std::string diagnosticsDir;

    // --- Resilience ----------------------------------------------------
    /** Sweep journal path; empty = no checkpoint/resume. */
    std::string journalPath;
    /** Per-cell wall-clock budget in ms; 0 = unlimited. */
    std::uint64_t cellTimeoutMs = 0;
    /** Per-cell simulated-cycle budget; 0 = unlimited. Applied only to
     *  cells that don't set their own RunControl::cycleBudget. */
    std::uint64_t cellCycleBudget = 0;
    /** Extra attempts for Failed/TimedOut cells (0 = fail fast). */
    std::uint32_t maxRetries = 0;
    /** Base backoff before retry k: backoff * 2^(k-1), capped at 5 s. */
    std::uint64_t retryBackoffMs = 100;

    // --- Supervision ---------------------------------------------------
    /**
     * Sweep-level cooperative cancel (not owned; nullptr = not
     * cancellable). A tripped token only stops cells that have not
     * started: in-flight cells finish normally (so their results stay
     * cacheable) and every unstarted cell completes as a Cancelled
     * outcome without touching the cache or journal. This is
     * deliberately distinct from the per-cell watchdog tokens — one
     * slow cell's timeout must not take down the sweep.
     */
    CancelToken *cancel = nullptr;
    /**
     * Per-cell completion hook: (request index, outcome, shortcut)
     * where shortcut is true when the cell was served from the journal
     * or disk cache rather than simulated. Invoked once per cell on
     * every completion path — executed, cache hit, journal skip,
     * cancelled — from whichever worker thread finished the cell, so
     * the callee must be thread-safe. The job service uses it to
     * stream per-cell progress events to subscribed clients.
     */
    std::function<void(std::size_t, const RunOutcome &, bool)> onCellDone;
};

class ExperimentRunner
{
  public:
    /** Per-runAll execution counters. */
    struct Stats
    {
        std::size_t executed = 0;     //!< cells actually simulated
        std::size_t cacheHits = 0;    //!< cells served from disk
        std::size_t journalSkips = 0; //!< cells resumed from journal
        std::size_t failed = 0;       //!< cells with a non-Ok outcome
        std::size_t retried = 0;      //!< cells needing >1 attempt
        /** Cells that finished in budget but used over half of it. */
        std::size_t nearMisses = 0;
    };

    explicit ExperimentRunner(RunnerOptions options = {});

    /**
     * Execute every request; outcomes[i] corresponds to requests[i].
     * Blocks until the whole sweep is done. Never throws for a cell
     * failure — inspect each RunOutcome.
     */
    std::vector<RunOutcome>
    runAll(const std::vector<RunRequest> &requests);

    /** Counters from the most recent runAll(). */
    const Stats &stats() const { return stats_; }

    /**
     * Wall-time distribution (milliseconds) of every cell completed by
     * the most recent runAll(), shortcut cells included. Observational
     * only — never part of results or RunKeys.
     */
    const metrics::LatencyHistogram &cellWallMs() const
    {
        return cellWallMs_;
    }

    /** The worker count a sweep of @p cells would actually use. */
    unsigned effectiveThreads(std::size_t cells) const;

    const RunnerOptions &options() const { return options_; }

  private:
    RunnerOptions options_;
    Stats stats_;
    metrics::LatencyHistogram cellWallMs_;
};

} // namespace latte::runner

#endif // LATTE_RUNNER_EXPERIMENT_RUNNER_HH
