/**
 * @file
 * ExperimentRunner: executes a declarative sweep — a vector of
 * RunRequest cells — across a fixed-size thread pool.
 *
 * Determinism: results are returned in request order, each cell is a
 * pure function of its RunRequest (the simulator has no global mutable
 * state and every stochastic stream is seeded from the request), and
 * the worker threads only race on *which* index they pull next — so
 * the output is bit-identical for any thread count and any completion
 * order.
 *
 * With a cache directory set, each cell is first looked up in the
 * on-disk ResultCache and only simulated on a miss; fresh results are
 * persisted for the next invocation.
 */

#ifndef LATTE_RUNNER_EXPERIMENT_RUNNER_HH
#define LATTE_RUNNER_EXPERIMENT_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/driver.hh"

namespace latte::runner
{

struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** On-disk result cache directory; empty = no persistent cache. */
    std::string cacheDir;
    /** Progress/ETA lines on stderr. */
    bool progress = true;
};

class ExperimentRunner
{
  public:
    /** Per-runAll execution counters. */
    struct Stats
    {
        std::size_t executed = 0;  //!< cells actually simulated
        std::size_t cacheHits = 0; //!< cells served from disk
    };

    explicit ExperimentRunner(RunnerOptions options = {});

    /**
     * Execute every request; results()[i] corresponds to requests[i].
     * Blocks until the whole sweep is done.
     */
    std::vector<WorkloadRunResult>
    runAll(const std::vector<RunRequest> &requests);

    /** Counters from the most recent runAll(). */
    const Stats &stats() const { return stats_; }

    /** The worker count a sweep of @p cells would actually use. */
    unsigned effectiveThreads(std::size_t cells) const;

    const RunnerOptions &options() const { return options_; }

  private:
    RunnerOptions options_;
    Stats stats_;
};

} // namespace latte::runner

#endif // LATTE_RUNNER_EXPERIMENT_RUNNER_HH
