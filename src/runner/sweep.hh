/**
 * @file
 * Sweep: the declarative front door of the experiment runner, used by
 * every per-figure bench binary and the grid-shaped examples.
 *
 *   Sweep sweep(argc, argv);                  // parses -j/--cache-dir/--json
 *   for (...) sweep.add(workload, kind);      // declare the grid
 *   const auto &r = sweep.get(workload, kind);// first get() runs ALL
 *                                             // pending cells in parallel
 *
 * get() on a cell that was never add()ed simulates it on the spot, so
 * incremental/lazy callers still work — they just forgo parallelism for
 * that cell. Cells are keyed by RunKey (workload x policy label x seed
 * x full DriverOptions hash), so the same Sweep can hold multiple
 * configurations of the same workload/policy pair without aliasing.
 */

#ifndef LATTE_RUNNER_SWEEP_HH
#define LATTE_RUNNER_SWEEP_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arg_parse.hh"
#include "experiment_runner.hh"
#include "result_cache.hh"
#include "sweep_spec.hh"
#include "trace/tracer.hh"

namespace latte::metrics
{
class MetricRegistry;
} // namespace latte::metrics

namespace latte::runner
{

class Sweep
{
  public:
    /** Parse and strip the shared sweep flags from argc/argv. */
    Sweep(int &argc, char **argv, DriverOptions defaults = {});

    /** Use pre-parsed options (tests, embedding). */
    explicit Sweep(SweepCliOptions cli, DriverOptions defaults = {});

    /**
     * Destructor writes the --json, --trace-out, --timeline-out,
     * --metrics-out and --bench-out exports of everything executed.
     */
    ~Sweep();

    Sweep(const Sweep &) = delete;
    Sweep &operator=(const Sweep &) = delete;

    // --- Declaring the grid -------------------------------------------

    /** Queue one cell under the sweep's default DriverOptions. */
    void add(const Workload &workload, PolicyKind kind);

    /** Queue one cell under cell-specific options. */
    void add(const Workload &workload, PolicyKind kind,
             const DriverOptions &options);

    /** Queue an arbitrary request (custom factory, seed, label). */
    void add(RunRequest request);

    /**
     * Queue every cell of a declarative spec, expanded over the
     * sweep's default DriverOptions. An invalid spec is a latte_fatal
     * — validate() it first when the spec came from outside.
     */
    void add(const SweepSpec &spec);

    // --- Executing and reading ----------------------------------------

    /** Run every queued-but-unfinished cell across the thread pool. */
    void run();

    /**
     * Result lookup; runs pending cells (or the missing cell) first.
     * A cell that did not finish Ok is a latte_fatal here — get() is
     * the "I need the numbers" API. Callers that tolerate failure
     * (partial sweeps, fault-injection harnesses) use outcome().
     */
    const WorkloadRunResult &get(const Workload &workload,
                                 PolicyKind kind);
    const WorkloadRunResult &get(const Workload &workload,
                                 PolicyKind kind,
                                 const DriverOptions &options);
    const WorkloadRunResult &get(const RunRequest &request);

    /** Outcome lookup; like get() but failures are values, not fatal. */
    const RunOutcome &outcome(const Workload &workload, PolicyKind kind);
    const RunOutcome &outcome(const Workload &workload, PolicyKind kind,
                              const DriverOptions &options);
    const RunOutcome &outcome(const RunRequest &request);

    /** Every finished outcome, in add() order. */
    const std::vector<RunOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Write the --json export now (no-op without --json). */
    void writeJson() const;

    /** Write the Chrome trace export now (no-op without --trace-out). */
    void writeTrace() const;

    /** Write the per-EP export now (no-op without --timeline-out). */
    void writeTimeline() const;

    /** Write the metrics export now (no-op without --metrics-out). */
    void writeMetrics() const;

    /** Write the throughput report now (no-op without --bench-out). */
    void writeBench() const;

    /**
     * Merge one extra top-level entry into the --bench-out report
     * (e.g. the fig11 --sim-threads scaling probe). Last writer wins
     * on key collisions, including with the built-in fields.
     */
    void addBenchExtra(const std::string &key, Json value);

    /** The --bench-out path; empty when no report was requested. */
    const std::string &benchPath() const { return benchOut_; }

    const DriverOptions &defaults() const { return defaults_; }
    const ExperimentRunner &runner() const { return runner_; }

  private:
    /** Slot of @p request's cell, queueing it if new. */
    std::size_t indexOf(const RunRequest &request);

    /** Ring capacity of each per-cell tracer under --trace-out. */
    static constexpr std::size_t kCellTraceCapacity = std::size_t{1} << 16;

    DriverOptions defaults_;
    ExperimentRunner runner_;
    std::string jsonPath_;
    std::string traceOut_;
    std::string timelineOut_;
    std::string metricsOut_;
    std::uint64_t metricsInterval_ = 0;
    std::string benchOut_;
    /** Extra top-level --bench-out entries (addBenchExtra). */
    Json::Object benchExtra_;
    /** Wall-clock seconds spent inside runner_.runAll() calls. */
    double runSeconds_ = 0;

    std::vector<RunRequest> requests_;        //!< all cells, add() order
    std::vector<RunOutcome> outcomes_;        //!< parallel to requests_
    std::vector<bool> done_;                  //!< parallel to requests_
    /** Parallel to requests_; null entries unless --trace-out is set. */
    std::vector<std::unique_ptr<Tracer>> tracers_;
    /** Parallel to requests_; null unless --metrics-out is set. */
    std::vector<std::unique_ptr<metrics::MetricRegistry>> metrics_;
    std::vector<std::size_t> pending_;        //!< slots not yet executed
    std::map<RunKey, std::size_t> index_;     //!< cell key -> slot
};

} // namespace latte::runner

#endif // LATTE_RUNNER_SWEEP_HH
