#include "arg_parse.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace latte::runner
{

const char *
sweepArgsUsage()
{
    return "  -j, --jobs <n>     worker threads (0 = all cores)\n"
           "  --cache-dir <dir>  reuse/persist results on disk\n"
           "  --json <path>      write sweep results as a JSON array\n"
           "  --trace-out <path> write a Chrome trace-event JSON "
           "(chrome://tracing, Perfetto)\n"
           "  --timeline-out <path> write the per-EP time series "
           "(tolerance, mode, capacity)\n"
           "  --metrics-out <path>  write sampled time-series metrics "
           "(.prom/.txt Prometheus, .csv CSV, else JSONL)\n"
           "  --metrics-interval <cycles> metric sampling interval "
           "(default 100000)\n"
           "  --profile          enable the wall-clock zone "
           "self-profiler (reported with the metrics export)\n"
           "  --bench-out <path> write an end-to-end throughput "
           "report JSON\n"
           "  --no-progress      suppress stderr progress lines\n";
}

SweepCliOptions
parseSweepArgs(int &argc, char **argv)
{
    SweepCliOptions options;

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                latte_fatal("{} needs a value\n{}", flag,
                            sweepArgsUsage());
            return argv[++i];
        };

        if (arg == "-j" || arg == "--jobs") {
            char *end = nullptr;
            const char *text = value(arg.c_str());
            const unsigned long jobs = std::strtoul(text, &end, 10);
            if (!end || *end != '\0')
                latte_fatal("bad job count '{}'", text);
            options.jobs = static_cast<unsigned>(jobs);
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   std::isdigit(static_cast<unsigned char>(arg[2]))) {
            options.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 10));
        } else if (arg == "--cache-dir") {
            options.cacheDir = value("--cache-dir");
        } else if (arg == "--json") {
            options.jsonPath = value("--json");
        } else if (arg == "--trace-out") {
            options.traceOut = value("--trace-out");
        } else if (arg == "--timeline-out") {
            options.timelineOut = value("--timeline-out");
        } else if (arg == "--metrics-out") {
            options.metricsOut = value("--metrics-out");
        } else if (arg == "--metrics-interval") {
            char *end = nullptr;
            const char *text = value("--metrics-interval");
            const unsigned long long cycles =
                std::strtoull(text, &end, 10);
            if (!end || *end != '\0' || cycles == 0)
                latte_fatal("bad metrics interval '{}'", text);
            options.metricsInterval = cycles;
        } else if (arg == "--profile") {
            options.profile = true;
        } else if (arg == "--bench-out") {
            options.benchOut = value("--bench-out");
        } else if (arg == "--no-progress") {
            options.progress = false;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return options;
}

} // namespace latte::runner
