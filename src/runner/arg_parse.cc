#include "arg_parse.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/config.hh"
#include "common/logging.hh"
#include "compress/backend.hh"
#include "sim/thread_pool.hh"

namespace latte::runner
{

namespace
{

std::uint64_t
parseUint(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (!end || *end != '\0' || text.empty())
        latte_fatal("{}: bad number '{}'\n{}", flag, text,
                    sweepArgsUsage());
    return value;
}

double
parseSeconds(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (!end || *end != '\0' || text.empty() || value < 0)
        latte_fatal("{}: bad duration '{}'\n{}", flag, text,
                    sweepArgsUsage());
    return value;
}

// The single source of truth: parseSweepArgs() walks this table and
// sweepArgsUsage() renders it. A null `value` marks a boolean flag.
const ArgSpec kSpecs[] = {
    {"--jobs", "-j", "<n>", "worker threads (0 = all cores)",
     [](SweepCliOptions &o, const std::string &v) {
         o.jobs = static_cast<unsigned>(parseUint("--jobs", v));
     }},
    {"--cache-dir", nullptr, "<dir>", "reuse/persist results on disk",
     [](SweepCliOptions &o, const std::string &v) { o.cacheDir = v; }},
    {"--resume", nullptr, "<path>",
     "journal finished cells there; skip them when re-run",
     [](SweepCliOptions &o, const std::string &v) { o.resumePath = v; }},
    {"--cell-timeout", nullptr, "<seconds>",
     "wall-clock watchdog budget per cell (0 = unlimited)",
     [](SweepCliOptions &o, const std::string &v) {
         o.cellTimeoutMs = static_cast<std::uint64_t>(
             parseSeconds("--cell-timeout", v) * 1000.0);
     }},
    {"--cell-cycle-budget", nullptr, "<cycles>",
     "simulated-cycle budget per cell (0 = unlimited)",
     [](SweepCliOptions &o, const std::string &v) {
         o.cellCycleBudget = parseUint("--cell-cycle-budget", v);
     }},
    {"--retries", nullptr, "<n>",
     "extra attempts for failed/timed-out cells",
     [](SweepCliOptions &o, const std::string &v) {
         o.retries = static_cast<std::uint32_t>(
             parseUint("--retries", v));
     }},
    {"--retry-backoff-ms", nullptr, "<ms>",
     "base backoff between attempts (doubled each retry)",
     [](SweepCliOptions &o, const std::string &v) {
         o.retryBackoffMs = parseUint("--retry-backoff-ms", v);
     }},
    {"--json", nullptr, "<path>",
     "write sweep outcomes as a JSON array",
     [](SweepCliOptions &o, const std::string &v) { o.jsonPath = v; }},
    {"--trace-out", nullptr, "<path>",
     "write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
     [](SweepCliOptions &o, const std::string &v) { o.traceOut = v; }},
    {"--timeline-out", nullptr, "<path>",
     "write the per-EP time series (tolerance, mode, capacity)",
     [](SweepCliOptions &o, const std::string &v) {
         o.timelineOut = v;
     }},
    {"--metrics-out", nullptr, "<path>",
     "write sampled time-series metrics (.prom/.txt Prometheus, "
     ".csv CSV, else JSONL)",
     [](SweepCliOptions &o, const std::string &v) { o.metricsOut = v; }},
    {"--metrics-interval", nullptr, "<cycles>",
     "metric sampling interval (default 100000)",
     [](SweepCliOptions &o, const std::string &v) {
         o.metricsInterval = parseUint("--metrics-interval", v);
         if (o.metricsInterval == 0)
             latte_fatal("--metrics-interval: must be > 0");
     }},
    {"--profile", nullptr, nullptr,
     "enable the wall-clock zone self-profiler (reported with the "
     "metrics export)",
     [](SweepCliOptions &o, const std::string &) { o.profile = true; }},
    {"--bench-out", nullptr, "<path>",
     "write an end-to-end throughput report JSON",
     [](SweepCliOptions &o, const std::string &v) { o.benchOut = v; }},
    {"--no-progress", nullptr, nullptr,
     "suppress stderr progress lines",
     [](SweepCliOptions &o, const std::string &) {
         o.progress = false;
     }},
    {"--compress-backend", nullptr, "<name>",
     "compression kernel backend: auto|scalar|sse4|avx2 (speed only; "
     "results are bit-identical)",
     [](SweepCliOptions &o, const std::string &v) {
         std::string error;
         const CompressorBackend *backend =
             resolveCompressorBackend(v, &error);
         if (!backend)
             latte_fatal("--compress-backend: {}\n{}", error,
                         sweepArgsUsage());
         setCompressorBackend(*backend);
         o.compressBackend = v;
     }},
    {"--l2-compress", nullptr, "<off|static:algo|latte>",
     "compressed L2: store lines compressed with a fixed algorithm "
     "(static:bdi etc.) or per-EP adaptive selection (latte)",
     [](SweepCliOptions &o, const std::string &v) {
         CacheLevelConfig probe = CacheLevelConfig::l2Defaults();
         if (!parseLevelCompressSpec(v, probe))
             latte_fatal("--l2-compress: bad spec '{}' "
                         "(off|static:<algo>|latte)\n{}",
                         v, sweepArgsUsage());
         o.l2Compress = v;
     }},
    {"--link-compress", nullptr, "<off|algo>",
     "compress L2<->DRAM transfers with the named algorithm "
     "(bdi|fpc|cpack|bpc)",
     [](SweepCliOptions &o, const std::string &v) {
         CompressorId probe = CompressorId::None;
         if (!parseLinkCompressSpec(v, probe))
             latte_fatal("--link-compress: bad spec '{}' "
                         "(off|<algo>)\n{}",
                         v, sweepArgsUsage());
         o.linkCompress = v;
     }},
    {"--sim-threads", nullptr, "<n|auto>",
     "SM-stepping threads inside each run: a count or 'auto' (speed "
     "only; results are bit-identical)",
     [](SweepCliOptions &o, const std::string &v) {
         std::string error;
         if (resolveSimThreads(v, &error) == 0)
             latte_fatal("--sim-threads: {}\n{}", error,
                         sweepArgsUsage());
         o.simThreads = v;
     }},
    {"--log-level", nullptr, "<level>",
     "stderr log threshold: error|warn|info|debug|trace "
     "(default info, or LATTE_LOG_LEVEL)",
     [](SweepCliOptions &o, const std::string &v) {
         LogLevel level;
         if (!logLevelFromName(v, level))
             latte_fatal("--log-level: unknown level '{}' "
                         "(want error|warn|info|debug|trace)\n{}",
                         v, sweepArgsUsage());
         setLogLevel(level);
         o.logLevel = v;
     }},
    {"--log-json", nullptr, nullptr,
     "emit log lines as JSON records (one object per line)",
     [](SweepCliOptions &o, const std::string &) {
         setLogJson(true);
         o.logJson = true;
     }},
    {"--quiet", "-q", nullptr,
     "suppress progress lines and raise the log threshold to warn",
     [](SweepCliOptions &o, const std::string &) {
         o.progress = false;
         o.quiet = true;
         setLogLevel(LogLevel::Warn);
     }},
};

constexpr std::size_t kSpecCount = sizeof(kSpecs) / sizeof(kSpecs[0]);

/** "  -j, --jobs <n>" column head of one flag line. */
std::string
flagHead(const ArgParser::Flag &flag)
{
    std::string head = "  ";
    if (!flag.alias.empty())
        head += flag.alias + ", ";
    head += flag.name;
    if (!flag.value.empty())
        head += " " + flag.value;
    return head;
}

} // namespace

const ArgSpec *
sweepArgSpecs(std::size_t &count)
{
    count = kSpecCount;
    return kSpecs;
}

const char *
sweepArgsUsage()
{
    static const std::string text = [] {
        ArgParser parser("");
        static SweepCliOptions sink;
        parser.registerCommonFlags(sink);
        return parser.usage();
    }();
    return text.c_str();
}

ArgParser::ArgParser(std::string program) : program_(std::move(program))
{}

void
ArgParser::registerCommonFlags(SweepCliOptions &options)
{
    beginGroup("sweep options");
    for (const ArgSpec &spec : kSpecs) {
        const ArgSpec *entry = &spec;
        add(Flag{
            .name = spec.name,
            .alias = spec.alias ? spec.alias : "",
            .value = spec.value ? spec.value : "",
            .help = spec.help,
            .apply =
                [entry, &options](const std::string &value) {
                    entry->apply(options, value);
                },
        });
    }
    hasCommon_ = true;
}

void
ArgParser::beginGroup(std::string title)
{
    groups_.push_back(Group{std::move(title), {}});
}

void
ArgParser::add(Flag flag)
{
    if (groups_.empty())
        beginGroup("options");
    groups_.back().flags.push_back(std::move(flag));
}

void
ArgParser::add(const char *name, const char *alias, const char *value,
               const char *help,
               std::function<void(const std::string &)> apply)
{
    add(Flag{name, alias ? alias : "", value ? value : "", help,
             std::move(apply)});
}

const ArgParser::Flag *
ArgParser::find(const std::string &arg) const
{
    for (const Group &group : groups_) {
        for (const Flag &flag : group.flags) {
            if (arg == flag.name ||
                (!flag.alias.empty() && arg == flag.alias))
                return &flag;
        }
    }
    return nullptr;
}

std::string
ArgParser::usage() const
{
    // Render every "  -j, --jobs <n>" column head at one shared width
    // so the groups line up as one table.
    std::size_t width = 0;
    for (const Group &group : groups_) {
        for (const Flag &flag : group.flags)
            width = std::max(width, flagHead(flag).size());
    }
    width = std::max(width, std::string("  --help").size()) + 2;

    std::string text;
    if (!program_.empty())
        text += "usage: " + program_ + " [options]\n";
    for (const Group &group : groups_) {
        if (!text.empty())
            text += "\n";
        text += group.title + ":\n";
        for (const Flag &flag : group.flags) {
            std::string line = flagHead(flag);
            line.resize(width, ' ');
            text += line + flag.help + "\n";
        }
    }
    std::string help_line = "  --help";
    help_line.resize(width, ' ');
    text += help_line + "print this flag table and exit\n";
    return text;
}

void
ArgParser::parse(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];

        if (arg == "--help") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        // Joined -jN form, kept for muscle memory with make(1).
        if (hasCommon_ && arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
            std::isdigit(static_cast<unsigned char>(arg[2]))) {
            if (const Flag *jobs = find("--jobs")) {
                jobs->apply(arg.substr(2));
                continue;
            }
        }

        const Flag *match = find(arg);
        if (!match) {
            argv[out++] = argv[i];
            continue;
        }

        std::string value;
        if (!match->value.empty()) {
            if (i + 1 >= argc)
                latte_fatal("{} needs a value\n{}", match->name,
                            usage());
            value = argv[++i];
        }
        match->apply(value);
    }
    argc = out;
    argv[argc] = nullptr;
}

SweepCliOptions
parseSweepArgs(int &argc, char **argv)
{
    SweepCliOptions options;
    ArgParser parser("");
    parser.registerCommonFlags(options);
    parser.parse(argc, argv);
    return options;
}

} // namespace latte::runner
