/**
 * @file
 * The simulation driver: builds a GPU, binds one policy instance per SM,
 * runs a workload's kernel sequence and collects the metrics every
 * experiment in the paper needs (cycles, misses, energy, per-kernel
 * snapshots, per-EP traces). Also implements the Kernel-OPT oracle of
 * Section V-B by composing per-kernel-best static runs.
 *
 * The single entrypoint is `run(RunRequest)`; a request names a
 * workload, a policy (either a catalogued PolicyKind or a custom
 * PolicyFactory), the machine configuration, and optionally a Tracer
 * that records structured events for the observability layer.
 *
 * run() returns a RunOutcome, never throws and never exits: invalid
 * requests, injected faults, watchdog cancellations and budget trips
 * all come back as structured RunError values a supervising layer
 * (sweep runner, journal, CI gate) can act on.
 */

#ifndef LATTE_CORE_DRIVER_HH
#define LATTE_CORE_DRIVER_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/outcome.hh"
#include "energy/energy_model.hh"
#include "policies.hh"
#include "workloads/zoo.hh"

namespace latte
{

namespace metrics
{
class MetricRegistry;
} // namespace metrics

/** Every policy configuration the paper evaluates. */
enum class PolicyKind
{
    Baseline,
    StaticBdi,
    StaticSc,
    StaticBpc,
    AdaptiveHitCount,
    AdaptiveCmp,
    LatteCc,
    LatteCcBdiBpc,
    KernelOpt,
    /** Uncompressed L1 over a static-BDI compressed L2. */
    L2StaticBdi,
    /** Uncompressed L1 over a latte-adaptive compressed L2. */
    L2Latte,
    /** LATTE-CC at the L1 and latte at the L2, both adaptive. */
    LatteCcL1L2,
};

const char *policyName(PolicyKind kind);

/** Reverse of policyName(); nullptr if @p name is not a known kind. */
const PolicyKind *policyKindFromName(const std::string &name);

/** Construct a policy instance of @p kind (not valid for KernelOpt). */
std::unique_ptr<Policy> makePolicy(PolicyKind kind, const GpuConfig &cfg);

/** Builds one policy instance per SM. */
using PolicyFactory =
    std::function<std::unique_ptr<Policy>(const GpuConfig &)>;

/** Metrics of one kernel launch within a run. */
struct KernelSnapshot
{
    std::string name;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    UsageCounts usage;
    std::array<std::uint64_t, kNumModes> modeAccesses{};
};

/** Metrics of a whole workload run under one policy. */
struct WorkloadRunResult
{
    std::string workload;
    PolicyKind policy = PolicyKind::Baseline;
    /**
     * Display name of the policy that produced this result: the
     * policyName() of `policy` for catalogued runs, or the RunRequest
     * label for custom-factory runs.
     */
    std::string policyLabel;
    /** The RunRequest seed the run was produced with (0 = defaults). */
    std::uint64_t seed = 0;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    EnergyReport energy;
    std::vector<KernelSnapshot> kernels;
    /** KernelOpt only: the oracle's per-kernel mode choice. */
    std::vector<CompressorId> kernelBestModes;
    /** Per-EP trace from SM 0's policy (tolerance, mode, capacity). */
    std::vector<PolicyTracePoint> trace;
    std::array<std::uint64_t, kNumModes> modeAccesses{};
    /** Full stat dump (StatGroup::collect); empty for Kernel-OPT. */
    std::map<std::string, double> stats;

    double
    missRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double avgTolerance() const;
};

/** Run-wide knobs. */
struct DriverOptions
{
    GpuConfig cfg{};
    CacheTuning tuning{};
    std::uint64_t maxInstructionsPerKernel = 50'000'000;
    /**
     * Compression kernel backend ("auto", "scalar", "sse4", "avx2";
     * empty keeps the process-wide selection). Execution speed only:
     * every backend is pinned bit-identical, so this is deliberately
     * NOT part of the result-cache fingerprint — a cached result is
     * valid whichever backend computed it.
     */
    std::string compressBackend;
    /**
     * SM-stepping threads inside one run ("auto" = hardware
     * concurrency, a positive integer, or empty = LATTE_SIM_THREADS /
     * default 1). The parallel cycle loop is barrier-synchronous and
     * bit-identical to sequential, so like compressBackend this is
     * execution speed only and deliberately NOT part of the
     * result-cache fingerprint — a cached result is valid whichever
     * thread count computed it.
     */
    std::string simThreads;
};

/** A policy selection: a catalogued kind or a custom per-SM factory. */
using PolicySpec = std::variant<PolicyKind, PolicyFactory>;

/**
 * One cell of an experiment sweep: workload x policy x configuration.
 * Self-contained and copyable so sweeps can be queued, hashed for the
 * on-disk result cache, and executed on any thread in any order.
 */
struct RunRequest
{
    /** Workload to run; must outlive the request (zoo entries do). */
    const Workload *workload = nullptr;
    PolicySpec policy = PolicyKind::Baseline;
    DriverOptions options{};
    /**
     * Authoritative result label. When non-empty it names the cell
     * everywhere a name is used — result JSON, cache keys, journal
     * keys and metric labels — for PolicyKind and custom-factory runs
     * alike. Empty falls back to policyName(kind) for catalogued runs
     * and "Custom" for factories.
     */
    std::string label;
    /**
     * Deterministic per-request seed. 0 keeps the workload's baked-in
     * kernel seeds; any other value remixes every kernel's RNG stream
     * so replicated cells draw independent access patterns while
     * remaining bit-reproducible.
     */
    std::uint64_t seed = 0;
    /**
     * Optional event recorder (not owned; must outlive the run). The
     * driver wires it through every SM, the L2, the DRAM model and the
     * per-SM policies. Purely observational: it never alters results
     * and is NOT part of the result-cache key.
     */
    Tracer *tracer = nullptr;
    /**
     * Optional metric registry (not owned; must outlive the run). The
     * driver attaches the GPU's stat tree, registers the simulation
     * gauges (queue depths, MSHR occupancy, mode residency, vote
     * margins) and samples the registry periodically from the kernel
     * loop. Like the tracer it is purely observational: results stay
     * bit-identical and it is NOT part of the result-cache key.
     * Kernel-OPT runs its three static legs against the same registry
     * in sequence, so sample cycles restart at each leg boundary.
     */
    metrics::MetricRegistry *metrics = nullptr;
    /**
     * Cooperative run control: cancellation token, simulated-cycle
     * budget and the fault-injection schedule. The driver threads it
     * into the GPU cycle loop, which polls it and winds down cleanly
     * when it trips. Not part of the result-cache key; a request with
     * a non-empty fault plan additionally bypasses the cache.
     */
    RunControl control;
};

/** The label a request's result will carry (label or policy name). */
std::string runRequestLabel(const RunRequest &request);

/**
 * The outcome of one run(): a status, a structured error (code None
 * when ok) and the result when one was produced. The sweep runner adds
 * the retry bookkeeping: attempts > 1 with status Ok is the
 * Retried->Ok path, and retryHistory keeps the error of every failed
 * attempt that preceded the final one.
 */
struct RunOutcome
{
    RunStatus status = RunStatus::Ok;
    RunError error;
    std::optional<WorkloadRunResult> result;
    /** Total attempts the runner made (1 = first try). */
    std::uint32_t attempts = 1;
    /** Errors of the failed attempts that preceded the last one. */
    std::vector<RunError> retryHistory;
    /**
     * SM-stepping threads the run resolved to (metadata for the result
     * envelope; never part of the cell fingerprint, since every thread
     * count is bit-identical).
     */
    std::uint32_t simThreads = 1;

    bool ok() const { return status == RunStatus::Ok; }

    /** The result; panics if the run did not produce one. */
    const WorkloadRunResult &value() const;

    static RunOutcome success(WorkloadRunResult result);
    /** Status is derived from the error code. */
    static RunOutcome failure(RunError error);
};

/** The RunStatus a failure with @p code reports. */
RunStatus runStatusForCode(RunErrorCode code);

/**
 * Run one request. Validates the GpuConfig, dispatches Kernel-OPT
 * composition, and fills every WorkloadRunResult field including the
 * flattened stat dump. Never throws, exits or aborts on a bad request:
 * every failure — invalid configuration, cancellation, budget trip,
 * injected fault — is returned as a structured RunOutcome.
 */
RunOutcome run(const RunRequest &request);

/** Speedup of @p result over @p baseline (cycles ratio). */
double speedupOver(const WorkloadRunResult &baseline,
                   const WorkloadRunResult &result);

} // namespace latte

#endif // LATTE_CORE_DRIVER_HH
