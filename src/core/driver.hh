/**
 * @file
 * The simulation driver: builds a GPU, binds one policy instance per SM,
 * runs a workload's kernel sequence and collects the metrics every
 * experiment in the paper needs (cycles, misses, energy, per-kernel
 * snapshots, per-EP traces). Also implements the Kernel-OPT oracle of
 * Section V-B by composing per-kernel-best static runs.
 */

#ifndef LATTE_CORE_DRIVER_HH
#define LATTE_CORE_DRIVER_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "policies.hh"
#include "workloads/zoo.hh"

namespace latte
{

/** Every policy configuration the paper evaluates. */
enum class PolicyKind
{
    Baseline,
    StaticBdi,
    StaticSc,
    StaticBpc,
    AdaptiveHitCount,
    AdaptiveCmp,
    LatteCc,
    LatteCcBdiBpc,
    KernelOpt,
};

const char *policyName(PolicyKind kind);

/** Construct a policy instance of @p kind (not valid for KernelOpt). */
std::unique_ptr<Policy> makePolicy(PolicyKind kind, const GpuConfig &cfg);

/** Metrics of one kernel launch within a run. */
struct KernelSnapshot
{
    std::string name;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    UsageCounts usage;
    std::array<std::uint64_t, kNumModes> modeAccesses{};
};

/** Metrics of a whole workload run under one policy. */
struct WorkloadRunResult
{
    std::string workload;
    PolicyKind policy = PolicyKind::Baseline;
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    EnergyReport energy;
    std::vector<KernelSnapshot> kernels;
    /** KernelOpt only: the oracle's per-kernel mode choice. */
    std::vector<CompressorId> kernelBestModes;
    /** Per-EP trace from SM 0's policy (tolerance, mode, capacity). */
    std::vector<PolicyTracePoint> trace;
    std::array<std::uint64_t, kNumModes> modeAccesses{};

    double
    missRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double avgTolerance() const;
};

/** Run-wide knobs. */
struct DriverOptions
{
    GpuConfig cfg{};
    CacheTuning tuning{};
    std::uint64_t maxInstructionsPerKernel = 50'000'000;
};

/** Run @p workload under @p kind. */
WorkloadRunResult runWorkload(const Workload &workload, PolicyKind kind,
                              const DriverOptions &options = {});

/** Builds one policy instance per SM. */
using PolicyFactory =
    std::function<std::unique_ptr<Policy>(const GpuConfig &)>;

/**
 * Run @p workload under a custom policy (e.g. a StaticPolicy over FPC,
 * or a LatteCcPolicy with a non-standard mode set). The result's
 * `policy` field is meaningless for custom runs.
 */
WorkloadRunResult runWorkloadCustom(const Workload &workload,
                                    const PolicyFactory &factory,
                                    const DriverOptions &options = {});

/** Speedup of @p result over @p baseline (cycles ratio). */
double speedupOver(const WorkloadRunResult &baseline,
                   const WorkloadRunResult &result);

} // namespace latte

#endif // LATTE_CORE_DRIVER_HH
