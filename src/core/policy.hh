/**
 * @file
 * Base class for compression management policies. A policy instance is
 * bound to one SM: it sees that SM's L1 accesses and insertions, owns the
 * EP clock, manages SC code generations, and decides the compression mode
 * of inserted lines.
 */

#ifndef LATTE_CORE_POLICY_HH
#define LATTE_CORE_POLICY_HH

#include <array>
#include <string>
#include <vector>

#include "cache/compressed_cache.hh"
#include "cache/mode_provider.hh"
#include "common/config.hh"
#include "common/ep_clock.hh"
#include "sim/lt_meter.hh"
#include "trace/tracer.hh"

namespace latte
{

/** Number of CompressorId values (for per-mode arrays). */
constexpr std::size_t kNumModes = 6;

/**
 * Per-EP sample of policy state, for the time-series figures and the
 * --timeline-out export. Recorded unconditionally (it is cheap — one
 * entry per 256 L1 accesses) so results stay bit-identical whether or
 * not event tracing is enabled.
 */
struct PolicyTracePoint
{
    Cycles cycle = 0;
    double latencyTolerance = 0;
    CompressorId mode = CompressorId::None;
    std::uint64_t effectiveCapacityBytes = 0;
    /** Entries draining in this SM's decompression queues. */
    std::uint32_t decompQueueDepth = 0;
    /** Dedicated-set sampling counters, indexed by CompressorId. */
    std::array<std::uint64_t, kNumModes> samplerHits{};
    std::array<std::uint64_t, kNumModes> samplerMisses{};
    /**
     * L2-level controller state at this EP, backfilled by the driver
     * from the L2's own trace when --l2-compress=latte ran. hasL2
     * false means no compressed L2 was configured (the fields are
     * then omitted from serialization, keeping L1-only documents
     * byte-identical to before the L2 grew a compression domain).
     */
    bool hasL2 = false;
    CompressorId l2Mode = CompressorId::None;
    double l2Tolerance = 0;
};

/** Compression management policy bound to one SM. */
class Policy : public CompressionModeProvider
{
  public:
    explicit Policy(const GpuConfig &cfg)
        : cfg_(cfg), clock_(cfg.latte)
    {}

    virtual std::string name() const = 0;

    /** Attach to one SM's cache, engines and tolerance meter. */
    virtual void
    bind(CompressedCache *cache, CompressionEngines *engines,
         LatencyToleranceMeter *meter)
    {
        cache_ = cache;
        engines_ = engines;
        meter_ = meter;
    }

    /** Attach the event tracer (not owned) as SM @p sm_id. */
    void
    setTracer(Tracer *tracer, std::uint16_t sm_id)
    {
        tracer_ = tracer;
        traceSmId_ = sm_id;
    }

    /** Swap the recording target (parallel staging); keeps the SM id. */
    void
    redirectTracer(Tracer *tracer) override
    {
        tracer_ = tracer;
    }

    // --- CompressionModeProvider ---
    void
    observeAccess(const AccessEvent &event) override
    {
        ++modeAccesses_[static_cast<std::size_t>(currentMode())];
        onAccess(event);
        const EpClock::Events events = clock_.onAccess();
        if (events.epBoundary) {
            const Cycles now = event.now;
            const double tolerance = meter_ ? meter_->harvest() : 0.0;
            lastTolerance_ = tolerance;
            onEpBoundary(now, tolerance, events.periodBoundary);

            PolicyTracePoint point;
            point.cycle = now;
            point.latencyTolerance = tolerance;
            point.mode = currentMode();
            point.effectiveCapacityBytes =
                cache_ ? cache_->effectiveCapacityBytes() : 0;
            point.decompQueueDepth = totalDecompDepth(now);
            annotateTracePoint(point);
            trace_.push_back(point);

            if (tracer_) {
                TraceEvent ev = makeTraceEvent(
                    now, TraceEventKind::EpBoundary, traceSmId_);
                ev.arg0 = point.effectiveCapacityBytes;
                ev.arg1 = point.decompQueueDepth;
                ev.mode = static_cast<std::uint8_t>(point.mode);
                ev.value = tolerance;
                tracer_->record(ev);
            }
        }
    }

    void
    observeInsertion(Cycles now, std::uint32_t set_index,
                     CompressorId mode,
                     std::span<const std::uint8_t> data) override
    {
        if (scTrainingActive())
            engines_->sc.trainLine(data);
        onInsertion(now, set_index, mode, data);
    }

    /** The mode follower sets currently insert with. */
    virtual CompressorId currentMode() const = 0;

    /** Accesses observed while each mode was the follower mode. */
    const std::array<std::uint64_t, kNumModes> &
    modeAccesses() const
    {
        return modeAccesses_;
    }

    /** Per-EP trace (latency tolerance, mode, effective capacity). */
    const std::vector<PolicyTracePoint> &trace() const { return trace_; }

    /** Latency tolerance measured in the most recent EP. */
    double lastTolerance() const { return lastTolerance_; }

    /** Times the winner mode changed (== ModeChange trace events). */
    std::uint64_t modeChanges() const { return modeChanges_; }

    /**
     * AMAT margin between the runner-up and the winner at the most
     * recent sampler vote (0 until a vote with two eligible modes
     * happened). Larger means a more decisive vote.
     */
    double lastVoteMargin() const { return lastVoteMargin_; }

    const EpClock &epClock() const { return clock_; }

  protected:
    /** Policy-specific access hook (before EP accounting). */
    virtual void
    onAccess(const AccessEvent &)
    {}

    /** Fill policy-specific fields of a freshly recorded trace point. */
    virtual void
    annotateTracePoint(PolicyTracePoint &)
    {}

    /** Policy-specific insertion hook. */
    virtual void
    onInsertion(Cycles, std::uint32_t, CompressorId,
                std::span<const std::uint8_t>)
    {}

    /** Called at every EP boundary with the fresh tolerance estimate. */
    virtual void onEpBoundary(Cycles, double, bool) {}

    /**
     * True while the SC value-frequency table should sample insertions:
     * the first EP of the first period and the final EP of every period
     * (Section IV-C2). Policies that never use SC return false.
     */
    virtual bool
    scTrainingActive() const
    {
        return false;
    }

    /** Rebuild SC codes and invalidate lines of retired generations. */
    void
    rebuildScCodes(Cycles now)
    {
        const std::uint32_t generation = engines_->sc.rebuildCodes();
        cache_->invalidateScGeneration(generation);
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(
                now, TraceEventKind::ScRebuild, traceSmId_);
            ev.arg0 = generation;
            tracer_->record(ev);
        }
    }

    /** Entries draining across all decompression queues at @p now. */
    std::uint32_t
    totalDecompDepth(Cycles now) const
    {
        if (!cache_)
            return 0;
        std::size_t depth = 0;
        for (const CompressorId mode :
             {CompressorId::Bdi, CompressorId::Sc, CompressorId::Bpc,
              CompressorId::Fpc, CompressorId::CpackZ}) {
            depth += cache_->queueFor(mode).depth(now);
        }
        return static_cast<std::uint32_t>(depth);
    }

    /**
     * Rebuild SC codes at a period boundary only when the sampled value
     * palette has drifted from the current code book. Rebuilding retires
     * the code generation and invalidates every SC line, so doing it
     * when the palette is stable costs capacity for nothing.
     */
    void
    maybeRebuildScCodes(Cycles now)
    {
        auto &sc = engines_->sc;
        if (sc.vft().samples() < 256) {
            sc.discardVft(); // too few samples to judge drift
            return;
        }
        if (!sc.hasCodes() || sc.codeDivergence() > 0.3)
            rebuildScCodes(now);
        else
            sc.discardVft();
    }

    /**
     * Effective hit latency a hit under @p mode would see right now
     * (Eq. 3): base hit latency plus decompression pipeline plus the
     * expected decompression-queue wait.
     */
    double
    effectiveHitLatency(CompressorId mode, Cycles now) const
    {
        double lat = static_cast<double>(cfg_.l1.hitLatency);
        if (mode != CompressorId::None) {
            const auto *engine =
                const_cast<CompressionEngines *>(engines_)->get(mode);
            lat += static_cast<double>(engine->decompressLatency());
            lat += static_cast<double>(
                       cache_->queueFor(mode).expectedPos(now)) + 1.0;
        }
        return lat;
    }

    /** Rolling estimate of the miss service latency. */
    double
    estimatedMissLatency()
    {
        const auto &stat = cache_->missLatency;
        const std::uint64_t samples = stat.samples();
        const double sum = stat.sum();
        double estimate = static_cast<double>(
            cfg_.l2.minLatency + cfg_.l2.missPenaltyCycles);
        if (samples > lastMissSamples_) {
            estimate = (sum - lastMissSum_) /
                       static_cast<double>(samples - lastMissSamples_);
            lastMissSamples_ = samples;
            lastMissSum_ = sum;
            lastMissEstimate_ = estimate;
        } else if (lastMissEstimate_ > 0) {
            estimate = lastMissEstimate_;
        }
        return estimate;
    }

    const GpuConfig &cfg_;
    EpClock clock_;
    /** Bookkeeping for the metrics gauges; never feeds back into
     *  decisions, so attaching metrics cannot perturb results. */
    std::uint64_t modeChanges_ = 0;
    double lastVoteMargin_ = 0;
    CompressedCache *cache_ = nullptr;
    CompressionEngines *engines_ = nullptr;
    LatencyToleranceMeter *meter_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::uint16_t traceSmId_ = kNoTraceSm;

  private:
    std::array<std::uint64_t, kNumModes> modeAccesses_{};
    std::vector<PolicyTracePoint> trace_;
    double lastTolerance_ = 0;
    std::uint64_t lastMissSamples_ = 0;
    double lastMissSum_ = 0;
    double lastMissEstimate_ = 0;
};

} // namespace latte

#endif // LATTE_CORE_POLICY_HH
