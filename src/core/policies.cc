#include "policies.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace latte
{

// ---------------------------------------------------------------- Static

void
StaticPolicy::onEpBoundary(Cycles now, double, bool period_end)
{
    if (mode_ != CompressorId::Sc)
        return;
    // The VFT trains during the first EP of the first period; build the
    // first code book as soon as that EP closes, then reconsider at
    // every period boundary (the VFT retrains during each final EP).
    if (!firstScBuildDone_) {
        rebuildScCodes(now);
        firstScBuildDone_ = true;
    } else if (period_end) {
        maybeRebuildScCodes(now);
    }
}

bool
StaticPolicy::scTrainingActive() const
{
    if (mode_ != CompressorId::Sc)
        return false;
    return (clock_.periodIndex() == 0 && clock_.epInPeriod() == 0) ||
           clock_.inFinalEp();
}

// --------------------------------------------------------------- LatteCc

LatteCcPolicy::LatteCcPolicy(const GpuConfig &cfg,
                             std::vector<CompressorId> modes,
                             bool use_tolerance)
    : Policy(cfg), modes_(std::move(modes)), useTolerance_(use_tolerance),
      nHit_(modes_.size(), 0), nMiss_(modes_.size(), 0)
{
    latte_assert(!modes_.empty() && modes_[0] == CompressorId::None,
                 "mode 0 must be the uncompressed baseline");
    usesSc_ = std::find(modes_.begin(), modes_.end(),
                        CompressorId::Sc) != modes_.end();
}

std::string
LatteCcPolicy::name() const
{
    if (modes_.size() == 3 && modes_[2] == CompressorId::Bpc)
        return "LATTE-CC-BDI-BPC";
    return "LATTE-CC";
}

void
LatteCcPolicy::bind(CompressedCache *cache, CompressionEngines *engines,
                    LatencyToleranceMeter *meter)
{
    Policy::bind(cache, engines, meter);
    const std::uint32_t dedicated = cfg_.latte.dedicatedSetsPerMode;
    latte_assert(cache->numSets() >= dedicated * modes_.size(),
                 "cache too small for the dedicated sample sets");
    stride_ = cache->numSets() / dedicated;
}

int
LatteCcPolicy::dedicatedModeIndex(std::uint32_t set_index) const
{
    const std::uint32_t k = set_index % stride_;
    return k < modes_.size() ? static_cast<int>(k) : -1;
}

bool
LatteCcPolicy::samplingActive() const
{
    // Continuous sampling until the decision stabilises, then only the
    // paper's learning window of every fourth period. Winner flips and
    // latency-tolerance shifts reset stablePeriods_, reviving full
    // sampling.
    if (stablePeriods_ < 1)
        return true;
    // Back off further on long-stable workloads: the sampling tax is
    // pure overhead while nothing changes.
    const std::uint64_t interval = stablePeriods_ >= 8 ? 16 : 4;
    return clock_.periodIndex() % interval == 0 &&
           (clock_.inLearningPhase() || clock_.inHitTailPhase());
}

CompressorId
LatteCcPolicy::modeForInsertion(std::uint32_t set_index)
{
    // While sampling, dedicated sets insert with their sampling mode
    // (set-dueling); once the winner is stable they behave as followers
    // outside the learning window, as in the paper (see DESIGN.md).
    if (samplingActive()) {
        const int k = dedicatedModeIndex(set_index);
        if (k >= 0)
            return modes_[k];
    }
    return winner_;
}

void
LatteCcPolicy::onAccess(const AccessEvent &event)
{
    if (event.isWrite || !samplingActive())
        return;
    const int k = dedicatedModeIndex(event.setIndex);
    if (k < 0)
        return;
    if (event.hit)
        ++nHit_[k];
    else
        ++nMiss_[k];
}

void
LatteCcPolicy::annotateTracePoint(PolicyTracePoint &point)
{
    for (std::size_t k = 0; k < modes_.size(); ++k) {
        const auto mode = static_cast<std::size_t>(modes_[k]);
        point.samplerHits[mode] = nHit_[k];
        point.samplerMisses[mode] = nMiss_[k];
    }
}

void
LatteCcPolicy::onEpBoundary(Cycles now, double tolerance, bool period_end)
{
    // A large latency-tolerance shift signals a phase change: resume
    // full sampling so the decision can be revisited quickly.
    if (std::abs(tolerance - prevTolerance_) >
        std::max(4.0, prevTolerance_)) {
        stablePeriods_ = 0;
    }
    prevTolerance_ = tolerance;

    chooseWinner(now, tolerance);

    if (period_end) {
        if (winnerChanged_)
            stablePeriods_ = 0;
        else
            ++stablePeriods_;
        winnerChanged_ = false;
    }

    // Once the hit counters of the sampling window have been harvested
    // (the EP after the hit-tail), flush mismatched sampled lines so a
    // hot line compressed with a losing mode doesn't keep charging
    // decompression for the rest of its lifetime. Only do this in
    // hit-saturated execution: when the cache misses at any real rate,
    // resident compressed lines are capacity worth keeping, and
    // eviction recycles them naturally anyway.
    std::uint64_t window_hits = 0, window_misses = 0;
    for (std::size_t k = 0; k < modes_.size(); ++k) {
        window_hits += nHit_[k];
        window_misses += nMiss_[k];
    }
    const bool hit_saturated =
        window_hits > 0 &&
        static_cast<double>(window_misses) /
                static_cast<double>(window_hits + window_misses) <
            0.02;
    if (hit_saturated && stablePeriods_ >= 1 &&
        !clock_.inLearningPhase() && !clock_.inHitTailPhase()) {
        cache_->invalidateSampleMismatch(
            stride_, static_cast<std::uint32_t>(modes_.size()), winner_);
    }

    // Decay rather than clear the sampling counters each EP: with only
    // 4 dedicated sets per mode a single EP's counts are noisy, and a
    // decaying accumulation (~4 EP memory) smooths decisions while
    // staying responsive to phase changes.
    for (auto &h : nHit_)
        h -= h / 4;
    for (auto &m : nMiss_)
        m -= m / 4;

    if (usesSc_) {
        if (!firstScBuildDone_) {
            rebuildScCodes(now);
            firstScBuildDone_ = true;
        } else if (period_end) {
            maybeRebuildScCodes(now);
        }
    }
}

bool
LatteCcPolicy::scTrainingActive() const
{
    if (!usesSc_)
        return false;
    return (clock_.periodIndex() == 0 && clock_.epInPeriod() == 0) ||
           clock_.inFinalEp();
}

void
LatteCcPolicy::chooseWinner(Cycles now, double tolerance)
{
    if (!useTolerance_)
        tolerance = 0.0;

    const double miss_latency = estimatedMissLatency();
    const std::size_t n = modes_.size();
    std::vector<double> amat(n, std::numeric_limits<double>::max());
    std::vector<double> exposed(n, 0.0);
    std::vector<double> miss_rate(n, 0.0);
    int incumbent = -1;
    int best = -1;

    for (std::size_t k = 0; k < n; ++k) {
        if (modes_[k] == winner_)
            incumbent = static_cast<int>(k);
        const std::uint64_t hits = nHit_[k];
        const std::uint64_t misses = nMiss_[k];
        const std::uint64_t total = hits + misses;
        if (total < kMinSamples)
            continue;

        // AMAT_GPU (Eq. 2): hits only cost what tolerance cannot hide.
        const double eff_hit = effectiveHitLatency(modes_[k], now);
        exposed[k] = std::max(eff_hit - tolerance, 0.0);
        miss_rate[k] = static_cast<double>(misses) /
                       static_cast<double>(total);
        amat[k] = exposed[k] +
                  miss_rate[k] * (miss_latency - exposed[k]);
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(
                now, TraceEventKind::SamplerVote, traceSmId_);
            ev.arg0 = hits;
            ev.arg1 = static_cast<std::uint32_t>(misses);
            ev.mode = static_cast<std::uint8_t>(modes_[k]);
            ev.value = amat[k];
            tracer_->record(ev);
        }
        if (best < 0 || amat[k] < amat[best])
            best = static_cast<int>(k);
    }

    if (best >= 0) {
        double runner_up = std::numeric_limits<double>::max();
        for (std::size_t k = 0; k < n; ++k) {
            if (static_cast<int>(k) == best ||
                amat[k] == std::numeric_limits<double>::max()) {
                continue;
            }
            runner_up = std::min(runner_up, amat[k]);
        }
        if (runner_up != std::numeric_limits<double>::max())
            lastVoteMargin_ = runner_up - amat[best];
    }

    if (best < 0 || modes_[best] == winner_ || incumbent < 0)
        return;

    // Mild hysteresis against sampling noise from 4 dedicated sets.
    if (amat[best] >= amat[incumbent] * 0.98)
        return;

    // A challenger that adds exposed hit latency must show a real
    // capacity benefit; in hit-saturated windows a burst of a few
    // misses in the incumbent's sets would otherwise flip the mode and
    // leave long-lived slow lines behind.
    if (exposed[best] > exposed[incumbent] &&
        miss_rate[incumbent] - miss_rate[best] < 0.02) {
        return;
    }

    // Debounce: commit a switch only when two consecutive EP decisions
    // agree, filtering single-EP sampling noise (a real phase lasts
    // many EPs, so adaptation is delayed by at most one EP).
    if (pendingWinner_ != modes_[best]) {
        pendingWinner_ = modes_[best];
        return;
    }

    winner_ = modes_[best];
    winnerChanged_ = true;
    ++modeChanges_;
    if (tracer_) {
        TraceEvent ev = makeTraceEvent(
            now, TraceEventKind::ModeChange, traceSmId_);
        ev.mode = static_cast<std::uint8_t>(winner_);
        ev.value = amat[best];
        tracer_->record(ev);
    }
}

// ----------------------------------------------------- AdaptiveHitCount

void
AdaptiveHitCountPolicy::chooseWinner(Cycles now, double)
{
    std::uint64_t best_hits = 0;
    int best = -1;
    for (std::size_t k = 0; k < modes_.size(); ++k) {
        if (nHit_[k] + nMiss_[k] < kMinSamples)
            continue;
        if (nHit_[k] > best_hits) {
            best_hits = nHit_[k];
            best = static_cast<int>(k);
        }
    }
    if (best >= 0 && modes_[best] != winner_) {
        winner_ = modes_[best];
        winnerChanged_ = true;
        ++modeChanges_;
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(
                now, TraceEventKind::ModeChange, traceSmId_);
            ev.mode = static_cast<std::uint8_t>(winner_);
            tracer_->record(ev);
        }
    }
}

} // namespace latte
