/**
 * @file
 * Concrete compression management policies: the uncompressed baseline,
 * the static schemes (Section V-A), LATTE-CC itself (Section III), and
 * the latency-tolerance-blind adaptive baselines of Section V-D.
 */

#ifndef LATTE_CORE_POLICIES_HH
#define LATTE_CORE_POLICIES_HH

#include <memory>

#include "policy.hh"

namespace latte
{

/** Always insert with one fixed mode (None/BDI/SC/BPC). */
class StaticPolicy : public Policy
{
  public:
    StaticPolicy(const GpuConfig &cfg, CompressorId mode)
        : Policy(cfg), mode_(mode)
    {}

    std::string
    name() const override
    {
        return mode_ == CompressorId::None
                   ? "Baseline"
                   : strfmt("Static-{}", compressorName(mode_));
    }

    CompressorId modeForInsertion(std::uint32_t) override { return mode_; }
    CompressorId currentMode() const override { return mode_; }

  protected:
    void onEpBoundary(Cycles now, double tolerance,
                      bool period_end) override;
    bool scTrainingActive() const override;

  private:
    CompressorId mode_;
    bool firstScBuildDone_ = false;
};

/**
 * LATTE-CC (Section III): set-sampling capacity estimation, per-EP
 * latency tolerance, AMAT_GPU-minimising mode selection.
 */
class LatteCcPolicy : public Policy
{
  public:
    /**
     * @param modes candidate modes; index 0 must be None. The default is
     *        the paper's {no-compression, BDI, SC}; Section V-E swaps SC
     *        for BPC.
     * @param use_tolerance when false, AMAT is evaluated with zero
     *        latency tolerance (the Adaptive-CMP baseline).
     */
    LatteCcPolicy(const GpuConfig &cfg,
                  std::vector<CompressorId> modes =
                      {CompressorId::None, CompressorId::Bdi,
                       CompressorId::Sc},
                  bool use_tolerance = true);

    std::string name() const override;

    void bind(CompressedCache *cache, CompressionEngines *engines,
              LatencyToleranceMeter *meter) override;

    CompressorId modeForInsertion(std::uint32_t set_index) override;
    CompressorId currentMode() const override { return winner_; }

    /** Sampling counters for the current period (for tests). */
    std::uint64_t hitCount(std::size_t mode_idx) const
    {
        return nHit_[mode_idx];
    }
    std::uint64_t missCount(std::size_t mode_idx) const
    {
        return nMiss_[mode_idx];
    }

  protected:
    void onAccess(const AccessEvent &event) override;
    void onEpBoundary(Cycles now, double tolerance,
                      bool period_end) override;
    void annotateTracePoint(PolicyTracePoint &point) override;
    bool scTrainingActive() const override;

    /** Pick the AMAT_GPU-minimising mode; overridable by baselines. */
    virtual void chooseWinner(Cycles now, double tolerance);

    /** Dedicated-set mapping: mode index for @p set_index or -1. */
    int dedicatedModeIndex(std::uint32_t set_index) const;

    /**
     * True while dedicated sets actively insert with their sampling
     * modes. Sampling runs continuously while the decision is unstable
     * and shrinks to the paper's learning-window behaviour (plus a
     * periodic probe period) once the winner has settled, so stable
     * hit-heavy workloads don't keep paying the sampling tax.
     */
    bool samplingActive() const;

    std::vector<CompressorId> modes_;
    bool useTolerance_;
    bool usesSc_ = false;
    std::uint32_t stride_ = 8;
    CompressorId winner_ = CompressorId::None;
    std::vector<std::uint64_t> nHit_;
    std::vector<std::uint64_t> nMiss_;
    bool firstScBuildDone_ = false;
    std::uint32_t stablePeriods_ = 0;
    bool winnerChanged_ = false;
    double prevTolerance_ = 0;
    CompressorId pendingWinner_ = CompressorId::None;

    /** Minimum dedicated-set samples before trusting a mode's counters. */
    static constexpr std::uint64_t kMinSamples = 8;
};

/**
 * Adaptive-Hit-Count (Section V-D): the same set-sampling machinery but
 * the winner is simply the mode with the most dedicated-set hits —
 * decompression latency and tolerance are ignored.
 */
class AdaptiveHitCountPolicy : public LatteCcPolicy
{
  public:
    explicit AdaptiveHitCountPolicy(const GpuConfig &cfg)
        : LatteCcPolicy(cfg)
    {}

    std::string name() const override { return "Adaptive-Hit-Count"; }

  protected:
    void chooseWinner(Cycles now, double tolerance) override;
};

/**
 * Adaptive-CMP (Section V-D): accounts for decompression latency in the
 * CMP manner of Alameldeen & Wood but is blind to GPU latency tolerance.
 */
class AdaptiveCmpPolicy : public LatteCcPolicy
{
  public:
    explicit AdaptiveCmpPolicy(const GpuConfig &cfg)
        : LatteCcPolicy(cfg,
                        {CompressorId::None, CompressorId::Bdi,
                         CompressorId::Sc},
                        /*use_tolerance=*/false)
    {}

    std::string name() const override { return "Adaptive-CMP"; }
};

} // namespace latte

#endif // LATTE_CORE_POLICIES_HH
