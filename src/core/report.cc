#include "report.hh"

#include <iomanip>

#include "common/logging.hh"

namespace latte
{

void
writeCsv(std::ostream &os, const std::vector<WorkloadRunResult> &results)
{
    os << "workload,policy,cycles,instructions,ipc,hits,misses,"
          "miss_rate,energy_mj,core_mj,l1_mj,data_movement_mj,"
          "compression_mj,static_mj,avg_tolerance\n";
    for (const auto &r : results) {
        const double ipc =
            r.cycles ? static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
        os << r.workload << ',' << policyName(r.policy) << ','
           << r.cycles << ',' << r.instructions << ',' << ipc << ','
           << r.hits << ',' << r.misses << ',' << r.missRate() << ','
           << r.energy.totalMj() << ',' << r.energy.coreDynamicMj << ','
           << r.energy.l1Mj << ',' << r.energy.dataMovementMj() << ','
           << r.energy.compressionMj << ',' << r.energy.staticMj << ','
           << r.avgTolerance() << '\n';
    }
}

void
writeComparisonCsv(std::ostream &os,
                   const std::vector<WorkloadRunResult> &baselines,
                   const std::vector<WorkloadRunResult> &results)
{
    latte_assert(baselines.size() == results.size(),
                 "comparison needs one baseline per result");
    os << "workload,policy,speedup,miss_reduction,normalized_energy\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &base = baselines[i];
        const auto &r = results[i];
        latte_assert(base.workload == r.workload,
                     "baseline/result workload mismatch at row {}", i);
        const double miss_reduction =
            base.misses ? 1.0 - static_cast<double>(r.misses) /
                                    static_cast<double>(base.misses)
                        : 0.0;
        os << r.workload << ',' << policyName(r.policy) << ','
           << speedupOver(base, r) << ',' << miss_reduction << ','
           << r.energy.totalMj() / base.energy.totalMj() << '\n';
    }
}

} // namespace latte
