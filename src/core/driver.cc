#include "driver.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/backend.hh"
#include "metrics/registry.hh"

namespace latte
{

namespace
{

/** The policy catalogue: name and constructor per PolicyKind. */
struct PolicyEntry
{
    PolicyKind kind;
    const char *name;
    /** nullptr for composed policies (Kernel-OPT). */
    std::unique_ptr<Policy> (*make)(const GpuConfig &cfg);
    /**
     * Optional config rewrite a multi-level row implies (e.g. L2-LATTE
     * turns the compressed L2 on). run() applies it to a copy of the
     * request before anything else; returns whether it changed the
     * config, so an already-adjusted request passes through untouched.
     */
    bool (*adjust)(GpuConfig &cfg) = nullptr;
};

template <CompressorId mode>
std::unique_ptr<Policy>
makeStatic(const GpuConfig &cfg)
{
    return std::make_unique<StaticPolicy>(cfg, mode);
}

std::unique_ptr<Policy>
makeAdaptiveHitCount(const GpuConfig &cfg)
{
    return std::make_unique<AdaptiveHitCountPolicy>(cfg);
}

std::unique_ptr<Policy>
makeAdaptiveCmp(const GpuConfig &cfg)
{
    return std::make_unique<AdaptiveCmpPolicy>(cfg);
}

std::unique_ptr<Policy>
makeLatteCc(const GpuConfig &cfg)
{
    return std::make_unique<LatteCcPolicy>(cfg);
}

std::unique_ptr<Policy>
makeLatteCcBdiBpc(const GpuConfig &cfg)
{
    return std::make_unique<LatteCcPolicy>(
        cfg, std::vector<CompressorId>{CompressorId::None,
                                       CompressorId::Bdi,
                                       CompressorId::Bpc});
}

bool
adjustL2StaticBdi(GpuConfig &cfg)
{
    const bool changed = cfg.l2.compress != LevelCompress::Static ||
                         cfg.l2.staticAlgo != CompressorId::Bdi;
    cfg.l2.compress = LevelCompress::Static;
    cfg.l2.staticAlgo = CompressorId::Bdi;
    return changed;
}

bool
adjustL2Latte(GpuConfig &cfg)
{
    const bool changed = cfg.l2.compress != LevelCompress::Latte;
    cfg.l2.compress = LevelCompress::Latte;
    return changed;
}

constexpr PolicyEntry kPolicyTable[] = {
    {PolicyKind::Baseline, "Baseline", makeStatic<CompressorId::None>},
    {PolicyKind::StaticBdi, "Static-BDI", makeStatic<CompressorId::Bdi>},
    {PolicyKind::StaticSc, "Static-SC", makeStatic<CompressorId::Sc>},
    {PolicyKind::StaticBpc, "Static-BPC", makeStatic<CompressorId::Bpc>},
    {PolicyKind::AdaptiveHitCount, "Adaptive-Hit-Count",
     makeAdaptiveHitCount},
    {PolicyKind::AdaptiveCmp, "Adaptive-CMP", makeAdaptiveCmp},
    {PolicyKind::LatteCc, "LATTE-CC", makeLatteCc},
    {PolicyKind::LatteCcBdiBpc, "LATTE-CC-BDI-BPC", makeLatteCcBdiBpc},
    {PolicyKind::KernelOpt, "Kernel-OPT", nullptr},
    {PolicyKind::L2StaticBdi, "L2-Static-BDI",
     makeStatic<CompressorId::None>, adjustL2StaticBdi},
    {PolicyKind::L2Latte, "L2-LATTE", makeStatic<CompressorId::None>,
     adjustL2Latte},
    {PolicyKind::LatteCcL1L2, "LATTE-CC-L1L2", makeLatteCc,
     adjustL2Latte},
};

const PolicyEntry &
policyEntry(PolicyKind kind)
{
    for (const PolicyEntry &entry : kPolicyTable) {
        if (entry.kind == kind)
            return entry;
    }
    latte_panic("unknown policy kind");
}

/**
 * Register the driver-level gauges on @p metrics. The lambdas capture
 * @p gpu and @p policies by reference; runConcrete() detaches the
 * registry before they go out of scope.
 */
void
registerGauges(metrics::MetricRegistry &metrics, Gpu &gpu,
               const std::vector<std::unique_ptr<Policy>> &policies)
{
    metrics.addGauge("decomp_queue_depth", [&gpu](Cycles now) {
        std::size_t depth = 0;
        for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
            for (const CompressorId mode :
                 {CompressorId::Bdi, CompressorId::Sc, CompressorId::Bpc,
                  CompressorId::Fpc, CompressorId::CpackZ}) {
                depth += gpu.sm(i).cache().queueFor(mode).depth(now);
            }
        }
        return static_cast<double>(depth);
    });
    metrics.addGauge("mshr_occupancy", [&gpu](Cycles) {
        std::size_t in_use = 0;
        for (std::uint32_t i = 0; i < gpu.numSms(); ++i)
            in_use += gpu.sm(i).cache().mshrs.inUse();
        return static_cast<double>(in_use);
    });
    metrics.addGauge("dram_queue_backlog", [&gpu](Cycles now) {
        return gpu.dram().queueBacklog(now);
    });
    for (std::size_t m = 0; m < kNumModes; ++m) {
        metrics.addGauge(
            std::string("mode_accesses.") +
                compressorName(static_cast<CompressorId>(m)),
            [&policies, m](Cycles) {
                std::uint64_t n = 0;
                for (const auto &policy : policies)
                    n += policy->modeAccesses()[m];
                return static_cast<double>(n);
            });
    }
    metrics.addGauge("mode_changes", [&policies](Cycles) {
        std::uint64_t n = 0;
        for (const auto &policy : policies)
            n += policy->modeChanges();
        return static_cast<double>(n);
    });
    metrics.addGauge("sampler_vote_margin", [&policies](Cycles) {
        return policies[0]->lastVoteMargin();
    });
    metrics.addGauge("latency_tolerance", [&policies](Cycles) {
        return policies[0]->lastTolerance();
    });
    // Per-level mirrors, registered only when that level's machinery
    // exists so L1-only runs export the same gauge set as before.
    if (gpu.l2().domain()) {
        metrics.addGauge("l2.effective_capacity_bytes", [&gpu](Cycles) {
            return static_cast<double>(
                gpu.l2().domain()->effectiveCapacityBytes());
        });
        metrics.addGauge("l2.used_sub_blocks", [&gpu](Cycles) {
            return static_cast<double>(
                gpu.l2().domain()->usedSubBlocks());
        });
    }
    if (gpu.l2().controller()) {
        metrics.addGauge("l2.latency_tolerance", [&gpu](Cycles) {
            return gpu.l2().controller()->lastTolerance();
        });
        metrics.addGauge("l2.mode_changes", [&gpu](Cycles) {
            return static_cast<double>(
                gpu.l2().controller()->modeChanges());
        });
    }
}

} // namespace

const char *
policyName(PolicyKind kind)
{
    return policyEntry(kind).name;
}

const PolicyKind *
policyKindFromName(const std::string &name)
{
    for (const PolicyEntry &entry : kPolicyTable) {
        if (name == entry.name)
            return &entry.kind;
    }
    return nullptr;
}

std::unique_ptr<Policy>
makePolicy(PolicyKind kind, const GpuConfig &cfg)
{
    const PolicyEntry &entry = policyEntry(kind);
    if (!entry.make) {
        latte_panic("{} is composed by the driver, not a provider",
                    entry.name);
    }
    return entry.make(cfg);
}

std::string
runRequestLabel(const RunRequest &request)
{
    // A non-empty label is authoritative for every naming surface
    // (results, cache keys, journal keys, metric labels); the policy
    // catalogue name is only the fallback for catalogued runs.
    if (!request.label.empty())
        return request.label;
    if (const auto *kind = std::get_if<PolicyKind>(&request.policy))
        return policyName(*kind);
    return "Custom";
}

const WorkloadRunResult &
RunOutcome::value() const
{
    latte_assert(result.has_value(),
                 "RunOutcome::value() on a {} outcome: {}",
                 runStatusName(status), to_string(error));
    return *result;
}

RunOutcome
RunOutcome::success(WorkloadRunResult result)
{
    RunOutcome outcome;
    outcome.status = RunStatus::Ok;
    outcome.result = std::move(result);
    return outcome;
}

RunOutcome
RunOutcome::failure(RunError error)
{
    RunOutcome outcome;
    outcome.status = runStatusForCode(error.code);
    outcome.error = std::move(error);
    return outcome;
}

RunStatus
runStatusForCode(RunErrorCode code)
{
    switch (code) {
      case RunErrorCode::None:
        return RunStatus::Ok;
      case RunErrorCode::WallClockTimeout:
      case RunErrorCode::CycleBudgetExceeded:
        return RunStatus::TimedOut;
      case RunErrorCode::Cancelled:
        return RunStatus::Cancelled;
      default:
        return RunStatus::Failed;
    }
}

double
WorkloadRunResult::avgTolerance() const
{
    if (trace.empty())
        return 0.0;
    double sum = 0;
    for (const auto &point : trace)
        sum += point.latencyTolerance;
    return sum / static_cast<double>(trace.size());
}

namespace
{

/** The cell context of @p request, stamped onto every RunError. */
RunError
cellError(const RunRequest &request, RunErrorCode code,
          std::string message, Cycles cycle = 0)
{
    RunError error;
    error.code = code;
    error.message = std::move(message);
    error.workload = request.workload ? request.workload->abbr : "";
    error.policyLabel = runRequestLabel(request);
    error.seed = request.seed;
    error.cycle = cycle;
    return error;
}

/** One concrete (non-oracle) run. */
RunOutcome
runConcrete(const RunRequest &request, const PolicyFactory &factory,
            PolicyKind kind)
{
    const Workload &workload = *request.workload;
    const DriverOptions &options = request.options;

    MemoryImage mem;
    workload.setup(mem);

    Gpu gpu(options.cfg, &mem, options.tuning, request.tracer);
    gpu.setControl(&request.control);
    // Validated by run(); resolveSimThreads cannot fail here.
    gpu.setSimThreads(resolveSimThreads(options.simThreads, nullptr));

    std::vector<std::unique_ptr<Policy>> policies;
    policies.reserve(gpu.numSms());
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i) {
        auto policy = factory(gpu.config());
        auto &sm = gpu.sm(i);
        policy->bind(&sm.cache(), &sm.engines(), &sm.meter());
        policy->setTracer(request.tracer,
                          static_cast<std::uint16_t>(i));
        sm.cache().setModeProvider(policy.get());
        policies.push_back(std::move(policy));
    }

    if (request.metrics) {
        request.metrics->attachStats(&gpu);
        registerGauges(*request.metrics, gpu, policies);
        gpu.setMetrics(request.metrics);
    }

    auto sum_mode_accesses = [&]() {
        std::array<std::uint64_t, kNumModes> sums{};
        for (const auto &policy : policies) {
            const auto &counts = policy->modeAccesses();
            for (std::size_t m = 0; m < kNumModes; ++m)
                sums[m] += counts[m];
        }
        return sums;
    };

    WorkloadRunResult result;
    result.workload = workload.abbr;
    result.policy = kind;
    result.policyLabel = runRequestLabel(request);
    result.seed = request.seed;

    auto kernels = makeKernels(workload, request.seed);
    UsageCounts prev_usage = harvestUsage(gpu);
    std::uint64_t prev_hits = 0, prev_misses = 0;
    auto prev_modes = sum_mode_accesses();

    std::optional<RunError> failure;
    for (auto &kernel : kernels) {
        const RunResult run = gpu.runKernel(
            *kernel, options.maxInstructionsPerKernel);

        if (run.interrupt) {
            failure = cellError(
                request, run.interrupt->code,
                strfmt("kernel {}: {}", kernel->name(),
                       run.interrupt->detail),
                run.interrupt->cycle);
            break;
        }

        KernelSnapshot snap;
        snap.name = kernel->name();
        snap.cycles = run.cycles;
        snap.instructions = run.instructions;
        const UsageCounts usage = harvestUsage(gpu);
        snap.usage = usage - prev_usage;
        prev_usage = usage;
        const std::uint64_t hits = gpu.totalL1Hits();
        const std::uint64_t misses = gpu.totalL1Misses();
        snap.hits = hits - prev_hits;
        snap.misses = misses - prev_misses;
        prev_hits = hits;
        prev_misses = misses;
        const auto modes = sum_mode_accesses();
        for (std::size_t m = 0; m < kNumModes; ++m)
            snap.modeAccesses[m] = modes[m] - prev_modes[m];
        prev_modes = modes;

        result.kernels.push_back(std::move(snap));
    }

    result.cycles = gpu.cyclesElapsed.count();
    result.instructions = gpu.totalInstructions();
    result.hits = gpu.totalL1Hits();
    result.misses = gpu.totalL1Misses();
    result.modeAccesses = sum_mode_accesses();
    result.trace = policies[0]->trace();
    if (const L2CompressionController *l2c = gpu.l2().controller()) {
        // Merge the L2 controller's per-EP trace into the SM-0 policy
        // trace: each point carries the newest L2 decision at or
        // before its cycle. The two EP clocks tick on different access
        // streams, so this is a time-aligned join, not an index join.
        const auto &l2trace = l2c->trace();
        std::size_t next = 0;
        for (PolicyTracePoint &point : result.trace) {
            while (next < l2trace.size() &&
                   l2trace[next].cycle <= point.cycle)
                ++next;
            point.hasL2 = true;
            if (next > 0) {
                point.l2Mode = l2trace[next - 1].mode;
                point.l2Tolerance = l2trace[next - 1].latencyTolerance;
            }
        }
    }
    gpu.collect(result.stats);

    const EnergyModel energy_model(gpu.config());
    result.energy = energy_model.compute(harvestUsage(gpu));

    if (request.metrics) {
        // Flush a final row, then detach: the gauges reference this
        // frame's gpu and policies.
        request.metrics->finalSample(gpu.now());
        gpu.setMetrics(nullptr);
        request.metrics->detach();
    }

    if (failure)
        return RunOutcome::failure(std::move(*failure));
    return RunOutcome::success(std::move(result));
}

/** Kernel-OPT: per-kernel best of the three static modes. */
RunOutcome
runKernelOpt(const RunRequest &request)
{
    const PolicyKind static_kinds[] = {
        PolicyKind::Baseline, PolicyKind::StaticBdi, PolicyKind::StaticSc};
    const CompressorId static_modes[] = {
        CompressorId::None, CompressorId::Bdi, CompressorId::Sc};

    std::vector<WorkloadRunResult> runs;
    runs.reserve(3);
    for (const PolicyKind kind : static_kinds) {
        RunRequest leg = request;
        leg.policy = kind;
        leg.label.clear(); // legs are internal; keep catalogue names
        RunOutcome outcome = runConcrete(
            leg,
            [kind](const GpuConfig &cfg) { return makePolicy(kind, cfg); },
            kind);
        if (!outcome.ok()) {
            // A failed leg fails the oracle cell; re-stamp the error
            // with the composed cell's label so the journal and the
            // result JSON blame the right cell.
            outcome.error.policyLabel = runRequestLabel(request);
            return outcome;
        }
        runs.push_back(std::move(*outcome.result));
    }

    WorkloadRunResult result;
    result.workload = request.workload->abbr;
    result.policy = PolicyKind::KernelOpt;
    result.policyLabel = runRequestLabel(request);
    result.seed = request.seed;

    const std::size_t n_kernels = runs[0].kernels.size();
    UsageCounts total_usage;
    for (std::size_t k = 0; k < n_kernels; ++k) {
        std::size_t best = 0;
        for (std::size_t p = 1; p < 3; ++p) {
            if (runs[p].kernels[k].cycles < runs[best].kernels[k].cycles)
                best = p;
        }
        const KernelSnapshot &snap = runs[best].kernels[k];
        result.kernels.push_back(snap);
        result.kernelBestModes.push_back(static_modes[best]);
        result.cycles += snap.cycles;
        result.instructions += snap.instructions;
        result.hits += snap.hits;
        result.misses += snap.misses;
        total_usage.cycles += snap.usage.cycles;
        total_usage.instructions += snap.usage.instructions;
        total_usage.l1Accesses += snap.usage.l1Accesses;
        total_usage.l2Accesses += snap.usage.l2Accesses;
        total_usage.nocBytes += snap.usage.nocBytes;
        total_usage.dramBytes += snap.usage.dramBytes;
        total_usage.bdiCompressions += snap.usage.bdiCompressions;
        total_usage.scCompressions += snap.usage.scCompressions;
        total_usage.bpcCompressions += snap.usage.bpcCompressions;
        total_usage.bdiDecompressions += snap.usage.bdiDecompressions;
        total_usage.scDecompressions += snap.usage.scDecompressions;
        total_usage.bpcDecompressions += snap.usage.bpcDecompressions;
        total_usage.l2BdiCompressions += snap.usage.l2BdiCompressions;
        total_usage.l2BpcCompressions += snap.usage.l2BpcCompressions;
        total_usage.l2BdiDecompressions +=
            snap.usage.l2BdiDecompressions;
        total_usage.l2BpcDecompressions +=
            snap.usage.l2BpcDecompressions;
        total_usage.linkTransfers += snap.usage.linkTransfers;
    }

    const EnergyModel energy_model(request.options.cfg);
    result.energy = energy_model.compute(total_usage);
    return RunOutcome::success(std::move(result));
}

} // namespace

RunOutcome
run(const RunRequest &request)
{
    // Multi-level catalogue rows imply a config rewrite (turning the
    // compressed L2 on). Re-enter with the adjusted copy; the second
    // pass sees nothing left to change and runs it.
    if (const auto *kind = std::get_if<PolicyKind>(&request.policy)) {
        const PolicyEntry &entry = policyEntry(*kind);
        if (entry.adjust) {
            RunRequest adjusted = request;
            if (entry.adjust(adjusted.options.cfg))
                return run(adjusted);
        }
    }
    if (request.workload == nullptr) {
        return RunOutcome::failure(cellError(
            request, RunErrorCode::InvalidRequest,
            "RunRequest needs a workload"));
    }
    if (const auto error = request.options.cfg.validationError()) {
        return RunOutcome::failure(cellError(
            request, RunErrorCode::InvalidConfig,
            strfmt("invalid GpuConfig: {}", *error)));
    }
    if (!request.options.compressBackend.empty()) {
        std::string backend_error;
        const CompressorBackend *backend = resolveCompressorBackend(
            request.options.compressBackend, &backend_error);
        if (!backend) {
            return RunOutcome::failure(cellError(
                request, RunErrorCode::InvalidConfig, backend_error));
        }
        setCompressorBackend(*backend);
    }
    std::string threads_error;
    const unsigned sim_threads =
        resolveSimThreads(request.options.simThreads, &threads_error);
    if (sim_threads == 0) {
        return RunOutcome::failure(cellError(
            request, RunErrorCode::InvalidConfig, threads_error));
    }

    RunOutcome outcome;
    if (const auto *kind = std::get_if<PolicyKind>(&request.policy)) {
        if (*kind == PolicyKind::KernelOpt) {
            outcome = runKernelOpt(request);
        } else {
            const PolicyKind k = *kind;
            outcome = runConcrete(
                request,
                [k](const GpuConfig &cfg) { return makePolicy(k, cfg); },
                k);
        }
    } else {
        outcome = runConcrete(request,
                              std::get<PolicyFactory>(request.policy),
                              PolicyKind::Baseline);
    }
    outcome.simThreads = sim_threads;
    return outcome;
}

double
speedupOver(const WorkloadRunResult &baseline,
            const WorkloadRunResult &result)
{
    latte_assert(result.cycles > 0);
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(result.cycles);
}

} // namespace latte
