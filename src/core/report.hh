/**
 * @file
 * Result reporting: CSV and aligned-table serialisation of
 * WorkloadRunResult collections, for piping experiment output into
 * plotting scripts.
 */

#ifndef LATTE_CORE_REPORT_HH
#define LATTE_CORE_REPORT_HH

#include <ostream>
#include <vector>

#include "driver.hh"

namespace latte
{

/** Write one header plus one CSV row per result. */
void writeCsv(std::ostream &os,
              const std::vector<WorkloadRunResult> &results);

/** Write a normalised comparison: every result vs its named baseline. */
void writeComparisonCsv(std::ostream &os,
                        const std::vector<WorkloadRunResult> &baselines,
                        const std::vector<WorkloadRunResult> &results);

} // namespace latte

#endif // LATTE_CORE_REPORT_HH
