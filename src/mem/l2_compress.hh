/**
 * @file
 * The adaptive compression controller of the compressed L2
 * (--l2-compress=latte). It transplants the LATTE-CC decision structure
 * — EP clock, dedicated-set dueling, AMAT_GPU votes with latency
 * tolerance, hysteresis and a two-EP debounce — to the L2, but feeds it
 * exclusively from L2-visible signals: the per-EP hit/miss service
 * latencies the L2 itself observes. No SM-side meter is consulted, so
 * every decision happens barrier-side in canonical access order and the
 * parallel cycle loop stays bit-identical to sequential.
 *
 * SC is not a candidate below the L1: its code-book training and
 * generation rebuilds are wired to the per-SM policies. The candidate
 * set is {None, BDI, BPC}.
 */

#ifndef LATTE_MEM_L2_COMPRESS_HH
#define LATTE_MEM_L2_COMPRESS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/compress_id.hh"
#include "common/config.hh"
#include "common/ep_clock.hh"
#include "common/types.hh"
#include "compress/compression_domain.hh"
#include "compress/engines.hh"
#include "trace/tracer.hh"

namespace latte
{

/** Per-EP sample of the L2 controller, mirrored into the run trace. */
struct L2TracePoint
{
    Cycles cycle = 0;
    double latencyTolerance = 0;
    CompressorId mode = CompressorId::None;
};

/** Dedicated-set dueling mode selector for the compressed L2. */
class L2CompressionController
{
  public:
    explicit L2CompressionController(const GpuConfig &cfg);

    /** Attach the L2's domain and engines (not owned). */
    void bind(CompressionDomain *domain, CompressionEngines *engines);

    /** Attach the event tracer (not owned; nullptr disables tracing). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** The mode a fill into @p set_index stores with right now. */
    CompressorId modeForInsertion(std::uint32_t set_index) const;

    /** The mode follower sets currently insert with. */
    CompressorId currentMode() const { return winner_; }

    /**
     * Account one serviced L2 access. @p service_cycles is the
     * request-arrival-to-data latency the L2 observed for it (the
     * L2-side latency signal the tolerance estimate is built from).
     */
    void observeAccess(Cycles now, std::uint32_t set_index, bool hit,
                      bool is_write, double service_cycles);

    /** Per-EP trace (tolerance, winner), for the result backfill. */
    const std::vector<L2TracePoint> &trace() const { return trace_; }

    /** Latency tolerance measured in the most recent EP. */
    double lastTolerance() const { return lastTolerance_; }

    /** Times the winner mode changed. */
    std::uint64_t modeChanges() const { return modeChanges_; }

  private:
    /** Candidate index a dedicated set duels for; -1 for followers. */
    int dedicatedModeIndex(std::uint32_t set_index) const;
    void onEpBoundary(Cycles now);
    void chooseWinner(Cycles now, double tolerance, double miss_latency);

    const GpuConfig &cfg_;
    EpClock clock_;
    /** Candidate modes; index order is the dedicated-set order. */
    std::array<CompressorId, 3> modes_{
        CompressorId::None, CompressorId::Bdi, CompressorId::Bpc};
    CompressionDomain *domain_ = nullptr;
    CompressionEngines *engines_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::uint32_t stride_ = 1;

    CompressorId winner_ = CompressorId::None;
    CompressorId pendingWinner_ = CompressorId::None;
    std::uint32_t pendingCount_ = 0;

    /** Dedicated-set sampling counters, indexed by CompressorId. */
    std::array<std::uint64_t, kNumCompressorIds> nHit_{};
    std::array<std::uint64_t, kNumCompressorIds> nMiss_{};

    // EP-local latency signal (reset at every boundary).
    double hitLatSum_ = 0;
    std::uint64_t hitLatN_ = 0;
    double missLatSum_ = 0;
    std::uint64_t missLatN_ = 0;

    double lastMissEstimate_ = 0;
    double lastTolerance_ = 0;
    std::uint64_t modeChanges_ = 0;
    std::vector<L2TracePoint> trace_;
};

} // namespace latte

#endif // LATTE_MEM_L2_COMPRESS_HH
