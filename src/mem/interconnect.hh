/**
 * @file
 * SM <-> L2 interconnection network, modelled as a shared pipe with a
 * fixed traversal latency and an aggregate bandwidth cap. Captures the
 * congestion that makes L1 misses progressively more expensive for
 * memory-intensive workloads.
 */

#ifndef LATTE_MEM_INTERCONNECT_HH
#define LATTE_MEM_INTERCONNECT_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace latte
{

/** Network with separate request and reply channels (as real GPUs). */
class Interconnect : public StatGroup
{
  public:
    /** Physical channel of a transfer. */
    enum class Channel : std::uint8_t { Request = 0, Reply = 1 };

    Interconnect(const GpuConfig &cfg, StatGroup *parent);

    /**
     * Transfer @p bytes injected at @p now on @p channel.
     * @return cycle the payload is delivered at the other side.
     */
    Cycles transfer(Cycles now, std::uint32_t bytes, Channel channel);

    /** Fixed one-way traversal latency. */
    Cycles traversalLatency() const { return traversal_; }

    void flushQueues() { nextFree_[0] = nextFree_[1] = 0; }

    Counter packets;
    Counter bytesMoved;
    Average queueDelay;

  private:
    Cycles traversal_;
    double bytesPerCycle_;
    double nextFree_[2] = {0, 0};
};

} // namespace latte

#endif // LATTE_MEM_INTERCONNECT_HH
