/**
 * @file
 * A bandwidth- and latency-constrained DRAM channel model. Requests pay
 * the minimum access latency (Table II: 230 cycles from the SM's
 * perspective, of which the L2 path contributes 120) plus queueing delay
 * once the channel's sustained bandwidth is saturated.
 */

#ifndef LATTE_MEM_DRAM_HH
#define LATTE_MEM_DRAM_HH

#include <algorithm>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/tracer.hh"

namespace latte
{

namespace metrics
{
class LatencyHistogram;
class MetricRegistry;
} // namespace metrics

/** Aggregate DRAM channel with a service-rate queue. */
class DramModel : public StatGroup
{
  public:
    DramModel(const GpuConfig &cfg, StatGroup *parent);

    /**
     * Issue a @p bytes transfer arriving at the controller at @p now.
     * @return the cycle the data is available at the L2.
     */
    Cycles access(Cycles now, std::uint32_t bytes);

    /** Reset queue state between runs (stats reset separately). */
    void flushQueues() { nextFree_ = 0; }

    /** Attach the event tracer (not owned; nullptr disables tracing). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Attach the metric registry (not owned; nullptr detaches). */
    void setMetrics(metrics::MetricRegistry *metrics);

    /** Cycles of backlog in the channel queue as seen at @p now. */
    double
    queueBacklog(Cycles now) const
    {
        return std::max(0.0, nextFree_ - static_cast<double>(now));
    }

    Counter accesses;
    Counter bytesTransferred;
    Average queueDelay;

  private:
    Tracer *tracer_ = nullptr;
    metrics::LatencyHistogram *queueDelayHist_ = nullptr;
    /** Extra latency DRAM adds beyond the L2 round trip. */
    Cycles extraLatency_;
    double bytesPerCycle_;
    /** Cycle at which the channel next becomes free. */
    double nextFree_ = 0;
};

} // namespace latte

#endif // LATTE_MEM_DRAM_HH
