#include "memory_image.hh"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/logging.hh"

namespace latte
{

void
MemoryImage::addRegion(Addr base, Addr size,
                       std::shared_ptr<LineGenerator> gen)
{
    latte_assert(gen != nullptr);
    latte_assert(base % kLineBytes == 0, "region base must be line aligned");
    regions_.push_back({base, size, std::move(gen)});
}

MemoryImage::Line &
MemoryImage::materialiseLocked(Addr line_addr)
{
    const auto it = lines_.find(line_addr);
    if (it != lines_.end())
        return it->second;

    Line &line = lines_[line_addr];
    line.fill(0);
    // Later registrations take precedence: scan back to front.
    for (auto rit = regions_.rbegin(); rit != regions_.rend(); ++rit) {
        if (line_addr >= rit->base && line_addr < rit->base + rit->size) {
            rit->gen->generate(line_addr, line);
            break;
        }
    }
    return line;
}

MemoryImage::Line &
MemoryImage::materialise(Addr line_addr)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return materialiseLocked(line_addr);
}

const MemoryImage::Line &
MemoryImage::line(Addr addr)
{
    const Addr base = lineAddr(addr);
    {
        // Fast path: after warmup nearly every line is resident.
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const auto it = lines_.find(base);
        if (it != lines_.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return materialiseLocked(base);
}

void
MemoryImage::readBytes(Addr addr, std::span<std::uint8_t> out)
{
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr cur = addr + done;
        const Addr base = lineAddr(cur);
        const std::size_t offset = cur - base;
        const std::size_t chunk =
            std::min(out.size() - done, std::size_t{kLineBytes} - offset);
        const Line &src = materialise(base);
        std::memcpy(out.data() + done, src.data() + offset, chunk);
        done += chunk;
    }
}

void
MemoryImage::writeBytes(Addr addr, std::span<const std::uint8_t> in)
{
    std::size_t done = 0;
    while (done < in.size()) {
        const Addr cur = addr + done;
        const Addr base = lineAddr(cur);
        const std::size_t offset = cur - base;
        const std::size_t chunk =
            std::min(in.size() - done, std::size_t{kLineBytes} - offset);
        Line &dst = materialise(base);
        std::memcpy(dst.data() + offset, in.data() + done, chunk);
        done += chunk;
    }
}

} // namespace latte
