/**
 * @file
 * Miss Status Holding Registers for the L1 data cache. Outstanding misses
 * to the same line are merged; the file's capacity bounds the L1's memory
 * level parallelism, stalling the load/store unit when exhausted.
 */

#ifndef LATTE_MEM_MSHR_HH
#define LATTE_MEM_MSHR_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace latte
{

/** MSHR file tracking outstanding line fills. */
class MshrFile : public StatGroup
{
  public:
    MshrFile(std::uint32_t entries, StatGroup *parent)
        : StatGroup("mshr", parent),
          allocations(this, "allocations", "primary misses allocated"),
          merges(this, "merges", "secondary misses merged"),
          stallsFull(this, "stalls_full", "allocations refused: file full"),
          capacity_(entries)
    {}

    /** True if a miss to @p line_addr is already outstanding. */
    bool
    outstanding(Addr line_addr) const
    {
        return entries_.contains(line_addr);
    }

    /** True if a new primary miss can be accepted. */
    bool hasFree() const { return entries_.size() < capacity_; }

    /**
     * Track a primary miss whose fill completes at @p fill_cycle.
     * @pre hasFree() && !outstanding(line_addr)
     */
    void
    allocate(Addr line_addr, Cycles fill_cycle)
    {
        latte_assert(hasFree(), "MSHR overflow");
        latte_assert(!outstanding(line_addr));
        entries_.emplace(line_addr, fill_cycle);
        ++allocations;
    }

    /** Merge a secondary miss; returns the pending fill cycle. */
    Cycles
    merge(Addr line_addr)
    {
        const auto it = entries_.find(line_addr);
        latte_assert(it != entries_.end());
        ++merges;
        return it->second;
    }

    /** Fill completion time of an outstanding miss. */
    Cycles
    fillCycle(Addr line_addr) const
    {
        const auto it = entries_.find(line_addr);
        latte_assert(it != entries_.end());
        return it->second;
    }

    /** Release entries whose fill has arrived by @p now; returns them. */
    std::vector<Addr>
    retire(Cycles now)
    {
        std::vector<Addr> done;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->second <= now) {
                done.push_back(it->first);
                it = entries_.erase(it);
            } else {
                ++it;
            }
        }
        return done;
    }

    /** Earliest outstanding fill completion; kNoCycle when empty. */
    Cycles
    nextFillCycle() const
    {
        Cycles next = kNoCycle;
        for (const auto &[addr, fill] : entries_)
            next = std::min(next, fill);
        return next;
    }

    /** Drop all state (between runs). */
    void clear() { entries_.clear(); }

    std::size_t inUse() const { return entries_.size(); }

    Counter allocations;
    Counter merges;
    Counter stallsFull;

  private:
    std::uint32_t capacity_;
    std::unordered_map<Addr, Cycles> entries_;
};

} // namespace latte

#endif // LATTE_MEM_MSHR_HH
