#include "l2_compress.hh"

#include <algorithm>

#include "common/logging.hh"

namespace latte
{

L2CompressionController::L2CompressionController(const GpuConfig &cfg)
    : cfg_(cfg), clock_(cfg.latte)
{}

void
L2CompressionController::bind(CompressionDomain *domain,
                              CompressionEngines *engines)
{
    latte_assert(domain && engines);
    domain_ = domain;
    engines_ = engines;
    stride_ = std::max(
        1u, domain->numSets() / cfg_.latte.dedicatedSetsPerMode);
}

int
L2CompressionController::dedicatedModeIndex(std::uint32_t set_index) const
{
    const std::uint32_t pos = set_index % stride_;
    return pos < modes_.size() ? static_cast<int>(pos) : -1;
}

CompressorId
L2CompressionController::modeForInsertion(std::uint32_t set_index) const
{
    const int dedicated = dedicatedModeIndex(set_index);
    return dedicated >= 0
               ? modes_[static_cast<std::size_t>(dedicated)]
               : winner_;
}

void
L2CompressionController::observeAccess(Cycles now,
                                       std::uint32_t set_index, bool hit,
                                       bool is_write,
                                       double service_cycles)
{
    if (!is_write) {
        const int dedicated = dedicatedModeIndex(set_index);
        if (dedicated >= 0) {
            const auto k = static_cast<std::size_t>(
                modes_[static_cast<std::size_t>(dedicated)]);
            if (hit)
                ++nHit_[k];
            else
                ++nMiss_[k];
        }
        if (hit) {
            hitLatSum_ += service_cycles;
            ++hitLatN_;
        } else {
            missLatSum_ += service_cycles;
            ++missLatN_;
        }
    }
    if (clock_.onAccess().epBoundary)
        onEpBoundary(now);
}

void
L2CompressionController::onEpBoundary(Cycles now)
{
    const double hit_mean =
        hitLatN_ ? hitLatSum_ / static_cast<double>(hitLatN_)
                 : static_cast<double>(cfg_.l2.minLatency);
    double miss_mean;
    if (missLatN_) {
        miss_mean = missLatSum_ / static_cast<double>(missLatN_);
        lastMissEstimate_ = miss_mean;
    } else if (lastMissEstimate_ > 0) {
        miss_mean = lastMissEstimate_;
    } else {
        miss_mean = static_cast<double>(cfg_.dramMinLatency +
                                        cfg_.l2.missPenaltyCycles);
    }
    const std::uint64_t reads = hitLatN_ + missLatN_;
    const double miss_rate =
        reads ? static_cast<double>(missLatN_) /
                    static_cast<double>(reads)
              : 0.0;
    // The L2 analogue of the SM-side meter: the average slack a miss's
    // service leaves over a hit, weighted by how often it is exercised.
    // A miss-dominated EP tolerates deep decompression; a hit-dominated
    // one does not.
    const double tolerance =
        std::max(0.0, miss_mean - hit_mean) * miss_rate;
    lastTolerance_ = tolerance;

    chooseWinner(now, tolerance, miss_mean);

    trace_.push_back({now, tolerance, winner_});
    if (tracer_) {
        TraceEvent ev =
            makeTraceEvent(now, TraceEventKind::L2EpBoundary);
        ev.mode = static_cast<std::uint8_t>(winner_);
        ev.value = tolerance;
        tracer_->record(ev);
    }

    // Decay the dueling counters (same 3/4 window the L1 uses) and
    // reset the EP-local latency accumulators.
    for (std::size_t k = 0; k < kNumCompressorIds; ++k) {
        nHit_[k] -= nHit_[k] / 4;
        nMiss_[k] -= nMiss_[k] / 4;
    }
    hitLatSum_ = 0;
    hitLatN_ = 0;
    missLatSum_ = 0;
    missLatN_ = 0;
}

void
L2CompressionController::chooseWinner(Cycles now, double tolerance,
                                      double miss_latency)
{
    constexpr std::uint64_t kMinSamples = 8;

    std::array<double, 3> amat{};
    std::array<bool, 3> eligible{};
    for (std::size_t i = 0; i < modes_.size(); ++i) {
        const CompressorId mode = modes_[i];
        const auto k = static_cast<std::size_t>(mode);
        const std::uint64_t total = nHit_[k] + nMiss_[k];
        eligible[i] = total >= kMinSamples;
        if (!eligible[i])
            continue;
        double eff = static_cast<double>(cfg_.l2.minLatency);
        if (mode != CompressorId::None) {
            eff += static_cast<double>(
                engines_->get(mode)->decompressLatency());
            eff += static_cast<double>(
                       domain_->queueFor(mode).expectedPos(now)) + 1.0;
        }
        const double exposed = std::max(eff - tolerance, 0.0);
        const double rate = static_cast<double>(nMiss_[k]) /
                            static_cast<double>(total);
        amat[i] = exposed + rate * (miss_latency - exposed);
        if (tracer_) {
            TraceEvent ev =
                makeTraceEvent(now, TraceEventKind::L2SamplerVote);
            ev.mode = static_cast<std::uint8_t>(mode);
            ev.value = amat[i];
            ev.arg1 = static_cast<std::uint32_t>(total);
            tracer_->record(ev);
        }
    }

    int best = -1;
    int incumbent = -1;
    for (std::size_t i = 0; i < modes_.size(); ++i) {
        if (modes_[i] == winner_)
            incumbent = static_cast<int>(i);
        if (!eligible[i])
            continue;
        if (best < 0 || amat[i] < amat[static_cast<std::size_t>(best)])
            best = static_cast<int>(i);
    }
    if (best < 0)
        return;

    // Hysteresis: displacing the incumbent needs a 2% AMAT win.
    if (incumbent >= 0 && best != incumbent &&
        eligible[static_cast<std::size_t>(incumbent)] &&
        amat[static_cast<std::size_t>(best)] >
            0.98 * amat[static_cast<std::size_t>(incumbent)]) {
        best = incumbent;
    }

    const CompressorId choice = modes_[static_cast<std::size_t>(best)];
    if (choice == winner_) {
        pendingWinner_ = winner_;
        pendingCount_ = 0;
        return;
    }
    // Two-EP debounce before committing a flip.
    if (choice == pendingWinner_) {
        if (++pendingCount_ >= 2) {
            winner_ = choice;
            ++modeChanges_;
            pendingCount_ = 0;
            if (tracer_) {
                TraceEvent ev = makeTraceEvent(
                    now, TraceEventKind::L2ModeChange);
                ev.mode = static_cast<std::uint8_t>(winner_);
                tracer_->record(ev);
            }
        }
    } else {
        pendingWinner_ = choice;
        pendingCount_ = 1;
    }
}

} // namespace latte
