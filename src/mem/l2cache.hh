/**
 * @file
 * Unified L2 cache (Table II: 768 KB, 128 B lines, 8-way, 12 banks).
 * Timing-only: hit/miss state is tracked per line, data comes from the
 * functional MemoryImage. Bank conflicts add queueing delay; misses go
 * to the DRAM model.
 *
 * With --l2-compress the tag/sub-block state moves into a
 * CompressionDomain (the same level-generic machinery the compressed L1
 * uses): lines are stored compressed, hits to compressed lines pay the
 * decompression queue, and the mode is either fixed (static:<algo>) or
 * chosen per EP by the L2CompressionController (latte). With
 * --link-compress, L2 miss fetches move compressed bytes over the
 * L2<->DRAM channel instead of full lines.
 */

#ifndef LATTE_MEM_L2CACHE_HH
#define LATTE_MEM_L2CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "compress/compression_domain.hh"
#include "compress/engines.hh"
#include "dram.hh"
#include "interconnect.hh"
#include "l2_compress.hh"
#include "memory_image.hh"
#include "trace/tracer.hh"

namespace latte
{

namespace metrics
{
class LatencyHistogram;
class MetricRegistry;
} // namespace metrics

/** Result of an L2 lookup. */
struct L2Result
{
    bool hit = false;
    /** Cycle the requested line is available back at the requesting SM. */
    Cycles readyCycle = 0;
};

/** Banked, set-associative, LRU, timing-only cache. */
class L2Cache : public StatGroup
{
  public:
    L2Cache(const GpuConfig &cfg, Interconnect *noc, DramModel *dram,
            MemoryImage *mem, StatGroup *parent);
    ~L2Cache();

    /**
     * Service an L1 miss (or write-through) for the line at @p line_addr,
     * leaving the requesting SM at @p now.
     */
    L2Result access(Cycles now, Addr line_addr, bool is_write);

    /** Drop all cached lines and bank queues (between runs). */
    void invalidateAll();

    /** Attach the event tracer (not owned; nullptr disables tracing). */
    void setTracer(Tracer *tracer);

    /**
     * Attach the metric registry (not owned; nullptr detaches). Mirrors
     * the L2-side service latencies into the shared histograms; purely
     * observational, never feeds back into timing.
     */
    void setMetrics(metrics::MetricRegistry *metrics);

    /** The compressed-L2 domain; nullptr when --l2-compress=off. */
    const CompressionDomain *domain() const { return domain_.get(); }

    /** The latte controller; nullptr unless --l2-compress=latte. */
    const L2CompressionController *controller() const
    {
        return controller_.get();
    }

    Counter reads;
    Counter writes;
    Counter hits;
    Counter misses;
    Average bankQueueDelay;

    /** Compressed-L2 stats; constructed only when compression is on. */
    struct CompressStats : public StatGroup
    {
        explicit CompressStats(StatGroup *parent);
        Counter insertions;
        Counter evictions;
        Counter writeInvalidations;
        Counter compressedInsertions;
        Counter bdiCompressions;
        Counter fpcCompressions;
        Counter cpackCompressions;
        Counter bpcCompressions;
        Counter decompressions;
        Average insertionRatio;
    };

    /** Link-compression stats; constructed only when the link is on. */
    struct LinkStats : public StatGroup
    {
        explicit LinkStats(StatGroup *parent);
        Counter transfers;           //!< compressed line fetches
        Counter bytesMoved;          //!< bytes actually transferred
        Counter bytesSaved;          //!< line bytes avoided
        Average transferRatio;       //!< mean line/transfer size ratio
    };

    const CompressStats *compressStats() const { return comp_.get(); }
    const LinkStats *linkStats() const { return link_.get(); }

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setIndex(Addr line_addr) const;
    std::uint32_t bankIndex(Addr line_addr) const;
    /** The uncompressed lookup/fill path (exactly the pre-domain L2). */
    L2Result accessUncompressed(Cycles now, Addr line_addr,
                                bool is_write, Cycles data_at_l2,
                                std::uint32_t bank, double queue);
    /** The CompressionDomain-backed path (--l2-compress != off). */
    L2Result accessCompressed(Cycles now, Addr line_addr, bool is_write,
                              Cycles data_at_l2);
    /** Fetch @p line_addr from DRAM (compressed link when enabled). */
    Cycles fetchLine(Cycles at, Addr line_addr);
    /** Insert @p line_addr into the domain, stored with @p mode. */
    void insertCompressed(Cycles now, Addr line_addr, std::uint32_t set,
                          CompressorId mode);

    const GpuConfig &cfg_;
    Interconnect *noc_;
    DramModel *dram_;
    MemoryImage *mem_;
    Tracer *tracer_ = nullptr;
    metrics::LatencyHistogram *hitLatencyHist_ = nullptr;
    metrics::LatencyHistogram *missLatencyHist_ = nullptr;
    metrics::LatencyHistogram *decompWaitHist_ = nullptr;

    std::uint32_t numSets_;
    std::vector<Way> ways_;              //!< numSets_ x assoc
    std::vector<Cycles> bankNextFree_;   //!< per-bank service queue
    std::uint64_t lruClock_ = 0;

    // --- compression machinery (allocated only when configured) ---
    std::unique_ptr<CompressionEngines> engines_;
    std::unique_ptr<CompressStats> comp_;
    std::unique_ptr<CompressionDomain> domain_;
    std::unique_ptr<L2CompressionController> controller_;
    std::unique_ptr<LinkStats> link_;
    Compressor *linkEngine_ = nullptr;
};

} // namespace latte

#endif // LATTE_MEM_L2CACHE_HH
