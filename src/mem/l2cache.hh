/**
 * @file
 * Unified L2 cache (Table II: 768 KB, 128 B lines, 8-way, 12 banks).
 * Timing-only: hit/miss state is tracked per line, data comes from the
 * functional MemoryImage. Bank conflicts add queueing delay; misses go
 * to the DRAM model.
 */

#ifndef LATTE_MEM_L2CACHE_HH
#define LATTE_MEM_L2CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram.hh"
#include "interconnect.hh"
#include "trace/tracer.hh"

namespace latte
{

/** Result of an L2 lookup. */
struct L2Result
{
    bool hit = false;
    /** Cycle the requested line is available back at the requesting SM. */
    Cycles readyCycle = 0;
};

/** Banked, set-associative, LRU, timing-only cache. */
class L2Cache : public StatGroup
{
  public:
    L2Cache(const GpuConfig &cfg, Interconnect *noc, DramModel *dram,
            StatGroup *parent);

    /**
     * Service an L1 miss (or write-through) for the line at @p line_addr,
     * leaving the requesting SM at @p now.
     */
    L2Result access(Cycles now, Addr line_addr, bool is_write);

    /** Drop all cached lines and bank queues (between runs). */
    void invalidateAll();

    /** Attach the event tracer (not owned; nullptr disables tracing). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    Counter reads;
    Counter writes;
    Counter hits;
    Counter misses;
    Average bankQueueDelay;

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setIndex(Addr line_addr) const;
    std::uint32_t bankIndex(Addr line_addr) const;

    const GpuConfig &cfg_;
    Interconnect *noc_;
    DramModel *dram_;
    Tracer *tracer_ = nullptr;

    std::uint32_t numSets_;
    std::vector<Way> ways_;              //!< numSets_ x assoc
    std::vector<double> bankNextFree_;   //!< per-bank service queue
    std::uint64_t lruClock_ = 0;

    /** L2 pipeline occupancy per access, per bank. */
    static constexpr double kBankServiceCycles = 2.0;
};

} // namespace latte

#endif // LATTE_MEM_L2CACHE_HH
