/**
 * @file
 * Functional memory state. The simulator splits function from timing:
 * caches and DRAM model *when* data arrives, while the MemoryImage holds
 * *what* the bytes are. Workload generators install LineGenerators over
 * address regions so lines materialise lazily with the value-locality
 * characteristics of the benchmark being modelled — the compressors then
 * operate on those real bytes.
 */

#ifndef LATTE_MEM_MEMORY_IMAGE_HH
#define LATTE_MEM_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace latte
{

/** Cache-line granular backing-data synthesiser. */
class LineGenerator
{
  public:
    virtual ~LineGenerator() = default;

    /** Fill the 128 bytes of the line at @p line_addr. */
    virtual void generate(Addr line_addr, std::span<std::uint8_t> out) = 0;
};

/** Sparse, lazily materialised byte-addressable memory. */
class MemoryImage
{
  public:
    static constexpr std::uint32_t kLineBytes = 128;
    using Line = std::array<std::uint8_t, kLineBytes>;

    /**
     * Route lines in [base, base+size) to @p gen. Regions must not
     * overlap; later registrations take precedence if they do.
     */
    void addRegion(Addr base, Addr size, std::shared_ptr<LineGenerator> gen);

    /**
     * Read the full line containing @p addr (materialising it). Safe to
     * call concurrently from the parallel SM-stepping phase: resident
     * lines are found under a shared lock, first-touch materialisation
     * takes the lock exclusively, and node-based map storage keeps the
     * returned reference stable across later insertions. Line content
     * is a pure function of the address, so materialisation order
     * cannot change what any reader sees.
     */
    const Line &line(Addr addr);

    /** Read @p out.size() bytes starting at @p addr. */
    void readBytes(Addr addr, std::span<std::uint8_t> out);

    /** Write bytes starting at @p addr. */
    void writeBytes(Addr addr, std::span<const std::uint8_t> in);

    /** Number of lines materialised so far. */
    std::size_t
    residentLines() const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        return lines_.size();
    }

    /** Align @p addr down to its line base. */
    static Addr lineAddr(Addr addr) { return addr & ~Addr{kLineBytes - 1}; }

  private:
    /** Find-or-fill under an exclusive lock held by the caller. */
    Line &materialiseLocked(Addr line_addr);
    Line &materialise(Addr line_addr);

    struct Region
    {
        Addr base;
        Addr size;
        std::shared_ptr<LineGenerator> gen;
    };

    std::vector<Region> regions_;
    std::unordered_map<Addr, Line> lines_;
    /** Guards lines_ against the parallel SM-stepping phase. */
    mutable std::shared_mutex mutex_;
};

} // namespace latte

#endif // LATTE_MEM_MEMORY_IMAGE_HH
