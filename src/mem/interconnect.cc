#include "interconnect.hh"

#include <algorithm>

namespace latte
{

Interconnect::Interconnect(const GpuConfig &cfg, StatGroup *parent)
    : StatGroup("noc", parent),
      packets(this, "packets", "packets injected"),
      bytesMoved(this, "bytes", "bytes moved over the network"),
      queueDelay(this, "queue_delay", "average injection queueing delay"),
      // The network contributes a fixed fraction of the 120-cycle minimum
      // L2 latency; the remainder is charged at the L2 itself.
      traversal_(cfg.l2.minLatency / 4),
      bytesPerCycle_(cfg.nocBytesPerCycle)
{}

Cycles
Interconnect::transfer(Cycles now, std::uint32_t bytes, Channel channel)
{
    ++packets;
    bytesMoved += bytes;

    double &next_free = nextFree_[static_cast<std::size_t>(channel)];
    const double start = std::max(static_cast<double>(now), next_free);
    const double service = static_cast<double>(bytes) / bytesPerCycle_;
    next_free = start + service;

    const double queue = start - static_cast<double>(now);
    queueDelay.sample(queue);

    return now + traversal_ + static_cast<Cycles>(queue + service);
}

} // namespace latte
