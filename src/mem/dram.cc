#include "dram.hh"

#include <algorithm>

#include "metrics/profiler.hh"
#include "metrics/registry.hh"

namespace latte
{

DramModel::DramModel(const GpuConfig &cfg, StatGroup *parent)
    : StatGroup("dram", parent),
      accesses(this, "accesses", "DRAM requests serviced"),
      bytesTransferred(this, "bytes", "bytes moved over the DRAM channel"),
      queueDelay(this, "queue_delay", "average queueing delay (cycles)"),
      extraLatency_(cfg.dramMinLatency - cfg.l2.minLatency),
      bytesPerCycle_(cfg.dramBytesPerCycle)
{}

void
DramModel::setMetrics(metrics::MetricRegistry *metrics)
{
    queueDelayHist_ =
        metrics ? &metrics->histogram("dram_queue_delay") : nullptr;
}

Cycles
DramModel::access(Cycles now, std::uint32_t bytes)
{
    metrics::ProfileScope profile(metrics::ProfileZone::DramAccess);
    ++accesses;
    bytesTransferred += bytes;

    const double start = std::max(static_cast<double>(now), nextFree_);
    const double service = static_cast<double>(bytes) / bytesPerCycle_;
    nextFree_ = start + service;

    const double queue = start - static_cast<double>(now);
    queueDelay.sample(queue);
    if (queueDelayHist_)
        queueDelayHist_->record(queue);

    if (tracer_) {
        TraceEvent ev = makeTraceEvent(now, TraceEventKind::DramAccess);
        ev.arg0 = bytes;
        ev.value = queue;
        tracer_->record(ev);
    }

    return now + extraLatency_ + static_cast<Cycles>(queue + service);
}

} // namespace latte
