#include "l2cache.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"
#include "metrics/profiler.hh"

namespace latte
{

L2Cache::L2Cache(const GpuConfig &cfg, Interconnect *noc, DramModel *dram,
                 StatGroup *parent)
    : StatGroup("l2", parent),
      reads(this, "reads", "read requests"),
      writes(this, "writes", "write requests"),
      hits(this, "hits", "L2 hits"),
      misses(this, "misses", "L2 misses"),
      bankQueueDelay(this, "bank_queue_delay",
                     "average bank queueing delay (cycles)"),
      cfg_(cfg), noc_(noc), dram_(dram),
      numSets_(cfg.l2NumSets()),
      ways_(static_cast<std::size_t>(numSets_) * cfg.l2Assoc),
      bankNextFree_(cfg.l2Banks, 0.0)
{
    latte_assert(numSets_ > 0);
    latte_assert(noc_ && dram_);
}

std::uint32_t
L2Cache::setIndex(Addr line_addr) const
{
    // 768 KB / 8-way / 128 B = 768 sets: not a power of two (the real
    // part interleaves 12 banks x 64 sets), so index by modulo.
    return static_cast<std::uint32_t>(
        (line_addr / cfg_.l2LineBytes) % numSets_);
}

std::uint32_t
L2Cache::bankIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(
        (line_addr / cfg_.l2LineBytes) % cfg_.l2Banks);
}

L2Result
L2Cache::access(Cycles now, Addr line_addr, bool is_write)
{
    metrics::ProfileScope profile(metrics::ProfileZone::L2Access);
    if (is_write)
        ++writes;
    else
        ++reads;

    // Request traverses the network to the L2 partition.
    const Cycles at_l2 = noc_->transfer(now, is_write ? 128 + 8 : 8,
                                        Interconnect::Channel::Request);

    // Bank arbitration.
    const std::uint32_t bank = bankIndex(line_addr);
    const double start = std::max(static_cast<double>(at_l2),
                                  bankNextFree_[bank]);
    bankNextFree_[bank] = start + kBankServiceCycles;
    const double queue = start - static_cast<double>(at_l2);
    bankQueueDelay.sample(queue);

    // Remaining pipeline latency so an unloaded read hit observed from
    // the SM costs exactly l2MinLatency.
    const Cycles pipeline =
        cfg_.l2MinLatency - 2 * noc_->traversalLatency();
    Cycles data_at_l2 = at_l2 + static_cast<Cycles>(queue) + pipeline;

    // Tag lookup.
    const std::uint32_t set = setIndex(line_addr);
    Way *ways = &ways_[static_cast<std::size_t>(set) * cfg_.l2Assoc];
    const Addr tag = line_addr / cfg_.l2LineBytes / numSets_;

    Way *entry = nullptr;
    for (std::uint32_t w = 0; w < cfg_.l2Assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            entry = &ways[w];
            break;
        }
    }

    if (entry) {
        ++hits;
        entry->lruStamp = ++lruClock_;
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Hit);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = queue;
            tracer_->record(ev);
        }
    } else {
        ++misses;
        // Fetch from DRAM, then fill.
        data_at_l2 = dram_->access(data_at_l2, cfg_.l2LineBytes);
        Way *victim = &ways[0];
        for (std::uint32_t w = 1; w < cfg_.l2Assoc; ++w) {
            if (!ways[w].valid) {
                victim = &ways[w];
                break;
            }
            if (ways[w].lruStamp < victim->lruStamp)
                victim = &ways[w];
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lruStamp = ++lruClock_;
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Miss);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = static_cast<double>(data_at_l2 - now);
            tracer_->record(ev);
        }
    }

    // Response traverses the network back (data payload for reads).
    const Cycles ready =
        noc_->transfer(data_at_l2, is_write ? 8 : 128 + 8,
                       Interconnect::Channel::Reply);
    return {entry != nullptr, ready};
}

void
L2Cache::invalidateAll()
{
    for (auto &way : ways_)
        way = Way{};
    std::fill(bankNextFree_.begin(), bankNextFree_.end(), 0.0);
    lruClock_ = 0;
}

} // namespace latte
