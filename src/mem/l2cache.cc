#include "l2cache.hh"

#include <algorithm>

#include "common/bit_utils.hh"
#include "common/logging.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"

namespace latte
{

L2Cache::CompressStats::CompressStats(StatGroup *parent)
    : StatGroup("compress", parent),
      insertions(this, "insertions", "lines inserted"),
      evictions(this, "evictions", "lines evicted"),
      writeInvalidations(this, "write_invalidations",
                         "compressed copies dropped by writes"),
      compressedInsertions(this, "compressed_insertions",
                           "insertions stored in compressed form"),
      bdiCompressions(this, "bdi_compressions",
                      "insertions run through the BDI compressor"),
      fpcCompressions(this, "fpc_compressions",
                      "insertions run through the FPC compressor"),
      cpackCompressions(this, "cpack_compressions",
                        "insertions run through the CPACK compressor"),
      bpcCompressions(this, "bpc_compressions",
                      "insertions run through the BPC compressor"),
      decompressions(this, "decompressions",
                     "hits decompressed through the queue"),
      insertionRatio(this, "insertion_ratio",
                     "mean compression ratio of inserted lines")
{}

L2Cache::LinkStats::LinkStats(StatGroup *parent)
    : StatGroup("link", parent),
      transfers(this, "transfers", "line fetches moved compressed"),
      bytesMoved(this, "bytes_moved",
                 "bytes transferred over the compressed link"),
      bytesSaved(this, "bytes_saved",
                 "line bytes avoided by link compression"),
      transferRatio(this, "transfer_ratio",
                    "mean line-size / transfer-size ratio")
{}

L2Cache::L2Cache(const GpuConfig &cfg, Interconnect *noc, DramModel *dram,
                 MemoryImage *mem, StatGroup *parent)
    : StatGroup("l2", parent),
      reads(this, "reads", "read requests"),
      writes(this, "writes", "write requests"),
      hits(this, "hits", "L2 hits"),
      misses(this, "misses", "L2 misses"),
      bankQueueDelay(this, "bank_queue_delay",
                     "average bank queueing delay (cycles)"),
      cfg_(cfg), noc_(noc), dram_(dram), mem_(mem),
      numSets_(cfg.l2NumSets()),
      ways_(static_cast<std::size_t>(numSets_) * cfg.l2.assoc),
      bankNextFree_(cfg.l2.banks, 0)
{
    latte_assert(numSets_ > 0);
    latte_assert(noc_ && dram_ && mem_);

    const bool level_on = cfg.l2.compress != LevelCompress::Off;
    const bool link_on = cfg.linkCompress != CompressorId::None;
    if (level_on || link_on)
        engines_ = std::make_unique<CompressionEngines>(cfg);
    if (level_on) {
        comp_ = std::make_unique<CompressStats>(this);
        domain_ = std::make_unique<CompressionDomain>(
            cfg.l2, GpuConfig::ReplPolicy::LRU, true, comp_.get());
        if (cfg.l2.compress == LevelCompress::Latte) {
            controller_ = std::make_unique<L2CompressionController>(cfg);
            controller_->bind(domain_.get(), engines_.get());
        }
    }
    if (link_on) {
        link_ = std::make_unique<LinkStats>(this);
        linkEngine_ = engines_->get(cfg.linkCompress);
    }
}

L2Cache::~L2Cache() = default;

void
L2Cache::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    if (controller_)
        controller_->setTracer(tracer);
}

void
L2Cache::setMetrics(metrics::MetricRegistry *metrics)
{
    if (!metrics) {
        hitLatencyHist_ = missLatencyHist_ = decompWaitHist_ = nullptr;
        return;
    }
    hitLatencyHist_ = &metrics->histogram("l2_hit_latency");
    missLatencyHist_ = &metrics->histogram("l2_miss_latency");
    decompWaitHist_ =
        domain_ ? &metrics->histogram("l2_decomp_queue_wait") : nullptr;
}

std::uint32_t
L2Cache::setIndex(Addr line_addr) const
{
    // 768 KB / 8-way / 128 B = 768 sets: not a power of two (the real
    // part interleaves 12 banks x 64 sets), so index by modulo.
    return static_cast<std::uint32_t>(
        (line_addr / cfg_.l2.lineBytes) % numSets_);
}

std::uint32_t
L2Cache::bankIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(
        (line_addr / cfg_.l2.lineBytes) % cfg_.l2.banks);
}

Cycles
L2Cache::fetchLine(Cycles at, Addr line_addr)
{
    if (!linkEngine_)
        return dram_->access(at, cfg_.l2.lineBytes);

    // Memory-side compression: the controller encodes the line before
    // the burst, the L2 expands it after. Only transfers that actually
    // shrink (rounded up to 8 B bus beats) take the compressed path —
    // incompressible lines move raw with no added latency.
    const auto &bytes = mem_->line(line_addr);
    const LineMeta meta = linkEngine_->probe(bytes);
    std::uint32_t xfer = cfg_.l2.lineBytes;
    if (meta.compressed() && meta.encoding != kRawEncoding) {
        xfer = std::min(
            cfg_.l2.lineBytes,
            static_cast<std::uint32_t>(
                divCeil(std::max<std::uint32_t>(meta.sizeBytes(), 1),
                        8u) * 8u));
    }
    if (xfer >= cfg_.l2.lineBytes)
        return dram_->access(at, cfg_.l2.lineBytes);

    const Cycles done =
        dram_->access(at + linkEngine_->compressLatency(), xfer) +
        linkEngine_->decompressLatency();
    ++link_->transfers;
    link_->bytesMoved += xfer;
    link_->bytesSaved += cfg_.l2.lineBytes - xfer;
    link_->transferRatio.sample(
        static_cast<double>(cfg_.l2.lineBytes) /
        static_cast<double>(xfer));
    if (tracer_) {
        TraceEvent ev =
            makeTraceEvent(at, TraceEventKind::LinkCompress);
        ev.arg0 = line_addr;
        ev.arg1 = xfer;
        ev.value = meta.ratio();
        tracer_->record(ev);
    }
    return done;
}

void
L2Cache::insertCompressed(Cycles now, Addr line_addr, std::uint32_t set,
                          CompressorId mode)
{
    LineMeta meta;
    if (mode == CompressorId::None) {
        meta = makeRawMeta(CompressorId::None);
    } else {
        metrics::ProfileScope profile(
            metrics::ProfileZone::CompressorProbe);
        meta = engines_->get(mode)->probe(mem_->line(line_addr));
    }
    switch (mode) {
      case CompressorId::Bdi: ++comp_->bdiCompressions; break;
      case CompressorId::Fpc: ++comp_->fpcCompressions; break;
      case CompressorId::CpackZ: ++comp_->cpackCompressions; break;
      case CompressorId::Bpc: ++comp_->bpcCompressions; break;
      default: break;
    }

    const std::uint8_t need = domain_->subBlocksFor(meta);
    CompressionDomain::TagEntry &slot = domain_->allocateSlot(
        set, need, [&](const CompressionDomain::TagEntry &victim) {
            ++comp_->evictions;
            if (tracer_) {
                TraceEvent ev =
                    makeTraceEvent(now, TraceEventKind::L2Evict);
                ev.arg0 = victim.tag;
                ev.arg1 = set;
                ev.mode = static_cast<std::uint8_t>(victim.mode);
                tracer_->record(ev);
            }
        });
    domain_->commitFill(slot, domain_->tagOf(line_addr), meta, need, set);

    ++comp_->insertions;
    if (meta.compressed() && meta.encoding != kRawEncoding)
        ++comp_->compressedInsertions;
    comp_->insertionRatio.sample(meta.ratio());
    if (tracer_) {
        TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Insert);
        ev.arg0 = line_addr;
        ev.arg1 = need;
        ev.mode = static_cast<std::uint8_t>(meta.algo);
        ev.value = meta.ratio();
        tracer_->record(ev);
    }
}

L2Result
L2Cache::accessUncompressed(Cycles now, Addr line_addr, bool is_write,
                            Cycles data_at_l2, std::uint32_t bank,
                            double queue)
{
    // Tag lookup.
    const std::uint32_t set = setIndex(line_addr);
    Way *ways = &ways_[static_cast<std::size_t>(set) * cfg_.l2.assoc];
    const Addr tag = line_addr / cfg_.l2.lineBytes / numSets_;

    Way *entry = nullptr;
    for (std::uint32_t w = 0; w < cfg_.l2.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            entry = &ways[w];
            break;
        }
    }

    if (entry) {
        ++hits;
        entry->lruStamp = ++lruClock_;
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Hit);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = queue;
            tracer_->record(ev);
        }
    } else {
        ++misses;
        // Fetch from DRAM, then fill.
        data_at_l2 = fetchLine(data_at_l2, line_addr);
        Way *victim = &ways[0];
        for (std::uint32_t w = 1; w < cfg_.l2.assoc; ++w) {
            if (!ways[w].valid) {
                victim = &ways[w];
                break;
            }
            if (ways[w].lruStamp < victim->lruStamp)
                victim = &ways[w];
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lruStamp = ++lruClock_;
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Miss);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = static_cast<double>(data_at_l2 - now);
            tracer_->record(ev);
        }
    }

    // Response traverses the network back (data payload for reads).
    const Cycles ready =
        noc_->transfer(data_at_l2, is_write ? 8 : 128 + 8,
                       Interconnect::Channel::Reply);
    return {entry != nullptr, ready};
}

L2Result
L2Cache::accessCompressed(Cycles now, Addr line_addr, bool is_write,
                          Cycles data_at_l2)
{
    const std::uint32_t set = domain_->setIndexOf(line_addr);
    const std::uint32_t bank = bankIndex(line_addr);
    CompressionDomain::TagEntry *entry = domain_->findLine(line_addr);
    const bool was_hit = entry != nullptr;
    Cycles data_ready = data_at_l2;

    if (entry) {
        ++hits;
        if (is_write) {
            // Write-avoid at the L2: drop the compressed copy and
            // restore it raw, so stores never recompress in place.
            const CompressorId old_mode = entry->mode;
            domain_->releaseLine(*entry, set);
            ++comp_->writeInvalidations;
            if (tracer_) {
                TraceEvent ev = makeTraceEvent(
                    now, TraceEventKind::L2WriteInval);
                ev.arg0 = line_addr;
                ev.arg1 = set;
                ev.mode = static_cast<std::uint8_t>(old_mode);
                tracer_->record(ev);
            }
            insertCompressed(now, line_addr, set, CompressorId::None);
        } else {
            domain_->touchOnHit(*entry);
            if (entry->mode != CompressorId::None &&
                entry->encoding != kRawEncoding) {
                Compressor *engine = engines_->get(entry->mode);
                DecompressionQueue &queue = domain_->queueFor(entry->mode);
                data_ready = queue.enqueue(data_at_l2,
                                           engine->decompressLatency());
                ++comp_->decompressions;
                if (decompWaitHist_) {
                    decompWaitHist_->record(
                        static_cast<double>(data_ready - data_at_l2));
                }
                if (tracer_) {
                    TraceEvent ev = makeTraceEvent(
                        now, TraceEventKind::L2DecompEnqueue);
                    ev.arg0 = line_addr;
                    ev.arg1 = static_cast<std::uint32_t>(
                        queue.depth(data_at_l2));
                    ev.mode = static_cast<std::uint8_t>(entry->mode);
                    ev.value =
                        static_cast<double>(data_ready - data_at_l2);
                    tracer_->record(ev);
                }
            }
        }
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Hit);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = static_cast<double>(data_ready - data_at_l2);
            tracer_->record(ev);
        }
    } else {
        ++misses;
        data_ready = fetchLine(data_at_l2, line_addr);
        // Stores fill raw (the write-avoid analogue); loads fill with
        // the configured mode — static:<algo> or the latte winner.
        CompressorId mode = CompressorId::None;
        if (!is_write) {
            mode = controller_ ? controller_->modeForInsertion(set)
                               : cfg_.l2.staticAlgo;
        }
        insertCompressed(now, line_addr, set, mode);
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L2Miss);
            ev.arg0 = line_addr;
            ev.arg1 = bank;
            ev.value = static_cast<double>(data_ready - now);
            tracer_->record(ev);
        }
    }

    if (controller_) {
        // The controller's latency signal spans issue to data-at-L2, so
        // its per-EP hit mean lines up with the l2.minLatency baseline
        // its AMAT votes are computed against.
        controller_->observeAccess(now, set, was_hit, is_write,
                                   static_cast<double>(data_ready - now));
    }

    const Cycles ready =
        noc_->transfer(data_ready, is_write ? 8 : 128 + 8,
                       Interconnect::Channel::Reply);
    return {was_hit, ready};
}

L2Result
L2Cache::access(Cycles now, Addr line_addr, bool is_write)
{
    metrics::ProfileScope profile(metrics::ProfileZone::L2Access);
    if (is_write)
        ++writes;
    else
        ++reads;

    // Request traverses the network to the L2 partition.
    const Cycles at_l2 = noc_->transfer(now, is_write ? 128 + 8 : 8,
                                        Interconnect::Channel::Request);

    // Bank arbitration (integer cycle arithmetic: the service time and
    // the queueing delay are whole cycles by construction).
    const std::uint32_t bank = bankIndex(line_addr);
    const Cycles start = std::max(at_l2, bankNextFree_[bank]);
    bankNextFree_[bank] = start + cfg_.l2.bankServiceCycles;
    const Cycles queue = start - at_l2;
    bankQueueDelay.sample(static_cast<double>(queue));

    // Remaining pipeline latency so an unloaded read hit observed from
    // the SM costs exactly l2.minLatency.
    const Cycles pipeline =
        cfg_.l2.minLatency - 2 * noc_->traversalLatency();
    const Cycles data_at_l2 = at_l2 + queue + pipeline;

    const L2Result result =
        domain_ ? accessCompressed(now, line_addr, is_write, data_at_l2)
                : accessUncompressed(now, line_addr, is_write,
                                     data_at_l2, bank,
                                     static_cast<double>(queue));

    // Observational mirror into the shared metric histograms.
    if (result.hit) {
        if (hitLatencyHist_) {
            hitLatencyHist_->record(
                static_cast<double>(result.readyCycle - now));
        }
    } else if (missLatencyHist_) {
        missLatencyHist_->record(
            static_cast<double>(result.readyCycle - now));
    }
    return result;
}

void
L2Cache::invalidateAll()
{
    for (auto &way : ways_)
        way = Way{};
    std::fill(bankNextFree_.begin(), bankNextFree_.end(), Cycles{0});
    lruClock_ = 0;
    if (domain_)
        domain_->invalidateAll();
}

} // namespace latte
