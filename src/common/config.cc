#include "config.hh"

#include "logging.hh"

namespace latte
{

std::optional<std::string>
GpuConfig::validationError() const
{
    if (numSms == 0)
        return "numSms must be nonzero";
    if (warpSize == 0)
        return "warpSize must be nonzero";
    if (maxWarpsPerSm == 0)
        return "maxWarpsPerSm must be nonzero";

    if (l1LineBytes == 0)
        return "l1LineBytes must be nonzero";
    if (l1Assoc == 0)
        return "l1Assoc must be nonzero";
    if (l1SizeBytes == 0 || l1SizeBytes % (l1LineBytes * l1Assoc) != 0) {
        return strfmt("l1SizeBytes ({}) must be a nonzero multiple of "
                      "l1LineBytes * l1Assoc ({})",
                      l1SizeBytes, l1LineBytes * l1Assoc);
    }
    if (l1SubBlockBytes == 0 || l1LineBytes % l1SubBlockBytes != 0) {
        return strfmt("l1SubBlockBytes ({}) must be nonzero and divide "
                      "l1LineBytes ({})",
                      l1SubBlockBytes, l1LineBytes);
    }
    if (l1TagFactor == 0)
        return "l1TagFactor must be nonzero";
    if (l1MshrEntries == 0)
        return "l1MshrEntries must be nonzero";

    if (l2LineBytes == 0)
        return "l2LineBytes must be nonzero";
    if (l2Assoc == 0)
        return "l2Assoc must be nonzero";
    if (l2SizeBytes == 0 || l2SizeBytes % (l2LineBytes * l2Assoc) != 0) {
        return strfmt("l2SizeBytes ({}) must be a nonzero multiple of "
                      "l2LineBytes * l2Assoc ({})",
                      l2SizeBytes, l2LineBytes * l2Assoc);
    }
    if (l2Banks == 0)
        return "l2Banks must be nonzero";

    if (decompQueueEntries == 0)
        return "decompQueueEntries must be nonzero";

    if (latte.epAccesses == 0)
        return "latte.epAccesses must be nonzero";
    if (latte.periodEps == 0 || latte.learningEps == 0 ||
        latte.learningEps > latte.periodEps) {
        return strfmt("latte learning/period EP counts are inconsistent "
                      "({} of {})",
                      latte.learningEps, latte.periodEps);
    }
    // Three candidate modes is the largest set any shipped policy uses;
    // the dedicated sample sets of all modes must leave follower sets.
    if (latte.dedicatedSetsPerMode * 3 >= l1NumSets()) {
        return strfmt("latte.dedicatedSetsPerMode ({}) leaves no "
                      "follower sets in a {}-set L1",
                      latte.dedicatedSetsPerMode, l1NumSets());
    }
    return std::nullopt;
}

void
GpuConfig::validate() const
{
    if (const auto error = validationError())
        latte_fatal("invalid GpuConfig: {}", *error);
}

} // namespace latte
