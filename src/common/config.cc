#include "config.hh"

#include "logging.hh"

namespace latte
{

namespace
{

/** Lowercase spec names for the link/static algorithm knobs. */
constexpr struct
{
    const char *name;
    CompressorId id;
} kAlgoSpecs[] = {
    {"bdi", CompressorId::Bdi},     {"fpc", CompressorId::Fpc},
    {"cpack", CompressorId::CpackZ}, {"bpc", CompressorId::Bpc},
    {"sc", CompressorId::Sc},
};

bool
algoFromSpec(const std::string &name, CompressorId &id)
{
    for (const auto &spec : kAlgoSpecs) {
        if (name == spec.name) {
            id = spec.id;
            return true;
        }
    }
    return false;
}

const char *
algoSpecName(CompressorId id)
{
    for (const auto &spec : kAlgoSpecs) {
        if (spec.id == id)
            return spec.name;
    }
    latte_panic("no spec name for compressor id {}",
                static_cast<int>(id));
}

} // namespace

std::optional<std::string>
CacheLevelConfig::validationError(const char *level) const
{
    if (lineBytes == 0)
        return strfmt("{}LineBytes must be nonzero", level);
    if (assoc == 0)
        return strfmt("{}Assoc must be nonzero", level);
    if (sizeBytes == 0 || sizeBytes % (lineBytes * assoc) != 0) {
        return strfmt("{}SizeBytes ({}) must be a nonzero multiple of "
                      "{}LineBytes * {}Assoc ({})",
                      level, sizeBytes, level, level, lineBytes * assoc);
    }
    if (subBlockBytes == 0 || lineBytes % subBlockBytes != 0) {
        return strfmt("{}SubBlockBytes ({}) must be nonzero and divide "
                      "{}LineBytes ({})",
                      level, subBlockBytes, level, lineBytes);
    }
    if (tagFactor == 0)
        return strfmt("{}TagFactor must be nonzero", level);
    if (mshrEntries == 0)
        return strfmt("{}MshrEntries must be nonzero", level);
    if (banks == 0)
        return strfmt("{}Banks must be nonzero", level);
    if (compress == LevelCompress::Static &&
        staticAlgo == CompressorId::None) {
        return strfmt("{} static compression needs an algorithm", level);
    }
    return std::nullopt;
}

bool
parseLevelCompressSpec(const std::string &spec, CacheLevelConfig &level)
{
    if (spec == "off") {
        level.compress = LevelCompress::Off;
        return true;
    }
    if (spec == "latte") {
        level.compress = LevelCompress::Latte;
        return true;
    }
    constexpr std::string_view kStatic = "static:";
    if (spec.rfind(kStatic, 0) == 0) {
        CompressorId algo;
        if (!algoFromSpec(spec.substr(kStatic.size()), algo))
            return false;
        level.compress = LevelCompress::Static;
        level.staticAlgo = algo;
        return true;
    }
    return false;
}

std::string
levelCompressSpec(const CacheLevelConfig &level)
{
    switch (level.compress) {
      case LevelCompress::Off:
        return "off";
      case LevelCompress::Latte:
        return "latte";
      case LevelCompress::Static:
        return strfmt("static:{}", algoSpecName(level.staticAlgo));
    }
    latte_panic("unknown LevelCompress {}",
                static_cast<int>(level.compress));
}

bool
parseLinkCompressSpec(const std::string &spec, CompressorId &algo)
{
    if (spec == "off") {
        algo = CompressorId::None;
        return true;
    }
    return algoFromSpec(spec, algo);
}

std::string
linkCompressSpec(CompressorId algo)
{
    return algo == CompressorId::None ? "off" : algoSpecName(algo);
}

std::optional<std::string>
GpuConfig::validationError() const
{
    if (numSms == 0)
        return "numSms must be nonzero";
    if (warpSize == 0)
        return "warpSize must be nonzero";
    if (maxWarpsPerSm == 0)
        return "maxWarpsPerSm must be nonzero";

    if (const auto error = l1.validationError("l1"))
        return error;
    if (const auto error = l2.validationError("l2"))
        return error;

    if (decompQueueEntries == 0)
        return "decompQueueEntries must be nonzero";

    if (latte.epAccesses == 0)
        return "latte.epAccesses must be nonzero";
    if (latte.periodEps == 0 || latte.learningEps == 0 ||
        latte.learningEps > latte.periodEps) {
        return strfmt("latte learning/period EP counts are inconsistent "
                      "({} of {})",
                      latte.learningEps, latte.periodEps);
    }
    // Three candidate modes is the largest set any shipped policy uses;
    // the dedicated sample sets of all modes must leave follower sets.
    if (latte.dedicatedSetsPerMode * 3 >= l1NumSets()) {
        return strfmt("latte.dedicatedSetsPerMode ({}) leaves no "
                      "follower sets in a {}-set L1",
                      latte.dedicatedSetsPerMode, l1NumSets());
    }
    if (l2.compress == LevelCompress::Latte &&
        latte.dedicatedSetsPerMode * 3 >= l2NumSets()) {
        return strfmt("latte.dedicatedSetsPerMode ({}) leaves no "
                      "follower sets in a {}-set L2",
                      latte.dedicatedSetsPerMode, l2NumSets());
    }
    // SC's Huffman code book (VFT sampling, generation rebuilds) is
    // wired to the per-SM L1 policy; below the L1 only self-contained
    // algorithms are available.
    if (l2.compress != LevelCompress::Off &&
        l2.staticAlgo == CompressorId::Sc &&
        l2.compress == LevelCompress::Static) {
        return "l2 compression does not support SC (the code book "
               "rebuild machinery is L1-resident)";
    }
    if (linkCompress == CompressorId::Sc) {
        return "link compression does not support SC (the code book "
               "rebuild machinery is L1-resident)";
    }
    return std::nullopt;
}

void
GpuConfig::validate() const
{
    if (const auto error = validationError())
        latte_fatal("invalid GpuConfig: {}", *error);
}

} // namespace latte
