/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). All
 * stochastic behaviour in the simulator and the workload generators is
 * seeded explicitly so experiments reproduce bit-for-bit.
 */

#ifndef LATTE_COMMON_RNG_HH
#define LATTE_COMMON_RNG_HH

#include <cstdint>

#include "logging.hh"

namespace latte
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        latte_assert(bound != 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        latte_assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace latte

#endif // LATTE_COMMON_RNG_HH
