#include "compress_id.hh"

#include "logging.hh"

namespace latte
{

const char *
compressorName(CompressorId id)
{
    switch (id) {
      case CompressorId::None: return "None";
      case CompressorId::Bdi: return "BDI";
      case CompressorId::Fpc: return "FPC";
      case CompressorId::CpackZ: return "CPACK-Z";
      case CompressorId::Bpc: return "BPC";
      case CompressorId::Sc: return "SC";
    }
    latte_panic("unknown compressor id {}", static_cast<int>(id));
}

} // namespace latte
