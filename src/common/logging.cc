#include "logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace latte
{

namespace
{

struct LevelEntry
{
    LogLevel level;
    const char *name;
};

const LevelEntry kLevelTable[] = {
    {LogLevel::Error, "error"}, {LogLevel::Warn, "warn"},
    {LogLevel::Info, "info"},   {LogLevel::Debug, "debug"},
    {LogLevel::Trace, "trace"},
};

constexpr int kLevelUnset = -1;

/** Minimum emitted level; kLevelUnset until the env is consulted. */
std::atomic<int> g_level{kLevelUnset};
std::atomic<bool> g_json{false};

/** Serializes every emitted line; also guards the sink pointer. */
std::mutex g_writeMutex;
void (*g_sink)(const std::string &) = nullptr;

/** Monotonic epoch all record timestamps are relative to. */
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

std::atomic<unsigned> g_nextThreadSeq{0};

thread_local std::string t_threadName;
thread_local std::string t_context;

/** JSON string escaping for the --log-json sink (common has no Json). */
void
appendJsonEscaped(std::string &out, const std::string &text)
{
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** Emit one finished line (adds the newline). Caller holds no locks. */
void
emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(g_writeMutex);
    if (g_sink) {
        g_sink(line);
        return;
    }
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

std::string
renderRecord(LogLevel level, const std::string &msg)
{
    const double ts = logNowSeconds();
    const std::string &thread = logThreadName();
    const std::string &context = t_context;

    std::string line;
    if (g_json.load(std::memory_order_relaxed)) {
        char ts_buf[32];
        std::snprintf(ts_buf, sizeof(ts_buf), "%.6f", ts);
        line += "{\"ts\":";
        line += ts_buf;
        line += ",\"level\":\"";
        line += logLevelName(level);
        line += "\",\"thread\":\"";
        appendJsonEscaped(line, thread);
        line += "\"";
        if (!context.empty()) {
            line += ",\"ctx\":\"";
            appendJsonEscaped(line, context);
            line += "\"";
        }
        line += ",\"msg\":\"";
        appendJsonEscaped(line, msg);
        line += "\"}";
        return line;
    }

    char head[64];
    std::snprintf(head, sizeof(head), "[%13.6f] %-5s %s", ts,
                  logLevelName(level), thread.c_str());
    line += head;
    if (!context.empty()) {
        line += " ";
        line += context;
    }
    line += ": ";
    line += msg;
    return line;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    for (const LevelEntry &entry : kLevelTable) {
        if (entry.level == level)
            return entry.name;
    }
    return "?";
}

bool
logLevelFromName(const std::string &name, LogLevel &out)
{
    for (const LevelEntry &entry : kLevelTable) {
        if (name == entry.name) {
            out = entry.level;
            return true;
        }
    }
    return false;
}

LogLevel
logLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level != kLevelUnset)
        return static_cast<LogLevel>(level);

    LogLevel resolved = LogLevel::Info;
    if (const char *env = std::getenv("LATTE_LOG_LEVEL");
        env && *env != '\0') {
        if (!logLevelFromName(env, resolved)) {
            resolved = LogLevel::Info;
            // Emit directly: logWrite would re-enter logLevel().
            emitLine(renderRecord(
                LogLevel::Warn,
                strfmt("ignoring invalid LATTE_LOG_LEVEL='{}' (want "
                       "error|warn|info|debug|trace)",
                       env)));
        }
    }
    // Another thread may have resolved (or set) a level concurrently;
    // first writer wins so a racing setLogLevel() is never clobbered.
    int expected = kLevelUnset;
    g_level.compare_exchange_strong(expected,
                                    static_cast<int>(resolved),
                                    std::memory_order_relaxed);
    return static_cast<LogLevel>(
        g_level.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

void
setLogJson(bool json)
{
    g_json.store(json, std::memory_order_relaxed);
}

bool
logJson()
{
    return g_json.load(std::memory_order_relaxed);
}

void
setLogThreadName(std::string name)
{
    t_threadName = std::move(name);
}

const std::string &
logThreadName()
{
    if (t_threadName.empty()) {
        t_threadName = strfmt(
            "t{}",
            g_nextThreadSeq.fetch_add(1, std::memory_order_relaxed));
    }
    return t_threadName;
}

const std::string &
logContext()
{
    return t_context;
}

LogScope::LogScope(std::string context) : saved_(std::move(t_context))
{
    t_context = std::move(context);
}

LogScope::~LogScope()
{
    t_context = std::move(saved_);
}

void
logWrite(LogLevel level, const std::string &msg)
{
    emitLine(renderRecord(level, msg));
}

void
logRawLine(const std::string &line)
{
    if (g_json.load(std::memory_order_relaxed)) {
        emitLine(renderRecord(LogLevel::Info, line));
        return;
    }
    emitLine(line);
}

void
setLogSink(void (*sink)(const std::string &))
{
    std::lock_guard<std::mutex> lock(g_writeMutex);
    g_sink = sink;
}

double
logNowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - g_epoch)
        .count();
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    logWrite(LogLevel::Error,
             strfmt("panic: {}\n  at {}:{}", msg, file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logWrite(LogLevel::Error,
             strfmt("fatal: {}\n  at {}:{}", msg, file, line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    logWrite(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    logWrite(LogLevel::Info, msg);
}

} // namespace latte
