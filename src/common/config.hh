/**
 * @file
 * Simulated GPU configuration. Defaults reproduce Table II of the
 * LATTE-CC paper (a GTX480/Fermi-class device as configured in
 * GPGPU-Sim 3.2.2) plus the compression latencies/energies of Section IV-C.
 *
 * Per-level cache parameters live in CacheLevelConfig values rather than
 * flat fields, so pointing the compression machinery at another level
 * (a compressed L2 today, an L3 or an LCP-style memory controller
 * tomorrow) is a config row, not a new class.
 */

#ifndef LATTE_COMMON_CONFIG_HH
#define LATTE_COMMON_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "compress_id.hh"
#include "types.hh"

namespace latte
{

/** Per-compressor pipeline latencies and per-event energies (Sec IV-C). */
struct CompressorTimings
{
    Cycles bdiCompress = 2;
    Cycles bdiDecompress = 2;
    Cycles fpcDecompress = 5;
    Cycles cpackDecompress = 8;
    Cycles bpcCompress = 6;
    Cycles bpcDecompress = 11;
    Cycles scCompress = 6;
    Cycles scDecompress = 14;

    double bdiCompressNj = 0.192;
    double bdiDecompressNj = 0.056;
    double scCompressNj = 0.42;
    double scDecompressNj = 0.336;
    // BPC energies are not published in the paper; scaled between BDI and
    // SC proportionally to decompression latency.
    double bpcCompressNj = 0.35;
    double bpcDecompressNj = 0.26;
};

/** LATTE-CC controller parameters (Section IV-C3). */
struct LatteParams
{
    /** L1 accesses per experimental phase. */
    std::uint32_t epAccesses = 256;
    /** EPs per period (1 learning + (periodEps-1) adaptive). */
    std::uint32_t periodEps = 10;
    /** Learning EPs per period. */
    std::uint32_t learningEps = 1;
    /** Dedicated sample sets per compression mode. */
    std::uint32_t dedicatedSetsPerMode = 4;
    /** Value-frequency table entries for SC code construction. */
    std::uint32_t vftEntries = 1024;
    /** VFT counter width in bits (counters saturate). */
    std::uint32_t vftCounterBits = 12;
};

/** How a cache level stores its lines. */
enum class LevelCompress : std::uint8_t
{
    Off,    //!< uncompressed tags + full lines
    Static, //!< every insertion probed with one fixed algorithm
    Latte,  //!< per-EP adaptive mode selection at that level
};

/**
 * Geometry, timing and compression knobs of one cache level. The L1
 * instance leaves `compress` at Off because the per-SM policy catalogue
 * owns the L1 mode decision; the L2 instance is driven directly by
 * these knobs (`--l2-compress`).
 */
struct CacheLevelConfig
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t lineBytes = 128;
    std::uint32_t assoc = 0;
    std::uint32_t banks = 1;
    /** Load-to-use latency of a hit at this level (L1 use). */
    Cycles hitLatency = 1;
    /** Minimum latency from the level above's miss to data (L2 use). */
    Cycles minLatency = 0;
    /** Bank busy time per request once arbitration grants it. */
    Cycles bankServiceCycles = 2;
    /**
     * Added to minLatency as the pessimistic miss-latency estimate the
     * policy uses before real miss samples arrive.
     */
    Cycles missPenaltyCycles = 40;
    /** Tag-array expansion factor for the compressed cache. */
    std::uint32_t tagFactor = 4;
    /** Compressed-data allocation granule. */
    std::uint32_t subBlockBytes = 32;
    std::uint32_t mshrEntries = 32;
    /** How lines at this level are stored. */
    LevelCompress compress = LevelCompress::Off;
    /** Algorithm used when compress == Static. */
    CompressorId staticAlgo = CompressorId::Bdi;

    std::uint32_t numSets() const
    {
        return sizeBytes / (lineBytes * assoc);
    }

    /**
     * First structural inconsistency, or nullopt. @p level prefixes the
     * message field names ("l1", "l2") so errors read like the old flat
     * configuration ("l1SizeBytes (...) must be ...").
     */
    std::optional<std::string> validationError(const char *level) const;

    /** Table II L1D: 16 KB, 128 B lines, 4-way. */
    static constexpr CacheLevelConfig l1Defaults()
    {
        CacheLevelConfig level;
        level.sizeBytes = 16 * 1024;
        level.assoc = 4;
        return level;
    }

    /** Table II L2: 768 KB, 128 B lines, 8-way, 12 banks. */
    static constexpr CacheLevelConfig l2Defaults()
    {
        CacheLevelConfig level;
        level.sizeBytes = 768 * 1024;
        level.assoc = 8;
        level.banks = 12;
        level.minLatency = 120;
        return level;
    }
};

/**
 * Parse an "off" | "static:<algo>" | "latte" compression spec into
 * @p level (algo one of bdi|fpc|cpack|bpc|sc). False on syntax errors;
 * semantic restrictions (e.g. no SC below the L1) are reported by
 * GpuConfig::validationError() so they surface as structured outcomes.
 */
bool parseLevelCompressSpec(const std::string &spec,
                            CacheLevelConfig &level);

/** Render @p level's compression knobs back to the spec string. */
std::string levelCompressSpec(const CacheLevelConfig &level);

/** Parse an "off" | "<algo>" link-compression spec. False on error. */
bool parseLinkCompressSpec(const std::string &spec, CompressorId &algo);

/** Render a link-compression setting back to the spec string. */
std::string linkCompressSpec(CompressorId algo);

/** Whole-GPU configuration (Table II defaults). */
struct GpuConfig
{
    // --- SM organisation ---
    std::uint32_t numSms = 15;
    std::uint32_t maxWarpsPerSm = 48;
    std::uint32_t maxBlocksPerSm = 8;
    std::uint32_t schedulersPerSm = 2;
    std::uint32_t warpSize = 32;
    std::uint32_t registersPerSm = 32768;
    std::uint32_t sharedMemBytes = 48 * 1024;

    // --- Cache hierarchy ---
    CacheLevelConfig l1 = CacheLevelConfig::l1Defaults();
    CacheLevelConfig l2 = CacheLevelConfig::l2Defaults();

    // --- L1 instruction cache (modelled as always-hit; kernels are tiny) --
    std::uint32_t l1iSizeBytes = 2 * 1024;

    // --- DRAM / NoC ---
    /** Minimum L1-miss-to-DRAM-data latency. */
    Cycles dramMinLatency = 230;
    /** Peak DRAM bandwidth in bytes per SM core cycle (aggregate). */
    double dramBytesPerCycle = 128.0;
    /** Peak NoC bandwidth in bytes/cycle (aggregate, each direction). */
    double nocBytesPerCycle = 256.0;
    /** Link compression on the L2↔DRAM channel (None = off). */
    CompressorId linkCompress = CompressorId::None;

    // --- Scheduling ---
    enum class SchedPolicy { GTO, LRR };
    SchedPolicy schedPolicy = SchedPolicy::GTO;

    // --- L1 replacement ---
    enum class ReplPolicy { LRU, FIFO, SRRIP };
    ReplPolicy l1Repl = ReplPolicy::LRU;

    // --- Decompression engine ---
    /** Outstanding-line capacity of the per-SM decompression queue. */
    std::uint32_t decompQueueEntries = 16;

    CompressorTimings timings;
    LatteParams latte;

    std::uint32_t l1NumSets() const { return l1.numSets(); }
    std::uint32_t l2NumSets() const { return l2.numSets(); }

    /**
     * First structural inconsistency in the configuration, or nullopt
     * if the configuration is sound. Checked: nonzero organisation
     * parameters, per-level cache geometry (CacheLevelConfig), the
     * LATTE controller's dedicated sample sets fitting in the sampled
     * levels, and the level/link compression settings.
     */
    std::optional<std::string> validationError() const;

    /** latte_fatal() with the validation error, if any. */
    void validate() const;
};

} // namespace latte

#endif // LATTE_COMMON_CONFIG_HH
