/**
 * @file
 * Simulated GPU configuration. Defaults reproduce Table II of the
 * LATTE-CC paper (a GTX480/Fermi-class device as configured in
 * GPGPU-Sim 3.2.2) plus the compression latencies/energies of Section IV-C.
 */

#ifndef LATTE_COMMON_CONFIG_HH
#define LATTE_COMMON_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "types.hh"

namespace latte
{

/** Per-compressor pipeline latencies and per-event energies (Sec IV-C). */
struct CompressorTimings
{
    Cycles bdiCompress = 2;
    Cycles bdiDecompress = 2;
    Cycles fpcDecompress = 5;
    Cycles cpackDecompress = 8;
    Cycles bpcCompress = 6;
    Cycles bpcDecompress = 11;
    Cycles scCompress = 6;
    Cycles scDecompress = 14;

    double bdiCompressNj = 0.192;
    double bdiDecompressNj = 0.056;
    double scCompressNj = 0.42;
    double scDecompressNj = 0.336;
    // BPC energies are not published in the paper; scaled between BDI and
    // SC proportionally to decompression latency.
    double bpcCompressNj = 0.35;
    double bpcDecompressNj = 0.26;
};

/** LATTE-CC controller parameters (Section IV-C3). */
struct LatteParams
{
    /** L1 accesses per experimental phase. */
    std::uint32_t epAccesses = 256;
    /** EPs per period (1 learning + (periodEps-1) adaptive). */
    std::uint32_t periodEps = 10;
    /** Learning EPs per period. */
    std::uint32_t learningEps = 1;
    /** Dedicated sample sets per compression mode. */
    std::uint32_t dedicatedSetsPerMode = 4;
    /** Value-frequency table entries for SC code construction. */
    std::uint32_t vftEntries = 1024;
    /** VFT counter width in bits (counters saturate). */
    std::uint32_t vftCounterBits = 12;
};

/** Whole-GPU configuration (Table II defaults). */
struct GpuConfig
{
    // --- SM organisation ---
    std::uint32_t numSms = 15;
    std::uint32_t maxWarpsPerSm = 48;
    std::uint32_t maxBlocksPerSm = 8;
    std::uint32_t schedulersPerSm = 2;
    std::uint32_t warpSize = 32;
    std::uint32_t registersPerSm = 32768;
    std::uint32_t sharedMemBytes = 48 * 1024;

    // --- L1 data cache ---
    std::uint32_t l1SizeBytes = 16 * 1024;
    std::uint32_t l1LineBytes = 128;
    std::uint32_t l1Assoc = 4;
    Cycles l1HitLatency = 1;
    /** Tag-array expansion factor for the compressed cache. */
    std::uint32_t l1TagFactor = 4;
    /** Compressed-data allocation granule. */
    std::uint32_t l1SubBlockBytes = 32;
    std::uint32_t l1MshrEntries = 32;

    // --- L1 instruction cache (modelled as always-hit; kernels are tiny) --
    std::uint32_t l1iSizeBytes = 2 * 1024;

    // --- L2 / DRAM ---
    std::uint32_t l2SizeBytes = 768 * 1024;
    std::uint32_t l2LineBytes = 128;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2Banks = 12;
    /** Minimum L1-miss-to-L2-data latency (includes interconnect). */
    Cycles l2MinLatency = 120;
    /** Minimum L1-miss-to-DRAM-data latency. */
    Cycles dramMinLatency = 230;
    /** Peak DRAM bandwidth in bytes per SM core cycle (aggregate). */
    double dramBytesPerCycle = 128.0;
    /** Peak NoC bandwidth in bytes/cycle (aggregate, each direction). */
    double nocBytesPerCycle = 256.0;

    // --- Scheduling ---
    enum class SchedPolicy { GTO, LRR };
    SchedPolicy schedPolicy = SchedPolicy::GTO;

    // --- L1 replacement ---
    enum class ReplPolicy { LRU, FIFO, SRRIP };
    ReplPolicy l1Repl = ReplPolicy::LRU;

    // --- Decompression engine ---
    /** Outstanding-line capacity of the per-SM decompression queue. */
    std::uint32_t decompQueueEntries = 16;

    CompressorTimings timings;
    LatteParams latte;

    std::uint32_t l1NumSets() const
    {
        return l1SizeBytes / (l1LineBytes * l1Assoc);
    }
    std::uint32_t l2NumSets() const
    {
        return l2SizeBytes / (l2LineBytes * l2Assoc);
    }

    /**
     * First structural inconsistency in the configuration, or nullopt
     * if the configuration is sound. Checked: nonzero organisation
     * parameters, line sizes dividing cache sizes, the sub-block
     * granule dividing the L1 line, and the LATTE controller's
     * dedicated sample sets fitting in the L1.
     */
    std::optional<std::string> validationError() const;

    /** latte_fatal() with the validation error, if any. */
    void validate() const;
};

} // namespace latte

#endif // LATTE_COMMON_CONFIG_HH
