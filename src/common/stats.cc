#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace latte
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    latte_assert(parent != nullptr, "stat {} needs a parent group", name_);
    parent->addStat(this);
}

void
StatBase::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << name_ << " "
       << std::setw(16) << value() << " # " << desc_ << "\n";
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     double bucket_width, unsigned n_buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(n_buckets, 0)
{
    latte_assert(bucket_width > 0 && n_buckets > 0);
}

void
Histogram::sample(double v)
{
    if (samples_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++samples_;

    const auto idx = static_cast<std::uint64_t>(std::max(v, 0.0) /
                                                bucketWidth_);
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
}

double
Histogram::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << " samples="
       << samples_ << " mean=" << mean() << " min=" << min_
       << " max=" << max_ << " # " << desc() << "\n";
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::addStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    children_.erase(std::remove(children_.begin(), children_.end(), child),
                    children_.end());
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const auto *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    const auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        const std::string tail = name.substr(dot + 1);
        for (const auto *child : children_) {
            if (child->groupName() == head)
                return child->findStat(tail);
        }
    }
    return nullptr;
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *child : children_)
        child->resetStats();
}

void
StatGroup::visit(StatVisitor &visitor, const std::string &prefix) const
{
    const std::string path =
        prefix.empty() ? name_ : prefix + "." + name_;
    visitor.beginGroup(*this, path);
    for (const auto *stat : stats_)
        visitor.visitStat(*stat, path);
    for (const auto *child : children_)
        child->visit(visitor, path);
    visitor.endGroup(*this, path);
}

namespace
{

/** visit() adapter behind StatGroup::dump(). */
class PrintVisitor : public StatVisitor
{
  public:
    explicit PrintVisitor(std::ostream &os) : os_(os) {}

    void beginGroup(const StatGroup &, const std::string &) override {}
    void endGroup(const StatGroup &, const std::string &) override {}

    void
    visitStat(const StatBase &stat, const std::string &path) override
    {
        os_ << path << ".";
        stat.print(os_);
    }

  private:
    std::ostream &os_;
};

/** visit() adapter behind StatGroup::collect(). */
class CollectVisitor : public StatVisitor
{
  public:
    explicit CollectVisitor(std::map<std::string, double> &out)
        : out_(out)
    {}

    void beginGroup(const StatGroup &, const std::string &) override {}
    void endGroup(const StatGroup &, const std::string &) override {}

    void
    visitStat(const StatBase &stat, const std::string &path) override
    {
        out_[path + "." + stat.name()] = stat.value();
    }

  private:
    std::map<std::string, double> &out_;
};

} // namespace

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    PrintVisitor visitor(os);
    visit(visitor, prefix);
}

void
StatGroup::collect(std::map<std::string, double> &out,
                   const std::string &prefix) const
{
    CollectVisitor visitor(out);
    visit(visitor, prefix);
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (const double v : values) {
        if (v <= 0.0) {
            latte_warn("geomean: skipping non-positive value {}", v);
            continue;
        }
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace latte
