/**
 * @file
 * Fundamental scalar types shared across the LATTE-CC simulator.
 */

#ifndef LATTE_COMMON_TYPES_HH
#define LATTE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace latte
{

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Simulation time expressed in SM core clock cycles. */
using Cycles = std::uint64_t;

/** Signed cycle delta, used when subtracting timestamps. */
using CycleDelta = std::int64_t;

/** Identifier of a streaming multiprocessor. */
using SmId = std::uint32_t;

/** Identifier of a warp within an SM. */
using WarpId = std::uint32_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycles kNoCycle = std::numeric_limits<Cycles>::max();

/** Sentinel for invalid addresses. */
constexpr Addr kBadAddr = std::numeric_limits<Addr>::max();

} // namespace latte

#endif // LATTE_COMMON_TYPES_HH
