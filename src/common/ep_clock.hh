/**
 * @file
 * Experimental-phase bookkeeping (Section III-B). Application execution
 * is divided into EPs of 256 L1 accesses; 10 EPs form a period whose
 * first EP is the learning phase and the rest the adaptive phase.
 */

#ifndef LATTE_COMMON_EP_CLOCK_HH
#define LATTE_COMMON_EP_CLOCK_HH

#include <cstdint>

#include "common/config.hh"
#include "common/logging.hh"

namespace latte
{

/** Tracks EP/period position from the stream of L1 accesses. */
class EpClock
{
  public:
    explicit EpClock(const LatteParams &params)
        : params_(params)
    {
        latte_assert(params_.epAccesses > 0 && params_.periodEps > 0);
        latte_assert(params_.learningEps < params_.periodEps);
    }

    /** Boundary events produced by one access. */
    struct Events
    {
        bool epBoundary = false;      //!< an EP just completed
        bool periodBoundary = false;  //!< ... and it closed the period
    };

    /** Account one L1 access. */
    Events
    onAccess()
    {
        Events events;
        if (++accessesInEp_ >= params_.epAccesses) {
            accessesInEp_ = 0;
            events.epBoundary = true;
            ++epIndex_;
            if (++epInPeriod_ >= params_.periodEps) {
                epInPeriod_ = 0;
                ++periodIndex_;
                events.periodBoundary = true;
            }
        }
        return events;
    }

    /** EP position within the current period (0-based). */
    std::uint32_t epInPeriod() const { return epInPeriod_; }

    /** EPs completed overall. */
    std::uint64_t epIndex() const { return epIndex_; }

    /** Periods completed overall. */
    std::uint64_t periodIndex() const { return periodIndex_; }

    /** True while the learning phase of the period is running. */
    bool
    inLearningPhase() const
    {
        return epInPeriod_ < params_.learningEps;
    }

    /**
     * True during the EP right after the learning phase, when hit
     * counters keep updating (Section III-B1).
     */
    bool
    inHitTailPhase() const
    {
        return epInPeriod_ >= params_.learningEps &&
               epInPeriod_ < 2 * params_.learningEps;
    }

    /** True during the final EP of the period (the SC VFT window). */
    bool
    inFinalEp() const
    {
        return epInPeriod_ == params_.periodEps - 1;
    }

    const LatteParams &params() const { return params_; }

  private:
    LatteParams params_;
    std::uint32_t accessesInEp_ = 0;
    std::uint32_t epInPeriod_ = 0;
    std::uint64_t epIndex_ = 0;
    std::uint64_t periodIndex_ = 0;
};

} // namespace latte

#endif // LATTE_COMMON_EP_CLOCK_HH
