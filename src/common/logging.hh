/**
 * @file
 * Error and status reporting in the style of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); it aborts.
 * fatal() is for user/configuration errors; it exits cleanly with an error
 * code. warn()/inform() report conditions without stopping the simulation.
 */

#ifndef LATTE_COMMON_LOGGING_HH
#define LATTE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace latte
{

namespace detail
{

inline void
strfmtAppend(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
strfmtAppend(std::ostringstream &os, const char *fmt, T &&value,
             Rest &&...rest)
{
    for (; *fmt; ++fmt) {
        if (fmt[0] == '{' && fmt[1] == '}') {
            os << value;
            strfmtAppend(os, fmt + 2, std::forward<Rest>(rest)...);
            return;
        }
        os << *fmt;
    }
}

} // namespace detail

/**
 * Minimal type-safe "{}" string formatter (std::format is unavailable on
 * the host toolchain). Extra arguments beyond the placeholders are ignored;
 * extra placeholders are emitted verbatim.
 */
template <typename... Args>
std::string
strfmt(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    detail::strfmtAppend(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

/** Abort with a message: an internal simulator invariant was violated. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the user supplied an impossible configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print a status message to stderr. */
void informImpl(const std::string &msg);

} // namespace latte

#define latte_panic(...) \
    ::latte::panicImpl(__FILE__, __LINE__, ::latte::strfmt(__VA_ARGS__))

#define latte_fatal(...) \
    ::latte::fatalImpl(__FILE__, __LINE__, ::latte::strfmt(__VA_ARGS__))

#define latte_warn(...) ::latte::warnImpl(::latte::strfmt(__VA_ARGS__))

#define latte_inform(...) ::latte::informImpl(::latte::strfmt(__VA_ARGS__))

/** Assertion that survives NDEBUG builds and reports through panic(). */
#define latte_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::latte::panicImpl(__FILE__, __LINE__,                       \
                "assertion failed: " #cond " " +                         \
                ::latte::strfmt("" __VA_ARGS__));                        \
        }                                                                \
    } while (0)

#endif // LATTE_COMMON_LOGGING_HH
