/**
 * @file
 * Error and status reporting in the style of gem5's logging.hh, backed
 * by a leveled, serialized, structured logger.
 *
 * panic() is for internal invariant violations (simulator bugs); it aborts.
 * fatal() is for user/configuration errors; it exits cleanly with an error
 * code. warn()/inform() report conditions without stopping the simulation;
 * latte_debug()/latte_tracelog() add verbose tiers that compile to a
 * level check when disabled.
 *
 * Every line goes through one process-wide writer under a mutex, so
 * output from --sim-threads workers, runner threads and service threads
 * never tears. Each record carries a monotonic timestamp, the emitting
 * thread's name and the thread's correlation context (see LogScope) —
 * in `--log-json` mode as one JSON object per line, otherwise as
 *
 *   [     1.234567] warn  run-w2 job-4/cell-9: message
 *
 * The minimum level defaults to info and is controlled by --log-level /
 * LATTE_LOG_LEVEL (error|warn|info|debug|trace).
 */

#ifndef LATTE_COMMON_LOGGING_HH
#define LATTE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace latte
{

namespace detail
{

inline void
strfmtAppend(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
strfmtAppend(std::ostringstream &os, const char *fmt, T &&value,
             Rest &&...rest)
{
    for (; *fmt; ++fmt) {
        if (fmt[0] == '{' && fmt[1] == '}') {
            os << value;
            strfmtAppend(os, fmt + 2, std::forward<Rest>(rest)...);
            return;
        }
        os << *fmt;
    }
}

} // namespace detail

/**
 * Minimal type-safe "{}" string formatter (std::format is unavailable on
 * the host toolchain). Extra arguments beyond the placeholders are ignored;
 * extra placeholders are emitted verbatim.
 */
template <typename... Args>
std::string
strfmt(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    detail::strfmtAppend(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

// --- Leveled structured logger ------------------------------------------

/** Severity tiers, most severe first. */
enum class LogLevel
{
    Error = 0,
    Warn,
    Info,
    Debug,
    Trace,
};

/** Stable lower-case name ("error", "warn", ...). */
const char *logLevelName(LogLevel level);

/** Parse a level name; false (and @p out untouched) if unknown. */
bool logLevelFromName(const std::string &name, LogLevel &out);

/**
 * The process-wide minimum level. Initialized lazily from
 * LATTE_LOG_LEVEL (default info); setLogLevel() overrides either way.
 */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Whether a record at @p level would be emitted. */
bool logEnabled(LogLevel level);

/** Emit records as JSON-lines instead of aligned text. */
void setLogJson(bool json);
bool logJson();

/**
 * Name the calling thread for every record it emits ("main", "sim-w3",
 * "sched"...). Unnamed threads log as "t<n>" in spawn-ish order.
 */
void setLogThreadName(std::string name);

/** The calling thread's name (assigning a default if unnamed). */
const std::string &logThreadName();

/**
 * The calling thread's correlation context ("job-4/cell-9"), empty when
 * none is in scope. Every record carries it, so one grep over the
 * daemon's log reconstructs a job's whole lifetime.
 */
const std::string &logContext();

/**
 * RAII correlation scope: pushes @p context for the calling thread and
 * restores the previous context on destruction, so scopes nest.
 */
class LogScope
{
  public:
    explicit LogScope(std::string context);
    ~LogScope();

    LogScope(const LogScope &) = delete;
    LogScope &operator=(const LogScope &) = delete;

  private:
    std::string saved_;
};

/**
 * Serialized structured write at @p level. Callers normally use the
 * latte_warn/latte_inform/latte_debug macros, which gate on
 * logEnabled() before formatting.
 */
void logWrite(LogLevel level, const std::string &msg);

/**
 * Serialized verbatim line (no level gate, no timestamp/thread fields in
 * text mode): the progress/ETA printer uses this so its aligned columns
 * survive but can no longer tear against structured records. In JSON
 * mode the line is wrapped as an info record to keep the stream parseable.
 */
void logRawLine(const std::string &line);

/**
 * Test hook: divert every emitted line (without the trailing newline)
 * to @p sink instead of stderr. nullptr restores stderr.
 */
void setLogSink(void (*sink)(const std::string &));

/** Seconds since the process-wide monotonic log epoch. */
double logNowSeconds();

/** Abort with a message: an internal simulator invariant was violated. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the user supplied an impossible configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Log a warning (level warn). */
void warnImpl(const std::string &msg);

/** Log a status message (level info). */
void informImpl(const std::string &msg);

} // namespace latte

#define latte_panic(...) \
    ::latte::panicImpl(__FILE__, __LINE__, ::latte::strfmt(__VA_ARGS__))

#define latte_fatal(...) \
    ::latte::fatalImpl(__FILE__, __LINE__, ::latte::strfmt(__VA_ARGS__))

#define latte_log(level, ...)                                            \
    do {                                                                 \
        if (::latte::logEnabled(level))                                  \
            ::latte::logWrite(level, ::latte::strfmt(__VA_ARGS__));      \
    } while (0)

#define latte_warn(...) latte_log(::latte::LogLevel::Warn, __VA_ARGS__)

#define latte_inform(...) latte_log(::latte::LogLevel::Info, __VA_ARGS__)

#define latte_debug(...) latte_log(::latte::LogLevel::Debug, __VA_ARGS__)

#define latte_tracelog(...) \
    latte_log(::latte::LogLevel::Trace, __VA_ARGS__)

/** Assertion that survives NDEBUG builds and reports through panic(). */
#define latte_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::latte::panicImpl(__FILE__, __LINE__,                       \
                "assertion failed: " #cond " " +                         \
                ::latte::strfmt("" __VA_ARGS__));                        \
        }                                                                \
    } while (0)

#endif // LATTE_COMMON_LOGGING_HH
