/**
 * @file
 * The compression-algorithm identifier, shared by every layer. Lives in
 * common/ (not compress/) because configuration types below the
 * compressor library — CacheLevelConfig's static-algorithm knob, the
 * link-compression channel setting — name algorithms without depending
 * on the encoder implementations.
 */

#ifndef LATTE_COMMON_COMPRESS_ID_HH
#define LATTE_COMMON_COMPRESS_ID_HH

#include <cstddef>
#include <cstdint>

namespace latte
{

/** Identifier of a compression algorithm / operating mode. */
enum class CompressorId : std::uint8_t
{
    None = 0,
    Bdi,
    Fpc,
    CpackZ,
    Bpc,
    Sc,
};

/** Number of CompressorId values (for per-mode arrays). */
constexpr std::size_t kNumCompressorIds = 6;

/** Human-readable algorithm name. */
const char *compressorName(CompressorId id);

} // namespace latte

#endif // LATTE_COMMON_COMPRESS_ID_HH
