#include "outcome.hh"

#include "logging.hh"

namespace latte
{

namespace
{

struct StatusEntry
{
    RunStatus status;
    const char *name;
};

constexpr StatusEntry kStatusTable[] = {
    {RunStatus::Ok, "ok"},
    {RunStatus::Failed, "failed"},
    {RunStatus::TimedOut, "timed_out"},
    {RunStatus::Cancelled, "cancelled"},
};

struct CodeEntry
{
    RunErrorCode code;
    const char *name;
};

constexpr CodeEntry kCodeTable[] = {
    {RunErrorCode::None, "none"},
    {RunErrorCode::InvalidRequest, "invalid_request"},
    {RunErrorCode::InvalidConfig, "invalid_config"},
    {RunErrorCode::WallClockTimeout, "wall_clock_timeout"},
    {RunErrorCode::CycleBudgetExceeded, "cycle_budget_exceeded"},
    {RunErrorCode::Cancelled, "cancelled"},
    {RunErrorCode::CompressorCorruption, "compressor_corruption"},
    {RunErrorCode::DecompQueueStall, "decomp_queue_stall"},
    {RunErrorCode::DramTimeout, "dram_timeout"},
    {RunErrorCode::AllocFailure, "alloc_failure"},
    {RunErrorCode::Internal, "internal"},
};

} // namespace

const char *
runStatusName(RunStatus status)
{
    for (const StatusEntry &entry : kStatusTable) {
        if (entry.status == status)
            return entry.name;
    }
    latte_panic("unknown RunStatus");
}

const RunStatus *
runStatusFromName(const std::string &name)
{
    for (const StatusEntry &entry : kStatusTable) {
        if (name == entry.name)
            return &entry.status;
    }
    return nullptr;
}

const char *
runErrorCodeName(RunErrorCode code)
{
    for (const CodeEntry &entry : kCodeTable) {
        if (entry.code == code)
            return entry.name;
    }
    latte_panic("unknown RunErrorCode");
}

const RunErrorCode *
runErrorCodeFromName(const std::string &name)
{
    for (const CodeEntry &entry : kCodeTable) {
        if (name == entry.name)
            return &entry.code;
    }
    return nullptr;
}

std::string
to_string(const RunError &error)
{
    std::string text = runErrorCodeName(error.code);
    if (!error.message.empty()) {
        text += ": ";
        text += error.message;
    }
    return text;
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CompressorCorruption:
        return "compressor_corruption";
      case FaultKind::DecompQueueStall:
        return "decomp_queue_stall";
      case FaultKind::DramTimeout:
        return "dram_timeout";
      case FaultKind::AllocFailure:
        return "alloc_failure";
    }
    latte_panic("unknown FaultKind");
}

RunErrorCode
faultErrorCode(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CompressorCorruption:
        return RunErrorCode::CompressorCorruption;
      case FaultKind::DecompQueueStall:
        return RunErrorCode::DecompQueueStall;
      case FaultKind::DramTimeout:
        return RunErrorCode::DramTimeout;
      case FaultKind::AllocFailure:
        return RunErrorCode::AllocFailure;
    }
    latte_panic("unknown FaultKind");
}

} // namespace latte
