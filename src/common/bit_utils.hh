/**
 * @file
 * Bit-manipulation helpers used by the compression algorithms and the
 * cache tag machinery.
 */

#ifndef LATTE_COMMON_BIT_UTILS_HH
#define LATTE_COMMON_BIT_UTILS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "logging.hh"

namespace latte
{

/** Return true if @p value is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Round @p value up to the next multiple of @p granule. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t granule)
{
    return (value + granule - 1) / granule * granule;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Load a little-endian unsigned integer of @p width bytes from @p src. */
inline std::uint64_t
loadLe(const std::uint8_t *src, unsigned width)
{
    latte_assert(width >= 1 && width <= 8);
    std::uint64_t value = 0;
    std::memcpy(&value, src, width);
    return value;
}

/** Store the low @p width bytes of @p value little-endian into @p dst. */
inline void
storeLe(std::uint8_t *dst, std::uint64_t value, unsigned width)
{
    latte_assert(width >= 1 && width <= 8);
    std::memcpy(dst, &value, width);
}

/** Sign-extend the low @p bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    if (bits == 0 || bits >= 64)
        return static_cast<std::int64_t>(value);
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    value &= mask;
    const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
    return static_cast<std::int64_t>((value ^ sign) - sign);
}

/** True if signed @p value fits in @p bytes bytes (two's complement). */
constexpr bool
fitsSigned(std::int64_t value, unsigned bytes)
{
    if (bytes >= 8)
        return true;
    const std::int64_t lo = -(std::int64_t{1} << (8 * bytes - 1));
    const std::int64_t hi = (std::int64_t{1} << (8 * bytes - 1)) - 1;
    return value >= lo && value <= hi;
}

/**
 * A fixed-capacity bit stream writer. The compression algorithms
 * serialise their encodings through this class so compressed sizes are
 * bit-exact. Bits are packed LSB-first within bytes, a word (64 bits) at
 * a time, into inline storage — no heap traffic on the compression hot
 * path.
 *
 * The capacity covers the worst mid-stream overshoot of any encoder:
 * every algorithm falls back to a raw line once its stream reaches
 * kLineBits (1024), and the largest single symbol any encoder emits
 * before noticing is SC's escape (64-bit code + 32 raw bits), so streams
 * never exceed 1023 + 96 < 1280 bits.
 */
template <std::uint64_t CapacityBits>
class BasicBitWriter
{
    static_assert(CapacityBits % 64 == 0);

  public:
    static constexpr std::uint64_t kCapacityBits = CapacityBits;

    /** Append the low @p bits bits of @p value (LSB first). */
    void
    write(std::uint64_t value, unsigned bits)
    {
        latte_assert(bits <= 64);
        latte_assert(bitSize_ + bits <= kCapacityBits,
                     "bit stream overflows inline capacity");
        if (bits == 0)
            return;
        if (bits < 64)
            value &= (std::uint64_t{1} << bits) - 1;
        const std::size_t word = bitSize_ / 64;
        const unsigned offset = bitSize_ % 64;
        words_[word] |= value << offset;
        if (offset + bits > 64)
            words_[word + 1] |= value >> (64 - offset);
        bitSize_ += bits;
    }

    /** Append a single bit. */
    void pushBit(bool bit) { write(bit ? 1 : 0, 1); }

    /** Number of bits written so far. */
    std::uint64_t bitSize() const { return bitSize_; }

    /** Byte image of the stream (last byte zero-padded). */
    std::span<const std::uint8_t>
    bytes() const
    {
        return {reinterpret_cast<const std::uint8_t *>(words_.data()),
                static_cast<std::size_t>(divCeil(bitSize_, 8))};
    }

  private:
    std::array<std::uint64_t, kCapacityBits / 64> words_{};
    std::uint64_t bitSize_ = 0;
};

/** The hot-path writer: sized for the worst single-line encoding. */
using BitWriter = BasicBitWriter<1280>;

/**
 * A bit sink with BitWriter's interface that only counts. The encoders
 * are written once against a generic sink; instantiated with BitCounter
 * they become the size-only probe() fast path — identical control flow,
 * no bit stream.
 */
class BitCounter
{
  public:
    void write(std::uint64_t, unsigned bits) { bitSize_ += bits; }
    void pushBit(bool) { ++bitSize_; }
    std::uint64_t bitSize() const { return bitSize_; }

  private:
    std::uint64_t bitSize_ = 0;
};

/** Bit stream reader matching BitWriter's layout (word-at-a-time). */
class BitReader
{
  public:
    explicit BitReader(std::span<const std::uint8_t> bytes,
                       std::uint64_t bit_size)
        : bytes_(bytes), bitSize_(bit_size)
    {
        latte_assert(divCeil(bit_size, 8) <= bytes.size(),
                     "bit stream shorter than its declared size");
    }

    /** Read @p bits bits (LSB first). */
    std::uint64_t
    read(unsigned bits)
    {
        latte_assert(bits <= 64);
        latte_assert(pos_ + bits <= bitSize_, "bit stream overrun");
        if (bits == 0)
            return 0;
        const std::size_t byte = pos_ / 8;
        const unsigned offset = pos_ % 8;
        const std::size_t avail = bytes_.size() - byte;
        std::uint64_t lo = 0, hi = 0;
        std::memcpy(&lo, bytes_.data() + byte,
                    avail < 8 ? avail : std::size_t{8});
        // A straddling read touches at most one more byte-octet; the
        // constructor's size check guarantees it exists.
        if (offset + bits > 64)
            std::memcpy(&hi, bytes_.data() + byte + 8,
                        avail - 8 < 8 ? avail - 8 : std::size_t{8});
        std::uint64_t value = lo >> offset;
        if (offset)
            value |= hi << (64 - offset);
        if (bits < 64)
            value &= (std::uint64_t{1} << bits) - 1;
        pos_ += bits;
        return value;
    }

    /** Read one bit. */
    bool
    readBit()
    {
        latte_assert(pos_ < bitSize_, "bit stream overrun");
        const bool bit =
            (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
        ++pos_;
        return bit;
    }

    /** Bits remaining in the stream. */
    std::uint64_t remaining() const { return bitSize_ - pos_; }

  private:
    std::span<const std::uint8_t> bytes_;
    std::uint64_t bitSize_;
    std::uint64_t pos_ = 0;
};

} // namespace latte

#endif // LATTE_COMMON_BIT_UTILS_HH
