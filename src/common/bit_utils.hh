/**
 * @file
 * Bit-manipulation helpers used by the compression algorithms and the
 * cache tag machinery.
 */

#ifndef LATTE_COMMON_BIT_UTILS_HH
#define LATTE_COMMON_BIT_UTILS_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "logging.hh"

namespace latte
{

/** Return true if @p value is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Round @p value up to the next multiple of @p granule. */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t granule)
{
    return (value + granule - 1) / granule * granule;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Load a little-endian unsigned integer of @p width bytes from @p src. */
inline std::uint64_t
loadLe(const std::uint8_t *src, unsigned width)
{
    latte_assert(width >= 1 && width <= 8);
    std::uint64_t value = 0;
    std::memcpy(&value, src, width);
    return value;
}

/** Store the low @p width bytes of @p value little-endian into @p dst. */
inline void
storeLe(std::uint8_t *dst, std::uint64_t value, unsigned width)
{
    latte_assert(width >= 1 && width <= 8);
    std::memcpy(dst, &value, width);
}

/** Sign-extend the low @p bits of @p value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    if (bits == 0 || bits >= 64)
        return static_cast<std::int64_t>(value);
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    value &= mask;
    const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
    return static_cast<std::int64_t>((value ^ sign) - sign);
}

/** True if signed @p value fits in @p bytes bytes (two's complement). */
constexpr bool
fitsSigned(std::int64_t value, unsigned bytes)
{
    if (bytes >= 8)
        return true;
    const std::int64_t lo = -(std::int64_t{1} << (8 * bytes - 1));
    const std::int64_t hi = (std::int64_t{1} << (8 * bytes - 1)) - 1;
    return value >= lo && value <= hi;
}

/**
 * A growable bit stream writer. The compression algorithms serialise
 * their encodings through this class so compressed sizes are bit-exact.
 */
class BitWriter
{
  public:
    /** Append the low @p bits bits of @p value (LSB first). */
    void
    write(std::uint64_t value, unsigned bits)
    {
        latte_assert(bits <= 64);
        for (unsigned i = 0; i < bits; ++i)
            pushBit((value >> i) & 1);
    }

    /** Append a single bit. */
    void
    pushBit(bool bit)
    {
        const unsigned offset = bitSize_ % 8;
        if (offset == 0)
            bytes_.push_back(0);
        if (bit)
            bytes_.back() |= static_cast<std::uint8_t>(1u << offset);
        ++bitSize_;
    }

    /** Number of bits written so far. */
    std::uint64_t bitSize() const { return bitSize_; }

    /** Byte image of the stream (last byte zero-padded). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bitSize_ = 0;
};

/** Bit stream reader matching BitWriter's layout. */
class BitReader
{
  public:
    explicit BitReader(std::span<const std::uint8_t> bytes,
                       std::uint64_t bit_size)
        : bytes_(bytes), bitSize_(bit_size)
    {}

    /** Read @p bits bits (LSB first). */
    std::uint64_t
    read(unsigned bits)
    {
        latte_assert(bits <= 64);
        std::uint64_t value = 0;
        for (unsigned i = 0; i < bits; ++i)
            value |= static_cast<std::uint64_t>(readBit()) << i;
        return value;
    }

    /** Read one bit. */
    bool
    readBit()
    {
        latte_assert(pos_ < bitSize_, "bit stream overrun");
        const bool bit =
            (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
        ++pos_;
        return bit;
    }

    /** Bits remaining in the stream. */
    std::uint64_t remaining() const { return bitSize_ - pos_; }

  private:
    std::span<const std::uint8_t> bytes_;
    std::uint64_t bitSize_;
    std::uint64_t pos_ = 0;
};

} // namespace latte

#endif // LATTE_COMMON_BIT_UTILS_HH
