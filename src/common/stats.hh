/**
 * @file
 * A small statistics framework modelled on gem5's stats package: named
 * scalar counters, averages, formulas and histograms that register with a
 * StatGroup and can be dumped as text or key=value pairs.
 */

#ifndef LATTE_COMMON_STATS_HH
#define LATTE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace latte
{

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Current scalar view of the stat (histograms report their count). */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

    /** Print "name value # desc" style lines. */
    virtual void print(std::ostream &os) const;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(std::uint64_t n) { count_ += n; return *this; }

    std::uint64_t count() const { return count_; }
    double value() const override { return static_cast<double>(count_); }
    void reset() override { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** Running average of submitted samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum_ += v;
        ++samples_;
    }

    std::uint64_t samples() const { return samples_; }
    double sum() const { return sum_; }

    double
    value() const override
    {
        return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
    }

    void reset() override { sum_ = 0.0; samples_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** Fixed-bucket histogram over [0, bucket_width * n_buckets). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc,
              double bucket_width, unsigned n_buckets);

    void sample(double v);

    std::uint64_t totalSamples() const { return samples_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    /** Samples at or above bucket_width * n_buckets. */
    std::uint64_t overflow() const { return overflow_; }
    double bucketWidth() const { return bucketWidth_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const;

    double value() const override
    {
        return static_cast<double>(samples_);
    }
    void reset() override;
    void print(std::ostream &os) const override;

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Structured walk over a StatGroup tree. All consumers of the stat
 * hierarchy (text dump, flat map, JSON serialisation) are visitors, so
 * the traversal logic lives in exactly one place
 * (StatGroup::visit()).
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    /** Entering @p group; @p path is its dotted path from the root. */
    virtual void beginGroup(const StatGroup &group,
                            const std::string &path) = 0;

    /** One stat of the group entered last; @p path is the group path. */
    virtual void visitStat(const StatBase &stat,
                           const std::string &path) = 0;

    /** Leaving @p group. */
    virtual void endGroup(const StatGroup &group,
                          const std::string &path) = 0;
};

/**
 * A named collection of statistics with optional child groups, mirroring
 * the gem5 Stats::Group hierarchy.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name_; }

    /** Register a stat; called by StatBase's constructor. */
    void addStat(StatBase *stat);

    /** Register/unregister a child group. */
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    /** Find a stat by (possibly dotted) name; nullptr if absent. */
    const StatBase *findStat(const std::string &name) const;

    /** Reset all stats in this group and its children. */
    void resetStats();

    /** Registered stats of this group (not descendants). */
    const std::vector<StatBase *> &statList() const { return stats_; }

    /** Registered child groups. */
    const std::vector<StatGroup *> &childList() const { return children_; }

    /**
     * Walk this group and its descendants depth-first, calling
     * @p visitor's hooks with dotted paths rooted at @p prefix.
     */
    void visit(StatVisitor &visitor,
               const std::string &prefix = "") const;

    /** Dump all stats, prefixed by the group path (visit() based). */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Flatten all stats into a name -> value map (visit() based). */
    void collect(std::map<std::string, double> &out,
                 const std::string &prefix = "") const;

  private:
    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

/**
 * Geometric mean of a vector of ratios. Non-positive entries have no
 * geometric mean; they are skipped with a warning (std::log would
 * silently produce -inf/NaN). Returns 0 if no positive entry remains.
 */
double geomean(const std::vector<double> &values);

} // namespace latte

#endif // LATTE_COMMON_STATS_HH
