/**
 * @file
 * The structured failure vocabulary of the run() boundary and the
 * cooperative control surface threaded through the simulator:
 *
 *  - RunStatus / RunErrorCode / RunError: the stable, serializable
 *    error model every supervising layer (sweep runner, journal, CI
 *    gates) acts on. No exception ever crosses the library boundary;
 *    failures travel as values.
 *  - CancelToken: a lock-free flag a watchdog (or a user) sets to make
 *    a running cell stop at its next safe point, carrying the reason
 *    (external cancel vs wall-clock timeout).
 *  - FaultPlan: the fault-injection schedule tests use to prove that a
 *    failing cell degrades to a recorded RunError instead of killing
 *    the surrounding sweep.
 *
 * Lives in common/ because the GPU model polls the control surface
 * from its cycle loop while the driver and runner own the policy.
 */

#ifndef LATTE_COMMON_OUTCOME_HH
#define LATTE_COMMON_OUTCOME_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "types.hh"

namespace latte
{

/** Terminal state of one run() invocation. */
enum class RunStatus
{
    Ok,       //!< result produced (attempts > 1 means Retried -> Ok)
    Failed,   //!< a fault or invalid request; see RunError::code
    TimedOut, //!< watchdog tripped (wall clock or cycle budget)
    Cancelled //!< externally cancelled via CancelToken
};

/**
 * Stable error-code enum, serialized by name into result JSON (schema
 * 3) and the sweep journal. Append new codes at the end; never reorder
 * or rename — journals and cached results outlive binaries.
 */
enum class RunErrorCode
{
    None = 0,
    InvalidRequest,       //!< request missing a workload
    InvalidConfig,        //!< GpuConfig::validationError rejected it
    WallClockTimeout,     //!< per-cell watchdog wall-clock budget
    CycleBudgetExceeded,  //!< per-cell simulated-cycle budget
    Cancelled,            //!< external cooperative cancellation
    CompressorCorruption, //!< compression round-trip violation
    DecompQueueStall,     //!< decompression queue stopped draining
    DramTimeout,          //!< DRAM stopped servicing its backlog
    AllocFailure,         //!< line/MSHR allocation failure
    Internal,             //!< unclassified internal failure
};

/** Lower-snake-case stable name ("wall_clock_timeout", ...). */
const char *runStatusName(RunStatus status);
const char *runErrorCodeName(RunErrorCode code);

/** Reverse lookups; nullptr if @p name is unknown. */
const RunStatus *runStatusFromName(const std::string &name);
const RunErrorCode *runErrorCodeFromName(const std::string &name);

struct RunError;

/**
 * The one human-readable rendering of a RunError, shared by every
 * surface that prints one (sweep fatal diagnostics, driver logs,
 * example CLIs, daemon error events): "<code>: <message>", or just
 * "<code>" when the message is empty. The code prefix is the stable
 * runErrorCodeName() token, so the text round-trips back through
 * runErrorCodeFromName() (pinned by test_resilience).
 */
std::string to_string(const RunError &error);

/**
 * One failure, with enough cell context to be actionable after the
 * sweep moved on: which cell, which code, and where in simulated time
 * it tripped.
 */
struct RunError
{
    RunErrorCode code = RunErrorCode::None;
    std::string message;
    /** Cell context (workload abbr, policy label, request seed). */
    std::string workload;
    std::string policyLabel;
    std::uint64_t seed = 0;
    /** Simulated cycle at the failure point (0 when not applicable). */
    Cycles cycle = 0;

    bool ok() const { return code == RunErrorCode::None; }
};

/**
 * Cooperative cancellation: the watchdog (or any supervisor) calls
 * cancel(); the GPU cycle loop polls cancelled() and stops at the next
 * iteration. The reason is published before the flag so a reader that
 * observes the flag always sees the right reason.
 */
class CancelToken
{
  public:
    void
    cancel(RunErrorCode reason = RunErrorCode::Cancelled)
    {
        reason_.store(reason, std::memory_order_release);
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    RunErrorCode
    reason() const
    {
        return reason_.load(std::memory_order_acquire);
    }

    /** Re-arm for the next attempt (single-threaded moment only). */
    void
    reset()
    {
        cancelled_.store(false, std::memory_order_release);
        reason_.store(RunErrorCode::None, std::memory_order_release);
    }

  private:
    std::atomic<RunErrorCode> reason_{RunErrorCode::None};
    std::atomic<bool> cancelled_{false};
};

/** The injectable fault classes of the resilience test matrix. */
enum class FaultKind
{
    CompressorCorruption, //!< round-trip verify mismatch
    DecompQueueStall,     //!< decompression queue wedged
    DramTimeout,          //!< DRAM channel unresponsive
    AllocFailure,         //!< allocation failure in the cache
};

const char *faultKindName(FaultKind kind);

/** The RunErrorCode a fired fault of @p kind reports. */
RunErrorCode faultErrorCode(FaultKind kind);

/** One scheduled fault. */
struct FaultPoint
{
    FaultKind kind = FaultKind::CompressorCorruption;
    /** Simulated cycle at (or after) which the fault fires. */
    Cycles atCycle = 0;
    /**
     * Fire only on the first N attempts of the cell (0 = every
     * attempt). firstAttempts = 1 models a transient failure that a
     * retry clears — the Retried->Ok path.
     */
    std::uint32_t firstAttempts = 0;
};

/** The fault-injection schedule of one cell. */
struct FaultPlan
{
    std::vector<FaultPoint> faults;

    bool empty() const { return faults.empty(); }

    /** The subset still armed on @p attempt (1-based). */
    FaultPlan
    armedFor(std::uint32_t attempt) const
    {
        FaultPlan armed;
        for (const FaultPoint &fault : faults) {
            if (fault.firstAttempts == 0 ||
                attempt <= fault.firstAttempts)
                armed.faults.push_back(fault);
        }
        return armed;
    }
};

/**
 * The per-run control surface the driver threads into the GPU model.
 * Everything here is cooperative: the cycle loop polls it and winds
 * down cleanly, so no state is corrupted and no exception is thrown.
 * None of it participates in result-cache keys; a run with a non-empty
 * fault plan additionally bypasses the cache entirely.
 */
struct RunControl
{
    /** Not owned; nullptr = not cancellable. */
    CancelToken *cancel = nullptr;
    /** Simulated-cycle budget for the whole run (0 = unlimited). */
    Cycles cycleBudget = 0;
    /** Fault-injection schedule (normally empty outside tests). */
    FaultPlan faults;
};

} // namespace latte

#endif // LATTE_COMMON_OUTCOME_HH
