/**
 * @file
 * Interface between the compressed L1 cache and the compression
 * management policy (LATTE-CC or one of the baselines). The cache asks
 * the provider which mode to use for each insertion and reports every
 * access/insertion so set-sampling policies can maintain their counters.
 * Accesses are described by the trace layer's AccessEvent struct — the
 * same record the tracer hooks consume — so the cache builds the
 * description of an access exactly once.
 */

#ifndef LATTE_CACHE_MODE_PROVIDER_HH
#define LATTE_CACHE_MODE_PROVIDER_HH

#include <cstdint>
#include <span>

#include "common/types.hh"
#include "compress/compressor.hh"
#include "trace/events.hh"

namespace latte
{

class Tracer;

/** Decides the compression mode of inserted lines. */
class CompressionModeProvider
{
  public:
    virtual ~CompressionModeProvider() = default;

    /**
     * Point the provider's event recording at @p tracer. The parallel
     * simulation mode swaps in a per-SM staging tracer for the duration
     * of a kernel so policy events (EP boundaries, mode changes, SC
     * rebuilds) stay in canonical order; providers that do not trace
     * ignore it.
     */
    virtual void
    redirectTracer(Tracer *tracer)
    {
        (void)tracer;
    }

    /** Mode for a line about to be inserted into @p set_index. */
    virtual CompressorId modeForInsertion(std::uint32_t set_index) = 0;

    /** Called on every L1 access. */
    virtual void
    observeAccess(const AccessEvent &event)
    {
        (void)event;
    }

    /** Called when a fill inserts a line (after modeForInsertion). */
    virtual void
    observeInsertion(Cycles now, std::uint32_t set_index, CompressorId mode,
                     std::span<const std::uint8_t> data)
    {
        (void)now; (void)set_index; (void)mode; (void)data;
    }
};

/** Trivial provider: never compress (the uncompressed baseline). */
class UncompressedProvider : public CompressionModeProvider
{
  public:
    CompressorId
    modeForInsertion(std::uint32_t) override
    {
        return CompressorId::None;
    }
};

} // namespace latte

#endif // LATTE_CACHE_MODE_PROVIDER_HH
