/**
 * @file
 * A per-SM memo of probe() results. GPU workloads re-fetch the same
 * line contents over and over (working sets cycle through the small L1,
 * and many lines share a handful of value patterns), so most insertions
 * re-encode bytes the SM has already seen. The memo is a direct-mapped
 * table keyed by (line content, mode, SC code generation); a hit skips
 * the encoder entirely. Entries store the full 128 B line and compare it
 * exactly, so a hash collision can never change a simulation result —
 * the memo is purely an execution shortcut.
 */

#ifndef LATTE_CACHE_COMPRESS_MEMO_HH
#define LATTE_CACHE_COMPRESS_MEMO_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/stats.hh"
#include "compress/compressor.hh"

namespace latte
{

/** Direct-mapped probe-result memo with StatGroup-visible hit rates. */
class CompressMemo : public StatGroup
{
  public:
    static constexpr std::size_t kEntries = 2048;

    explicit CompressMemo(StatGroup *parent)
        : StatGroup("compress_memo", parent),
          hits(this, "hits", "probe results served from the memo"),
          misses(this, "misses", "probe results computed and cached"),
          entries_(kEntries)
    {}

    /**
     * The LineMeta @p engine.probe(line) would return, memoised.
     * @p generation is the engine's current state generation (SC's code
     * book generation; 0 for the stateless algorithms) — it both keys
     * the lookup and invalidates entries from retired generations.
     */
    LineMeta
    probe(Compressor &engine, std::span<const std::uint8_t> line,
          std::uint32_t generation)
    {
        latte_assert(line.size() == kLineBytes);
        const CompressorId mode = engine.id();
        Entry &entry = entries_[indexOf(line, mode, generation)];
        if (entry.valid && entry.mode == mode &&
            entry.generation == generation &&
            std::memcmp(entry.bytes.data(), line.data(), kLineBytes) == 0) {
            ++hits;
            return entry.meta;
        }
        ++misses;
        entry.valid = true;
        entry.mode = mode;
        entry.generation = generation;
        std::memcpy(entry.bytes.data(), line.data(), kLineBytes);
        entry.meta = engine.probe(line);
        return entry.meta;
    }

    /**
     * Batched probe() over out.size() lines (concatenated in @p lines,
     * engine and generation given per line), exactly equivalent to
     * calling probe() sequentially: the same hits/misses counters, the
     * same returned metas and the same table end state, including the
     * collision corner cases (a hit on an entry a miss earlier in the
     * batch just claimed, and two misses fighting over one index). The
     * win is that all missed probes of one engine reach it as a single
     * probeLines() call, so the backend's SIMD kernels amortise.
     */
    void
    probeLines(std::span<Compressor *const> engines,
               std::span<const std::uint8_t> lines,
               std::span<const std::uint32_t> generations,
               std::span<LineMeta> out)
    {
        const std::size_t n = out.size();
        latte_assert(lines.size() == n * kLineBytes);
        latte_assert(engines.size() == n && generations.size() == n);

        missList_.clear();
        aliasList_.clear();

        // Pass 1: replay the sequential hit/miss walk on the key
        // fields only, deferring every probe. Misses claim their entry
        // (key fields, not meta) immediately so later batch lines see
        // the table exactly as the sequential walk would.
        for (std::size_t i = 0; i < n; ++i) {
            const auto line = lines.subspan(i * kLineBytes, kLineBytes);
            const CompressorId mode = engines[i]->id();
            const std::uint32_t generation = generations[i];
            const auto idx = static_cast<std::uint32_t>(
                indexOf(line, mode, generation));
            Entry &entry = entries_[idx];
            if (entry.valid && entry.mode == mode &&
                entry.generation == generation &&
                std::memcmp(entry.bytes.data(), line.data(),
                            kLineBytes) == 0) {
                ++hits;
                // A hit on an entry claimed by an earlier miss of this
                // batch: its meta is still pending, so alias to the
                // miss's slot instead of reading the stale entry.meta.
                bool aliased = false;
                for (std::size_t m = missList_.size(); m-- > 0;) {
                    if (missList_[m].tableIdx == idx) {
                        aliasList_.push_back(
                            {static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(m)});
                        aliased = true;
                        break;
                    }
                }
                if (!aliased)
                    out[i] = entry.meta;
                continue;
            }
            ++misses;
            entry.valid = true;
            entry.mode = mode;
            entry.generation = generation;
            std::memcpy(entry.bytes.data(), line.data(), kLineBytes);
            missList_.push_back({static_cast<std::uint32_t>(i), idx});
        }

        // Pass 2: batch the missed probes per engine. Probes have no
        // side effects on the engine, so regrouping them is free; only
        // the memo walk above had to stay in fill order.
        missMeta_.resize(missList_.size());
        missDone_.assign(missList_.size(), false);
        for (std::size_t m = 0; m < missList_.size(); ++m) {
            if (missDone_[m])
                continue;
            Compressor *engine = engines[missList_[m].lineIdx];
            scratchLines_.clear();
            scratchSlots_.clear();
            for (std::size_t j = m; j < missList_.size(); ++j) {
                if (missDone_[j] ||
                    engines[missList_[j].lineIdx] != engine) {
                    continue;
                }
                const auto line = lines.subspan(
                    missList_[j].lineIdx * kLineBytes, kLineBytes);
                scratchLines_.insert(scratchLines_.end(), line.begin(),
                                     line.end());
                scratchSlots_.push_back(j);
                missDone_[j] = true;
            }
            scratchMeta_.resize(scratchSlots_.size());
            engine->probeLines(scratchLines_, scratchMeta_);
            for (std::size_t k = 0; k < scratchSlots_.size(); ++k)
                missMeta_[scratchSlots_[k]] = scratchMeta_[k];
        }

        // Pass 3: resolve misses in sequential order. Two misses at
        // one index always carry different keys (the second would have
        // hit otherwise), so an entry keeps a meta only if its key
        // fields still belong to this miss — i.e. no later miss
        // reclaimed the slot. That reproduces the sequential end state.
        for (std::size_t m = 0; m < missList_.size(); ++m) {
            const PendingMiss &miss = missList_[m];
            out[miss.lineIdx] = missMeta_[m];
            Entry &entry = entries_[miss.tableIdx];
            const auto line =
                lines.subspan(miss.lineIdx * kLineBytes, kLineBytes);
            if (entry.mode == engines[miss.lineIdx]->id() &&
                entry.generation == generations[miss.lineIdx] &&
                std::memcmp(entry.bytes.data(), line.data(),
                            kLineBytes) == 0) {
                entry.meta = missMeta_[m];
            }
        }

        for (const Alias &alias : aliasList_)
            out[alias.outIdx] = missMeta_[alias.missPos];
    }

    Counter hits;
    Counter misses;

  private:
    struct PendingMiss
    {
        std::uint32_t lineIdx;  //!< position in the batch
        std::uint32_t tableIdx; //!< claimed entries_ slot
    };

    struct Alias
    {
        std::uint32_t outIdx;   //!< batch line waiting on a miss
        std::uint32_t missPos;  //!< position in missList_
    };

    struct Entry
    {
        bool valid = false;
        CompressorId mode = CompressorId::None;
        std::uint32_t generation = 0;
        LineMeta meta;
        std::array<std::uint8_t, kLineBytes> bytes;
    };

    static std::size_t
    indexOf(std::span<const std::uint8_t> line, CompressorId mode,
            std::uint32_t generation)
    {
        // splitmix64-style mix over the line's 16 words plus the key.
        std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                          (static_cast<std::uint64_t>(mode) << 32) ^
                          generation;
        for (unsigned off = 0; off < kLineBytes; off += 8) {
            std::uint64_t word;
            std::memcpy(&word, line.data() + off, 8);
            h ^= word;
            h *= 0xbf58476d1ce4e5b9ull;
            h ^= h >> 27;
        }
        h ^= h >> 31;
        return static_cast<std::size_t>(h % kEntries);
    }

    std::vector<Entry> entries_;

    // probeLines() scratch, kept as members so a per-fill-batch call
    // does not allocate once the vectors have grown to steady state.
    std::vector<PendingMiss> missList_;
    std::vector<Alias> aliasList_;
    std::vector<LineMeta> missMeta_;
    std::vector<bool> missDone_;
    std::vector<std::uint8_t> scratchLines_;
    std::vector<std::size_t> scratchSlots_;
    std::vector<LineMeta> scratchMeta_;
};

} // namespace latte

#endif // LATTE_CACHE_COMPRESS_MEMO_HH
