/**
 * @file
 * A per-SM memo of probe() results. GPU workloads re-fetch the same
 * line contents over and over (working sets cycle through the small L1,
 * and many lines share a handful of value patterns), so most insertions
 * re-encode bytes the SM has already seen. The memo is a direct-mapped
 * table keyed by (line content, mode, SC code generation); a hit skips
 * the encoder entirely. Entries store the full 128 B line and compare it
 * exactly, so a hash collision can never change a simulation result —
 * the memo is purely an execution shortcut.
 */

#ifndef LATTE_CACHE_COMPRESS_MEMO_HH
#define LATTE_CACHE_COMPRESS_MEMO_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/stats.hh"
#include "compress/compressor.hh"

namespace latte
{

/** Direct-mapped probe-result memo with StatGroup-visible hit rates. */
class CompressMemo : public StatGroup
{
  public:
    static constexpr std::size_t kEntries = 2048;

    explicit CompressMemo(StatGroup *parent)
        : StatGroup("compress_memo", parent),
          hits(this, "hits", "probe results served from the memo"),
          misses(this, "misses", "probe results computed and cached"),
          entries_(kEntries)
    {}

    /**
     * The LineMeta @p engine.probe(line) would return, memoised.
     * @p generation is the engine's current state generation (SC's code
     * book generation; 0 for the stateless algorithms) — it both keys
     * the lookup and invalidates entries from retired generations.
     */
    LineMeta
    probe(Compressor &engine, std::span<const std::uint8_t> line,
          std::uint32_t generation)
    {
        latte_assert(line.size() == kLineBytes);
        const CompressorId mode = engine.id();
        Entry &entry = entries_[indexOf(line, mode, generation)];
        if (entry.valid && entry.mode == mode &&
            entry.generation == generation &&
            std::memcmp(entry.bytes.data(), line.data(), kLineBytes) == 0) {
            ++hits;
            return entry.meta;
        }
        ++misses;
        entry.valid = true;
        entry.mode = mode;
        entry.generation = generation;
        std::memcpy(entry.bytes.data(), line.data(), kLineBytes);
        entry.meta = engine.probe(line);
        return entry.meta;
    }

    Counter hits;
    Counter misses;

  private:
    struct Entry
    {
        bool valid = false;
        CompressorId mode = CompressorId::None;
        std::uint32_t generation = 0;
        LineMeta meta;
        std::array<std::uint8_t, kLineBytes> bytes;
    };

    static std::size_t
    indexOf(std::span<const std::uint8_t> line, CompressorId mode,
            std::uint32_t generation)
    {
        // splitmix64-style mix over the line's 16 words plus the key.
        std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                          (static_cast<std::uint64_t>(mode) << 32) ^
                          generation;
        for (unsigned off = 0; off < kLineBytes; off += 8) {
            std::uint64_t word;
            std::memcpy(&word, line.data() + off, 8);
            h ^= word;
            h *= 0xbf58476d1ce4e5b9ull;
            h ^= h >> 27;
        }
        h ^= h >> 31;
        return static_cast<std::size_t>(h % kEntries);
    }

    std::vector<Entry> entries_;
};

} // namespace latte

#endif // LATTE_CACHE_COMPRESS_MEMO_HH
