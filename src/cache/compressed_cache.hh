/**
 * @file
 * The compressed L1 data cache (Section IV-A). The organisation follows
 * the paper: the tag array is provisioned with 4x the baseline tags and
 * compressed data is stored in 32 B sub-blocks, so a set that would hold
 * four 128 B lines can hold up to sixteen sufficiently-compressed lines.
 * Lines are (de)compressed with real engines on real bytes; hits to
 * compressed lines pay the decompression-queue latency of Eq. (3).
 *
 * The cache is write-avoid (Section IV-C3): writes are forwarded to the
 * L2 and invalidate any cached copy, so recompression never forces
 * evictions on the store path.
 */

#ifndef LATTE_CACHE_COMPRESSED_CACHE_HH
#define LATTE_CACHE_COMPRESSED_CACHE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "compress_memo.hh"
#include "compress/compression_domain.hh"
#include "compress/engines.hh"
#include "l1_stage.hh"
#include "mem/l2cache.hh"
#include "mem/memory_image.hh"
#include "mem/mshr.hh"
#include "mode_provider.hh"
#include "trace/tracer.hh"

namespace latte
{

namespace metrics
{
class LatencyHistogram;
class MetricRegistry;
} // namespace metrics

/** Experiment knobs used by the motivation studies (Figures 3 and 4). */
struct CacheTuning
{
    /**
     * When false, compressed lines still occupy a full line's worth of
     * sub-blocks: isolates the decompression-latency penalty (Figure 4).
     */
    bool capacityBenefit = true;
    /**
     * When false, hits to compressed lines cost the plain hit latency:
     * isolates the capacity benefit (Figure 3).
     */
    bool chargeDecompression = true;
    /**
     * Store compressed payloads and check the round trip against the
     * functional memory image on every hit (used by integration tests).
     */
    bool verifyRoundTrip = false;
    /**
     * Serve repeat probe() requests from the per-SM CompressMemo instead
     * of re-running the encoder. Execution shortcut only — results are
     * bit-identical either way (pinned by the runner golden test).
     */
    bool compressionMemo = true;
};

/** Outcome of an L1 access as seen by the load/store unit. */
struct L1AccessResult
{
    bool hit = false;
    /** Cycle the data (or write ack) is available to the warp. */
    Cycles readyCycle = 0;
    /** Secondary miss merged into an outstanding MSHR. */
    bool merged = false;
    /** Resource stall (MSHR full): the access must be retried. */
    bool rejected = false;
    /**
     * Parallel phase only: a primary miss whose shared-L2 tail was
     * parked in the staging buffer. readyCycle is not yet known; the
     * epoch barrier obtains it from finishMiss().
     */
    bool deferred = false;
};

/** Per-SM compressed L1 data cache. */
class CompressedCache : public StatGroup
{
  public:
    CompressedCache(const GpuConfig &cfg, SmId sm_id,
                    CompressionEngines *engines, L2Cache *l2,
                    MemoryImage *mem, StatGroup *parent,
                    CacheTuning tuning = {});

    /** Install the compression management policy (not owned). */
    void setModeProvider(CompressionModeProvider *provider);

    /** The installed policy (never null; defaults to uncompressed). */
    CompressionModeProvider *modeProvider() { return provider_; }

    /** Attach the event tracer (not owned; nullptr disables tracing). */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Enter/leave the parallel staging mode (nullptr leaves). While a
     * stage is attached, access() parks its single shared-memory-system
     * effect there instead of performing it: a write-through stages its
     * L2 notification, a primary read miss returns `deferred` with its
     * whole tail postponed, and hit-path samples into run-shared
     * histograms are parked. The epoch barrier replays everything in
     * canonical SM order via commitStagedWrite()/finishMiss().
     */
    void setStage(L1Stage *stage) { stage_ = stage; }

    /**
     * Barrier-side tail of a primary read miss detected during the
     * parallel phase: exactly the sequential miss path from the L2
     * access onwards. @return the warp's ready cycle.
     */
    Cycles finishMiss(Cycles now, Addr line_addr);

    /** Barrier-side replay of a staged write-through L2 notification. */
    void
    commitStagedWrite(Cycles now, Addr line_addr)
    {
        l2_->access(now, line_addr, true);
    }

    /**
     * Flush one staged histogram sample at the barrier (out of line:
     * LatencyHistogram is only forward-declared here).
     */
    static void recordHist(metrics::LatencyHistogram *hist, double value);

    /**
     * Attach the metric registry (not owned; nullptr detaches). The
     * cache resolves its latency histograms once here, so the access
     * path pays one null check per sample, and all SMs of a run share
     * the same histograms.
     */
    void setMetrics(metrics::MetricRegistry *metrics);

    /** Perform a (coalesced) line access. */
    L1AccessResult access(Cycles now, Addr addr, bool is_write);

    /** Insert lines whose fills completed by @p now. */
    void processFills(Cycles now);

    // --- Geometry (delegated to the compression domain) ---
    std::uint32_t numSets() const { return domain_.numSets(); }
    std::uint32_t
    setIndexOf(Addr addr) const
    {
        return domain_.setIndexOf(addr);
    }
    std::uint32_t tagsPerSet() const { return domain_.tagsPerSet(); }
    std::uint32_t
    subBlocksPerSet() const
    {
        return domain_.subBlocksPerSet();
    }

    // --- Introspection for the policies and experiments ---
    /** Sum of the *uncompressed* size of all valid lines (Figure 16). */
    std::uint64_t effectiveCapacityBytes() const;
    /** Sub-blocks currently allocated. */
    std::uint64_t usedSubBlocks() const;
    /** Sub-blocks allocated in one set, recomputed from the tags. */
    std::uint32_t usedSubBlocksInSet(std::uint32_t set_index) const;
    /** The incrementally-maintained counter for one set (O(1)). */
    std::uint32_t
    usedSubBlocksCounter(std::uint32_t set_index) const
    {
        return domain_.usedSubBlocksCounter(set_index);
    }
    /** Valid lines currently held. */
    std::uint64_t validLines() const;
    /** Decompression queue for @p mode (Bdi, Sc or Bpc). */
    DecompressionQueue &queueFor(CompressorId mode);
    const DecompressionQueue &queueFor(CompressorId mode) const;

    /** Invalidate SC lines not encoded with @p current_generation. */
    void invalidateScGeneration(std::uint32_t current_generation);

    /**
     * Drop compressed lines left in the sampling sets (set % stride <
     * n_modes) that are neither uncompressed nor in @p keep mode. Called
     * by adaptive policies when sampling deactivates so stale sampled
     * lines stop paying decompression latency on every hit.
     */
    void invalidateSampleMismatch(std::uint32_t stride,
                                  std::uint32_t n_modes,
                                  CompressorId keep);

    /** Drop everything (between kernels / runs). */
    void invalidateAll();

    // --- Statistics ---
    Counter loads;
    Counter stores;
    Counter hits;
    Counter misses;          //!< primary misses (== insertions attempted)
    Counter mergedMisses;    //!< secondary misses folded into an MSHR
    Counter insertions;
    Counter evictions;
    Counter writeInvalidations;
    Counter rejections;      //!< accesses refused because the MSHRs were full
    Counter compressedInsertions;
    Counter bdiCompressions;     //!< insertions compressed with BDI
    Counter scCompressions;      //!< insertions compressed with SC
    Counter bpcCompressions;     //!< insertions compressed with BPC
    Counter scGenerationInvalidations;
    Average insertionRatio;  //!< compression ratio of inserted lines
    Average missLatency;     //!< observed miss service time (cycles)
    MshrFile mshrs;

  private:
    /** Tag/replacement/sub-block state lives in the generic domain. */
    using TagEntry = CompressionDomain::TagEntry;

    struct PendingFill
    {
        Addr lineAddr;
        Cycles fillCycle;
    };

    void insertLine(Cycles now, Addr line_addr);
    /**
     * Insert the due fills of one processFills() sweep. When the batch
     * can be proven equivalent to the sequential per-fill walk (no
     * round-trip verification, no line already resident, no duplicate
     * addresses) all probes are funnelled through one batched
     * probeLines() pass so the backend's SIMD kernels amortise;
     * otherwise it falls back to per-fill insertLine().
     */
    void insertLines(std::span<const PendingFill> due);
    /** The tail of an insertion once set, mode and meta are known. */
    void insertPrepared(Cycles now, Addr line_addr, std::uint32_t set,
                        CompressorId mode, const LineMeta &meta,
                        const CompressedLine *full_line);
    /** Size-only encode of an insertion (memoised when enabled). */
    LineMeta probeForInsertion(CompressorId mode,
                               std::span<const std::uint8_t> bytes);
    /** Record into a run-shared hit-path histogram, staging if parked. */
    void
    recordHitHist(metrics::LatencyHistogram *hist, double value)
    {
        if (!hist)
            return;
        if (stage_)
            stage_->histSamples.push_back({hist, value});
        else
            recordHist(hist, value);
    }

    const GpuConfig &cfg_;
    CacheTuning tuning_;
    std::uint16_t smId_;
    Tracer *tracer_ = nullptr;
    L1Stage *stage_ = nullptr;
    metrics::LatencyHistogram *hitLatencyHist_ = nullptr;
    metrics::LatencyHistogram *missLatencyHist_ = nullptr;
    metrics::LatencyHistogram *decompWaitHist_ = nullptr;
    CompressionEngines *engines_;
    L2Cache *l2_;
    MemoryImage *mem_;
    CompressionModeProvider *provider_;
    UncompressedProvider defaultProvider_;

    CompressMemo memo_;
    /**
     * Constructed after memo_ so its decompression queues register in
     * the same stat order the pre-domain cache had (memo stats first,
     * then decomp_bdi .. decomp_cpack).
     */
    CompressionDomain domain_;
    std::vector<PendingFill> pendingFills_;
    // insertLines() scratch, kept as members so a fill batch does not
    // allocate once the vectors have grown to steady state.
    std::vector<PendingFill> dueFills_;
    std::vector<std::uint32_t> fillSets_;
    std::vector<CompressorId> fillModes_;
    std::vector<LineMeta> fillMeta_;
    std::vector<std::uint8_t> probeBytes_;
    std::vector<Compressor *> probeEngines_;
    std::vector<std::uint32_t> probeGens_;
    std::vector<std::uint32_t> probeSlots_;
    std::vector<LineMeta> probeMeta_;
    std::vector<bool> probeDone_;
    std::vector<std::uint8_t> scratchBytes_;
    std::vector<std::uint32_t> scratchSlots_;
    std::vector<LineMeta> scratchMeta_;
    Cycles nextFillCycle_ = kNoCycle;
};

} // namespace latte

#endif // LATTE_CACHE_COMPRESSED_CACHE_HH
