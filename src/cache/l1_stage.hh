/**
 * @file
 * The per-SM staging buffer for the barrier-synchronous parallel
 * simulation mode. During the parallel phase every SM runs against
 * private state only; anything that would touch the shared memory
 * system (the single L2 call of a write-through or a primary miss) or a
 * shared metrics histogram is parked here instead and replayed at the
 * epoch barrier in canonical SM-index order, which makes the parallel
 * schedule observationally identical to the sequential loop.
 *
 * `split` remembers how many trace events the SM had staged when the L2
 * operation was parked: the barrier drains events [0, split), performs
 * the L2 call (whose own L2/NOC/DRAM events go straight to the real
 * tracer), then drains the rest — reproducing the exact interleaving
 * the sequential loop records.
 */

#ifndef LATTE_CACHE_L1_STAGE_HH
#define LATTE_CACHE_L1_STAGE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "trace/tracer.hh"

namespace latte
{

namespace metrics
{
class LatencyHistogram;
} // namespace metrics

/** One histogram sample deferred to the epoch barrier. */
struct StagedHistSample
{
    metrics::LatencyHistogram *hist;
    double value;
};

/** Per-SM parking lot for one parallel epoch's shared-state effects. */
struct L1Stage
{
    /** The SM's staging tracer (null when the run is untraced). */
    Tracer *events = nullptr;
    /**
     * Hit-path samples into run-shared histograms, in record order.
     * (Miss-path histograms only record inside the barrier-side commit,
     * so they never need staging.)
     */
    std::vector<StagedHistSample> histSamples;
    /** Staged trace events recorded before the parked L2 operation. */
    std::size_t split = 0;
    /** A write-through L2 notification parked for the barrier. */
    bool hasL2Write = false;
    Addr l2WriteAddr = 0;
    /** A primary read miss whose whole tail runs at the barrier. */
    bool deferredMiss = false;
    Addr missAddr = 0;

    /** Mark the point the parked L2 operation splits the event stream. */
    void noteSplit() { split = events ? events->size() : 0; }

    void
    reset()
    {
        histSamples.clear();
        split = 0;
        hasL2Write = false;
        deferredMiss = false;
    }
};

} // namespace latte

#endif // LATTE_CACHE_L1_STAGE_HH
