#include "compressed_cache.hh"

#include <algorithm>
#include <array>

#include "common/bit_utils.hh"
#include "common/logging.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"

namespace latte
{

CompressedCache::CompressedCache(const GpuConfig &cfg, SmId sm_id,
                                 CompressionEngines *engines, L2Cache *l2,
                                 MemoryImage *mem, StatGroup *parent,
                                 CacheTuning tuning)
    : StatGroup(strfmt("l1d{}", sm_id), parent),
      loads(this, "loads", "read accesses"),
      stores(this, "stores", "write accesses"),
      hits(this, "hits", "read hits"),
      misses(this, "misses", "primary read misses"),
      mergedMisses(this, "merged_misses", "secondary misses merged"),
      insertions(this, "insertions", "lines inserted"),
      evictions(this, "evictions", "lines evicted"),
      writeInvalidations(this, "write_invalidations",
                         "lines invalidated by write hits"),
      rejections(this, "rejections", "accesses refused (MSHRs full)"),
      compressedInsertions(this, "compressed_insertions",
                           "insertions stored in compressed form"),
      bdiCompressions(this, "bdi_compressions",
                      "insertions run through the BDI compressor"),
      scCompressions(this, "sc_compressions",
                     "insertions run through the SC compressor"),
      bpcCompressions(this, "bpc_compressions",
                      "insertions run through the BPC compressor"),
      scGenerationInvalidations(this, "sc_generation_invalidations",
                                "SC lines dropped at code rebuilds"),
      insertionRatio(this, "insertion_ratio",
                     "mean compression ratio of inserted lines"),
      missLatency(this, "miss_latency",
                  "observed miss service time (cycles)"),
      mshrs(cfg.l1.mshrEntries, this),
      cfg_(cfg), tuning_(tuning), smId_(static_cast<std::uint16_t>(sm_id)),
      engines_(engines), l2_(l2), mem_(mem),
      provider_(&defaultProvider_),
      memo_(this),
      domain_(cfg.l1, cfg.l1Repl, tuning.capacityBenefit, this)
{
    latte_assert(engines_ && l2_ && mem_);
}

void
CompressedCache::setModeProvider(CompressionModeProvider *provider)
{
    provider_ = provider ? provider : &defaultProvider_;
}

void
CompressedCache::setMetrics(metrics::MetricRegistry *metrics)
{
    if (!metrics) {
        hitLatencyHist_ = missLatencyHist_ = decompWaitHist_ = nullptr;
        return;
    }
    hitLatencyHist_ = &metrics->histogram("l1_hit_latency");
    missLatencyHist_ = &metrics->histogram("l1_miss_latency");
    decompWaitHist_ = &metrics->histogram("decomp_queue_wait");
}

std::uint32_t
CompressedCache::usedSubBlocksInSet(std::uint32_t set_index) const
{
    return domain_.usedSubBlocksInSet(set_index);
}

DecompressionQueue &
CompressedCache::queueFor(CompressorId mode)
{
    return domain_.queueFor(mode);
}

const DecompressionQueue &
CompressedCache::queueFor(CompressorId mode) const
{
    return domain_.queueFor(mode);
}

void
CompressedCache::recordHist(metrics::LatencyHistogram *hist, double value)
{
    hist->record(value);
}

LineMeta
CompressedCache::probeForInsertion(CompressorId mode,
                                   std::span<const std::uint8_t> bytes)
{
    metrics::ProfileScope profile(metrics::ProfileZone::CompressorProbe);
    Compressor *engine = engines_->get(mode);
    if (!tuning_.compressionMemo)
        return engine->probe(bytes);
    // SC's probe depends on the live code book; its generation counter
    // captures that state exactly. The other algorithms are stateless.
    const std::uint32_t generation =
        mode == CompressorId::Sc ? engines_->sc.generation() : 0;
    return memo_.probe(*engine, bytes, generation);
}

L1AccessResult
CompressedCache::access(Cycles now, Addr addr, bool is_write)
{
    metrics::ProfileScope profile(metrics::ProfileZone::L1Access);
    processFills(now);

    const Addr line_addr = MemoryImage::lineAddr(addr);
    const std::uint32_t set = setIndexOf(line_addr);

    if (is_write) {
        ++stores;
        TagEntry *entry = domain_.findLine(line_addr);
        const bool was_hit = entry != nullptr;
        const CompressorId old_mode =
            was_hit ? entry->mode : CompressorId::None;
        if (entry) {
            // Write-avoid: drop the copy instead of recompressing it.
            domain_.releaseLine(*entry, set);
            ++writeInvalidations;
            if (tracer_) {
                TraceEvent ev =
                    makeTraceEvent(now, TraceEventKind::L1WriteInval, smId_);
                ev.arg0 = line_addr;
                ev.arg1 = set;
                ev.mode = static_cast<std::uint8_t>(old_mode);
                tracer_->record(ev);
            }
        }
        if (stage_) {
            stage_->hasL2Write = true;
            stage_->l2WriteAddr = line_addr;
            stage_->noteSplit();
        } else {
            l2_->access(now, line_addr, true);
        }
        provider_->observeAccess({now, set, was_hit, true, old_mode});
        return {was_hit, now + 1, false, false};
    }

    ++loads;
    TagEntry *entry = domain_.findLine(line_addr);
    if (entry) {
        ++hits;
        domain_.touchOnHit(*entry);
        Cycles ready = now + cfg_.l1.hitLatency;
        if (entry->mode != CompressorId::None &&
            entry->encoding != kRawEncoding &&
            tuning_.chargeDecompression) {
            Compressor *engine = engines_->get(entry->mode);
            DecompressionQueue &queue = queueFor(entry->mode);
            ready = queue.enqueue(ready, engine->decompressLatency());
            recordHitHist(decompWaitHist_, static_cast<double>(
                              ready - (now + cfg_.l1.hitLatency)));
            if (tracer_) {
                TraceEvent ev = makeTraceEvent(
                    now, TraceEventKind::DecompEnqueue, smId_);
                ev.arg0 = line_addr;
                ev.arg1 = static_cast<std::uint32_t>(queue.depth(now));
                ev.mode = static_cast<std::uint8_t>(entry->mode);
                ev.value = static_cast<double>(ready - now);
                tracer_->record(ev);
            }
        }
        if (tuning_.verifyRoundTrip && entry->mode != CompressorId::None) {
            CompressedLine line;
            line.algo = entry->mode;
            line.encoding = entry->encoding;
            line.sizeBits = entry->sizeBits;
            line.generation = entry->generation;
            line.payload.assign(entry->payload);
            std::array<std::uint8_t, kLineBytes> scratch;
            engines_->get(entry->mode)->decompressInto(line, scratch);
            const auto &truth = mem_->line(line_addr);
            latte_assert(std::equal(scratch.begin(), scratch.end(),
                                    truth.begin()),
                         "round-trip mismatch at line {}", line_addr);
        }
        recordHitHist(hitLatencyHist_, static_cast<double>(ready - now));
        if (tracer_) {
            TraceEvent ev = makeTraceEvent(now, TraceEventKind::L1Hit, smId_);
            ev.arg0 = line_addr;
            ev.arg1 = set;
            ev.mode = static_cast<std::uint8_t>(entry->mode);
            ev.value = static_cast<double>(ready - now);
            tracer_->record(ev);
        }
        provider_->observeAccess({now, set, true, false, entry->mode});
        return {true, ready, false, false};
    }

    // Miss path.
    if (mshrs.outstanding(line_addr)) {
        ++mergedMisses;
        const Cycles ready = mshrs.merge(line_addr);
        if (tracer_) {
            TraceEvent ev =
                makeTraceEvent(now, TraceEventKind::L1MissMerged, smId_);
            ev.arg0 = line_addr;
            ev.arg1 = set;
            ev.value = static_cast<double>(ready - now);
            tracer_->record(ev);
        }
        provider_->observeAccess({now, set, false, false,
                                  CompressorId::None});
        return {false, ready, true, false};
    }

    if (!mshrs.hasFree()) {
        ++mshrs.stallsFull;
        ++rejections;
        if (tracer_) {
            TraceEvent ev =
                makeTraceEvent(now, TraceEventKind::MshrFull, smId_);
            ev.arg0 = line_addr;
            ev.arg1 = set;
            tracer_->record(ev);
            ev.kind = TraceEventKind::L1Reject;
            tracer_->record(ev);
        }
        return {false, now, false, true};
    }

    if (stage_) {
        // Parallel phase: the L2 is shared, so the whole miss tail —
        // including the policy's access observation, whose EP boundary
        // reads the miss-latency average this tail samples — runs at
        // the epoch barrier via finishMiss().
        stage_->deferredMiss = true;
        stage_->missAddr = line_addr;
        stage_->noteSplit();
        return {false, 0, false, false, true};
    }
    return {false, finishMiss(now, line_addr), false, false};
}

Cycles
CompressedCache::finishMiss(Cycles now, Addr line_addr)
{
    const std::uint32_t set = setIndexOf(line_addr);
    ++misses;
    const L2Result res = l2_->access(now, line_addr, false);
    missLatency.sample(static_cast<double>(res.readyCycle - now));
    if (missLatencyHist_)
        missLatencyHist_->record(static_cast<double>(res.readyCycle - now));
    mshrs.allocate(line_addr, res.readyCycle);
    pendingFills_.push_back({line_addr, res.readyCycle});
    nextFillCycle_ = std::min(nextFillCycle_, res.readyCycle);
    if (tracer_) {
        TraceEvent ev = makeTraceEvent(now, TraceEventKind::L1Miss, smId_);
        ev.arg0 = line_addr;
        ev.arg1 = set;
        ev.value = static_cast<double>(res.readyCycle - now);
        tracer_->record(ev);
        ev.kind = TraceEventKind::MshrAlloc;
        ev.arg1 = static_cast<std::uint32_t>(mshrs.inUse());
        tracer_->record(ev);
    }
    provider_->observeAccess({now, set, false, false, CompressorId::None});
    return res.readyCycle;
}

void
CompressedCache::processFills(Cycles now)
{
    if (pendingFills_.empty() || now < nextFillCycle_)
        return;
    std::size_t keep = 0;
    nextFillCycle_ = kNoCycle;
    dueFills_.clear();
    for (std::size_t i = 0; i < pendingFills_.size(); ++i) {
        const PendingFill fill = pendingFills_[i];
        if (fill.fillCycle <= now) {
            dueFills_.push_back(fill);
        } else {
            nextFillCycle_ = std::min(nextFillCycle_, fill.fillCycle);
            pendingFills_[keep++] = fill;
        }
    }
    pendingFills_.resize(keep);
    insertLines(dueFills_);
    mshrs.retire(now);
}

void
CompressedCache::insertLines(std::span<const PendingFill> due)
{
    // The batch is equivalent to the per-fill walk only if every fill
    // is guaranteed to insert: a resident line or a duplicate address
    // would make a sequential insertLine() skip (and the round-trip
    // verification path materialises payloads one by one), so those
    // cases take the fallback. Eviction is the only other way the set
    // contents change mid-batch, and it never *adds* a line.
    bool batch = due.size() > 1 && !tuning_.verifyRoundTrip;
    if (batch) {
        for (std::size_t i = 0; i < due.size() && batch; ++i) {
            if (domain_.findLine(due[i].lineAddr))
                batch = false;
            for (std::size_t j = 0; j < i && batch; ++j) {
                if (due[j].lineAddr == due[i].lineAddr)
                    batch = false;
            }
        }
    }
    if (!batch) {
        for (const PendingFill &fill : due)
            insertLine(fill.fillCycle, fill.lineAddr);
        return;
    }

    const std::size_t n = due.size();
    fillSets_.resize(n);
    fillModes_.resize(n);
    fillMeta_.resize(n);
    probeBytes_.clear();
    probeEngines_.clear();
    probeGens_.clear();
    probeSlots_.clear();

    // Decide set and mode per fill in order. modeForInsertion() reads
    // only sampling-window state that changes at EP boundaries, never
    // on observeInsertion(), so hoisting it ahead of the insertions is
    // bit-identical to the sequential walk.
    for (std::size_t i = 0; i < n; ++i) {
        fillSets_[i] = setIndexOf(due[i].lineAddr);
        fillModes_[i] = provider_->modeForInsertion(fillSets_[i]);
        if (fillModes_[i] == CompressorId::None) {
            fillMeta_[i] = makeRawMeta(CompressorId::None);
            continue;
        }
        const auto &bytes = mem_->line(due[i].lineAddr);
        probeBytes_.insert(probeBytes_.end(), bytes.begin(), bytes.end());
        probeEngines_.push_back(engines_->get(fillModes_[i]));
        // SC's probe depends on the live code book; the generation
        // captures that state (stable for the whole batch — codes only
        // rebuild at EP boundaries). Stateless algorithms use 0.
        probeGens_.push_back(fillModes_[i] == CompressorId::Sc
                                 ? engines_->sc.generation() : 0);
        probeSlots_.push_back(static_cast<std::uint32_t>(i));
    }

    // One batched probe pass over everything that compresses. The memo
    // replays its sequential hit/miss walk internally; without the memo
    // the probes regroup per engine (probes are side-effect-free, so
    // only the memo walk ever had an order to preserve).
    if (!probeSlots_.empty()) {
        metrics::ProfileScope profile(
            metrics::ProfileZone::CompressorProbe);
        probeMeta_.resize(probeSlots_.size());
        if (tuning_.compressionMemo) {
            memo_.probeLines(probeEngines_, probeBytes_, probeGens_,
                             probeMeta_);
        } else {
            probeDone_.assign(probeSlots_.size(), false);
            std::vector<std::uint8_t> &lines = probeBytes_;
            for (std::size_t m = 0; m < probeSlots_.size(); ++m) {
                if (probeDone_[m])
                    continue;
                Compressor *engine = probeEngines_[m];
                scratchBytes_.clear();
                scratchSlots_.clear();
                for (std::size_t j = m; j < probeSlots_.size(); ++j) {
                    if (probeDone_[j] || probeEngines_[j] != engine)
                        continue;
                    scratchBytes_.insert(
                        scratchBytes_.end(),
                        lines.begin() + j * kLineBytes,
                        lines.begin() + (j + 1) * kLineBytes);
                    scratchSlots_.push_back(
                        static_cast<std::uint32_t>(j));
                    probeDone_[j] = true;
                }
                scratchMeta_.resize(scratchSlots_.size());
                engine->probeLines(scratchBytes_, scratchMeta_);
                for (std::size_t k = 0; k < scratchSlots_.size(); ++k)
                    probeMeta_[scratchSlots_[k]] = scratchMeta_[k];
            }
        }
        for (std::size_t m = 0; m < probeSlots_.size(); ++m)
            fillMeta_[probeSlots_[m]] = probeMeta_[m];
    }

    for (std::size_t i = 0; i < n; ++i) {
        insertPrepared(due[i].fillCycle, due[i].lineAddr, fillSets_[i],
                       fillModes_[i], fillMeta_[i], nullptr);
    }
}

void
CompressedCache::insertLine(Cycles now, Addr line_addr)
{
    // If the line raced in already (e.g. duplicate fill), skip.
    if (domain_.findLine(line_addr))
        return;

    const std::uint32_t set = setIndexOf(line_addr);
    const auto &bytes = mem_->line(line_addr);

    const CompressorId mode = provider_->modeForInsertion(set);
    LineMeta meta;
    CompressedLine full_line;    //!< materialised only under verifyRoundTrip
    if (mode == CompressorId::None) {
        meta = makeRawMeta(CompressorId::None);
    } else {
        // The simulation only needs the encoded size (admission, sampler
        // votes, sub-block accounting) — probe, don't materialise. The
        // payload is built only when round-trip verification wants it.
        if (tuning_.verifyRoundTrip) {
            metrics::ProfileScope profile(
                metrics::ProfileZone::CompressorCompress);
            full_line = engines_->get(mode)->compress(bytes);
            meta = full_line.meta();
        } else {
            meta = probeForInsertion(mode, bytes);
        }
    }
    insertPrepared(now, line_addr, set, mode, meta,
                   tuning_.verifyRoundTrip ? &full_line : nullptr);
}

void
CompressedCache::insertPrepared(Cycles now, Addr line_addr,
                                std::uint32_t set, CompressorId mode,
                                const LineMeta &meta,
                                const CompressedLine *full_line)
{
    switch (mode) {
      case CompressorId::Bdi: ++bdiCompressions; break;
      case CompressorId::Sc: ++scCompressions; break;
      case CompressorId::Bpc: ++bpcCompressions; break;
      default: break;
    }
    const std::uint8_t need = domain_.subBlocksFor(meta);

    // Evict LRU lines until a tag and enough sub-blocks are free.
    TagEntry &slot = domain_.allocateSlot(
        set, need, [&](const TagEntry &victim) {
            ++evictions;
            if (tracer_) {
                TraceEvent ev =
                    makeTraceEvent(now, TraceEventKind::L1Evict, smId_);
                ev.arg0 = victim.tag;
                ev.arg1 = set;
                ev.mode = static_cast<std::uint8_t>(victim.mode);
                tracer_->record(ev);
            }
        });
    domain_.commitFill(slot, domain_.tagOf(line_addr), meta, need, set);
    if (full_line && mode != CompressorId::None)
        slot.payload.assign(full_line->payload.begin(),
                            full_line->payload.end());
    else
        slot.payload.clear();

    ++insertions;
    if (meta.compressed() && meta.encoding != kRawEncoding)
        ++compressedInsertions;
    insertionRatio.sample(meta.ratio());

    if (tracer_) {
        TraceEvent ev = makeTraceEvent(now, TraceEventKind::L1Insert, smId_);
        ev.arg0 = line_addr;
        ev.arg1 = need;
        ev.mode = static_cast<std::uint8_t>(meta.algo);
        ev.value = meta.ratio();
        tracer_->record(ev);
    }

    provider_->observeInsertion(now, set, mode, mem_->line(line_addr));
}

std::uint64_t
CompressedCache::effectiveCapacityBytes() const
{
    return domain_.effectiveCapacityBytes();
}

std::uint64_t
CompressedCache::usedSubBlocks() const
{
    return domain_.usedSubBlocks();
}

std::uint64_t
CompressedCache::validLines() const
{
    return domain_.validLines();
}

void
CompressedCache::invalidateScGeneration(std::uint32_t current_generation)
{
    scGenerationInvalidations +=
        domain_.invalidateScGeneration(current_generation);
}

void
CompressedCache::invalidateSampleMismatch(std::uint32_t stride,
                                          std::uint32_t n_modes,
                                          CompressorId keep)
{
    domain_.invalidateSampleMismatch(stride, n_modes, keep);
}

void
CompressedCache::invalidateAll()
{
    domain_.invalidateAll();
    pendingFills_.clear();
    nextFillCycle_ = kNoCycle;
    mshrs.clear();
}

} // namespace latte
