/**
 * @file
 * RAII wall-clock zone self-profiler. Instrumented code opens a
 * ProfileScope naming one of a fixed set of zones (SM issue, L1 access,
 * compressor probe/compress, L2/DRAM access, runner serialization);
 * the destructor charges the elapsed wall time to the zone.
 *
 * Disabled (the default) the cost per scope is one relaxed atomic load
 * and a predictable branch, so the hooks can live on the simulator's
 * hottest paths. Enabled, each scope pays two steady_clock reads;
 * samples accumulate into thread-local buffers (no contention on the
 * hot path) that are folded into global totals when a thread exits or
 * a snapshot is taken.
 *
 * The profiler is purely observational: totals never feed back into
 * simulation results, so enabling it cannot perturb a simulated bit
 * (pinned by Runner.ExecutionShortcutsAreBitIdentical). It DOES make
 * the experiment runner bypass the on-disk result cache — a cache hit
 * would attribute zero time to the zones the run would have exercised.
 */

#ifndef LATTE_METRICS_PROFILER_HH
#define LATTE_METRICS_PROFILER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace latte::metrics
{

enum class ProfileZone : std::uint8_t
{
    SmIssue,            //!< warp fetch/decode/issue
    L1Access,           //!< compressed L1 lookup (hit and miss paths)
    CompressorProbe,    //!< size-only encode on insertion
    CompressorCompress, //!< full payload encode (verifyRoundTrip)
    L2Access,           //!< shared L2 lookup + bank queueing
    DramAccess,         //!< DRAM channel model
    RunnerSerialize,    //!< result JSON serialization / disk cache
};

constexpr std::size_t kNumProfileZones = 7;

/** Stable lower_snake_case zone name for exports. */
const char *profileZoneName(ProfileZone zone);

/** Accumulated wall time of one zone. */
struct ZoneTotals
{
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
};

namespace detail
{
extern std::atomic<bool> profilerEnabledFlag;
void profilerRecord(ProfileZone zone, std::uint64_t nanos);
} // namespace detail

inline bool
profilerEnabled()
{
    return detail::profilerEnabledFlag.load(std::memory_order_relaxed);
}

void setProfilerEnabled(bool enabled);

/**
 * Zero all totals. Must not race with instrumented threads: call it
 * only while no simulation is in flight.
 */
void profilerReset();

/**
 * Aggregate totals across exited threads and the calling thread's live
 * buffer. Buffers of other still-running threads are folded in too;
 * call after worker threads have joined for exact numbers.
 */
std::array<ZoneTotals, kNumProfileZones> profilerSnapshot();

/** JSONL export: one {"type":"profile",...} line per non-empty zone. */
void writeProfileJsonl(std::ostream &os);

/** Prometheus text export of the zone counters. */
void writeProfilePrometheus(std::ostream &os);

/** RAII zone timer. */
class ProfileScope
{
  public:
    explicit ProfileScope(ProfileZone zone)
    {
        if (profilerEnabled()) {
            zone_ = zone;
            active_ = true;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ProfileScope()
    {
        if (active_) {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            detail::profilerRecord(
                zone_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
        }
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    std::chrono::steady_clock::time_point start_{};
    ProfileZone zone_ = ProfileZone::SmIssue;
    bool active_ = false;
};

} // namespace latte::metrics

#endif // LATTE_METRICS_PROFILER_HH
