/**
 * @file
 * Live run introspection: a process-wide registry of in-flight cells
 * that external observers (the latted HTTP /metrics endpoint) can
 * snapshot mid-run.
 *
 * Deliberately NOT a MetricRegistry: attaching a registry to a run
 * makes it observational and bypasses the disk result cache, which
 * would break cache-served resubmits. This module instead keeps a few
 * relaxed atomics per in-flight cell — the Gpu cycle loop publishes
 * its progress every ~64k cycles through a thread_local slot pointer —
 * so scraping is wait-free for the simulator, TSan-clean (atomics,
 * never torn reads), and invisible to results, exports and RunKeys.
 */

#ifndef LATTE_METRICS_LIVE_HH
#define LATTE_METRICS_LIVE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace latte::metrics::live
{

/** Point-in-time view of one in-flight cell. */
struct CellSample
{
    std::string label;         //!< "KM/LATTE-CC" style cell name
    std::string context;       //!< log correlation id ("job-4/cell-9")
    std::uint64_t cycle = 0;   //!< last published simulated cycle
    std::uint64_t instructions = 0;
    double seconds = 0.0;      //!< wall time since the cell started
};

/**
 * RAII registration of the calling thread's current cell. The
 * ExperimentRunner wraps each simulated attempt in one of these; the
 * Gpu publishes through the thread_local current slot, so nesting is
 * not supported (the inner scope wins until it exits).
 */
class CellScope
{
  public:
    explicit CellScope(std::string label);
    ~CellScope();

    CellScope(const CellScope &) = delete;
    CellScope &operator=(const CellScope &) = delete;

    /**
     * Publish the calling thread's progress (relaxed stores; no-op
     * when no CellScope is live on this thread). Called from the Gpu
     * cycle loop at a throttled cadence.
     */
    static void publish(std::uint64_t cycle, std::uint64_t instructions);

    /** Opaque per-cell storage; defined (and only used) in live.cc. */
    struct Slot;

  private:
    Slot *slot_;
};

/** Snapshot every in-flight cell (registration order). */
std::vector<CellSample> snapshot();

/** Cells simulated to completion since process start. */
std::uint64_t cellsFinished();

/**
 * Prometheus exposition of the live view: one labeled gauge set per
 * in-flight cell plus the finished-cell counter. Byte-compatible with
 * the MetricRegistry exposition helpers.
 */
void writePrometheus(std::ostream &os);

} // namespace latte::metrics::live

#endif // LATTE_METRICS_LIVE_HH
