#include "registry.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"

namespace latte::metrics
{

namespace
{

/** Minimal JSON string escape (names/labels are near-ASCII already). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** visit() adapter: flat (path.name, stat*) list in tree order. */
class SeriesCollector : public StatVisitor
{
  public:
    SeriesCollector(std::vector<std::string> &names,
                    std::vector<const StatBase *> &stats)
        : names_(names), stats_(stats)
    {}

    void beginGroup(const StatGroup &, const std::string &) override {}
    void endGroup(const StatGroup &, const std::string &) override {}

    void
    visitStat(const StatBase &stat, const std::string &path) override
    {
        names_.push_back(path + "." + stat.name());
        stats_.push_back(&stat);
    }

  private:
    std::vector<std::string> &names_;
    std::vector<const StatBase *> &stats_;
};

} // namespace

std::string
prometheusNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    for (const int precision : {15, 16, 17}) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        double back = 0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
prometheusName(const std::string &name)
{
    std::string out = "latte_";
    for (const char c : name) {
        out += std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':'
                   ? c
                   : '_';
    }
    return out;
}

std::string
prometheusLabels(const MetricLabels &labels, const std::string &extra)
{
    if (labels.empty() && extra.empty())
        return {};
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        out += key + "=\"" + value + "\"";
        first = false;
    }
    if (!extra.empty()) {
        if (!first)
            out += ',';
        out += extra;
    }
    out += '}';
    return out;
}

void
writeHistogramPrometheus(std::ostream &os, const std::string &name,
                         const LatencyHistogram &histogram,
                         const MetricLabels &labels)
{
    const std::string metric = prometheusName(name);
    os << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < histogram.numBuckets(); ++i) {
        cumulative += histogram.buckets()[i];
        os << metric << "_bucket"
           << prometheusLabels(
                  labels,
                  "le=\"" +
                      prometheusNumber(histogram.bucketUpperBound(i)) +
                      "\"")
           << " " << cumulative << "\n";
    }
    os << metric << "_bucket" << prometheusLabels(labels, "le=\"+Inf\"")
       << " " << histogram.count() << "\n";
    os << metric << "_sum" << prometheusLabels(labels) << " "
       << prometheusNumber(histogram.sum()) << "\n";
    os << metric << "_count" << prometheusLabels(labels) << " "
       << histogram.count() << "\n";
}

ExportFormat
exportFormatForPath(const std::string &path)
{
    const auto dot = path.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : path.substr(dot);
    if (ext == ".prom" || ext == ".txt")
        return ExportFormat::Prometheus;
    if (ext == ".csv")
        return ExportFormat::Csv;
    return ExportFormat::Jsonl;
}

void
MetricRegistry::attachStats(const StatGroup *root)
{
    latte_assert(root != nullptr);
    root_ = root;
    resolved_ = false;
}

void
MetricRegistry::addGauge(const std::string &name,
                         std::function<double(Cycles)> fn)
{
    for (Gauge &gauge : gauges_) {
        if (gauge.name == name) {
            gauge.fn = std::move(fn); // re-attach (Kernel-OPT legs)
            return;
        }
    }
    latte_assert(rows_.empty() || !statNames_.empty(),
                 "cannot add gauges after sampling started");
    gauges_.push_back({name, std::move(fn)});
}

LatencyHistogram &
MetricRegistry::histogram(const std::string &name)
{
    return histograms_[name]; // default-constructs on first use
}

void
MetricRegistry::resolveSeries()
{
    latte_assert(root_ != nullptr,
                 "MetricRegistry::sample without attachStats");
    std::vector<std::string> names;
    std::vector<const StatBase *> stats;
    SeriesCollector collector(names, stats);
    root_->visit(collector);

    if (statNames_.empty()) {
        statNames_ = std::move(names);
    } else {
        // Re-attach (a later Kernel-OPT leg): the tree shape is a pure
        // function of the config, so the columns must line up exactly.
        latte_assert(names == statNames_,
                     "stat series changed across attachStats calls");
    }
    statSeries_ = std::move(stats);
    resolved_ = true;
}

void
MetricRegistry::sample(Cycles now)
{
    if (!resolved_)
        resolveSeries();

    Row row;
    row.cycle = now;
    row.values.reserve(statSeries_.size() + gauges_.size());
    for (const StatBase *stat : statSeries_)
        row.values.push_back(stat->value());
    for (const Gauge &gauge : gauges_) {
        latte_assert(gauge.fn != nullptr,
                     "gauge {} sampled while detached", gauge.name);
        row.values.push_back(gauge.fn(now));
    }
    rows_.push_back(std::move(row));
    nextSampleAt_ = now + interval_;
}

void
MetricRegistry::finalSample(Cycles now)
{
    if (!rows_.empty() && rows_.back().cycle == now)
        return;
    sample(now);
}

void
MetricRegistry::detach()
{
    root_ = nullptr;
    resolved_ = false;
    statSeries_.clear();
    for (Gauge &gauge : gauges_)
        gauge.fn = nullptr;
}

std::vector<std::string>
MetricRegistry::seriesNames() const
{
    std::vector<std::string> names = statNames_;
    names.reserve(names.size() + gauges_.size());
    for (const Gauge &gauge : gauges_)
        names.push_back(gauge.name);
    return names;
}

std::optional<double>
MetricRegistry::lastValue(const std::string &series) const
{
    if (rows_.empty())
        return std::nullopt;
    const std::vector<std::string> names = seriesNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == series && i < rows_.back().values.size())
            return rows_.back().values[i];
    }
    return std::nullopt;
}

void
MetricRegistry::exportPrometheus(std::ostream &os,
                                 const Labels &labels) const
{
    const std::string label_text = prometheusLabels(labels);

    // Final snapshot of every series as a gauge.
    if (!rows_.empty()) {
        const std::vector<std::string> names = seriesNames();
        const Row &last = rows_.back();
        os << "# Final sample at cycle " << last.cycle << "\n";
        for (std::size_t i = 0;
             i < names.size() && i < last.values.size(); ++i) {
            const std::string metric = prometheusName(names[i]);
            os << "# TYPE " << metric << " gauge\n";
            os << metric << label_text << " "
               << prometheusNumber(last.values[i]) << "\n";
        }
    }

    // Histograms in the cumulative le-bucket exposition format.
    for (const auto &[name, hist] : histograms_)
        writeHistogramPrometheus(os, name, hist, labels);
}

void
MetricRegistry::exportCsv(std::ostream &os, const Labels &labels) const
{
    if (!labels.empty()) {
        os << "#";
        for (const auto &[key, value] : labels)
            os << " " << key << "=" << value;
        os << "\n";
    }
    os << "cycle";
    for (const std::string &name : seriesNames())
        os << "," << name;
    os << "\n";
    for (const Row &row : rows_) {
        os << row.cycle;
        for (const double v : row.values)
            os << "," << prometheusNumber(v);
        os << "\n";
    }
}

void
MetricRegistry::exportJsonl(std::ostream &os, const Labels &labels) const
{
    // Schema line: labels + column names, so each later line is small.
    os << "{\"interval\":" << interval_ << ",\"labels\":{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            os << ",";
        os << "\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
           << "\"";
        first = false;
    }
    os << "},\"series\":[";
    first = true;
    for (const std::string &name : seriesNames()) {
        if (!first)
            os << ",";
        os << "\"" << jsonEscape(name) << "\"";
        first = false;
    }
    os << "],\"type\":\"schema\"}\n";

    for (const Row &row : rows_) {
        os << "{\"cycle\":" << row.cycle << ",\"type\":\"sample\","
           << "\"values\":[";
        for (std::size_t i = 0; i < row.values.size(); ++i) {
            if (i)
                os << ",";
            os << prometheusNumber(row.values[i]);
        }
        os << "]}\n";
    }

    for (const auto &[name, hist] : histograms_) {
        os << "{\"buckets\":[";
        for (unsigned i = 0; i < hist.numBuckets(); ++i) {
            if (i)
                os << ",";
            os << hist.buckets()[i];
        }
        os << "],\"count\":" << hist.count()
           << ",\"max\":" << prometheusNumber(hist.max())
           << ",\"mean\":" << prometheusNumber(hist.mean())
           << ",\"min\":" << prometheusNumber(hist.min()) << ",\"name\":\""
           << jsonEscape(name) << "\""
           << ",\"overflow\":" << hist.overflow()
           << ",\"p50\":" << prometheusNumber(hist.percentile(50))
           << ",\"p90\":" << prometheusNumber(hist.percentile(90))
           << ",\"p99\":" << prometheusNumber(hist.percentile(99))
           << ",\"type\":\"histogram\"}\n";
    }
}

void
MetricRegistry::exportAs(std::ostream &os, ExportFormat format,
                         const Labels &labels) const
{
    switch (format) {
      case ExportFormat::Jsonl: exportJsonl(os, labels); break;
      case ExportFormat::Csv: exportCsv(os, labels); break;
      case ExportFormat::Prometheus:
        exportPrometheus(os, labels);
        break;
    }
}

} // namespace latte::metrics
