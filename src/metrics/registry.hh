/**
 * @file
 * MetricRegistry: the in-memory time-series store behind --metrics-out.
 *
 * A registry is attached to one run: the driver points it at the Gpu's
 * StatGroup tree and registers gauges (decompression-queue depth, MSHR
 * occupancy, DRAM backlog, per-mode residency, sampler vote margin...).
 * The Gpu then calls sample() every `interval` simulated cycles, which
 * appends one row — the current value() of every stat in the tree plus
 * every gauge — to the series. The hot caches and the DRAM model also
 * feed free-standing LatencyHistograms (hit/miss latency, queue waits)
 * owned by the registry.
 *
 * Sampling is read-only over simulator state, so attaching a registry
 * never changes results (pinned by the bit-identity golden test). It
 * is therefore, like the tracer, observational: NOT part of the result
 * cache key, and a run that carries one bypasses the disk cache.
 *
 * Performance: the stat tree is walked once, on the first sample, to
 * resolve a flat vector of StatBase pointers; every later sample is a
 * pointer-chase loop with no string work, keeping the overhead at the
 * default interval well under the 5% budget.
 *
 * Exports: Prometheus text (final snapshot, histogram buckets in the
 * cumulative `le` form), CSV (the raw time series), and JSONL (schema
 * line + one line per sample + one line per histogram). The format is
 * inferred from the --metrics-out extension: .prom, .csv, else JSONL.
 */

#ifndef LATTE_METRICS_REGISTRY_HH
#define LATTE_METRICS_REGISTRY_HH

#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "latency_histogram.hh"

namespace latte
{
class StatGroup;
class StatBase;
} // namespace latte

namespace latte::metrics
{

/** Export flavour behind --metrics-out. */
enum class ExportFormat
{
    Jsonl,
    Csv,
    Prometheus,
};

/** Format for @p path by extension: .prom / .csv / anything-else. */
ExportFormat exportFormatForPath(const std::string &path);

// --- Prometheus exposition helpers -------------------------------------
//
// The building blocks of the registry's own exportPrometheus, public so
// other emitters (the latted service's daemon-wide metrics dump, the
// profiler export) produce byte-compatible exposition text.

/** Label set attached to exported metrics, in emission order. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * Shortest round-trippable decimal for @p v (same contract as the
 * runner's canonical JSON: re-parsing yields the identical double).
 */
std::string prometheusNumber(double v);

/** Sanitized Prometheus metric name: [a-zA-Z0-9_:], latte_ prefixed. */
std::string prometheusName(const std::string &name);

/**
 * "{k=\"v\",...}" rendering of @p labels, with @p extra appended as a
 * pre-rendered label pair ("le=\"16\""). Empty string for no labels.
 */
std::string prometheusLabels(const MetricLabels &labels,
                             const std::string &extra = {});

/**
 * One histogram in the cumulative le-bucket exposition format: TYPE
 * line, one _bucket line per bound plus +Inf, then _sum and _count.
 */
void writeHistogramPrometheus(std::ostream &os, const std::string &name,
                              const LatencyHistogram &histogram,
                              const MetricLabels &labels = {});

class MetricRegistry
{
  public:
    /** ~100 rows on a 10M-cycle run; cheap and detailed enough. */
    static constexpr Cycles kDefaultInterval = 100'000;

    explicit MetricRegistry(Cycles interval = 0)
        : interval_(interval ? interval : kDefaultInterval),
          nextSampleAt_(interval_)
    {}

    Cycles interval() const { return interval_; }

    // --- Wiring (driver-side) -----------------------------------------

    /** Sample @p root's stats from now on (resolved on first sample). */
    void attachStats(const StatGroup *root);

    /**
     * Register (or replace, by name) a gauge evaluated at each sample.
     * Gauges run inside the simulation, so the callable may read any
     * live simulator state — but must not mutate it.
     */
    void addGauge(const std::string &name,
                  std::function<double(Cycles)> fn);

    /** Create-or-get a named histogram; the reference stays valid. */
    LatencyHistogram &histogram(const std::string &name);

    /**
     * Drop stat and gauge bindings (the sampled data stays). Called by
     * the driver when the run ends, because gauges capture pointers
     * into the Gpu that is about to be destroyed. A later attach +
     * addGauge cycle (Kernel-OPT legs) must produce the same series.
     */
    void detach();

    // --- Sampling (simulator-side) ------------------------------------

    bool due(Cycles now) const { return now >= nextSampleAt_; }

    /** Append one row and schedule the next sample. */
    void sample(Cycles now);

    /** Sample unless a row already exists for @p now (run end). */
    void finalSample(Cycles now);

    // --- Reading ------------------------------------------------------

    struct Row
    {
        Cycles cycle = 0;
        std::vector<double> values; //!< aligned with seriesNames()
    };

    /** Stat paths (dotted) followed by gauge names, in column order. */
    std::vector<std::string> seriesNames() const;

    const std::vector<Row> &rows() const { return rows_; }

    /** Value of @p series in the newest row; nullopt if unknown. */
    std::optional<double> lastValue(const std::string &series) const;

    const std::map<std::string, LatencyHistogram> &histograms() const
    {
        return histograms_;
    }

    // --- Exports ------------------------------------------------------

    using Labels = MetricLabels;

    void exportPrometheus(std::ostream &os,
                          const Labels &labels = {}) const;
    void exportCsv(std::ostream &os, const Labels &labels = {}) const;
    void exportJsonl(std::ostream &os, const Labels &labels = {}) const;
    void exportAs(std::ostream &os, ExportFormat format,
                  const Labels &labels = {}) const;

  private:
    struct Gauge
    {
        std::string name;
        std::function<double(Cycles)> fn;
    };

    /** Walk root_ once, caching stat pointers and column names. */
    void resolveSeries();

    Cycles interval_;
    Cycles nextSampleAt_;
    const StatGroup *root_ = nullptr;
    bool resolved_ = false;
    std::vector<const StatBase *> statSeries_;
    std::vector<std::string> statNames_;
    std::vector<Gauge> gauges_;
    std::vector<Row> rows_;
    /** std::map: stable addresses for the cached hot-path pointers. */
    std::map<std::string, LatencyHistogram> histograms_;
};

} // namespace latte::metrics

#endif // LATTE_METRICS_REGISTRY_HH
