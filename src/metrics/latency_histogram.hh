/**
 * @file
 * Log-bucketed latency histogram for the metrics layer. Unlike the
 * fixed-width common/stats.hh Histogram (a StatBase registered in the
 * StatGroup tree), this one is free-standing — the MetricRegistry owns
 * a map of them by name — and covers the whole dynamic range of memory
 * latencies (1 cycle to millions) with power-of-two buckets, so p50/
 * p90/p99 queries stay meaningful without tuning a bucket width per
 * metric.
 *
 * Bucket semantics (pinned by tests/test_metrics.cc):
 *   bucket 0          covers [0, 1)  (negatives are clamped to 0)
 *   bucket i (i >= 1) covers [2^(i-1), 2^i)  — an exact power of two
 *                     lands in the bucket it LOWER-bounds
 *   values >= 2^(n_buckets-1) land in the explicit overflow counter
 */

#ifndef LATTE_METRICS_LATENCY_HISTOGRAM_HH
#define LATTE_METRICS_LATENCY_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace latte::metrics
{

class LatencyHistogram
{
  public:
    /** Bucket 33 covers [2^32, 2^33): ample for cycle latencies. */
    static constexpr unsigned kDefaultBuckets = 34;

    explicit LatencyHistogram(unsigned n_buckets = kDefaultBuckets);

    /** Record one sample; negatives count as 0. */
    void record(double v);

    std::uint64_t count() const { return count_; }
    std::uint64_t overflow() const { return overflow_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const;

    /** Number of regular buckets (the overflow counter is separate). */
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * Bucket a value falls in; numBuckets() means the overflow counter.
     */
    unsigned bucketIndexFor(double v) const;

    /** [lower, upper) bounds of bucket @p i (i < numBuckets()). */
    double bucketLowerBound(unsigned i) const;
    double bucketUpperBound(unsigned i) const;

    /**
     * Percentile query, @p p in [0, 100]. Linear interpolation inside
     * the containing bucket, clamped to [min(), max()] so a
     * single-sample histogram returns exactly that sample and queries
     * never extrapolate past observed values. Empty histogram: 0.
     */
    double percentile(double p) const;

    /**
     * Fold @p other into this histogram (bucket-wise add). Both sides
     * must have the same bucket count.
     */
    void merge(const LatencyHistogram &other);

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace latte::metrics

#endif // LATTE_METRICS_LATENCY_HISTOGRAM_HH
