#include "latency_histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace latte::metrics
{

LatencyHistogram::LatencyHistogram(unsigned n_buckets)
    : buckets_(n_buckets, 0)
{
    latte_assert(n_buckets >= 2,
                 "LatencyHistogram needs bucket 0 plus at least [1,2)");
}

unsigned
LatencyHistogram::bucketIndexFor(double v) const
{
    if (!(v >= 1.0))
        return 0; // [0,1), negatives and NaN clamp here
    // Guard the uint64 cast: anything this large is overflow anyway.
    if (v >= 9.0e18)
        return numBuckets();
    const auto iv = static_cast<std::uint64_t>(v);
    // bit_width(1) == 1 -> bucket 1 covers [1,2); an exact power of two
    // 2^k has bit_width k+1, landing in the bucket it lower-bounds.
    const unsigned idx = static_cast<unsigned>(std::bit_width(iv));
    return std::min(idx, numBuckets());
}

double
LatencyHistogram::bucketLowerBound(unsigned i) const
{
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double
LatencyHistogram::bucketUpperBound(unsigned i) const
{
    return std::ldexp(1.0, static_cast<int>(i));
}

void
LatencyHistogram::record(double v)
{
    v = std::max(v, 0.0);
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;

    const unsigned idx = bucketIndexFor(v);
    if (idx < numBuckets())
        ++buckets_[idx];
    else
        ++overflow_;
}

double
LatencyHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);

    // Rank of the sample the percentile asks for, 1-based.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));

    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < numBuckets(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cumulative + buckets_[i] >= rank) {
            const double fraction =
                static_cast<double>(rank - cumulative) /
                static_cast<double>(buckets_[i]);
            const double lo = bucketLowerBound(i);
            const double hi = bucketUpperBound(i);
            return std::clamp(lo + fraction * (hi - lo), min_, max_);
        }
        cumulative += buckets_[i];
    }
    // Rank landed in the overflow bucket: the best bound is the
    // observed maximum.
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    latte_assert(numBuckets() == other.numBuckets(),
                 "merging histograms with different bucket counts");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (unsigned i = 0; i < numBuckets(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

} // namespace latte::metrics
