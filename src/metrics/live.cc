#include "live.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>

#include "common/logging.hh"
#include "registry.hh"

namespace latte::metrics::live
{

struct CellScope::Slot
{
    std::string label;
    std::string context;
    std::chrono::steady_clock::time_point started;
    std::atomic<std::uint64_t> cycle{0};
    std::atomic<std::uint64_t> instructions{0};
};

namespace
{

/** Guards the slot set; slots themselves are read via atomics. */
std::mutex g_mutex;
std::set<CellScope::Slot *> g_slots;
std::atomic<std::uint64_t> g_finished{0};

thread_local CellScope::Slot *t_current = nullptr;

} // namespace

CellScope::CellScope(std::string label) : slot_(new Slot)
{
    slot_->label = std::move(label);
    slot_->context = logContext();
    slot_->started = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        g_slots.insert(slot_);
    }
    t_current = slot_;
}

CellScope::~CellScope()
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        g_slots.erase(slot_);
    }
    if (t_current == slot_)
        t_current = nullptr;
    g_finished.fetch_add(1, std::memory_order_relaxed);
    delete slot_;
}

void
CellScope::publish(std::uint64_t cycle, std::uint64_t instructions)
{
    Slot *slot = t_current;
    if (!slot)
        return;
    slot->cycle.store(cycle, std::memory_order_relaxed);
    slot->instructions.store(instructions, std::memory_order_relaxed);
}

std::vector<CellSample>
snapshot()
{
    std::vector<CellSample> out;
    std::lock_guard<std::mutex> lock(g_mutex);
    out.reserve(g_slots.size());
    for (const CellScope::Slot *slot : g_slots) {
        CellSample sample;
        sample.label = slot->label;
        sample.context = slot->context;
        sample.cycle = slot->cycle.load(std::memory_order_relaxed);
        sample.instructions =
            slot->instructions.load(std::memory_order_relaxed);
        sample.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             slot->started)
                             .count();
        out.push_back(std::move(sample));
    }
    return out;
}

std::uint64_t
cellsFinished()
{
    return g_finished.load(std::memory_order_relaxed);
}

void
writePrometheus(std::ostream &os)
{
    const std::vector<CellSample> cells = snapshot();

    const std::string in_flight = prometheusName("live_cells_in_flight");
    os << "# TYPE " << in_flight << " gauge\n";
    os << in_flight << " " << cells.size() << "\n";

    const std::string finished =
        prometheusName("live_cells_finished_total");
    os << "# TYPE " << finished << " counter\n";
    os << finished << " " << cellsFinished() << "\n";

    if (cells.empty())
        return;
    // All samples of a metric must form one block after its TYPE line.
    std::vector<std::string> rendered;
    rendered.reserve(cells.size());
    for (const CellSample &cell : cells) {
        MetricLabels labels = {{"cell", cell.label}};
        if (!cell.context.empty())
            labels.emplace_back("ctx", cell.context);
        rendered.push_back(prometheusLabels(labels));
    }
    const std::string cycle = prometheusName("live_cell_cycle");
    os << "# TYPE " << cycle << " gauge\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
        os << cycle << rendered[i] << " " << cells[i].cycle << "\n";
    const std::string instr = prometheusName("live_cell_instructions");
    os << "# TYPE " << instr << " gauge\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
        os << instr << rendered[i] << " " << cells[i].instructions
           << "\n";
    const std::string secs = prometheusName("live_cell_seconds");
    os << "# TYPE " << secs << " gauge\n";
    for (std::size_t i = 0; i < cells.size(); ++i)
        os << secs << rendered[i] << " "
           << prometheusNumber(cells[i].seconds) << "\n";
}

} // namespace latte::metrics::live
