#include "profiler.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

namespace latte::metrics
{

const char *
profileZoneName(ProfileZone zone)
{
    switch (zone) {
      case ProfileZone::SmIssue: return "sm_issue";
      case ProfileZone::L1Access: return "l1_access";
      case ProfileZone::CompressorProbe: return "compressor_probe";
      case ProfileZone::CompressorCompress:
        return "compressor_compress";
      case ProfileZone::L2Access: return "l2_access";
      case ProfileZone::DramAccess: return "dram_access";
      case ProfileZone::RunnerSerialize: return "runner_serialize";
    }
    return "unknown";
}

namespace detail
{
std::atomic<bool> profilerEnabledFlag{false};
} // namespace detail

namespace
{

using Totals = std::array<ZoneTotals, kNumProfileZones>;

struct ProfilerState
{
    std::mutex mutex;
    /** Totals flushed from exited threads (and explicit resets). */
    Totals flushed{};
    /** Live per-thread buffers, registered on first record. */
    std::vector<const Totals *> live;
};

ProfilerState &
state()
{
    // Leaked singleton: thread-exit flushes may run during static
    // destruction, after a function-local static would be gone.
    static ProfilerState *s = new ProfilerState;
    return *s;
}

/** Registers this thread's buffer on construction, flushes on exit. */
struct ThreadBuffer
{
    Totals totals{};

    ThreadBuffer()
    {
        ProfilerState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.live.push_back(&totals);
    }

    ~ThreadBuffer()
    {
        ProfilerState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        for (std::size_t z = 0; z < kNumProfileZones; ++z) {
            s.flushed[z].calls += totals[z].calls;
            s.flushed[z].nanos += totals[z].nanos;
        }
        s.live.erase(std::remove(s.live.begin(), s.live.end(), &totals),
                     s.live.end());
    }
};

thread_local ThreadBuffer tlsBuffer;

} // namespace

namespace detail
{

void
profilerRecord(ProfileZone zone, std::uint64_t nanos)
{
    ZoneTotals &t = tlsBuffer.totals[static_cast<std::size_t>(zone)];
    ++t.calls;
    t.nanos += nanos;
}

} // namespace detail

void
setProfilerEnabled(bool enabled)
{
    detail::profilerEnabledFlag.store(enabled,
                                      std::memory_order_relaxed);
}

void
profilerReset()
{
    ProfilerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.flushed = Totals{};
    for (const Totals *live : s.live)
        *const_cast<Totals *>(live) = Totals{};
}

std::array<ZoneTotals, kNumProfileZones>
profilerSnapshot()
{
    ProfilerState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    Totals out = s.flushed;
    for (const Totals *live : s.live) {
        for (std::size_t z = 0; z < kNumProfileZones; ++z) {
            out[z].calls += (*live)[z].calls;
            out[z].nanos += (*live)[z].nanos;
        }
    }
    return out;
}

void
writeProfileJsonl(std::ostream &os)
{
    const Totals totals = profilerSnapshot();
    for (std::size_t z = 0; z < kNumProfileZones; ++z) {
        if (totals[z].calls == 0)
            continue;
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "{\"calls\":%llu,\"seconds\":%.9f,\"type\":\"profile\","
            "\"zone\":\"%s\"}\n",
            static_cast<unsigned long long>(totals[z].calls),
            static_cast<double>(totals[z].nanos) * 1e-9,
            profileZoneName(static_cast<ProfileZone>(z)));
        os << line;
    }
}

void
writeProfilePrometheus(std::ostream &os)
{
    const Totals totals = profilerSnapshot();
    os << "# TYPE latte_profile_calls_total counter\n";
    os << "# TYPE latte_profile_seconds_total counter\n";
    for (std::size_t z = 0; z < kNumProfileZones; ++z) {
        if (totals[z].calls == 0)
            continue;
        const char *name =
            profileZoneName(static_cast<ProfileZone>(z));
        char line[256];
        std::snprintf(line, sizeof(line),
                      "latte_profile_calls_total{zone=\"%s\"} %llu\n",
                      name,
                      static_cast<unsigned long long>(totals[z].calls));
        os << line;
        std::snprintf(line, sizeof(line),
                      "latte_profile_seconds_total{zone=\"%s\"} %.9f\n",
                      name,
                      static_cast<double>(totals[z].nanos) * 1e-9);
        os << line;
    }
}

} // namespace latte::metrics
