#include "sweep_service.hh"

#include <filesystem>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "metrics/live.hh"
#include "metrics/registry.hh"
#include "runner/experiment_runner.hh"
#include "sim/thread_pool.hh"

namespace latte::service
{

namespace
{

struct StateEntry
{
    JobState state;
    const char *name;
};

const StateEntry kStateTable[] = {
    {JobState::Queued, "queued"},     {JobState::Running, "running"},
    {JobState::Done, "done"},         {JobState::Failed, "failed"},
    {JobState::Cancelled, "cancelled"},
};

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

const char *
jobStateName(JobState state)
{
    for (const StateEntry &entry : kStateTable) {
        if (entry.state == state)
            return entry.name;
    }
    latte_panic("unknown JobState {}", static_cast<int>(state));
}

const JobState *
jobStateFromName(const std::string &name)
{
    for (const StateEntry &entry : kStateTable) {
        if (name == entry.name)
            return &entry.state;
    }
    return nullptr;
}

runner::Json
JobInfo::toJson() const
{
    runner::Json::Object object;
    object["id"] = runner::Json(id);
    object["client"] = runner::Json(client);
    object["priority"] =
        priority >= 0
            ? runner::Json(static_cast<std::uint64_t>(priority))
            : runner::Json(static_cast<double>(priority));
    object["state"] = runner::Json(jobStateName(state));
    object["spec"] = spec.toJson();
    object["cells_total"] = runner::Json(
        static_cast<std::uint64_t>(cellsTotal));
    object["cells_done"] =
        runner::Json(static_cast<std::uint64_t>(cellsDone));
    object["cells_failed"] =
        runner::Json(static_cast<std::uint64_t>(cellsFailed));
    object["cells_cached"] =
        runner::Json(static_cast<std::uint64_t>(cellsCached));
    object["cells_executed"] =
        runner::Json(static_cast<std::uint64_t>(cellsExecuted));
    object["served_from_cache"] = runner::Json(servedFromCache);
    object["result_path"] = runner::Json(resultPath);
    object["error"] = runner::Json(error);
    return runner::Json(std::move(object));
}

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)), paused_(options_.startPaused)
{
    latte_assert(!options_.stateDir.empty(),
                 "SweepService needs a state directory");
    std::error_code ec;
    std::filesystem::create_directories(options_.stateDir, ec);
    if (ec)
        latte_fatal("latted: cannot create state dir {} ({})",
                    options_.stateDir, ec.message());

    replayJournal();

    const std::string journal_path = options_.stateDir + "/jobs.jsonl";
    journalOut_.open(journal_path, std::ios::app);
    if (!journalOut_)
        latte_fatal("latted: cannot append to {}", journal_path);

    scheduler_ = std::thread([this] { schedulerLoop(); });
}

SweepService::~SweepService()
{
    shutdown();
    if (scheduler_.joinable())
        scheduler_.join();
}

void
SweepService::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        // Cooperatively wind down the running job; its unstarted cells
        // become Cancelled outcomes and the job is requeued from the
        // journal on the next start.
        if (runningJob_ != 0)
            jobs_.at(runningJob_).cancelToken.cancel();
    }
    wake_.notify_all();
    changed_.notify_all();
}

std::string
SweepService::resultPathFor(std::uint64_t id) const
{
    return strfmt("{}/job-{}.result.json", options_.stateDir, id);
}

std::string
SweepService::cellJournalPathFor(std::uint64_t id) const
{
    return strfmt("{}/job-{}.journal.jsonl", options_.stateDir, id);
}

void
SweepService::journal(const runner::Json &record)
{
    std::lock_guard<std::mutex> lock(journalMutex_);
    journalOut_ << record.dump() << "\n";
    journalOut_.flush();
}

void
SweepService::replayJournal()
{
    const std::string path = options_.stateDir + "/jobs.jsonl";
    std::ifstream in(path);
    if (!in)
        return;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string error;
        const runner::Json record = runner::Json::parse(line, &error);
        if (!error.empty()) {
            // A truncated trailing line is the expected SIGKILL residue
            // and degrades to "record never happened"; the submit ack
            // is only sent after the flush, so no acknowledged job is
            // lost this way.
            latte_warn("latted: ignoring unparsable journal line ({})",
                       error);
            continue;
        }
        if (record.type() != runner::Json::Type::Object ||
            !record.contains("type") || !record.contains("job"))
            continue;
        const std::string &type = record.at("type").asString();
        const std::uint64_t id = record.at("job").asUint();

        if (type == "submit") {
            runner::SweepSpec spec;
            std::string spec_error;
            if (!record.contains("spec") ||
                !runner::SweepSpec::fromJson(record.at("spec"), spec,
                                             &spec_error)) {
                latte_warn("latted: dropping journaled job {} with "
                           "unreadable spec ({})",
                           id, spec_error);
                continue;
            }
            // try_emplace: Job holds a CancelToken (atomics), so it is
            // built in place rather than moved.
            Job &job = jobs_.try_emplace(id).first->second;
            job.info.id = id;
            if (record.contains("client"))
                job.info.client = record.at("client").asString();
            if (record.contains("priority")) {
                const runner::Json &p = record.at("priority");
                job.info.priority =
                    p.type() == runner::Json::Type::Uint
                        ? static_cast<std::int64_t>(p.asUint())
                        : static_cast<std::int64_t>(p.asDouble());
            }
            job.info.spec = std::move(spec);
            job.info.cellsTotal = job.info.spec.cellCount();
            job.enqueuedAt = std::chrono::steady_clock::now();
            nextJobId_ = std::max(nextJobId_, id + 1);
        } else if (type == "done") {
            const auto it = jobs_.find(id);
            if (it == jobs_.end())
                continue;
            JobInfo &info = it->second.info;
            if (record.contains("state")) {
                if (const JobState *state = jobStateFromName(
                        record.at("state").asString()))
                    info.state = *state;
            }
            auto counter = [&](const char *key, std::size_t &out) {
                if (record.contains(key))
                    out = record.at(key).asUint();
            };
            counter("cells_total", info.cellsTotal);
            counter("cells_done", info.cellsDone);
            counter("cells_failed", info.cellsFailed);
            counter("cells_cached", info.cellsCached);
            counter("cells_executed", info.cellsExecuted);
            if (record.contains("served_from_cache"))
                info.servedFromCache =
                    record.at("served_from_cache").asBool();
            if (record.contains("error"))
                info.error = record.at("error").asString();
            if (info.state == JobState::Done)
                info.resultPath = resultPathFor(id);
        } else if (type == "cancel") {
            const auto it = jobs_.find(id);
            if (it != jobs_.end() && !it->second.info.terminal()) {
                it->second.info.state = JobState::Cancelled;
                it->second.info.error = "cancelled before restart";
            }
        }
    }

    // Everything still Queued (or caught mid-Running by the kill) is
    // requeued; the per-job cell journal resumes the sweep itself.
    for (auto &[id, job] : jobs_) {
        if (job.info.state == JobState::Running)
            job.info.state = JobState::Queued;
        if (job.info.state == JobState::Queued)
            ++counters_.recovered;
    }
}

std::uint64_t
SweepService::submit(const runner::SweepSpec &spec,
                     const std::string &client, std::int64_t priority,
                     std::string *error)
{
    const std::string problem = spec.validate();
    if (!problem.empty()) {
        if (error)
            *error = "invalid spec: " + problem;
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.rejected;
        return 0;
    }

    runner::Json::Object record;
    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t queued = 0, live = 0;
        for (const auto &[job_id, job] : jobs_) {
            if (job.info.state == JobState::Queued)
                ++queued;
            if (!job.info.terminal() && job.info.client == client)
                ++live;
        }
        if (queued >= options_.maxQueue) {
            if (error)
                *error = "queue full";
            ++counters_.rejected;
            return 0;
        }
        if (live >= options_.clientQuota) {
            if (error)
                *error = "client quota exceeded";
            ++counters_.rejected;
            return 0;
        }

        id = nextJobId_++;
        Job &job = jobs_.try_emplace(id).first->second;
        job.info.id = id;
        job.info.client = client;
        job.info.priority = priority;
        job.info.spec = spec;
        job.info.cellsTotal = spec.cellCount();
        job.enqueuedAt = std::chrono::steady_clock::now();
        ++counters_.submitted;

        record["type"] = runner::Json("submit");
        record["job"] = runner::Json(id);
        record["client"] = runner::Json(client);
        record["priority"] =
            priority >= 0
                ? runner::Json(static_cast<std::uint64_t>(priority))
                : runner::Json(static_cast<double>(priority));
        record["spec"] = spec.toJson();
    }

    // Flushed before the caller sees the id: an acknowledged submit
    // survives SIGKILL.
    journal(runner::Json(std::move(record)));

    runner::Json::Object event;
    event["event"] = runner::Json("job_queued");
    event["job"] = runner::Json(id);
    event["client"] = runner::Json(client);
    emitEvent(runner::Json(std::move(event)));

    wake_.notify_all();
    return id;
}

bool
SweepService::cancel(std::uint64_t id, std::string *error)
{
    bool queued_cancel = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            if (error)
                *error = "unknown job";
            return false;
        }
        Job &job = it->second;
        if (job.info.terminal()) {
            if (error)
                *error = "job already " +
                         std::string(jobStateName(job.info.state));
            return false;
        }
        if (job.info.state == JobState::Running) {
            // Cooperative: unstarted cells are skipped, in-flight cells
            // finish; execute() observes the token and marks the job.
            job.cancelToken.cancel();
        } else {
            job.info.state = JobState::Cancelled;
            job.info.error = "cancelled";
            ++counters_.cancelled;
            queued_cancel = true;
        }
    }

    runner::Json::Object record;
    record["type"] = runner::Json("cancel");
    record["job"] = runner::Json(id);
    journal(runner::Json(std::move(record)));

    if (queued_cancel) {
        runner::Json::Object event;
        event["event"] = runner::Json("job_done");
        event["job"] = runner::Json(id);
        event["state"] = runner::Json("cancelled");
        emitEvent(runner::Json(std::move(event)));
        changed_.notify_all();
    }
    return true;
}

std::optional<JobInfo>
SweepService::job(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second.info;
}

std::vector<JobInfo>
SweepService::jobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobInfo> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        out.push_back(job.info);
    return out;
}

bool
SweepService::waitJob(std::uint64_t id, JobInfo &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    changed_.wait(lock,
                  [&] { return stop_ || it->second.info.terminal(); });
    out = it->second.info;
    return true;
}

void
SweepService::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] {
        if (stop_)
            return true;
        if (runningJob_ != 0)
            return false;
        for (const auto &[id, job] : jobs_) {
            if (job.info.state == JobState::Queued)
                return false;
        }
        return true;
    });
}

void
SweepService::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    wake_.notify_all();
}

ServiceCounters
SweepService::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t
SweepService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t queued = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.info.state == JobState::Queued)
            ++queued;
    }
    return queued;
}

std::string
SweepService::metricsPrometheus() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mutex_);

    std::size_t perState[sizeof(kStateTable) / sizeof(kStateTable[0])] =
        {};
    for (const auto &[id, job] : jobs_) {
        for (std::size_t s = 0;
             s < sizeof(kStateTable) / sizeof(kStateTable[0]); ++s) {
            if (job.info.state == kStateTable[s].state)
                ++perState[s];
        }
    }
    const std::size_t queued =
        perState[static_cast<std::size_t>(JobState::Queued)];

    const auto gauge = [&](const char *name, double value) {
        const std::string metric = metrics::prometheusName(name);
        os << "# TYPE " << metric << " gauge\n";
        os << metric << " " << metrics::prometheusNumber(value) << "\n";
    };
    const auto counter = [&](const char *name, std::uint64_t value) {
        const std::string metric = metrics::prometheusName(name);
        os << "# TYPE " << metric << " counter\n";
        os << metric << " " << value << "\n";
    };
    gauge("service_uptime_seconds",
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() - startedAt_)
              .count());
    gauge("service_queue_depth", static_cast<double>(queued));
    gauge("service_jobs_running", runningJob_ != 0 ? 1.0 : 0.0);
    {
        // Per-state job gauges: one block, one labeled sample each.
        const std::string metric =
            metrics::prometheusName("service_jobs");
        os << "# TYPE " << metric << " gauge\n";
        for (std::size_t s = 0;
             s < sizeof(kStateTable) / sizeof(kStateTable[0]); ++s) {
            os << metric
               << metrics::prometheusLabels(
                      {{"state", kStateTable[s].name}})
               << " " << perState[s] << "\n";
        }
    }
    counter("service_jobs_submitted_total", counters_.submitted);
    counter("service_jobs_rejected_total", counters_.rejected);
    counter("service_jobs_completed_total", counters_.completed);
    counter("service_jobs_failed_total", counters_.failed);
    counter("service_jobs_cancelled_total", counters_.cancelled);
    counter("service_jobs_served_from_cache_total",
            counters_.jobsServedFromCache);
    counter("service_jobs_recovered_total", counters_.recovered);
    counter("service_cells_done_total", cellsDoneTotal_);
    counter("service_cells_failed_total", cellsFailedTotal_);
    counter("service_cells_cached_total", cellsCachedTotal_);
    counter("service_cells_executed_total", cellsExecutedTotal_);
    counter("service_cell_near_misses_total", cellNearMissesTotal_);
    metrics::writeHistogramPrometheus(os, "service_job_queue_wait_ms",
                                      queueWaitMs_);
    metrics::writeHistogramPrometheus(os, "service_job_run_ms",
                                      runDurationMs_);
    metrics::writeHistogramPrometheus(os, "service_cell_wall_ms",
                                      cellWallMs_);

    // Live mid-run gauges and the sim-pool aggregate ride along, so
    // the wire "metrics" verb and GET /metrics serve identical text.
    metrics::live::writePrometheus(os);
    os << simPoolPrometheus();
    return os.str();
}

runner::Json
SweepService::healthzJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    runner::Json::Object doc;
    doc["status"] = runner::Json(stop_ ? "shutting_down" : "ok");
    doc["uptime_seconds"] = runner::Json(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startedAt_)
            .count());

    std::size_t queued = 0;
    runner::Json::Object states;
    for (const StateEntry &entry : kStateTable) {
        std::uint64_t n = 0;
        for (const auto &[id, job] : jobs_) {
            if (job.info.state == entry.state)
                ++n;
        }
        states[entry.name] = runner::Json(n);
        if (entry.state == JobState::Queued)
            queued = n;
    }
    doc["queue_depth"] =
        runner::Json(static_cast<std::uint64_t>(queued));
    doc["running_job"] = runner::Json(runningJob_);
    doc["jobs"] = runner::Json(std::move(states));

    runner::Json::Object cells;
    cells["done"] = runner::Json(cellsDoneTotal_);
    cells["failed"] = runner::Json(cellsFailedTotal_);
    cells["cached"] = runner::Json(cellsCachedTotal_);
    cells["executed"] = runner::Json(cellsExecutedTotal_);
    cells["near_misses"] = runner::Json(cellNearMissesTotal_);
    doc["cells"] = runner::Json(std::move(cells));
    doc["last_error"] = runner::Json(lastError_);
    return runner::Json(std::move(doc));
}

std::uint64_t
SweepService::addListener(EventListener listener)
{
    std::lock_guard<std::mutex> lock(listenersMutex_);
    const std::uint64_t token = nextListener_++;
    listeners_.emplace(token, std::move(listener));
    return token;
}

void
SweepService::removeListener(std::uint64_t token)
{
    std::lock_guard<std::mutex> lock(listenersMutex_);
    listeners_.erase(token);
}

void
SweepService::emitEvent(runner::Json event)
{
    runner::Json::Object object = event.asObject();
    object["type"] = runner::Json("event");
    const runner::Json wrapped(std::move(object));

    // Copy listeners out so a slow/sending listener never blocks
    // submit/cancel paths holding service locks.
    std::vector<EventListener> snapshot;
    {
        std::lock_guard<std::mutex> lock(listenersMutex_);
        snapshot.reserve(listeners_.size());
        for (const auto &[token, listener] : listeners_)
            snapshot.push_back(listener);
    }
    for (const EventListener &listener : snapshot)
        listener(wrapped);
}

std::uint64_t
SweepService::pickNext() const
{
    std::uint64_t best = 0;
    std::int64_t best_priority = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.info.state != JobState::Queued)
            continue;
        // Higher priority wins; the map's id order makes equal
        // priorities FIFO.
        if (best == 0 || job.info.priority > best_priority) {
            best = id;
            best_priority = job.info.priority;
        }
    }
    return best;
}

void
SweepService::schedulerLoop()
{
    setLogThreadName("sched");
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (!paused_ && pickNext() != 0);
        });
        if (stop_)
            return;

        const std::uint64_t id = pickNext();
        Job &job = jobs_.at(id);
        job.info.state = JobState::Running;
        runningJob_ = id;
        queueWaitMs_.record(millisSince(job.enqueuedAt));

        lock.unlock();
        {
            runner::Json::Object event;
            event["event"] = runner::Json("job_started");
            event["job"] = runner::Json(id);
            emitEvent(runner::Json(std::move(event)));
        }
        const auto started = std::chrono::steady_clock::now();
        execute(job);
        lock.lock();

        runDurationMs_.record(millisSince(started));
        runningJob_ = 0;
        changed_.notify_all();
    }
}

void
SweepService::execute(Job &job)
{
    const std::uint64_t id = job.info.id;
    const runner::SweepSpec &spec = job.info.spec;

    // Correlate every log line of this job — the scheduler thread's
    // own lines here, and each worker's per-cell lines through
    // RunnerOptions::logContext — under one greppable "job-<id>/" id.
    const std::string correlation = strfmt("job-{}/", id);
    LogScope job_ctx(correlation);

    std::vector<RunRequest> cells;
    std::string error;
    if (!spec.expand(cells, &error)) {
        finishJob(job, JobState::Failed, std::move(error));
        return;
    }
    latte_inform("job {} started: {} cell(s), client '{}'", id,
                 cells.size(), job.info.client);

    runner::RunnerOptions runner_options;
    runner_options.threads = options_.threads;
    runner_options.cacheDir = options_.cacheDir;
    runner_options.progress = options_.progress;
    runner_options.logContext = correlation;
    runner_options.journalPath = cellJournalPathFor(id);
    runner_options.cellTimeoutMs = spec.cellTimeoutMs;
    runner_options.cellCycleBudget = spec.cellCycleBudget;
    runner_options.maxRetries = spec.retries;
    runner_options.retryBackoffMs = spec.retryBackoffMs;
    runner_options.cancel = &job.cancelToken;
    runner_options.onCellDone = [&](std::size_t index,
                                    const RunOutcome &outcome,
                                    bool shortcut) {
        {
            // mutex_ also guards these against concurrent job()/jobs()
            // snapshots; the scheduler thread does not hold it while a
            // job executes, so this cannot deadlock.
            std::lock_guard<std::mutex> lock(mutex_);
            ++job.info.cellsDone;
            ++cellsDoneTotal_;
            if (!outcome.ok()) {
                ++job.info.cellsFailed;
                ++cellsFailedTotal_;
            }
            if (shortcut) {
                ++job.info.cellsCached;
                ++cellsCachedTotal_;
            }
        }
        runner::Json::Object event;
        event["event"] = runner::Json("cell_done");
        event["job"] = runner::Json(id);
        event["cell"] = runner::Json(static_cast<std::uint64_t>(index));
        event["of"] =
            runner::Json(static_cast<std::uint64_t>(cells.size()));
        event["status"] = runner::Json(runStatusName(outcome.status));
        event["cached"] = runner::Json(shortcut);
        emitEvent(runner::Json(std::move(event)));
    };

    runner::ExperimentRunner runner(std::move(runner_options));
    const std::vector<RunOutcome> outcomes = runner.runAll(cells);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.info.cellsExecuted = runner.stats().executed;
        cellsExecutedTotal_ += runner.stats().executed;
        cellNearMissesTotal_ += runner.stats().nearMisses;
        cellWallMs_.merge(runner.cellWallMs());
        if (stop_ && job.cancelToken.cancelled()) {
            // Shutdown, not a user cancel: journal nothing, so the
            // next start replays the submit record and requeues the
            // job — its finished cells resume from the cell journal.
            job.info.state = JobState::Queued;
            return;
        }
    }

    if (job.cancelToken.cancelled()) {
        finishJob(job, JobState::Cancelled, "cancelled while running");
        return;
    }

    // Publish the canonical export atomically BEFORE journaling "done":
    // a kill between the two requeues the job, which then rewrites the
    // identical bytes (every cell is now in cache/journal).
    const std::string result_path = resultPathFor(id);
    const std::string tmp_path =
        strfmt("{}.tmp{}", result_path,
               static_cast<std::uint64_t>(::getpid()));
    {
        std::ofstream out(tmp_path);
        if (!out) {
            finishJob(job, JobState::Failed,
                      "cannot write " + tmp_path);
            return;
        }
        out << runner::outcomesToJson(outcomes).dump(2) << "\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, result_path, ec);
    if (ec) {
        finishJob(job, JobState::Failed,
                  "cannot publish " + result_path + " (" +
                      ec.message() + ")");
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.info.resultPath = result_path;
    }
    finishJob(job, JobState::Done, "");
}

void
SweepService::finishJob(Job &job, JobState state, std::string error)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.info.state = state;
        job.info.error = std::move(error);
        job.info.servedFromCache =
            state == JobState::Done && job.info.cellsExecuted == 0 &&
            job.info.cellsTotal > 0;
        switch (state) {
          case JobState::Done:
            ++counters_.completed;
            if (job.info.servedFromCache)
                ++counters_.jobsServedFromCache;
            break;
          case JobState::Failed: ++counters_.failed; break;
          case JobState::Cancelled: ++counters_.cancelled; break;
          default: latte_panic("finishJob with live state");
        }
        if (state != JobState::Done && !job.info.error.empty())
            lastError_ = strfmt("job {}: {}", job.info.id,
                                job.info.error);
    }
    latte_inform("job {} {}: {}/{} cell(s) done, {} failed, {} cached, "
                 "{} executed{}",
                 job.info.id, jobStateName(state), job.info.cellsDone,
                 job.info.cellsTotal, job.info.cellsFailed,
                 job.info.cellsCached, job.info.cellsExecuted,
                 job.info.error.empty() ? std::string()
                                        : " — " + job.info.error);

    runner::Json::Object record;
    record["type"] = runner::Json("done");
    record["job"] = runner::Json(job.info.id);
    record["state"] = runner::Json(jobStateName(state));
    record["cells_total"] = runner::Json(
        static_cast<std::uint64_t>(job.info.cellsTotal));
    record["cells_done"] =
        runner::Json(static_cast<std::uint64_t>(job.info.cellsDone));
    record["cells_failed"] =
        runner::Json(static_cast<std::uint64_t>(job.info.cellsFailed));
    record["cells_cached"] =
        runner::Json(static_cast<std::uint64_t>(job.info.cellsCached));
    record["cells_executed"] = runner::Json(
        static_cast<std::uint64_t>(job.info.cellsExecuted));
    record["served_from_cache"] =
        runner::Json(job.info.servedFromCache);
    record["error"] = runner::Json(job.info.error);
    journal(runner::Json(std::move(record)));

    runner::Json::Object event;
    event["event"] = runner::Json("job_done");
    event["job"] = runner::Json(job.info.id);
    event["state"] = runner::Json(jobStateName(state));
    event["served_from_cache"] =
        runner::Json(job.info.servedFromCache);
    emitEvent(runner::Json(std::move(event)));
    changed_.notify_all();
}

} // namespace latte::service
