#include "dispatcher.hh"

namespace latte::service
{

namespace
{

using runner::Json;

/** {"ok":false,"error":{"code":...,"message":...}} (+ echoed id). */
Json
errorResponse(const std::string &code, const std::string &message,
              const Json &request)
{
    Json::Object error;
    error["code"] = Json(code);
    error["message"] = Json(message);
    Json::Object response;
    response["ok"] = Json(false);
    response["error"] = Json(std::move(error));
    if (request.type() == Json::Type::Object && request.contains("id"))
        response["id"] = request.at("id");
    return Json(std::move(response));
}

/** {"ok":true,"type":<echo>} (+ echoed id), ready for extra fields. */
Json::Object
okResponse(const std::string &type, const Json &request)
{
    Json::Object response;
    response["ok"] = Json(true);
    response["type"] = Json(type);
    if (request.contains("id"))
        response["id"] = request.at("id");
    return response;
}

bool
jobIdOf(const Json &request, std::uint64_t &id)
{
    if (!request.contains("job") ||
        request.at("job").type() != Json::Type::Uint)
        return false;
    id = request.at("job").asUint();
    return true;
}

} // namespace

runner::Json
RequestDispatcher::handle(const std::string &line, Session &session)
{
    std::string parse_error;
    const Json request = Json::parse(line, &parse_error);
    if (!parse_error.empty())
        return errorResponse("bad_json", parse_error, Json());
    if (request.type() != Json::Type::Object ||
        !request.contains("type") ||
        request.at("type").type() != Json::Type::String)
        return errorResponse("bad_json",
                             "request must be an object with a "
                             "string \"type\"",
                             request);

    // Any request may (re)name the session's client identity; it is
    // sticky so subsequent requests on the connection inherit it.
    if (request.contains("client") &&
        request.at("client").type() == Json::Type::String)
        session.client = request.at("client").asString();

    const std::string &type = request.at("type").asString();

    if (type == "ping")
        return Json(okResponse("ping", request));

    if (type == "submit") {
        if (!request.contains("spec"))
            return errorResponse("invalid_spec", "missing \"spec\"",
                                 request);
        runner::SweepSpec spec;
        std::string spec_error;
        if (!runner::SweepSpec::fromJson(request.at("spec"), spec,
                                         &spec_error))
            return errorResponse("invalid_spec", spec_error, request);
        std::int64_t priority = 0;
        if (request.contains("priority")) {
            const Json &p = request.at("priority");
            if (p.type() == Json::Type::Uint)
                priority = static_cast<std::int64_t>(p.asUint());
            else if (p.type() == Json::Type::Double)
                priority = static_cast<std::int64_t>(p.asDouble());
        }

        std::string submit_error;
        const std::uint64_t id =
            service_.submit(spec, session.client, priority,
                            &submit_error);
        if (id == 0) {
            std::string code = "invalid_spec";
            if (submit_error == "queue full")
                code = "queue_full";
            else if (submit_error == "client quota exceeded")
                code = "quota_exceeded";
            return errorResponse(code, submit_error, request);
        }
        Json::Object response = okResponse("submit", request);
        response["job"] = Json(id);
        return Json(std::move(response));
    }

    if (type == "status") {
        std::uint64_t id = 0;
        if (!jobIdOf(request, id))
            return errorResponse("unknown_job", "missing \"job\"",
                                 request);
        const auto info = service_.job(id);
        if (!info)
            return errorResponse("unknown_job",
                                 "no such job: " + std::to_string(id),
                                 request);
        Json::Object response = okResponse("status", request);
        response["info"] = info->toJson();
        return Json(std::move(response));
    }

    if (type == "wait") {
        std::uint64_t id = 0;
        if (!jobIdOf(request, id))
            return errorResponse("unknown_job", "missing \"job\"",
                                 request);
        JobInfo info;
        if (!service_.waitJob(id, info))
            return errorResponse("unknown_job",
                                 "no such job: " + std::to_string(id),
                                 request);
        Json::Object response = okResponse("wait", request);
        response["info"] = info.toJson();
        return Json(std::move(response));
    }

    if (type == "cancel") {
        std::uint64_t id = 0;
        if (!jobIdOf(request, id))
            return errorResponse("unknown_job", "missing \"job\"",
                                 request);
        std::string cancel_error;
        if (!service_.cancel(id, &cancel_error))
            return errorResponse("unknown_job", cancel_error, request);
        return Json(okResponse("cancel", request));
    }

    if (type == "jobs") {
        Json::Array list;
        for (const JobInfo &info : service_.jobs())
            list.push_back(info.toJson());
        Json::Object response = okResponse("jobs", request);
        response["jobs"] = Json(std::move(list));
        return Json(std::move(response));
    }

    if (type == "stats") {
        const ServiceCounters counters = service_.counters();
        Json::Object stats;
        stats["submitted"] = Json(counters.submitted);
        stats["rejected"] = Json(counters.rejected);
        stats["completed"] = Json(counters.completed);
        stats["failed"] = Json(counters.failed);
        stats["cancelled"] = Json(counters.cancelled);
        stats["jobs_served_from_cache"] =
            Json(counters.jobsServedFromCache);
        stats["recovered"] = Json(counters.recovered);
        stats["queue_depth"] = Json(
            static_cast<std::uint64_t>(service_.queueDepth()));
        Json::Object response = okResponse("stats", request);
        response["stats"] = Json(std::move(stats));
        return Json(std::move(response));
    }

    if (type == "metrics") {
        Json::Object response = okResponse("metrics", request);
        response["prometheus"] = Json(service_.metricsPrometheus());
        return Json(std::move(response));
    }

    if (type == "subscribe") {
        // job present: that job's events only; absent: every event.
        std::uint64_t filter = 0;
        const bool filtered = jobIdOf(request, filter);
        auto send = session.send;
        if (!send)
            return errorResponse("unknown_type",
                                 "session cannot receive events",
                                 request);
        const std::uint64_t token = service_.addListener(
            [send, filtered, filter](const Json &event) {
                if (filtered &&
                    (!event.contains("job") ||
                     event.at("job").asUint() != filter))
                    return;
                send(event);
            });
        session.listeners.push_back(token);
        return Json(okResponse("subscribe", request));
    }

    if (type == "shutdown") {
        // Deferred: invoking the hook here would let the daemon close
        // this connection before the acknowledgement is written.
        if (shutdown_)
            session.afterResponse = shutdown_;
        return Json(okResponse("shutdown", request));
    }

    return errorResponse("unknown_type",
                         "unknown request type '" + type + "'",
                         request);
}

void
RequestDispatcher::closeSession(Session &session)
{
    for (const std::uint64_t token : session.listeners)
        service_.removeListener(token);
    session.listeners.clear();
}

} // namespace latte::service
