/**
 * @file
 * SocketServer: binds a RequestDispatcher to an AF_UNIX stream socket
 * speaking line-delimited JSON. One reader thread per connection; event
 * subscriptions write to the same connection under a per-connection
 * write mutex, so responses and events never interleave bytes.
 *
 * Local-socket-only by design: latted is a per-user/per-machine job
 * server, and the filesystem socket inherits the directory's
 * permissions as its access control.
 */

#ifndef LATTE_SERVICE_SOCKET_SERVER_HH
#define LATTE_SERVICE_SOCKET_SERVER_HH

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dispatcher.hh"

namespace latte::service
{

class SocketServer
{
  public:
    SocketServer(RequestDispatcher &dispatcher, std::string socketPath);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind, listen and start the accept thread. False with @p error on
     * bind failure (e.g. a live daemon already owns the socket). A
     * stale socket file from a dead daemon is detected (connect fails)
     * and replaced.
     */
    bool start(std::string *error);

    /** Stop accepting, close every connection and join all threads. */
    void stop();

    const std::string &socketPath() const { return socketPath_; }

  private:
    struct Connection
    {
        int fd = -1;
        Session session;
        std::mutex writeMutex;
        std::thread reader;
    };

    void acceptLoop();
    void serveConnection(Connection &connection);

    RequestDispatcher &dispatcher_;
    std::string socketPath_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::thread acceptThread_;
    std::mutex connectionsMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
    bool running_ = false;
};

} // namespace latte::service

#endif // LATTE_SERVICE_SOCKET_SERVER_HH
