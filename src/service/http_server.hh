/**
 * @file
 * HttpServer: a deliberately minimal HTTP/1.0 server for latted's
 * observability surface — GET /metrics (Prometheus exposition),
 * GET /healthz and GET /jobs. It reuses the SocketServer's shape (a
 * poll()ed accept loop woken by a stop pipe, one short-lived thread
 * per connection) on an AF_INET listener bound to 127.0.0.1 by
 * default.
 *
 * Scope is intentional: GET only, exact path match, Connection: close
 * on every response, no keep-alive, no TLS, no request bodies. This is
 * a scrape endpoint for Prometheus and curl, not a web framework;
 * anything mutating goes through the authenticated unix socket.
 */

#ifndef LATTE_SERVICE_HTTP_SERVER_HH
#define LATTE_SERVICE_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace latte::service
{

class SweepService;

class HttpServer
{
  public:
    struct Response
    {
        int status = 200;
        std::string contentType = "text/plain; charset=utf-8";
        std::string body;
    };

    /** Produces the response for one GET of the registered path. */
    using Handler = std::function<Response()>;

    /**
     * @p addr is "host:port", ":port" or "port"; the host defaults to
     * 127.0.0.1. Port 0 binds an ephemeral port — read it back with
     * port() after start().
     */
    explicit HttpServer(std::string addr);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register @p handler for exact-match GETs of @p path. */
    void handle(std::string path, Handler handler);

    /** Bind, listen and start the accept thread; false with @p error. */
    bool start(std::string *error);

    /** Stop accepting, close connections, join every thread. */
    void stop();

    /** The bound port (meaningful after start(); resolves ":0"). */
    std::uint16_t port() const { return port_; }

    const std::string &address() const { return addr_; }

  private:
    struct Connection
    {
        int fd = -1;
        /** Set by the worker when the response is written (reaping). */
        std::atomic<bool> done{false};
        std::thread worker;
    };

    void acceptLoop();
    void serveConnection(int fd);
    Response dispatch(const std::string &method,
                      const std::string &path) const;

    std::string addr_;
    std::map<std::string, Handler> handlers_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::mutex connectionsMutex_;
    std::vector<std::unique_ptr<Connection>> connections_;
    bool running_ = false;
};

/**
 * Wire the standard observability endpoints of @p service onto
 * @p server: /metrics (Prometheus exposition including live cell
 * gauges and sim-pool histograms), /healthz (JSON liveness summary)
 * and /jobs (JSON job list, the HTTP mirror of the dispatcher's
 * "jobs" verb). Shared by latted and the tests so both serve
 * byte-identical content. @p service must outlive @p server.
 */
void registerServiceEndpoints(HttpServer &server, SweepService &service);

} // namespace latte::service

#endif // LATTE_SERVICE_HTTP_SERVER_HH
