#include "http_server.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "sweep_service.hh"

namespace latte::service
{

namespace
{

/** Write all of @p text, retrying short writes; false on a dead peer. */
bool
writeAll(int fd, const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::send(fd, text.data() + off,
                                 text.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Error";
    }
}

/**
 * Split "host:port" / ":port" / "port" into its parts. False when the
 * port is missing or not a number.
 */
bool
splitAddress(const std::string &addr, std::string &host,
             std::uint16_t &port)
{
    host = "127.0.0.1";
    std::string portText = addr;
    const std::size_t colon = addr.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            host = addr.substr(0, colon);
        portText = addr.substr(colon + 1);
    }
    if (portText.empty())
        return false;
    char *end = nullptr;
    const unsigned long value = std::strtoul(portText.c_str(), &end, 10);
    if (!end || *end != '\0' || value > 65535)
        return false;
    port = static_cast<std::uint16_t>(value);
    return true;
}

/** Cap on the request head we are willing to buffer. */
constexpr std::size_t kMaxRequestBytes = 8192;

} // namespace

HttpServer::HttpServer(std::string addr) : addr_(std::move(addr)) {}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::handle(std::string path, Handler handler)
{
    handlers_[std::move(path)] = std::move(handler);
}

bool
HttpServer::start(std::string *error)
{
    std::string host;
    std::uint16_t port = 0;
    if (!splitAddress(addr_, host, port)) {
        if (error)
            *error = "bad http address '" + addr_ +
                     "' (want [host:]port)";
        return false;
    }

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "bad http host '" + host + "' (want an IPv4 address)";
        return false;
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        if (error)
            *error = std::string("bind/listen ") + addr_ + ": " +
                     std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    // Resolve the actual port so ":0" callers can find the server.
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;

    if (::pipe(stopPipe_) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(stopPipe_[1], &byte, 1);
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<std::unique_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (const auto &connection : connections) {
        ::shutdown(connection->fd, SHUT_RDWR);
        if (connection->worker.joinable())
            connection->worker.join();
        ::close(connection->fd);
    }

    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
    ::close(listenFd_);
    listenFd_ = -1;
}

void
HttpServer::acceptLoop()
{
    setLogThreadName("http");
    for (;;) {
        pollfd fds[2] = {
            {listenFd_, POLLIN, 0},
            {stopPipe_[0], POLLIN, 0},
        };
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0)
            return; // stop() requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        std::lock_guard<std::mutex> lock(connectionsMutex_);
        // Connections are one-request-one-response; reap finished
        // threads here so a long-lived daemon does not accumulate one
        // joinable thread per scrape ever made.
        for (auto it = connections_.begin(); it != connections_.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                if ((*it)->worker.joinable())
                    (*it)->worker.join();
                ::close((*it)->fd);
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
        connections_.push_back(std::make_unique<Connection>());
        Connection &connection = *connections_.back();
        connection.fd = fd;
        connection.worker = std::thread([this, &connection] {
            setLogThreadName("http-c");
            serveConnection(connection.fd);
            connection.done.store(true, std::memory_order_release);
        });
    }
}

HttpServer::Response
HttpServer::dispatch(const std::string &method,
                     const std::string &path) const
{
    if (method != "GET") {
        return Response{405, "text/plain; charset=utf-8",
                        "method not allowed\n"};
    }
    const auto it = handlers_.find(path);
    if (it == handlers_.end())
        return Response{404, "text/plain; charset=utf-8", "not found\n"};
    return it->second();
}

void
HttpServer::serveConnection(int fd)
{
    // Read until the end of the request head; the body (there should
    // be none on a GET) is ignored.
    std::string buffer;
    char chunk[2048];
    while (buffer.find("\r\n\r\n") == std::string::npos &&
           buffer.find("\n\n") == std::string::npos &&
           buffer.size() < kMaxRequestBytes) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    Response response;
    const std::size_t eol = buffer.find_first_of("\r\n");
    std::istringstream line(buffer.substr(0, eol));
    std::string method, target, version;
    if (!(line >> method >> target >> version)) {
        response =
            Response{400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
        // Exact-path routing; strip any query string.
        const std::size_t query = target.find('?');
        if (query != std::string::npos)
            target.erase(query);
        response = dispatch(method, target);
        latte_debug("http {} {} -> {}", method, target, response.status);
    }

    std::ostringstream head;
    head << "HTTP/1.0 " << response.status << " "
         << statusReason(response.status) << "\r\n"
         << "Content-Type: " << response.contentType << "\r\n"
         << "Content-Length: " << response.body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    writeAll(fd, head.str() + response.body);
    ::shutdown(fd, SHUT_WR);
}

void
registerServiceEndpoints(HttpServer &server, SweepService &service)
{
    server.handle("/metrics", [&service] {
        HttpServer::Response response;
        // The Prometheus exposition format version tag.
        response.contentType = "text/plain; version=0.0.4";
        response.body = service.metricsPrometheus();
        return response;
    });
    server.handle("/healthz", [&service] {
        HttpServer::Response response;
        response.contentType = "application/json";
        response.body = service.healthzJson().dump(2) + "\n";
        return response;
    });
    server.handle("/jobs", [&service] {
        HttpServer::Response response;
        response.contentType = "application/json";
        runner::Json::Array jobs;
        for (const JobInfo &info : service.jobs())
            jobs.push_back(info.toJson());
        response.body = runner::Json(std::move(jobs)).dump(2) + "\n";
        return response;
    });
}

} // namespace latte::service
