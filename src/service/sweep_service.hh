/**
 * @file
 * SweepService: the job engine behind the latted daemon.
 *
 * Clients submit declarative SweepSpec jobs; the service validates
 * them, queues them with per-client quotas and priorities, and executes
 * one job at a time on the ExperimentRunner thread pool (cells within a
 * job parallelize; jobs serialize so priorities mean something). Every
 * state transition is journaled to <stateDir>/jobs.jsonl before it is
 * acknowledged, so a SIGKILLed daemon restarts with its queue intact:
 * submitted-but-unfinished jobs are requeued, and each job's own cell
 * journal (the runner's SweepJournal) resumes the sweep itself
 * cell-by-cell. Results are published atomically (tmp + rename) to
 * <stateDir>/job-<id>.result.json as the canonical outcomesToJson
 * export — byte-identical to the same spec run in-process through
 * Sweep, which is the property the service smoke test pins.
 *
 * The service layer is deliberately socket-free: latted binds it to an
 * AF_UNIX socket via RequestDispatcher/SocketServer, and the tests
 * drive it directly in-process.
 */

#ifndef LATTE_SERVICE_SWEEP_SERVICE_HH
#define LATTE_SERVICE_SWEEP_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/latency_histogram.hh"
#include "runner/json.hh"
#include "runner/sweep_spec.hh"

namespace latte::service
{

/** Lifecycle of one job. Queued/Running are live; the rest terminal. */
enum class JobState
{
    Queued,
    Running,
    Done,      //!< finished; per-cell failures live in the result doc
    Failed,    //!< the job itself failed (bad spec, unwritable result)
    Cancelled, //!< cancelled before completion
};

/** Lower-snake-case stable name ("queued", ...). */
const char *jobStateName(JobState state);

/** Reverse lookup; nullptr if @p name is unknown. */
const JobState *jobStateFromName(const std::string &name);

struct ServiceOptions
{
    /** Job journal + per-job result/journal files. Required. */
    std::string stateDir;
    /** Result cache shared with direct Sweep runs; empty = none. */
    std::string cacheDir;
    /** Worker threads per job; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Queued-job cap across all clients. */
    std::size_t maxQueue = 256;
    /** Live (queued + running) jobs allowed per client. */
    std::size_t clientQuota = 8;
    /** Progress/ETA lines from the runner (off: daemons log, not TTY). */
    bool progress = false;
    /**
     * Construct with the scheduler paused: jobs queue but nothing
     * executes until resume(). Tests use this to assert queue order,
     * quotas and journal contents deterministically.
     */
    bool startPaused = false;
};

/** Snapshot of one job, as reported to clients. */
struct JobInfo
{
    std::uint64_t id = 0;
    std::string client;
    std::int64_t priority = 0; //!< higher runs first; FIFO within equal
    JobState state = JobState::Queued;
    runner::SweepSpec spec;
    std::size_t cellsTotal = 0;
    std::size_t cellsDone = 0;     //!< cells completed (any path)
    std::size_t cellsFailed = 0;   //!< cells with a non-Ok outcome
    std::size_t cellsCached = 0;   //!< served from cache/journal
    std::size_t cellsExecuted = 0; //!< actually simulated
    /** Finished without simulating a single cell (all cache/journal). */
    bool servedFromCache = false;
    /** Canonical result document, once terminal (Done only). */
    std::string resultPath;
    /** Failure reason for Failed/Cancelled jobs. */
    std::string error;

    bool
    terminal() const
    {
        return state == JobState::Done || state == JobState::Failed ||
               state == JobState::Cancelled;
    }

    runner::Json toJson() const;
};

/** Daemon-lifetime counters (monotonic; survive nothing — see journal). */
struct ServiceCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    /** Jobs that finished with zero simulated cells. */
    std::uint64_t jobsServedFromCache = 0;
    /** Jobs requeued from the journal at startup. */
    std::uint64_t recovered = 0;
};

class SweepService
{
  public:
    /**
     * Replays <stateDir>/jobs.jsonl (requeueing unfinished jobs) and
     * starts the scheduler thread unless startPaused.
     */
    explicit SweepService(ServiceOptions options);

    /** Stops the scheduler; the running job is cancelled cooperatively. */
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    // --- Job lifecycle ------------------------------------------------

    /**
     * Validate, journal and enqueue @p spec. Returns the job id, or 0
     * with @p error set ("invalid spec: ...", "queue full",
     * "client quota exceeded"). The journal record is flushed before
     * this returns, so an acknowledged submit survives SIGKILL.
     */
    std::uint64_t submit(const runner::SweepSpec &spec,
                         const std::string &client,
                         std::int64_t priority, std::string *error);

    /**
     * Cancel a job. Queued jobs cancel immediately; the running job is
     * cancelled cooperatively (in-flight cells finish, the rest are
     * skipped). False with @p error on an unknown or terminal job.
     */
    bool cancel(std::uint64_t id, std::string *error);

    /** Snapshot of one job; nullopt if unknown. */
    std::optional<JobInfo> job(std::uint64_t id) const;

    /** Snapshot of every job, id order. */
    std::vector<JobInfo> jobs() const;

    /** Block until @p id is terminal. False if unknown. */
    bool waitJob(std::uint64_t id, JobInfo &out);

    /** Block until no job is queued or running (tests). */
    void waitIdle();

    /** Start executing when constructed with startPaused. */
    void resume();

    /**
     * Begin shutdown: stop scheduling, cancel the running job
     * cooperatively and wake every blocked waitJob/waitIdle caller
     * (they return the job's current, possibly non-terminal, state).
     * Idempotent; the destructor calls it and then joins. latted calls
     * it before tearing down the socket server so reader threads
     * blocked in wait requests unblock first.
     */
    void shutdown();

    // --- Introspection ------------------------------------------------

    ServiceCounters counters() const;

    /** Queued jobs right now. */
    std::size_t queueDepth() const;

    /**
     * Prometheus exposition of the service gauges (queue depth, per-
     * state job counts, uptime), the lifetime job and cell counters,
     * and the job queue-wait / run-duration / cell wall-time
     * histograms, via the metrics helpers — same text format as
     * --metrics-out .prom exports. Served verbatim by both the wire
     * "metrics" verb and the HTTP /metrics endpoint.
     */
    std::string metricsPrometheus() const;

    /**
     * Liveness summary for GET /healthz: status, uptime, queue depth,
     * the running job (if any), per-state job counts, lifetime cell
     * counters and the most recent job error.
     */
    runner::Json healthzJson() const;

    // --- Events -------------------------------------------------------

    /**
     * Register a listener for job events: {"type":"event","event":
     * "job_queued"|"job_started"|"cell_done"|"job_done", "job":id,...}.
     * Invoked from scheduler/worker threads without service locks held;
     * the callee must be thread-safe. Returns a token for removal.
     */
    using EventListener = std::function<void(const runner::Json &)>;
    std::uint64_t addListener(EventListener listener);
    void removeListener(std::uint64_t token);

    const ServiceOptions &options() const { return options_; }

  private:
    struct Job
    {
        JobInfo info;
        /** Cooperative cancel for the running job. */
        CancelToken cancelToken;
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void schedulerLoop();
    void execute(Job &job);
    /** Append one record to jobs.jsonl and flush. */
    void journal(const runner::Json &record);
    void replayJournal();
    void emitEvent(runner::Json event);
    /** Highest-priority queued job id, or 0. Caller holds mutex_. */
    std::uint64_t pickNext() const;
    std::string resultPathFor(std::uint64_t id) const;
    std::string cellJournalPathFor(std::uint64_t id) const;
    /** Journal + bookkeeping shared by every terminal transition. */
    void finishJob(Job &job, JobState state, std::string error);

    ServiceOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;     //!< scheduler wakeups
    std::condition_variable changed_;  //!< waiters on job state
    std::map<std::uint64_t, Job> jobs_;
    std::uint64_t nextJobId_ = 1;
    std::uint64_t runningJob_ = 0;     //!< 0 = none
    bool paused_ = false;
    bool stop_ = false;
    ServiceCounters counters_;
    metrics::LatencyHistogram queueWaitMs_;
    metrics::LatencyHistogram runDurationMs_;
    /** Per-cell wall times folded from every finished job's runner. */
    metrics::LatencyHistogram cellWallMs_;
    // Lifetime cell counters across all jobs (mutex_-guarded).
    std::uint64_t cellsDoneTotal_ = 0;
    std::uint64_t cellsFailedTotal_ = 0;
    std::uint64_t cellsCachedTotal_ = 0;
    std::uint64_t cellsExecutedTotal_ = 0;
    std::uint64_t cellNearMissesTotal_ = 0;
    /** Most recent Failed/Cancelled job error, for /healthz. */
    std::string lastError_;
    const std::chrono::steady_clock::time_point startedAt_ =
        std::chrono::steady_clock::now();

    std::ofstream journalOut_;
    std::mutex journalMutex_;

    std::mutex listenersMutex_;
    std::map<std::uint64_t, EventListener> listeners_;
    std::uint64_t nextListener_ = 1;

    std::thread scheduler_;
};

} // namespace latte::service

#endif // LATTE_SERVICE_SWEEP_SERVICE_HH
