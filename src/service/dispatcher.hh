/**
 * @file
 * RequestDispatcher: the latted wire protocol, independent of any
 * socket. Each request is one JSON object on one line; each response is
 * one JSON object on one line; subscribed sessions additionally receive
 * event objects interleaved with responses. SocketServer feeds it lines
 * from AF_UNIX connections; the tests feed it lines directly, so the
 * whole protocol is covered without a socket in sight.
 *
 * See docs/protocol.md for the request/response/event schemas, the
 * error codes and the quota semantics.
 */

#ifndef LATTE_SERVICE_DISPATCHER_HH
#define LATTE_SERVICE_DISPATCHER_HH

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sweep_service.hh"

namespace latte::service
{

/**
 * One client connection's protocol state. The server owns a Session per
 * connection; `send` must be safe to call from any thread (events
 * arrive from scheduler/worker threads while responses are written by
 * the connection's reader thread).
 */
struct Session
{
    /** Client identity for quotas; defaults until a request names one. */
    std::string client = "anon";
    /** Write one JSON object as a line to the peer. */
    std::function<void(const runner::Json &)> send;
    /** Listener tokens to detach when the session closes. */
    std::vector<std::uint64_t> listeners;
    /**
     * Deferred action the transport must invoke once the response line
     * is on the wire. "shutdown" parks its hook here so the daemon
     * cannot tear the connection down under its own acknowledgement.
     */
    std::function<void()> afterResponse;
};

class RequestDispatcher
{
  public:
    explicit RequestDispatcher(SweepService &service)
        : service_(service)
    {}

    /**
     * Handle one request line and return the response object. Blocking
     * requests (wait) block the calling thread — each connection has
     * its own reader thread, so only that client waits.
     */
    runner::Json handle(const std::string &line, Session &session);

    /** Detach the session's event subscriptions (connection closed). */
    void closeSession(Session &session);

    /**
     * Hook invoked after a "shutdown" request is acknowledged. latted
     * uses it to stop the accept loop and exit; defaults to a no-op so
     * in-process tests can drive "shutdown" safely.
     */
    void onShutdown(std::function<void()> hook)
    {
        shutdown_ = std::move(hook);
    }

    SweepService &service() { return service_; }

  private:
    SweepService &service_;
    std::function<void()> shutdown_;
};

} // namespace latte::service

#endif // LATTE_SERVICE_DISPATCHER_HH
