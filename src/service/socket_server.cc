#include "socket_server.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace latte::service
{

namespace
{

bool
fillAddress(const std::string &path, sockaddr_un &addr,
            std::string *error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    return true;
}

/** Write all of @p text, retrying short writes; false on a dead peer. */
bool
writeAll(int fd, const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::send(fd, text.data() + off, text.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

SocketServer::SocketServer(RequestDispatcher &dispatcher,
                           std::string socketPath)
    : dispatcher_(dispatcher), socketPath_(std::move(socketPath))
{}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *error)
{
    sockaddr_un addr;
    if (!fillAddress(socketPath_, addr, error))
        return false;

    // A leftover socket file from a SIGKILLed daemon would make bind
    // fail forever; probe it first and only remove it when nobody
    // answers.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        if (::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            ::close(probe);
            if (error)
                *error = "another daemon is live on " + socketPath_;
            return false;
        }
        ::close(probe);
        ::unlink(socketPath_.c_str());
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        if (error)
            *error = std::string("bind/listen ") + socketPath_ + ": " +
                     std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::pipe(stopPipe_) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    // Wake the accept loop; it closes the listen socket and every
    // connection, which in turn unblocks the reader threads.
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n =
        ::write(stopPipe_[1], &byte, 1);
    if (acceptThread_.joinable())
        acceptThread_.join();

    std::vector<std::unique_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (const auto &connection : connections) {
        ::shutdown(connection->fd, SHUT_RDWR);
        if (connection->reader.joinable())
            connection->reader.join();
        ::close(connection->fd);
    }

    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(socketPath_.c_str());
}

void
SocketServer::acceptLoop()
{
    setLogThreadName("accept");
    for (;;) {
        pollfd fds[2] = {
            {listenFd_, POLLIN, 0},
            {stopPipe_[0], POLLIN, 0},
        };
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents != 0)
            return; // stop() requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.push_back(std::make_unique<Connection>());
        Connection &connection = *connections_.back();
        connection.fd = fd;
        connection.session.send = [this,
                                   &connection](const runner::Json &msg) {
            std::lock_guard<std::mutex> write_lock(
                connection.writeMutex);
            writeAll(connection.fd, msg.dump() + "\n");
        };
        connection.reader =
            std::thread([this, &connection] { serveConnection(connection); });
    }
}

void
SocketServer::serveConnection(Connection &connection)
{
    setLogThreadName("ipc-c");
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::recv(connection.fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // peer closed (or stop() shut the socket down)
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t start = 0;
        for (;;) {
            const std::size_t newline = buffer.find('\n', start);
            if (newline == std::string::npos)
                break;
            const std::string line =
                buffer.substr(start, newline - start);
            start = newline + 1;
            if (line.empty())
                continue;
            const runner::Json response =
                dispatcher_.handle(line, connection.session);
            {
                std::lock_guard<std::mutex> write_lock(
                    connection.writeMutex);
                if (!writeAll(connection.fd, response.dump() + "\n"))
                    break;
            }
            // Post-write actions (shutdown) fire only after the
            // acknowledgement is on the wire.
            if (connection.session.afterResponse) {
                const std::function<void()> hook =
                    std::move(connection.session.afterResponse);
                connection.session.afterResponse = nullptr;
                hook();
            }
        }
        buffer.erase(0, start);
    }
    dispatcher_.closeSession(connection.session);
}

} // namespace latte::service
