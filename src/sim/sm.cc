#include "sm.hh"

#include <algorithm>

#include "common/logging.hh"
#include "metrics/profiler.hh"

namespace latte
{

namespace
{

/** Coalesce per-lane addresses into unique 128 B line addresses. */
std::vector<Addr>
coalesce(const std::vector<Addr> &lane_addrs)
{
    std::vector<Addr> lines;
    lines.reserve(lane_addrs.size());
    for (const Addr addr : lane_addrs) {
        if (addr == kBadAddr)
            continue;
        lines.push_back(MemoryImage::lineAddr(addr));
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

} // namespace

StreamingMultiprocessor::StreamingMultiprocessor(
        const GpuConfig &cfg, SmId sm_id, L2Cache *l2, MemoryImage *mem,
        StatGroup *parent, CacheTuning tuning)
    : StatGroup(strfmt("sm{}", sm_id), parent),
      instructions(this, "instructions", "warp instructions issued"),
      aluInstructions(this, "alu_instructions", "ALU/SFU instructions"),
      memInstructions(this, "mem_instructions", "loads and stores"),
      ctasCompleted(this, "ctas_completed", "thread blocks retired"),
      accessesPerLoad(this, "accesses_per_load",
                      "coalesced line accesses per load"),
      cfg_(cfg), smId_(sm_id), mem_(mem),
      engines_(cfg),
      cache_(cfg, sm_id, &engines_, l2, mem, this, tuning),
      lsu_(this),
      warps_(cfg.maxWarpsPerSm)
{
    for (std::uint32_t s = 0; s < cfg.schedulersPerSm; ++s)
        schedulers_.emplace_back(cfg.schedPolicy, s);
    for (std::uint32_t w = 0; w < cfg.maxWarpsPerSm; ++w) {
        warps_[w].slot = w;
        schedulers_[w % cfg.schedulersPerSm].addSlot(w);
    }
}

void
StreamingMultiprocessor::startKernel(KernelProgram *program)
{
    latte_assert(program != nullptr);
    program_ = program;
    freeSlots_.clear();
    for (std::uint32_t w = 0; w < cfg_.maxWarpsPerSm; ++w) {
        warps_[w] = Warp{};
        warps_[w].slot = w;
        freeSlots_.push_back(cfg_.maxWarpsPerSm - 1 - w);
    }
    ctaRemaining_.clear();
    residentCtas_ = 0;
    lsu_.clear();
}

bool
StreamingMultiprocessor::canTakeCta() const
{
    return program_ != nullptr &&
           residentCtas_ < cfg_.maxBlocksPerSm &&
           freeSlots_.size() >= program_->warpsPerCta();
}

void
StreamingMultiprocessor::assignCta(Cycles now, std::uint32_t cta_index)
{
    latte_assert(canTakeCta());
    const std::uint32_t warps_per_cta = program_->warpsPerCta();
    const auto handle = static_cast<std::uint32_t>(ctaRemaining_.size());
    ctaRemaining_.push_back(warps_per_cta);
    ++residentCtas_;

    for (std::uint32_t i = 0; i < warps_per_cta; ++i) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        Warp &warp = warps_[slot];
        warp = Warp{};
        warp.slot = slot;
        warp.globalWarpId = cta_index * warps_per_cta + i;
        warp.ctaSlot = handle;
        warp.state = WarpState::Active;
        warp.readyAt = now + 1;
        warp.age = ageClock_++;
    }
}

bool
StreamingMultiprocessor::drained() const
{
    if (lsu_.busy())
        return false;
    for (const Warp &warp : warps_) {
        if (warp.state == WarpState::Active ||
            warp.state == WarpState::WaitMem) {
            return false;
        }
    }
    return true;
}

std::uint32_t
StreamingMultiprocessor::activeWarps() const
{
    std::uint32_t n = 0;
    for (const Warp &warp : warps_) {
        if (warp.state == WarpState::Active ||
            warp.state == WarpState::WaitMem) {
            ++n;
        }
    }
    return n;
}

void
StreamingMultiprocessor::noteIdle(std::uint64_t cycles)
{
    meter_.accumulate(0, cycles * schedulers_.size());
}

Cycles
StreamingMultiprocessor::tick(Cycles now)
{
    lsu_.tick(now, cache_, warps_);
    return issueAndNext(now);
}

Cycles
StreamingMultiprocessor::issueAndNext(Cycles now)
{
    bool issued = false;
    for (auto &sched : schedulers_) {
        std::uint32_t ready = 0;
        const int slot = sched.pick(warps_, now, ready);
        meter_.accumulate(ready);
        if (slot >= 0) {
            sched.noteIssued(static_cast<std::uint32_t>(slot));
            meter_.noteIssue(sched.id(),
                             static_cast<std::uint32_t>(slot));
            issueWarp(warps_[slot], now);
            issued = true;
        }
    }

    Cycles next = kNoCycle;
    if (issued)
        next = now + 1;
    if (lsu_.busy())
        next = std::min(next, lsu_.nextEvent(now));
    for (const auto &sched : schedulers_)
        next = std::min(next, sched.nextWake(warps_, now));
    return next;
}

void
StreamingMultiprocessor::beginStaged()
{
    latte_assert(!stagedMode_);
    stagedMode_ = true;
    realTracer_ = tracer_;
    if (tracer_) {
        if (!stagingTracer_) {
            stagingTracer_ = std::make_unique<Tracer>(256);
            stagingTracer_->setStaging(true);
        }
        tracer_ = stagingTracer_.get();
        cache_.setTracer(tracer_);
        cache_.modeProvider()->redirectTracer(tracer_);
        stage_.events = tracer_;
    }
    stage_.reset();
    cache_.setStage(&stage_);
}

void
StreamingMultiprocessor::endStaged()
{
    latte_assert(stagedMode_);
    stagedMode_ = false;
    cache_.setStage(nullptr);
    tracer_ = realTracer_;
    cache_.setTracer(realTracer_);
    cache_.modeProvider()->redirectTracer(realTracer_);
    stage_.events = nullptr;
    realTracer_ = nullptr;
}

void
StreamingMultiprocessor::stagedTick(Cycles now)
{
    lsu_.tick(now, cache_, warps_);
    // A deferred miss postpones the issue phase too: the scheduler feeds
    // the tolerance meter that the policy harvests at EP boundaries, and
    // the sequential order is miss tail first, issue phase second.
    stagedNext_ = lsu_.hasDeferred() ? kNoCycle : issueAndNext(now);
}

void
StreamingMultiprocessor::drainStaged(std::size_t begin, std::size_t end)
{
    for (std::size_t i = begin; i < end; ++i)
        realTracer_->record(stagingTracer_->stagedAt(i));
}

Cycles
StreamingMultiprocessor::commitStage(Cycles now)
{
    for (const StagedHistSample &sample : stage_.histSamples)
        CompressedCache::recordHist(sample.hist, sample.value);

    const bool hasL2Op = stage_.hasL2Write || stage_.deferredMiss;
    const std::size_t staged = stage_.events ? stage_.events->size() : 0;
    const std::size_t split = hasL2Op ? stage_.split : staged;
    if (stage_.events)
        drainStaged(0, split);

    Cycles next = stagedNext_;
    if (stage_.deferredMiss) {
        // The L2/NOC/DRAM events of finishMiss() go straight to the
        // real tracer; the L1-side tail and the issue phase append to
        // the staging buffer after `split`, exactly as the sequential
        // loop interleaves them.
        const Cycles ready = cache_.finishMiss(now, stage_.missAddr);
        lsu_.completeDeferred(ready, warps_);
        next = issueAndNext(now);
    } else if (stage_.hasL2Write) {
        cache_.commitStagedWrite(now, stage_.l2WriteAddr);
    }

    if (stage_.events) {
        drainStaged(split, stage_.events->size());
        stagingTracer_->clear();
    }
    stage_.reset();
    return next;
}

void
StreamingMultiprocessor::issueWarp(Warp &warp, Cycles now)
{
    metrics::ProfileScope profile(metrics::ProfileZone::SmIssue);
    DecodedInstr instr = program_->fetch(warp.globalWarpId, warp.pc);

    if (tracer_) {
        TraceEvent ev = makeTraceEvent(
            now, TraceEventKind::WarpIssue,
            static_cast<std::uint16_t>(smId_));
        ev.arg0 = warp.globalWarpId;
        ev.arg1 = static_cast<std::uint32_t>(warp.pc);
        tracer_->record(ev);
    }

    switch (instr.op) {
      case Op::Exit:
        finishWarp(warp);
        return;

      case Op::Alu:
      case Op::Sfu:
        ++instructions;
        ++aluInstructions;
        ++warp.pc;
        warp.readyAt = now + std::max<Cycles>(instr.latency, 1);
        return;

      case Op::Load: {
        ++instructions;
        ++memInstructions;
        ++warp.pc;
        const auto lines = coalesce(instr.laneAddrs);
        if (lines.empty()) {
            warp.readyAt = now + 1;
            return;
        }
        accessesPerLoad.sample(static_cast<double>(lines.size()));
        warp.state = WarpState::WaitMem;
        warp.readyAt = kNoCycle;
        warp.pendingAccesses = static_cast<std::uint32_t>(lines.size());
        warp.memReady = 0;
        lsu_.enqueueLoad(warp.slot, lines);
        return;
      }

      case Op::Store: {
        ++instructions;
        ++memInstructions;
        ++warp.pc;
        const auto lines = coalesce(instr.laneAddrs);
        if (!lines.empty())
            lsu_.enqueueStore(lines);
        // Write-avoid: the warp does not wait for stores.
        warp.readyAt = now + 1;
        return;
      }
    }
    latte_panic("unknown opcode");
}

void
StreamingMultiprocessor::finishWarp(Warp &warp)
{
    warp.state = WarpState::Finished;
    latte_assert(warp.ctaSlot < ctaRemaining_.size());
    latte_assert(ctaRemaining_[warp.ctaSlot] > 0);
    if (--ctaRemaining_[warp.ctaSlot] == 0) {
        --residentCtas_;
        ++ctasCompleted;
        for (Warp &other : warps_) {
            if (other.state == WarpState::Finished &&
                other.ctaSlot == warp.ctaSlot) {
                other.state = WarpState::Unassigned;
                freeSlots_.push_back(other.slot);
            }
        }
    }
}

} // namespace latte
