/**
 * @file
 * Load/store unit: the SM's single L1 port. Coalesced line accesses queue
 * here and issue one per cycle; rejected accesses (MSHRs full) retry.
 * A warp's load completes when its last access has a known fill time.
 */

#ifndef LATTE_SIM_LSU_HH
#define LATTE_SIM_LSU_HH

#include <algorithm>
#include <deque>
#include <span>

#include "cache/compressed_cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "warp.hh"

namespace latte
{

/** Per-SM memory pipeline front end. */
class LoadStoreUnit : public StatGroup
{
  public:
    LoadStoreUnit(StatGroup *parent)
        : StatGroup("lsu", parent),
          accessesIssued(this, "accesses", "line accesses sent to the L1"),
          retries(this, "retries", "accesses replayed after rejection")
    {}

    /** Queue the coalesced accesses of a load; warp waits for all. */
    void
    enqueueLoad(std::uint32_t warp_slot, std::span<const Addr> lines)
    {
        for (const Addr line : lines)
            queue_.push_back({line, false, static_cast<int>(warp_slot)});
    }

    /** Queue the coalesced accesses of a store (fire-and-forget). */
    void
    enqueueStore(std::span<const Addr> lines)
    {
        for (const Addr line : lines)
            queue_.push_back({line, true, -1});
    }

    /** Issue at most one access to the L1. */
    void
    tick(Cycles now, CompressedCache &cache, std::span<Warp> warps)
    {
        if (queue_.empty() || now < retryAt_)
            return;
        Request &req = queue_.front();
        const L1AccessResult res =
            cache.access(now, req.lineAddr, req.store);
        if (res.rejected) {
            // MSHRs are full: nothing can enter the L1 until a fill
            // returns, so sleep until the earliest one.
            ++retries;
            const Cycles fill = cache.mshrs.nextFillCycle();
            retryAt_ = fill == kNoCycle ? now + 1 : std::max(fill,
                                                             now + 1);
            return;
        }
        retryAt_ = 0;
        ++accessesIssued;
        if (res.deferred) {
            // Parallel phase: the miss tail (and hence the warp's ready
            // cycle) is only known at the epoch barrier, which calls
            // completeDeferred() with it.
            latte_assert(!hasDeferred_);
            hasDeferred_ = true;
            deferredSlot_ = req.warpSlot;
            queue_.pop_front();
            return;
        }
        if (req.warpSlot >= 0) {
            Warp &warp = warps[req.warpSlot];
            latte_assert(warp.pendingAccesses > 0);
            warp.memReady = std::max(warp.memReady, res.readyCycle);
            if (--warp.pendingAccesses == 0) {
                warp.readyAt = warp.memReady;
                warp.state = WarpState::Active;
            }
        }
        queue_.pop_front();
    }

    /** True when this tick's access was deferred to the barrier. */
    bool hasDeferred() const { return hasDeferred_; }

    /** Finish a deferred access with its now-known @p ready cycle. */
    void
    completeDeferred(Cycles ready, std::span<Warp> warps)
    {
        latte_assert(hasDeferred_);
        hasDeferred_ = false;
        if (deferredSlot_ < 0)
            return;
        Warp &warp = warps[deferredSlot_];
        latte_assert(warp.pendingAccesses > 0);
        warp.memReady = std::max(warp.memReady, ready);
        if (--warp.pendingAccesses == 0) {
            warp.readyAt = warp.memReady;
            warp.state = WarpState::Active;
        }
    }

    bool busy() const { return !queue_.empty(); }
    std::size_t depth() const { return queue_.size(); }
    void clear() { queue_.clear(); retryAt_ = 0; hasDeferred_ = false; }

    /** Next cycle the LSU can make progress (valid while busy()). */
    Cycles
    nextEvent(Cycles now) const
    {
        return std::max(retryAt_, now + 1);
    }

    Counter accessesIssued;
    Counter retries;

  private:
    struct Request
    {
        Addr lineAddr;
        bool store;
        int warpSlot;   //!< -1 for stores
    };

    std::deque<Request> queue_;
    Cycles retryAt_ = 0;
    bool hasDeferred_ = false;
    int deferredSlot_ = -1;
};

} // namespace latte

#endif // LATTE_SIM_LSU_HH
