/**
 * @file
 * Warp schedulers. The paper's baseline uses Greedy-Then-Oldest (GTO,
 * Rogers et al., MICRO 2012): keep issuing from the current warp until it
 * stalls, then switch to the oldest ready warp. Loose round-robin (LRR)
 * is provided for comparison studies.
 */

#ifndef LATTE_SIM_SCHEDULER_HH
#define LATTE_SIM_SCHEDULER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "warp.hh"

namespace latte
{

/** One of an SM's warp schedulers; owns a subset of the warp slots. */
class WarpScheduler
{
  public:
    WarpScheduler(GpuConfig::SchedPolicy policy, std::uint32_t id)
        : policy_(policy), id_(id)
    {}

    std::uint32_t id() const { return id_; }

    /** Register a warp slot as belonging to this scheduler. */
    void addSlot(std::uint32_t slot) { slots_.push_back(slot); }

    const std::vector<std::uint32_t> &slots() const { return slots_; }

    /**
     * Count ready warps and pick the one to issue this cycle.
     * @param warps the SM's full warp array
     * @param ready_count out: warps that could issue this cycle
     * @return slot of the selected warp, or -1 if none is ready
     */
    int
    pick(std::span<const Warp> warps, Cycles now,
         std::uint32_t &ready_count) const
    {
        ready_count = 0;
        int best = -1;
        if (policy_ == GpuConfig::SchedPolicy::GTO) {
            std::uint64_t best_age = ~std::uint64_t{0};
            bool greedy_ready = false;
            for (const std::uint32_t slot : slots_) {
                const Warp &warp = warps[slot];
                if (!warp.ready(now))
                    continue;
                ++ready_count;
                if (static_cast<int>(slot) == greedy_) {
                    greedy_ready = true;
                } else if (warp.age < best_age) {
                    best_age = warp.age;
                    best = static_cast<int>(slot);
                }
            }
            if (greedy_ready)
                return greedy_;
            return best;
        }

        // LRR: next ready slot after the last issued one, in slot order.
        const std::size_t n = slots_.size();
        int first_ready = -1;
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint32_t slot =
                slots_[(rrNext_ + k) % n];
            if (warps[slot].ready(now)) {
                ++ready_count;
                if (first_ready < 0)
                    first_ready = static_cast<int>(slot);
            }
        }
        return first_ready;
    }

    /** Record the issue decision (updates greedy/rotation state). */
    void
    noteIssued(std::uint32_t slot)
    {
        greedy_ = static_cast<int>(slot);
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            if (slots_[k] == slot) {
                rrNext_ = (k + 1) % slots_.size();
                break;
            }
        }
    }

    /** Earliest future cycle a warp of this scheduler becomes ready. */
    Cycles
    nextWake(std::span<const Warp> warps, Cycles now) const
    {
        Cycles wake = kNoCycle;
        for (const std::uint32_t slot : slots_) {
            const Warp &warp = warps[slot];
            if (warp.sleeping(now) && warp.readyAt < wake)
                wake = warp.readyAt;
        }
        return wake;
    }

  private:
    GpuConfig::SchedPolicy policy_;
    std::uint32_t id_;
    std::vector<std::uint32_t> slots_;
    int greedy_ = -1;
    mutable std::size_t rrNext_ = 0;
};

} // namespace latte

#endif // LATTE_SIM_SCHEDULER_HH
