/**
 * @file
 * Streaming multiprocessor model: warp slots, two GTO schedulers, a
 * load/store unit in front of the compressed L1, and the latency
 * tolerance meter LATTE-CC reads. The SM is tick-driven but reports the
 * next cycle it needs attention so the GPU loop can skip idle gaps.
 */

#ifndef LATTE_SIM_SM_HH
#define LATTE_SIM_SM_HH

#include <memory>
#include <vector>

#include "cache/compressed_cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "instruction.hh"
#include "lsu.hh"
#include "lt_meter.hh"
#include "scheduler.hh"
#include "warp.hh"

namespace latte
{

/** One SM with its private L1 and compression engines. */
class StreamingMultiprocessor : public StatGroup
{
  public:
    StreamingMultiprocessor(const GpuConfig &cfg, SmId sm_id, L2Cache *l2,
                            MemoryImage *mem, StatGroup *parent,
                            CacheTuning tuning = {});

    SmId smId() const { return smId_; }
    CompressedCache &cache() { return cache_; }
    const CompressedCache &cache() const { return cache_; }
    CompressionEngines &engines() { return engines_; }
    LatencyToleranceMeter &meter() { return meter_; }
    LoadStoreUnit &lsu() { return lsu_; }

    /** Begin executing @p program; drops all warp state. */
    void startKernel(KernelProgram *program);

    /** True if another CTA fits (block and warp-slot limits). */
    bool canTakeCta() const;

    /** Place CTA @p cta_index on this SM; its warps wake at now+1. */
    void assignCta(Cycles now, std::uint32_t cta_index);

    /** True when every assigned warp finished and the LSU drained. */
    bool drained() const;

    /**
     * Execute one cycle.
     * @return the next cycle this SM needs to be ticked, or kNoCycle if
     *         it is idle until more work arrives.
     */
    Cycles tick(Cycles now);

    // --- Barrier-synchronous parallel stepping -------------------------
    /**
     * Enter staged mode for a parallel kernel run: tracing (SM, cache
     * and policy) is redirected into a private growable staging tracer
     * and the cache parks shared-memory-system effects in the stage.
     * Paired with endStaged() around each runKernel().
     */
    void beginStaged();
    void endStaged();

    /**
     * The parallel (phase A) half of tick(): safe to run concurrently
     * with other SMs' stagedTick() because every shared effect lands in
     * the stage. When the tick's access was a primary miss the issue
     * phase is postponed too (the policy's EP accounting must see the
     * miss tail first); commitStage() runs it.
     */
    void stagedTick(Cycles now);

    /**
     * The barrier (phase B) half: called once per staged tick, in
     * canonical SM-index order, from the simulation thread. Replays
     * staged histogram samples and trace events around the parked L2
     * operation, completes a deferred miss, and returns what tick()
     * would have returned.
     */
    Cycles commitStage(Cycles now);

    /** Account @p cycles of skipped (idle) time to the tolerance meter. */
    void noteIdle(std::uint64_t cycles);

    /** Attach the event tracer (not owned); forwards to the L1. */
    void
    setTracer(Tracer *tracer)
    {
        tracer_ = tracer;
        cache_.setTracer(tracer);
    }

    /** Resident warps currently in flight. */
    std::uint32_t activeWarps() const;

    Counter instructions;
    Counter aluInstructions;
    Counter memInstructions;
    Counter ctasCompleted;
    Average accessesPerLoad;

  private:
    void issueWarp(Warp &warp, Cycles now);
    void finishWarp(Warp &warp);
    /** The issue phase and next-tick computation shared by both modes. */
    Cycles issueAndNext(Cycles now);
    /** Replay staged events [begin, end) into the run's real tracer. */
    void drainStaged(std::size_t begin, std::size_t end);

    const GpuConfig &cfg_;
    SmId smId_;
    MemoryImage *mem_;
    KernelProgram *program_ = nullptr;
    Tracer *tracer_ = nullptr;

    CompressionEngines engines_;
    CompressedCache cache_;
    LoadStoreUnit lsu_;
    LatencyToleranceMeter meter_;

    std::vector<Warp> warps_;
    std::vector<WarpScheduler> schedulers_;
    std::vector<std::uint32_t> freeSlots_;

    // --- Staged-mode state (parallel kernel runs only) -----------------
    L1Stage stage_;
    /** The run's tracer while tracer_ points at the staging buffer. */
    Tracer *realTracer_ = nullptr;
    std::unique_ptr<Tracer> stagingTracer_;
    /** issueAndNext() result computed in phase A (non-deferred ticks). */
    Cycles stagedNext_ = kNoCycle;
    bool stagedMode_ = false;

    /** Remaining unfinished warps per resident CTA handle. */
    std::vector<std::uint32_t> ctaRemaining_;
    std::uint32_t residentCtas_ = 0;
    std::uint64_t ageClock_ = 0;
};

} // namespace latte

#endif // LATTE_SIM_SM_HH
