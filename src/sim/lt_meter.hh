/**
 * @file
 * Latency-tolerance estimation (Section III-B2). The meter accumulates,
 * per scheduler, the number of ready warps and the length of consecutive
 * issue runs from the same warp (GTO "greedy runs"). The degree of
 * latency tolerance is the number of cycles a stalled warp's added
 * latency can be hidden: the number of *other* ready warps times the
 * average run length the scheduler spends on each of them.
 *
 * (The paper's Eq. (4) prints a division; the product is the physically
 * meaningful form for a greedy scheduler and reduces to "number of
 * available warps" for round-robin where run length is 1 — exactly the
 * behaviour the prose describes. See DESIGN.md.)
 */

#ifndef LATTE_SIM_LT_METER_HH
#define LATTE_SIM_LT_METER_HH

#include <algorithm>
#include <cstdint>

#include "common/types.hh"

namespace latte
{

/** Windowed latency-tolerance estimator for one SM. */
class LatencyToleranceMeter
{
  public:
    /** Account @p cycles cycles during which @p ready warps could issue. */
    void
    accumulate(std::uint64_t ready, std::uint64_t cycles = 1)
    {
        readySum_ += ready * cycles;
        cycleCount_ += cycles;
    }

    /** Note an issue from @p warp on @p scheduler. */
    void
    noteIssue(std::uint32_t scheduler, std::uint32_t warp)
    {
        ++issues_;
        if (scheduler >= kMaxSchedulers)
            scheduler = kMaxSchedulers - 1;
        if (!runValid_[scheduler] || lastWarp_[scheduler] != warp) {
            ++schedules_;
            lastWarp_[scheduler] = warp;
            runValid_[scheduler] = true;
        }
    }

    /** Average warps ready per sampled cycle. */
    double
    avgReadyWarps() const
    {
        return cycleCount_ ? static_cast<double>(readySum_) /
                                 static_cast<double>(cycleCount_)
                           : 0.0;
    }

    /** Average consecutive issues per scheduled warp. */
    double
    avgRunLength() const
    {
        return schedules_ ? static_cast<double>(issues_) /
                                static_cast<double>(schedules_)
                          : 0.0;
    }

    /** Latency tolerance in cycles for the current window. */
    double
    latencyTolerance() const
    {
        const double others = std::max(avgReadyWarps() - 1.0, 0.0);
        return others * std::max(avgRunLength(), 1.0);
    }

    /** Close the window: return the tolerance and start a new window. */
    double
    harvest()
    {
        const double tolerance = latencyTolerance();
        readySum_ = 0;
        cycleCount_ = 0;
        issues_ = 0;
        schedules_ = 0;
        // Keep lastWarp_ so a run spanning the boundary counts once.
        return tolerance;
    }

    std::uint64_t windowCycles() const { return cycleCount_; }

  private:
    static constexpr std::uint32_t kMaxSchedulers = 4;

    std::uint64_t readySum_ = 0;
    std::uint64_t cycleCount_ = 0;
    std::uint64_t issues_ = 0;
    std::uint64_t schedules_ = 0;
    std::uint32_t lastWarp_[kMaxSchedulers] = {};
    bool runValid_[kMaxSchedulers] = {};
};

} // namespace latte

#endif // LATTE_SIM_LT_METER_HH
