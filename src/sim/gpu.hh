/**
 * @file
 * Top-level GPU model: 15 SMs sharing an interconnect, a banked L2 and a
 * DRAM channel (Table II). Drives kernels to completion with idle-gap
 * skipping so memory-bound phases simulate quickly.
 */

#ifndef LATTE_SIM_GPU_HH
#define LATTE_SIM_GPU_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/outcome.hh"
#include "common/stats.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2cache.hh"
#include "mem/memory_image.hh"
#include "sm.hh"
#include "thread_pool.hh"

namespace latte
{

namespace metrics
{
class MetricRegistry;
} // namespace metrics

/**
 * A cooperative stop of the simulation loop: a cancellation token, a
 * cycle-budget trip or an injected fault. The loop winds down at the
 * next iteration, so all statistics remain consistent up to `cycle`.
 */
struct SimInterrupt
{
    RunErrorCode code = RunErrorCode::None;
    Cycles cycle = 0;      //!< global clock when the loop stopped
    std::string detail;    //!< human-readable cause
};

/** Result of one kernel launch. */
struct RunResult
{
    Cycles cycles = 0;            //!< kernel duration
    std::uint64_t instructions = 0;
    bool completed = false;       //!< false if a budget cut it short
    /** Set when the run control stopped the kernel early. */
    std::optional<SimInterrupt> interrupt;
};

/** The simulated GPU. */
class Gpu : public StatGroup
{
  public:
    /**
     * @param tracer optional event tracer (not owned); propagated to
     *        every SM, the L2 and the DRAM model. nullptr disables
     *        tracing at a cost of one branch per hook point.
     */
    explicit Gpu(const GpuConfig &cfg, MemoryImage *mem,
                 CacheTuning tuning = {}, Tracer *tracer = nullptr);

    std::uint32_t numSms() const
    {
        return static_cast<std::uint32_t>(sms_.size());
    }
    StreamingMultiprocessor &sm(std::uint32_t i) { return *sms_[i]; }
    L2Cache &l2() { return l2_; }
    DramModel &dram() { return dram_; }
    Interconnect &noc() { return noc_; }
    const GpuConfig &config() const { return cfg_; }

    /** Global clock; accumulates across kernel launches. */
    Cycles now() const { return now_; }

    /**
     * Attach the metric registry (not owned; nullptr detaches). The GPU
     * samples it from the kernel loop whenever it is due and propagates
     * it to every L1 and the DRAM model for latency histograms.
     */
    void setMetrics(metrics::MetricRegistry *metrics);

    /**
     * Attach the run-control surface (not owned; nullptr detaches).
     * The kernel loop polls it each iteration: a tripped cancellation
     * token, an exhausted cycle budget or a due injected fault stops
     * the loop cooperatively and reports through RunResult::interrupt.
     */
    void setControl(const RunControl *control) { control_ = control; }

    /**
     * Step SMs with @p threads threads (1 = the classic sequential
     * loop). The parallel mode is barrier-synchronous and bit-identical
     * to sequential: SMs due at the current cycle tick concurrently on
     * a persistent pool against private state, while every shared
     * memory-system effect is staged and committed at the epoch
     * barrier in canonical SM-index order.
     */
    void setSimThreads(unsigned threads);
    unsigned simThreads() const { return simThreads_; }

    /**
     * Run @p program to completion or until the whole launch has issued
     * @p max_instructions (the paper simulates 1 B instructions or
     * completion, whichever is earlier).
     */
    RunResult runKernel(KernelProgram &program,
                        std::uint64_t max_instructions = ~0ull,
                        Cycles max_cycles = 200'000'000);

    /** Aggregate counters across SMs. */
    std::uint64_t totalInstructions() const;
    std::uint64_t totalL1Hits() const;
    std::uint64_t totalL1Misses() const;
    std::uint64_t totalL1Accesses() const;

    Counter cyclesElapsed;
    Counter kernelsLaunched;

  private:
    const GpuConfig cfg_;
    MemoryImage *mem_;
    Tracer *tracer_ = nullptr;
    metrics::MetricRegistry *metrics_ = nullptr;
    const RunControl *control_ = nullptr;

    /** The interrupt due at `now_`, if the control surface trips. */
    std::optional<SimInterrupt> checkControl();
    Interconnect noc_;
    DramModel dram_;
    L2Cache l2_;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms_;
    Cycles now_ = 0;

    unsigned simThreads_ = 1;
    std::unique_ptr<SimThreadPool> pool_;
    /** SMs due this epoch, ascending (the canonical commit order). */
    std::vector<std::uint32_t> due_;
    /** The epoch job, built once so epochs allocate nothing. */
    std::function<void(std::size_t)> epochJob_;
    Cycles epochNow_ = 0;
};

} // namespace latte

#endif // LATTE_SIM_GPU_HH
