/**
 * @file
 * The epoch-oriented worker pool behind `--sim-threads`. Unlike the
 * runner's job pool (one long task per thread), the simulator needs a
 * parallel-for that fires once per simulated epoch — potentially
 * millions of times per run — so the pool is built around a reusable
 * barrier: publishing an epoch is one atomic generation bump, workers
 * spin (then sleep) between epochs, items are claimed from a shared
 * atomic cursor, and the caller participates instead of blocking. No
 * memory is allocated after construction.
 */

#ifndef LATTE_SIM_THREAD_POOL_HH
#define LATTE_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace latte
{

/**
 * Resolve a `--sim-threads` / `LATTE_SIM_THREADS` value to a thread
 * count. "" consults the environment and defaults to 1 (sequential);
 * "auto" means hardware concurrency; otherwise a positive integer.
 * @return the thread count, or 0 with @p error set when @p text is
 *         malformed.
 */
unsigned resolveSimThreads(std::string_view text, std::string *error);

/** Epoch-reusable parallel-for pool; see the file comment. */
class SimThreadPool
{
  public:
    /**
     * Spawn up to @p workers threads — clamped to the machine's cores
     * minus one for the caller of run(), which participates in every
     * epoch. A pool with zero workers runs every epoch inline.
     */
    explicit SimThreadPool(unsigned workers);
    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

    /**
     * Run job(0..count-1) across the workers and the calling thread;
     * returns when every item has finished. @p job must stay alive for
     * the duration of the call and be safe to invoke concurrently.
     */
    void run(std::size_t count, const std::function<void(std::size_t)> &job);

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop();
    /** Pull items off the shared cursor until the epoch is drained. */
    void claim();

    std::vector<std::thread> threads_;
    /**
     * Pause iterations a worker spins for the next epoch before
     * sleeping on cv_. Full budget only when the machine has a core
     * per thread (caller included); oversubscribed pools sleep
     * immediately — spinning there steals the core the caller needs
     * to publish the next epoch.
     */
    int spinBudget_ = 0;

    std::mutex mutex_;
    std::condition_variable cv_;
    /** Bumped (under mutex_, released) to publish a new epoch. */
    std::atomic<std::uint64_t> generation_{0};
    /** Workers currently blocked on cv_ (notify only when > 0). */
    std::atomic<int> sleepers_{0};
    std::atomic<bool> stop_{false};

    // --- Per-epoch state, published by the generation_ bump ----------
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t count_ = 0;
    /** Next unclaimed item. */
    std::atomic<std::size_t> next_{0};
    /** Items fully executed; run() returns when this reaches count_. */
    std::atomic<std::size_t> done_{0};
    /**
     * Workers that have left the claim loop of the current epoch. The
     * next run() resets the cursor only once every worker has checked
     * out, so a straggler can never claim against recycled state.
     */
    std::atomic<unsigned> checkedOut_{0};
};

} // namespace latte

#endif // LATTE_SIM_THREAD_POOL_HH
