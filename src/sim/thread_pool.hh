/**
 * @file
 * The epoch-oriented worker pool behind `--sim-threads`. Unlike the
 * runner's job pool (one long task per thread), the simulator needs a
 * parallel-for that fires once per simulated epoch — potentially
 * millions of times per run — so the pool is built around a reusable
 * barrier: publishing an epoch is one atomic generation bump, workers
 * spin (then sleep) between epochs, items are claimed from a shared
 * atomic cursor, and the caller participates instead of blocking. No
 * memory is allocated after construction.
 *
 * Introspection: every pool counts epochs, per-thread claimed items and
 * worker spin->sleep transitions (relaxed atomics), and the caller
 * records its end-of-epoch barrier wait into a LatencyHistogram. A
 * destroyed pool folds its counters into a process-wide aggregate
 * (simPoolGlobalStats()) that the bench report and the latted /metrics
 * endpoint expose — purely observational, never part of results.
 */

#ifndef LATTE_SIM_THREAD_POOL_HH
#define LATTE_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "metrics/latency_histogram.hh"

namespace latte
{

/**
 * Resolve a `--sim-threads` / `LATTE_SIM_THREADS` value to a thread
 * count. "" consults the environment and defaults to 1 (sequential);
 * "auto" means hardware concurrency; otherwise a positive integer.
 * @return the thread count, or 0 with @p error set when @p text is
 *         malformed.
 */
unsigned resolveSimThreads(std::string_view text, std::string *error);

/** Point-in-time view of one pool's (or the process aggregate's) work. */
struct SimPoolStats
{
    std::uint64_t epochs = 0;           //!< parallel epochs run
    std::uint64_t items = 0;            //!< items executed, all threads
    std::uint64_t callerItems = 0;      //!< items claimed by the caller
    std::uint64_t sleepTransitions = 0; //!< worker spin->sleep falls
    /** Caller-side wait for the last worker at each epoch end, in ns. */
    metrics::LatencyHistogram barrierWaitNs;
    /** Items per worker (empty in the process aggregate). */
    std::vector<std::uint64_t> workerItems;

    /** Fold @p other in (workerItems are summed into items only). */
    void merge(const SimPoolStats &other);
};

/** Aggregate over every destroyed pool since process start. */
SimPoolStats simPoolGlobalStats();

/**
 * The aggregate as a StatGroup ("sim_pool"), so it flows through
 * StatVisitor consumers (bench report, JSON dumps) like any other stat
 * tree. Standalone by design: parenting it to the Gpu would leak
 * wall-clock-dependent values into results and break bit-identity.
 */
class SimPoolStatGroup : public StatGroup
{
  public:
    explicit SimPoolStatGroup(const SimPoolStats &stats);

    Counter epochs;
    Counter items;
    Counter callerItems;
    Counter sleepTransitions;
    Counter barrierWaits;
};

/** Prometheus exposition of simPoolGlobalStats(). */
std::string simPoolPrometheus();

/** Epoch-reusable parallel-for pool; see the file comment. */
class SimThreadPool
{
  public:
    /**
     * Spawn up to @p workers threads — clamped to the machine's cores
     * minus one for the caller of run(), which participates in every
     * epoch. A pool with zero workers runs every epoch inline.
     */
    explicit SimThreadPool(unsigned workers);
    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

    /**
     * Run job(0..count-1) across the workers and the calling thread;
     * returns when every item has finished. @p job must stay alive for
     * the duration of the call and be safe to invoke concurrently.
     */
    void run(std::size_t count, const std::function<void(std::size_t)> &job);

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Snapshot this pool's counters. Exact only between epochs (the
     * histogram is written by the run() caller; counters are relaxed
     * atomics), which is when every consumer reads it.
     */
    SimPoolStats stats() const;

  private:
    void workerLoop(unsigned index);
    /** Pull items off the shared cursor until the epoch is drained. */
    void claim(std::atomic<std::uint64_t> &claimed);

    std::vector<std::thread> threads_;
    /**
     * Pause iterations a worker spins for the next epoch before
     * sleeping on cv_. Full budget only when the machine has a core
     * per thread (caller included); oversubscribed pools sleep
     * immediately — spinning there steals the core the caller needs
     * to publish the next epoch.
     */
    int spinBudget_ = 0;

    std::mutex mutex_;
    std::condition_variable cv_;
    /** Bumped (under mutex_, released) to publish a new epoch. */
    std::atomic<std::uint64_t> generation_{0};
    /** Workers currently blocked on cv_ (notify only when > 0). */
    std::atomic<int> sleepers_{0};
    std::atomic<bool> stop_{false};

    // --- Per-epoch state, published by the generation_ bump ----------
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t count_ = 0;
    /** Next unclaimed item. */
    std::atomic<std::size_t> next_{0};
    /** Items fully executed; run() returns when this reaches count_. */
    std::atomic<std::size_t> done_{0};
    /**
     * Workers that have left the claim loop of the current epoch. The
     * next run() resets the cursor only once every worker has checked
     * out, so a straggler can never claim against recycled state.
     */
    std::atomic<unsigned> checkedOut_{0};

    // --- Introspection (observational; never touches results) -------
    /** Items claimed per worker thread; stable addresses for claim(). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> workerClaimed_;
    std::atomic<std::uint64_t> callerClaimed_{0};
    std::atomic<std::uint64_t> sleepTransitions_{0};
    /** Written by the run() caller only. */
    std::uint64_t epochs_ = 0;
    metrics::LatencyHistogram barrierWaitNs_;
};

} // namespace latte

#endif // LATTE_SIM_THREAD_POOL_HH
