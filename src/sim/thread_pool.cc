#include "thread_pool.hh"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "metrics/registry.hh"

namespace latte
{

namespace
{

/** Polite spin: keep the core but free the pipeline. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/**
 * Spins before a worker gives up and sleeps on the condition variable.
 * Sized to cover the single-threaded commit phase between epochs, so in
 * steady state workers never pay a futex round trip per simulated cycle.
 */
constexpr int kSpinsBeforeSleep = 1 << 14;

/**
 * Spins before a caller-side wait starts yielding its timeslice. The
 * caller is waiting on workers that hold items; on an oversubscribed
 * host (more sim threads than cores) those workers need the caller's
 * core to finish, so a pure pause loop would stall an entire
 * scheduling quantum per epoch.
 */
constexpr int kSpinsBeforeYield = 1 << 10;

/** Caller-side wait: brief pause spin, then yield until @p cond. */
template <typename Cond>
inline void
spinUntil(Cond cond)
{
    int spins = 0;
    while (!cond()) {
        if (++spins < kSpinsBeforeYield)
            cpuRelax();
        else
            std::this_thread::yield();
    }
}

unsigned
parsePositive(std::string_view text)
{
    if (text.empty() || text.size() > 9)
        return 0;
    unsigned value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return 0;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    return value;
}

/** Destroyed pools fold their counters here. */
std::mutex g_poolStatsMutex;
SimPoolStats g_poolStats;

void
foldGlobalPoolStats(const SimPoolStats &stats)
{
    std::lock_guard<std::mutex> lock(g_poolStatsMutex);
    g_poolStats.merge(stats);
}

} // namespace

void
SimPoolStats::merge(const SimPoolStats &other)
{
    epochs += other.epochs;
    items += other.items;
    callerItems += other.callerItems;
    sleepTransitions += other.sleepTransitions;
    barrierWaitNs.merge(other.barrierWaitNs);
}

SimPoolStats
simPoolGlobalStats()
{
    std::lock_guard<std::mutex> lock(g_poolStatsMutex);
    return g_poolStats;
}

SimPoolStatGroup::SimPoolStatGroup(const SimPoolStats &stats)
    : StatGroup("sim_pool"),
      epochs(this, "epochs", "parallel epochs run"),
      items(this, "items", "SM ticks executed across all threads"),
      callerItems(this, "caller_items",
                  "SM ticks claimed by the publishing thread"),
      sleepTransitions(this, "sleep_transitions",
                       "worker spin budgets exhausted into cv sleeps"),
      barrierWaits(this, "barrier_waits",
                   "caller end-of-epoch barrier waits recorded")
{
    epochs += stats.epochs;
    items += stats.items;
    callerItems += stats.callerItems;
    sleepTransitions += stats.sleepTransitions;
    barrierWaits += stats.barrierWaitNs.count();
}

std::string
simPoolPrometheus()
{
    const SimPoolStats stats = simPoolGlobalStats();
    std::ostringstream os;
    const auto counter = [&](const char *name, std::uint64_t value) {
        const std::string metric = metrics::prometheusName(name);
        os << "# TYPE " << metric << " counter\n";
        os << metric << " " << value << "\n";
    };
    counter("sim_pool_epochs_total", stats.epochs);
    counter("sim_pool_items_total", stats.items);
    counter("sim_pool_caller_items_total", stats.callerItems);
    counter("sim_pool_sleep_transitions_total", stats.sleepTransitions);
    metrics::writeHistogramPrometheus(os, "sim_pool_barrier_wait_ns",
                                      stats.barrierWaitNs);
    return os.str();
}

unsigned
resolveSimThreads(std::string_view text, std::string *error)
{
    if (text.empty()) {
        const char *env = std::getenv("LATTE_SIM_THREADS");
        if (!env || !*env)
            return 1;
        std::string ignored;
        const unsigned n = resolveSimThreads(env, &ignored);
        if (n == 0) {
            latte_warn("ignoring invalid LATTE_SIM_THREADS='{}' "
                       "(want a positive integer or 'auto')",
                       env);
            return 1;
        }
        return n;
    }
    if (text == "auto")
        return std::max(1u, std::thread::hardware_concurrency());
    const unsigned n = parsePositive(text);
    if (n == 0 && error) {
        *error = strfmt("invalid sim-threads value '{}' "
                        "(want a positive integer or 'auto')",
                        text);
    }
    return n;
}

SimThreadPool::SimThreadPool(unsigned workers)
{
    // Epoch barriers thrash when threads outnumber cores (every epoch
    // pays scheduler round trips instead of atomic handshakes), so
    // never spawn more workers than the machine has spare cores beside
    // the caller. Results are thread-count-invariant, so the clamp is
    // invisible outside wall-clock time.
    // LATTE_SIM_THREADS_NO_CLAMP is a test hook: sanitizer jobs set it
    // so the worker threads and every cross-thread handoff exist even
    // on machines with fewer cores than requested threads.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && !std::getenv("LATTE_SIM_THREADS_NO_CLAMP"))
        workers = std::min(workers, hw - 1);
    // The pool can still be outnumbered by external load (a -j sweep
    // running one pool per runner thread): spin between epochs only
    // when a core per thread plausibly exists, sleep immediately when
    // the spin would steal the publisher's core. Set before the first
    // worker spawns — they read it unsynchronized.
    if (hw >= workers + 1)
        spinBudget_ = kSpinsBeforeSleep;
    // All workers start checked out of the (nonexistent) epoch 0.
    checkedOut_.store(workers, std::memory_order_relaxed);
    workerClaimed_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(workers);
    for (unsigned i = 0; i < workers; ++i)
        workerClaimed_[i].store(0, std::memory_order_relaxed);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

SimThreadPool::~SimThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    foldGlobalPoolStats(stats());
}

SimPoolStats
SimThreadPool::stats() const
{
    SimPoolStats out;
    out.epochs = epochs_;
    out.callerItems = callerClaimed_.load(std::memory_order_relaxed);
    out.items = out.callerItems;
    out.sleepTransitions =
        sleepTransitions_.load(std::memory_order_relaxed);
    out.barrierWaitNs = barrierWaitNs_;
    out.workerItems.reserve(threads_.size());
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        const std::uint64_t claimed =
            workerClaimed_[i].load(std::memory_order_relaxed);
        out.workerItems.push_back(claimed);
        out.items += claimed;
    }
    return out;
}

void
SimThreadPool::claim(std::atomic<std::uint64_t> &claimed)
{
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
        if (i >= count_)
            return;
        (*job_)(i);
        claimed.fetch_add(1, std::memory_order_relaxed);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
SimThreadPool::run(std::size_t count,
                   const std::function<void(std::size_t)> &job)
{
    if (count == 0)
        return;
    if (threads_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            job(i);
        return;
    }

    // A straggler from the previous epoch may still be inside its claim
    // loop; recycling the cursor under it would hand it a bogus item.
    spinUntil([this] {
        return checkedOut_.load(std::memory_order_acquire) == workers();
    });

    job_ = &job;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    checkedOut_.store(0, std::memory_order_relaxed);
    {
        // The bump is taken under the mutex so a worker that just
        // decided to sleep cannot miss the wakeup.
        std::lock_guard<std::mutex> lock(mutex_);
        generation_.fetch_add(1, std::memory_order_release);
    }
    if (sleepers_.load(std::memory_order_acquire) > 0)
        cv_.notify_all();

    claim(callerClaimed_);

    // The release increments of done_ order every item's effects before
    // the barrier-side commit that follows this call. The wait is timed
    // (two clock reads per epoch, noise against an epoch's work): the
    // distribution is the direct measure of barrier-staging overhead
    // that the bench report and /metrics surface.
    const auto wait_start = std::chrono::steady_clock::now();
    spinUntil([this] {
        return done_.load(std::memory_order_acquire) == count_;
    });
    barrierWaitNs_.record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count()));
    ++epochs_;
}

void
SimThreadPool::workerLoop(unsigned index)
{
    setLogThreadName(strfmt("sim-w{}", index));
    std::atomic<std::uint64_t> &claimed = workerClaimed_[index];
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t gen;
        int spins = 0;
        while ((gen = generation_.load(std::memory_order_acquire)) ==
               seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            if (++spins < spinBudget_) {
                cpuRelax();
                continue;
            }
            // One transition per cv wait entered (spin budget spent,
            // or zero budget on an oversubscribed host).
            sleepTransitions_.fetch_add(1, std::memory_order_relaxed);
            sleepers_.fetch_add(1, std::memory_order_acq_rel);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return generation_.load(std::memory_order_acquire) !=
                               seen ||
                           stop_.load(std::memory_order_acquire);
                });
            }
            sleepers_.fetch_sub(1, std::memory_order_acq_rel);
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = gen;
        claim(claimed);
        checkedOut_.fetch_add(1, std::memory_order_release);
    }
}

} // namespace latte
