#include "gpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "metrics/live.hh"
#include "metrics/registry.hh"

namespace latte
{

Gpu::Gpu(const GpuConfig &cfg, MemoryImage *mem, CacheTuning tuning,
         Tracer *tracer)
    : StatGroup("gpu"),
      cyclesElapsed(this, "cycles", "total simulated cycles"),
      kernelsLaunched(this, "kernels", "kernel launches"),
      cfg_(cfg), mem_(mem), tracer_(tracer),
      noc_(cfg, this),
      dram_(cfg, this),
      l2_(cfg, &noc_, &dram_, mem, this)
{
    latte_assert(mem_ != nullptr);
    dram_.setTracer(tracer_);
    l2_.setTracer(tracer_);
    sms_.reserve(cfg_.numSms);
    for (std::uint32_t i = 0; i < cfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<StreamingMultiprocessor>(
            cfg_, i, &l2_, mem_, this, tuning));
        sms_.back()->setTracer(tracer_);
    }
}

void
Gpu::setSimThreads(unsigned threads)
{
    simThreads_ = std::max(1u, threads);
    pool_.reset();
    if (simThreads_ > 1) {
        pool_ = std::make_unique<SimThreadPool>(simThreads_ - 1);
        epochJob_ = [this](std::size_t k) {
            sms_[due_[k]]->stagedTick(epochNow_);
        };
    }
}

void
Gpu::setMetrics(metrics::MetricRegistry *metrics)
{
    metrics_ = metrics;
    dram_.setMetrics(metrics);
    l2_.setMetrics(metrics);
    for (auto &sm : sms_)
        sm->cache().setMetrics(metrics);
}

std::optional<SimInterrupt>
Gpu::checkControl()
{
    if (!control_)
        return std::nullopt;

    if (control_->cancel && control_->cancel->cancelled()) {
        const RunErrorCode reason = control_->cancel->reason();
        return SimInterrupt{
            reason == RunErrorCode::None ? RunErrorCode::Cancelled
                                         : reason,
            now_,
            reason == RunErrorCode::WallClockTimeout
                ? "watchdog: per-cell wall-clock budget exhausted"
                : "cancellation token tripped",
        };
    }

    if (control_->cycleBudget != 0 && now_ >= control_->cycleBudget) {
        return SimInterrupt{
            RunErrorCode::CycleBudgetExceeded, now_,
            strfmt("simulated-cycle budget of {} exhausted",
                   control_->cycleBudget)};
    }

    // Injected faults: the earliest due fault fires. The detail string
    // snapshots the live state of the faulted subsystem so the recorded
    // failure reads like a real post-mortem.
    const FaultPoint *due = nullptr;
    for (const FaultPoint &fault : control_->faults.faults) {
        if (now_ >= fault.atCycle &&
            (!due || fault.atCycle < due->atCycle))
            due = &fault;
    }
    if (!due)
        return std::nullopt;

    std::string detail;
    switch (due->kind) {
      case FaultKind::CompressorCorruption:
        detail = strfmt("injected: compressed-line round-trip "
                        "verification mismatch at cycle {}",
                        now_);
        break;
      case FaultKind::DecompQueueStall: {
        std::size_t depth = 0;
        for (const auto &sm : sms_) {
            for (const CompressorId mode :
                 {CompressorId::Bdi, CompressorId::Sc, CompressorId::Bpc,
                  CompressorId::Fpc, CompressorId::CpackZ})
                depth += sm->cache().queueFor(mode).depth(now_);
        }
        detail = strfmt("injected: decompression queue stopped "
                        "draining ({} entries in flight)",
                        depth);
        break;
      }
      case FaultKind::DramTimeout:
        detail = strfmt("injected: DRAM channel unresponsive "
                        "(backlog {} cycles)",
                        dram_.queueBacklog(now_));
        break;
      case FaultKind::AllocFailure:
        detail = "injected: cache line allocation failed";
        break;
    }
    return SimInterrupt{faultErrorCode(due->kind), now_,
                        std::move(detail)};
}

RunResult
Gpu::runKernel(KernelProgram &program, std::uint64_t max_instructions,
               Cycles max_cycles)
{
    ++kernelsLaunched;
    const Cycles start = now_;
    const std::uint64_t instr_start = totalInstructions();

    if (tracer_) {
        TraceEvent ev =
            makeTraceEvent(start, TraceEventKind::KernelBegin);
        ev.arg0 = kernelsLaunched.count() - 1;
        tracer_->record(ev);
    }

    for (auto &sm : sms_)
        sm->startKernel(&program);

    // An epoch with fewer due SMs than this runs staged-but-inline:
    // commit follows each tick immediately (same canonical order), so
    // drain phases never pay the pool's wakeup latency.
    constexpr std::size_t kMinParallelDue = 4;
    const bool parallel = simThreads_ > 1;
    if (parallel) {
        for (auto &sm : sms_)
            sm->beginStaged();
    }

    std::uint32_t next_cta = 0;
    const std::uint32_t num_ctas = program.numCtas();

    std::vector<Cycles> next_tick(sms_.size(), now_);
    std::vector<Cycles> last_tick(sms_.size(), now_);

    bool budget_hit = false;
    std::optional<SimInterrupt> interrupt;
    // Simulated-cycle cadence of live-gauge publication (observational
    // only; the stores land in this thread's metrics::live slot).
    constexpr Cycles kLivePublishPeriod = Cycles{1} << 16;
    Cycles next_live_publish = start;
    while (true) {
        // Distribute CTAs round-robin to SMs with capacity.
        bool assigned = true;
        while (assigned && next_cta < num_ctas) {
            assigned = false;
            for (std::uint32_t i = 0;
                 i < sms_.size() && next_cta < num_ctas; ++i) {
                if (sms_[i]->canTakeCta()) {
                    sms_[i]->assignCta(now_, next_cta++);
                    next_tick[i] = std::min(next_tick[i], now_ + 1);
                    assigned = true;
                }
            }
        }

        // Find the earliest cycle any SM needs attention.
        Cycles next = kNoCycle;
        for (const Cycles t : next_tick)
            next = std::min(next, t);
        if (next == kNoCycle)
            break; // every SM drained and no CTAs left
        latte_assert(next >= now_, "clock went backwards");
        now_ = std::max(now_, next);

        if ((interrupt = checkControl())) {
            budget_hit = true;
            break;
        }

        if (now_ - start > max_cycles) {
            latte_warn("kernel {} exceeded {} cycles; stopping",
                       program.name(), max_cycles);
            budget_hit = true;
            break;
        }

        due_.clear();
        for (std::uint32_t i = 0; i < sms_.size(); ++i) {
            if (next_tick[i] > now_)
                continue;
            const Cycles gap = now_ - last_tick[i];
            if (gap > 1)
                sms_[i]->noteIdle(gap - 1);
            last_tick[i] = now_;
            due_.push_back(i);
        }

        if (parallel && due_.size() >= kMinParallelDue) {
            // Phase A: due SMs tick concurrently against private state.
            epochNow_ = now_;
            pool_->run(due_.size(), epochJob_);
            // Phase B: shared effects commit in canonical SM order.
            for (const std::uint32_t i : due_)
                next_tick[i] = sms_[i]->commitStage(now_);
        } else if (parallel) {
            for (const std::uint32_t i : due_) {
                sms_[i]->stagedTick(now_);
                next_tick[i] = sms_[i]->commitStage(now_);
            }
        } else {
            for (const std::uint32_t i : due_)
                next_tick[i] = sms_[i]->tick(now_);
        }
        for (const std::uint32_t i : due_) {
            latte_assert(next_tick[i] == kNoCycle || next_tick[i] > now_,
                         "SM must request a future tick");
        }

        if (metrics_ && metrics_->due(now_))
            metrics_->sample(now_);

        const std::uint64_t executed =
            totalInstructions() - instr_start;
        if (executed >= max_instructions) {
            budget_hit = true;
            break;
        }

        // Feed the thread's live-metrics slot so a /metrics scrape
        // mid-run sees the cell advancing. Throttled: the stores are
        // relaxed, but there is no reason to publish every cycle.
        if (now_ >= next_live_publish) {
            metrics::live::CellScope::publish(now_, executed);
            next_live_publish = now_ + kLivePublishPeriod;
        }
    }

    if (parallel) {
        for (auto &sm : sms_)
            sm->endStaged();
    }

    const Cycles duration = now_ - start;
    cyclesElapsed += duration;

    if (tracer_) {
        TraceEvent ev = makeTraceEvent(now_, TraceEventKind::KernelEnd);
        ev.arg0 = kernelsLaunched.count() - 1;
        ev.arg1 = budget_hit ? 0 : 1;
        tracer_->record(ev);
    }

    RunResult result;
    result.cycles = duration;
    result.instructions = totalInstructions() - instr_start;
    result.completed = !budget_hit;
    result.interrupt = std::move(interrupt);
    return result;
}

std::uint64_t
Gpu::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms_)
        n += sm->instructions.count();
    return n;
}

std::uint64_t
Gpu::totalL1Hits() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms_)
        n += sm->cache().hits.count();
    return n;
}

std::uint64_t
Gpu::totalL1Misses() const
{
    std::uint64_t n = 0;
    for (const auto &sm : sms_)
        n += sm->cache().misses.count() +
             sm->cache().mergedMisses.count();
    return n;
}

std::uint64_t
Gpu::totalL1Accesses() const
{
    return totalL1Hits() + totalL1Misses();
}

} // namespace latte
