/**
 * @file
 * The abstract instruction stream executed by warps. Workloads supply a
 * KernelProgram that deterministically produces each warp's instructions;
 * the SIMT core model executes them against the timing model. This plays
 * the role GPGPU-Sim's PTX front end plays for the paper, at the
 * granularity that matters for the study: ALU work, per-lane memory
 * addresses, and control of warp-level parallelism over time.
 */

#ifndef LATTE_SIM_INSTRUCTION_HH
#define LATTE_SIM_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace latte
{

/** Instruction classes the timing model distinguishes. */
enum class Op : std::uint8_t
{
    Alu,    //!< arithmetic; completes after `latency` cycles
    Sfu,    //!< special function; like Alu but typically longer latency
    Load,   //!< global load; warp waits for all coalesced accesses
    Store,  //!< global store; fire-and-forget (write-avoid L1)
    Exit,   //!< warp terminates
};

/** One decoded warp instruction. */
struct DecodedInstr
{
    Op op = Op::Exit;
    /** Completion latency for Alu/Sfu. */
    Cycles latency = 1;
    /** Per-lane byte addresses for Load/Store; empty entries = inactive. */
    std::vector<Addr> laneAddrs;
};

/**
 * A kernel: a grid of CTAs, each of `warpsPerCta` warps, whose
 * instruction stream is a deterministic function of (global warp id, pc).
 */
class KernelProgram
{
  public:
    virtual ~KernelProgram() = default;

    virtual std::string name() const = 0;
    virtual std::uint32_t numCtas() const = 0;
    virtual std::uint32_t warpsPerCta() const = 0;

    /**
     * Produce the instruction at @p pc of @p global_warp. Must be
     * deterministic: re-fetching the same (warp, pc) yields the same
     * instruction.
     */
    virtual DecodedInstr fetch(std::uint32_t global_warp,
                               std::uint64_t pc) = 0;
};

} // namespace latte

#endif // LATTE_SIM_INSTRUCTION_HH
