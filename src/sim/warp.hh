/**
 * @file
 * Per-warp execution state tracked by the SM model.
 */

#ifndef LATTE_SIM_WARP_HH
#define LATTE_SIM_WARP_HH

#include <cstdint>

#include "common/types.hh"

namespace latte
{

/** Lifecycle of a warp slot. */
enum class WarpState : std::uint8_t
{
    Unassigned,  //!< slot not populated with a CTA warp
    Active,      //!< executing (ready when readyAt <= now)
    WaitMem,     //!< load outstanding; readyAt set once the LSU resolves it
    Finished,    //!< hit Exit; slot reusable when the CTA drains
};

/** One warp slot in an SM. */
struct Warp
{
    WarpId slot = 0;                 //!< index within the SM
    std::uint32_t globalWarpId = 0;  //!< cta * warpsPerCta + lane group
    std::uint32_t ctaSlot = 0;       //!< which resident CTA it belongs to
    std::uint64_t pc = 0;
    WarpState state = WarpState::Unassigned;
    /** Cycle the warp can next issue; kNoCycle while WaitMem-unresolved. */
    Cycles readyAt = 0;
    /** Age stamp for GTO's "oldest" order (assignment order). */
    std::uint64_t age = 0;

    // --- load tracking ---
    std::uint32_t pendingAccesses = 0;
    Cycles memReady = 0;

    bool
    ready(Cycles now) const
    {
        return state == WarpState::Active && readyAt != kNoCycle &&
               readyAt <= now;
    }

    /** True if the warp will become ready at a known future cycle. */
    bool
    sleeping(Cycles now) const
    {
        return (state == WarpState::Active ||
                state == WarpState::WaitMem) &&
               readyAt != kNoCycle && readyAt > now;
    }
};

} // namespace latte

#endif // LATTE_SIM_WARP_HH
