file(REMOVE_RECURSE
  "CMakeFiles/fig12_miss_reduction.dir/fig12_miss_reduction.cc.o"
  "CMakeFiles/fig12_miss_reduction.dir/fig12_miss_reduction.cc.o.d"
  "fig12_miss_reduction"
  "fig12_miss_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_miss_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
