# Empty dependencies file for fig12_miss_reduction.
# This may be replaced when dependencies are built.
