file(REMOVE_RECURSE
  "CMakeFiles/ablation_static_modes.dir/ablation_static_modes.cc.o"
  "CMakeFiles/ablation_static_modes.dir/ablation_static_modes.cc.o.d"
  "ablation_static_modes"
  "ablation_static_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
