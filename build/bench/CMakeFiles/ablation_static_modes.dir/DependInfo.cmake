
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_static_modes.cc" "bench/CMakeFiles/ablation_static_modes.dir/ablation_static_modes.cc.o" "gcc" "bench/CMakeFiles/ablation_static_modes.dir/ablation_static_modes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/latte_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/latte_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/latte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/latte_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/latte_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/latte_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/latte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
