# Empty compiler generated dependencies file for ablation_static_modes.
# This may be replaced when dependencies are built.
