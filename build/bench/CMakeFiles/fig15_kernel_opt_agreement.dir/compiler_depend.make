# Empty compiler generated dependencies file for fig15_kernel_opt_agreement.
# This may be replaced when dependencies are built.
