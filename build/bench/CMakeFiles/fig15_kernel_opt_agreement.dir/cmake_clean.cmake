file(REMOVE_RECURSE
  "CMakeFiles/fig15_kernel_opt_agreement.dir/fig15_kernel_opt_agreement.cc.o"
  "CMakeFiles/fig15_kernel_opt_agreement.dir/fig15_kernel_opt_agreement.cc.o.d"
  "fig15_kernel_opt_agreement"
  "fig15_kernel_opt_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_kernel_opt_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
