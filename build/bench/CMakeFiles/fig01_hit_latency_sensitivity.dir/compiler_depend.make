# Empty compiler generated dependencies file for fig01_hit_latency_sensitivity.
# This may be replaced when dependencies are built.
