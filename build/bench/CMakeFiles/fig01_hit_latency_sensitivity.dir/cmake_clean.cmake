file(REMOVE_RECURSE
  "CMakeFiles/fig01_hit_latency_sensitivity.dir/fig01_hit_latency_sensitivity.cc.o"
  "CMakeFiles/fig01_hit_latency_sensitivity.dir/fig01_hit_latency_sensitivity.cc.o.d"
  "fig01_hit_latency_sensitivity"
  "fig01_hit_latency_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hit_latency_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
