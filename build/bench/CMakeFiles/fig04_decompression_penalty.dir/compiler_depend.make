# Empty compiler generated dependencies file for fig04_decompression_penalty.
# This may be replaced when dependencies are built.
