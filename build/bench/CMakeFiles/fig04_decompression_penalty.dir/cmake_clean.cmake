file(REMOVE_RECURSE
  "CMakeFiles/fig04_decompression_penalty.dir/fig04_decompression_penalty.cc.o"
  "CMakeFiles/fig04_decompression_penalty.dir/fig04_decompression_penalty.cc.o.d"
  "fig04_decompression_penalty"
  "fig04_decompression_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_decompression_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
