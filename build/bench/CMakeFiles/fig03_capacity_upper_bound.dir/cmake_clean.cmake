file(REMOVE_RECURSE
  "CMakeFiles/fig03_capacity_upper_bound.dir/fig03_capacity_upper_bound.cc.o"
  "CMakeFiles/fig03_capacity_upper_bound.dir/fig03_capacity_upper_bound.cc.o.d"
  "fig03_capacity_upper_bound"
  "fig03_capacity_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_capacity_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
