# Empty dependencies file for fig03_capacity_upper_bound.
# This may be replaced when dependencies are built.
