file(REMOVE_RECURSE
  "CMakeFiles/fig17_adaptive_policies.dir/fig17_adaptive_policies.cc.o"
  "CMakeFiles/fig17_adaptive_policies.dir/fig17_adaptive_policies.cc.o.d"
  "fig17_adaptive_policies"
  "fig17_adaptive_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_adaptive_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
