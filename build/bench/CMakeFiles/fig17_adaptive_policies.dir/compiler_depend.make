# Empty compiler generated dependencies file for fig17_adaptive_policies.
# This may be replaced when dependencies are built.
