file(REMOVE_RECURSE
  "CMakeFiles/fig16_effective_capacity.dir/fig16_effective_capacity.cc.o"
  "CMakeFiles/fig16_effective_capacity.dir/fig16_effective_capacity.cc.o.d"
  "fig16_effective_capacity"
  "fig16_effective_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_effective_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
