# Empty dependencies file for fig16_effective_capacity.
# This may be replaced when dependencies are built.
