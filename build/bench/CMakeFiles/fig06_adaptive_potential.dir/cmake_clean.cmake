file(REMOVE_RECURSE
  "CMakeFiles/fig06_adaptive_potential.dir/fig06_adaptive_potential.cc.o"
  "CMakeFiles/fig06_adaptive_potential.dir/fig06_adaptive_potential.cc.o.d"
  "fig06_adaptive_potential"
  "fig06_adaptive_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_adaptive_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
