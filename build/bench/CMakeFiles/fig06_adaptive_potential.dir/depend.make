# Empty dependencies file for fig06_adaptive_potential.
# This may be replaced when dependencies are built.
