# Empty compiler generated dependencies file for fig05_latency_tolerance_trace.
# This may be replaced when dependencies are built.
