file(REMOVE_RECURSE
  "CMakeFiles/fig05_latency_tolerance_trace.dir/fig05_latency_tolerance_trace.cc.o"
  "CMakeFiles/fig05_latency_tolerance_trace.dir/fig05_latency_tolerance_trace.cc.o.d"
  "fig05_latency_tolerance_trace"
  "fig05_latency_tolerance_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_latency_tolerance_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
