file(REMOVE_RECURSE
  "CMakeFiles/ablation_ep_length.dir/ablation_ep_length.cc.o"
  "CMakeFiles/ablation_ep_length.dir/ablation_ep_length.cc.o.d"
  "ablation_ep_length"
  "ablation_ep_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ep_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
