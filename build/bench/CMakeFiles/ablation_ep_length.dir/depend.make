# Empty dependencies file for ablation_ep_length.
# This may be replaced when dependencies are built.
