file(REMOVE_RECURSE
  "CMakeFiles/ablation_dedicated_sets.dir/ablation_dedicated_sets.cc.o"
  "CMakeFiles/ablation_dedicated_sets.dir/ablation_dedicated_sets.cc.o.d"
  "ablation_dedicated_sets"
  "ablation_dedicated_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dedicated_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
