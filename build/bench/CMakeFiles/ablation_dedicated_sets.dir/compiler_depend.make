# Empty compiler generated dependencies file for ablation_dedicated_sets.
# This may be replaced when dependencies are built.
