file(REMOVE_RECURSE
  "CMakeFiles/sens_cache_size.dir/sens_cache_size.cc.o"
  "CMakeFiles/sens_cache_size.dir/sens_cache_size.cc.o.d"
  "sens_cache_size"
  "sens_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
