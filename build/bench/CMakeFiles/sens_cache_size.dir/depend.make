# Empty dependencies file for sens_cache_size.
# This may be replaced when dependencies are built.
