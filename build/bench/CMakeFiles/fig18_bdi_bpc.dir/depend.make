# Empty dependencies file for fig18_bdi_bpc.
# This may be replaced when dependencies are built.
