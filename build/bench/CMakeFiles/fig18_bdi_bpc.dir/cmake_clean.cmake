file(REMOVE_RECURSE
  "CMakeFiles/fig18_bdi_bpc.dir/fig18_bdi_bpc.cc.o"
  "CMakeFiles/fig18_bdi_bpc.dir/fig18_bdi_bpc.cc.o.d"
  "fig18_bdi_bpc"
  "fig18_bdi_bpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_bdi_bpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
