file(REMOVE_RECURSE
  "CMakeFiles/table03_workloads.dir/table03_workloads.cc.o"
  "CMakeFiles/table03_workloads.dir/table03_workloads.cc.o.d"
  "table03_workloads"
  "table03_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
