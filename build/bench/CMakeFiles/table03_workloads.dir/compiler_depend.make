# Empty compiler generated dependencies file for table03_workloads.
# This may be replaced when dependencies are built.
