# Empty compiler generated dependencies file for table01_algorithms.
# This may be replaced when dependencies are built.
