file(REMOVE_RECURSE
  "CMakeFiles/table01_algorithms.dir/table01_algorithms.cc.o"
  "CMakeFiles/table01_algorithms.dir/table01_algorithms.cc.o.d"
  "table01_algorithms"
  "table01_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
