
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/latte_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/latte_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_compressors.cc" "tests/CMakeFiles/latte_tests.dir/test_compressors.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_compressors.cc.o.d"
  "/root/repo/tests/test_decomp_queue.cc" "tests/CMakeFiles/latte_tests.dir/test_decomp_queue.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_decomp_queue.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/latte_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_huffman.cc" "tests/CMakeFiles/latte_tests.dir/test_huffman.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_huffman.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/latte_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_lsu.cc" "tests/CMakeFiles/latte_tests.dir/test_lsu.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_lsu.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/latte_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/latte_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/latte_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_replacement.cc" "tests/CMakeFiles/latte_tests.dir/test_replacement.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_replacement.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/latte_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/latte_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/latte_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latte_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/latte_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/latte_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/latte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/latte_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/latte_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/latte_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/latte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
