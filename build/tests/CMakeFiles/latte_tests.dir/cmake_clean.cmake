file(REMOVE_RECURSE
  "CMakeFiles/latte_tests.dir/test_cache.cc.o"
  "CMakeFiles/latte_tests.dir/test_cache.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_common.cc.o"
  "CMakeFiles/latte_tests.dir/test_common.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_compressors.cc.o"
  "CMakeFiles/latte_tests.dir/test_compressors.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_decomp_queue.cc.o"
  "CMakeFiles/latte_tests.dir/test_decomp_queue.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_energy.cc.o"
  "CMakeFiles/latte_tests.dir/test_energy.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_huffman.cc.o"
  "CMakeFiles/latte_tests.dir/test_huffman.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_integration.cc.o"
  "CMakeFiles/latte_tests.dir/test_integration.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_lsu.cc.o"
  "CMakeFiles/latte_tests.dir/test_lsu.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_mem.cc.o"
  "CMakeFiles/latte_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_policies.cc.o"
  "CMakeFiles/latte_tests.dir/test_policies.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_properties.cc.o"
  "CMakeFiles/latte_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_replacement.cc.o"
  "CMakeFiles/latte_tests.dir/test_replacement.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_sim.cc.o"
  "CMakeFiles/latte_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/latte_tests.dir/test_workloads.cc.o"
  "CMakeFiles/latte_tests.dir/test_workloads.cc.o.d"
  "latte_tests"
  "latte_tests.pdb"
  "latte_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
