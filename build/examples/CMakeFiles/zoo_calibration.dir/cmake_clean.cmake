file(REMOVE_RECURSE
  "CMakeFiles/zoo_calibration.dir/zoo_calibration.cpp.o"
  "CMakeFiles/zoo_calibration.dir/zoo_calibration.cpp.o.d"
  "zoo_calibration"
  "zoo_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
