# Empty compiler generated dependencies file for zoo_calibration.
# This may be replaced when dependencies are built.
