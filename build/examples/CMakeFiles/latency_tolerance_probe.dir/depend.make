# Empty dependencies file for latency_tolerance_probe.
# This may be replaced when dependencies are built.
