file(REMOVE_RECURSE
  "CMakeFiles/latency_tolerance_probe.dir/latency_tolerance_probe.cpp.o"
  "CMakeFiles/latency_tolerance_probe.dir/latency_tolerance_probe.cpp.o.d"
  "latency_tolerance_probe"
  "latency_tolerance_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tolerance_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
