# Empty dependencies file for latte_sim_cli.
# This may be replaced when dependencies are built.
