file(REMOVE_RECURSE
  "CMakeFiles/latte_sim_cli.dir/latte_sim.cpp.o"
  "CMakeFiles/latte_sim_cli.dir/latte_sim.cpp.o.d"
  "lattesim"
  "lattesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
