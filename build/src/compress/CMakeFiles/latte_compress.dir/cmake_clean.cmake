file(REMOVE_RECURSE
  "CMakeFiles/latte_compress.dir/bdi.cc.o"
  "CMakeFiles/latte_compress.dir/bdi.cc.o.d"
  "CMakeFiles/latte_compress.dir/bpc.cc.o"
  "CMakeFiles/latte_compress.dir/bpc.cc.o.d"
  "CMakeFiles/latte_compress.dir/compressor.cc.o"
  "CMakeFiles/latte_compress.dir/compressor.cc.o.d"
  "CMakeFiles/latte_compress.dir/cpack.cc.o"
  "CMakeFiles/latte_compress.dir/cpack.cc.o.d"
  "CMakeFiles/latte_compress.dir/factory.cc.o"
  "CMakeFiles/latte_compress.dir/factory.cc.o.d"
  "CMakeFiles/latte_compress.dir/fpc.cc.o"
  "CMakeFiles/latte_compress.dir/fpc.cc.o.d"
  "CMakeFiles/latte_compress.dir/huffman.cc.o"
  "CMakeFiles/latte_compress.dir/huffman.cc.o.d"
  "CMakeFiles/latte_compress.dir/sc.cc.o"
  "CMakeFiles/latte_compress.dir/sc.cc.o.d"
  "liblatte_compress.a"
  "liblatte_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
