file(REMOVE_RECURSE
  "liblatte_compress.a"
)
