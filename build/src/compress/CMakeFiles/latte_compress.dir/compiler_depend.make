# Empty compiler generated dependencies file for latte_compress.
# This may be replaced when dependencies are built.
