# Empty dependencies file for latte_cache.
# This may be replaced when dependencies are built.
