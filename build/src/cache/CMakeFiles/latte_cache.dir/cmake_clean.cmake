file(REMOVE_RECURSE
  "CMakeFiles/latte_cache.dir/compressed_cache.cc.o"
  "CMakeFiles/latte_cache.dir/compressed_cache.cc.o.d"
  "liblatte_cache.a"
  "liblatte_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
