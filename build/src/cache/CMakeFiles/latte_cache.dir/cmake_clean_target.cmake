file(REMOVE_RECURSE
  "liblatte_cache.a"
)
