# Empty dependencies file for latte_workloads.
# This may be replaced when dependencies are built.
