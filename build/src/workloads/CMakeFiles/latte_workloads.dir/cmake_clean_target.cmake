file(REMOVE_RECURSE
  "liblatte_workloads.a"
)
