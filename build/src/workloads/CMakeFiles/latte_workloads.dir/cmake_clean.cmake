file(REMOVE_RECURSE
  "CMakeFiles/latte_workloads.dir/synthetic_kernel.cc.o"
  "CMakeFiles/latte_workloads.dir/synthetic_kernel.cc.o.d"
  "CMakeFiles/latte_workloads.dir/value_gens.cc.o"
  "CMakeFiles/latte_workloads.dir/value_gens.cc.o.d"
  "CMakeFiles/latte_workloads.dir/zoo.cc.o"
  "CMakeFiles/latte_workloads.dir/zoo.cc.o.d"
  "liblatte_workloads.a"
  "liblatte_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
