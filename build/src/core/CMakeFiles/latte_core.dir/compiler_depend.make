# Empty compiler generated dependencies file for latte_core.
# This may be replaced when dependencies are built.
