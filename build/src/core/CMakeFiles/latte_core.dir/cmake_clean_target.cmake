file(REMOVE_RECURSE
  "liblatte_core.a"
)
