file(REMOVE_RECURSE
  "CMakeFiles/latte_core.dir/driver.cc.o"
  "CMakeFiles/latte_core.dir/driver.cc.o.d"
  "CMakeFiles/latte_core.dir/policies.cc.o"
  "CMakeFiles/latte_core.dir/policies.cc.o.d"
  "CMakeFiles/latte_core.dir/report.cc.o"
  "CMakeFiles/latte_core.dir/report.cc.o.d"
  "liblatte_core.a"
  "liblatte_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
