# Empty compiler generated dependencies file for latte_mem.
# This may be replaced when dependencies are built.
