file(REMOVE_RECURSE
  "liblatte_mem.a"
)
