file(REMOVE_RECURSE
  "CMakeFiles/latte_mem.dir/dram.cc.o"
  "CMakeFiles/latte_mem.dir/dram.cc.o.d"
  "CMakeFiles/latte_mem.dir/interconnect.cc.o"
  "CMakeFiles/latte_mem.dir/interconnect.cc.o.d"
  "CMakeFiles/latte_mem.dir/l2cache.cc.o"
  "CMakeFiles/latte_mem.dir/l2cache.cc.o.d"
  "CMakeFiles/latte_mem.dir/memory_image.cc.o"
  "CMakeFiles/latte_mem.dir/memory_image.cc.o.d"
  "liblatte_mem.a"
  "liblatte_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
