
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/latte_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/latte_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/mem/CMakeFiles/latte_mem.dir/interconnect.cc.o" "gcc" "src/mem/CMakeFiles/latte_mem.dir/interconnect.cc.o.d"
  "/root/repo/src/mem/l2cache.cc" "src/mem/CMakeFiles/latte_mem.dir/l2cache.cc.o" "gcc" "src/mem/CMakeFiles/latte_mem.dir/l2cache.cc.o.d"
  "/root/repo/src/mem/memory_image.cc" "src/mem/CMakeFiles/latte_mem.dir/memory_image.cc.o" "gcc" "src/mem/CMakeFiles/latte_mem.dir/memory_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/latte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
