# Empty dependencies file for latte_energy.
# This may be replaced when dependencies are built.
