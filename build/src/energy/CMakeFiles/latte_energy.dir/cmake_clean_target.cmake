file(REMOVE_RECURSE
  "liblatte_energy.a"
)
