file(REMOVE_RECURSE
  "CMakeFiles/latte_energy.dir/energy_model.cc.o"
  "CMakeFiles/latte_energy.dir/energy_model.cc.o.d"
  "liblatte_energy.a"
  "liblatte_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
