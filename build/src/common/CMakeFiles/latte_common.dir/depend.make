# Empty dependencies file for latte_common.
# This may be replaced when dependencies are built.
