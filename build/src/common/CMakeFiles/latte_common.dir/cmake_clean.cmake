file(REMOVE_RECURSE
  "CMakeFiles/latte_common.dir/logging.cc.o"
  "CMakeFiles/latte_common.dir/logging.cc.o.d"
  "CMakeFiles/latte_common.dir/stats.cc.o"
  "CMakeFiles/latte_common.dir/stats.cc.o.d"
  "liblatte_common.a"
  "liblatte_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
