file(REMOVE_RECURSE
  "liblatte_common.a"
)
