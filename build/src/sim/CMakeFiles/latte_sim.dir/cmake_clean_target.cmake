file(REMOVE_RECURSE
  "liblatte_sim.a"
)
