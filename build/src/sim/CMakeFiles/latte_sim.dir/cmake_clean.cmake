file(REMOVE_RECURSE
  "CMakeFiles/latte_sim.dir/gpu.cc.o"
  "CMakeFiles/latte_sim.dir/gpu.cc.o.d"
  "CMakeFiles/latte_sim.dir/sm.cc.o"
  "CMakeFiles/latte_sim.dir/sm.cc.o.d"
  "liblatte_sim.a"
  "liblatte_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
