# Empty compiler generated dependencies file for latte_sim.
# This may be replaced when dependencies are built.
