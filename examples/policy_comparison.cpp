/**
 * @file
 * Policy comparison: run one workload (default KM, or the abbreviation
 * given on the command line) under every compression management policy
 * and print a side-by-side table. The runs go through runner::Sweep, so
 * -j N parallelises across policies and --json dumps the raw results.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "core/driver.hh"
#include "runner/sweep.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace latte;

    runner::Sweep sweep(argc, argv);

    const std::string abbr = argc > 1 ? argv[1] : "KM";
    const Workload *workload = findWorkload(abbr);
    if (!workload) {
        std::cerr << "unknown workload '" << abbr << "'; available:";
        for (const auto &w : workloadZoo())
            std::cerr << " " << w.abbr;
        std::cerr << "\n";
        return 1;
    }

    const PolicyKind kinds[] = {
        PolicyKind::Baseline,       PolicyKind::StaticBdi,
        PolicyKind::StaticSc,       PolicyKind::AdaptiveHitCount,
        PolicyKind::AdaptiveCmp,    PolicyKind::LatteCc,
        PolicyKind::LatteCcBdiBpc,  PolicyKind::KernelOpt,
    };
    for (const PolicyKind kind : kinds)
        sweep.add(*workload, kind);

    std::cout << "Workload: " << workload->fullName << " ("
              << (workload->cacheSensitive ? "C-Sens" : "C-InSens")
              << ")\n\n";
    std::cout << std::left << std::setw(20) << "policy"
              << std::right << std::setw(12) << "cycles"
              << std::setw(10) << "speedup" << std::setw(11) << "missrate"
              << std::setw(12) << "energy(mJ)" << std::setw(9) << "norm.E"
              << "\n";

    const WorkloadRunResult &base =
        sweep.get(*workload, PolicyKind::Baseline);
    for (const PolicyKind kind : kinds) {
        const WorkloadRunResult &r = sweep.get(*workload, kind);
        std::cout << std::left << std::setw(20) << policyName(kind)
                  << std::right << std::fixed << std::setprecision(3)
                  << std::setw(12) << r.cycles
                  << std::setw(10) << speedupOver(base, r)
                  << std::setw(11) << r.missRate()
                  << std::setw(12) << r.energy.totalMj()
                  << std::setw(9)
                  << r.energy.totalMj() / base.energy.totalMj()
                  << "\n";
    }
    return 0;
}
