/**
 * @file
 * Zoo calibration: for every workload print the paper's classification
 * criterion (speedup with a 4x L1, Section IV-B) plus the headline
 * behaviours each experiment depends on: miss rates, static BDI/SC
 * speedups and the measured latency tolerance. Used to keep the
 * synthetic workloads aligned with their Table III roles. Runs through
 * runner::Sweep: `zoo_calibration -j 8` calibrates the whole zoo in
 * parallel.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "core/driver.hh"
#include "runner/sweep.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace latte;

    runner::Sweep sweep(argc, argv);

    const std::string only = argc > 1 ? argv[1] : "";

    DriverOptions base_opts;
    DriverOptions big_opts;
    big_opts.cfg.l1.sizeBytes = 64 * 1024;

    for (const auto &workload : workloadZoo()) {
        if (!only.empty() && workload.abbr != only)
            continue;
        sweep.add(workload, PolicyKind::Baseline, base_opts);
        sweep.add(workload, PolicyKind::Baseline, big_opts);
        sweep.add(workload, PolicyKind::StaticBdi, base_opts);
        sweep.add(workload, PolicyKind::StaticSc, base_opts);
        sweep.add(workload, PolicyKind::LatteCc, base_opts);
    }

    std::cout << std::left << std::setw(5) << "wl" << std::setw(9)
              << "want" << std::right << std::setw(10) << "cycles"
              << std::setw(7) << "IPC" << std::setw(7) << "miss%"
              << std::setw(7) << "4xL1" << std::setw(7) << "BDI"
              << std::setw(7) << "SC" << std::setw(7) << "LATTE"
              << std::setw(7) << "tol" << "\n";

    for (const auto &workload : workloadZoo()) {
        if (!only.empty() && workload.abbr != only)
            continue;

        const auto &base =
            sweep.get(workload, PolicyKind::Baseline, base_opts);
        const auto &big =
            sweep.get(workload, PolicyKind::Baseline, big_opts);
        const auto &bdi =
            sweep.get(workload, PolicyKind::StaticBdi, base_opts);
        const auto &sc =
            sweep.get(workload, PolicyKind::StaticSc, base_opts);
        const auto &latte =
            sweep.get(workload, PolicyKind::LatteCc, base_opts);

        std::cout << std::left << std::setw(5) << workload.abbr
                  << std::setw(9)
                  << (workload.cacheSensitive ? "C-Sens" : "C-InSens")
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(10) << base.cycles
                  << std::setw(7)
                  << static_cast<double>(base.instructions) /
                         static_cast<double>(base.cycles)
                  << std::setw(7) << base.missRate() * 100
                  << std::setw(7) << speedupOver(base, big)
                  << std::setw(7) << speedupOver(base, bdi)
                  << std::setw(7) << speedupOver(base, sc)
                  << std::setw(7) << speedupOver(base, latte)
                  << std::setw(7) << base.avgTolerance() << "\n"
                  << std::flush;
    }
    return 0;
}
