/**
 * @file
 * Quickstart: build a GPU, run one cache-sensitive workload under the
 * uncompressed baseline and under LATTE-CC, and print the headline
 * metrics the paper reports (speedup, L1 miss reduction, energy).
 * Demonstrates the single run(RunRequest) entrypoint.
 */

#include <iomanip>
#include <iostream>

#include "core/driver.hh"
#include "workloads/zoo.hh"

int
main()
{
    using namespace latte;

    const Workload *workload = findWorkload("SS");
    if (!workload) {
        std::cerr << "workload SS missing from the zoo\n";
        return 1;
    }

    std::cout << "Running " << workload->fullName << " ("
              << workload->abbr << ") ...\n";

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::Baseline;
    const RunOutcome base_outcome = run(request);

    request.policy = PolicyKind::LatteCc;
    const RunOutcome latte_outcome = run(request);

    if (!base_outcome.ok() || !latte_outcome.ok()) {
        const RunError &error = base_outcome.ok()
                                    ? latte_outcome.error
                                    : base_outcome.error;
        std::cerr << "run failed: " << to_string(error) << "\n";
        return 1;
    }
    const WorkloadRunResult &base = base_outcome.value();
    const WorkloadRunResult &latte = latte_outcome.value();

    const double speedup = speedupOver(base, latte);
    const double miss_reduction =
        1.0 - static_cast<double>(latte.misses) /
                  static_cast<double>(base.misses);
    const double energy_ratio =
        latte.energy.totalMj() / base.energy.totalMj();

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "baseline : " << base.cycles << " cycles, "
              << base.instructions << " instructions, miss rate "
              << base.missRate() << "\n";
    std::cout << "LATTE-CC : " << latte.cycles << " cycles, miss rate "
              << latte.missRate() << "\n";
    std::cout << "speedup            : " << speedup << "x\n";
    std::cout << "L1 miss reduction  : " << miss_reduction * 100
              << " %\n";
    std::cout << "normalised energy  : " << energy_ratio << "\n";
    std::cout << "avg latency tolerance (EPs): "
              << latte.avgTolerance() << " cycles\n";
    return 0;
}
