/**
 * @file
 * Compression explorer: generate cache lines with each of the library's
 * value profiles and report every algorithm's compression ratio and
 * latency — a miniature of the paper's Table I / Figure 2 analysis,
 * usable on your own generator parameters.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "compress/factory.hh"
#include "compress/sc.hh"
#include "mem/memory_image.hh"
#include "workloads/value_gens.hh"

using namespace latte;

namespace
{

struct Profile
{
    const char *name;
    std::shared_ptr<LineGenerator> gen;
};

} // namespace

int
main()
{
    std::vector<Profile> profiles = {
        {"zeros", std::make_shared<ZeroGen>()},
        {"small-delta ints", std::make_shared<IntArrayGen>(7, 100, 2, 3)},
        {"large-stride ints",
         std::make_shared<IntArrayGen>(8, 5, 50000, 0)},
        {"pointers",
         std::make_shared<PointerArrayGen>(9, 0x7f0000000000ull,
                                           1ull << 20)},
        {"float palette (64)",
         std::make_shared<PaletteGen>(10, 64, true)},
        {"noisy floats", std::make_shared<FloatNoiseGen>(11, 1.0f, 1.0f)},
    };

    constexpr unsigned kLines = 512;

    std::cout << std::left << std::setw(20) << "profile";
    for (const CompressorId id : allCompressorIds())
        std::cout << std::setw(10) << compressorName(id);
    std::cout << "\n";

    for (const auto &profile : profiles) {
        std::cout << std::left << std::setw(20) << profile.name
                  << std::fixed << std::setprecision(2);
        for (const CompressorId id : allCompressorIds()) {
            auto engine = makeCompressor(id);

            // SC needs trained codes: give it one pass over the data.
            if (id == CompressorId::Sc) {
                auto *sc = static_cast<ScCompressor *>(engine.get());
                for (unsigned i = 0; i < kLines; ++i) {
                    std::array<std::uint8_t, kLineBytes> line;
                    profile.gen->generate(i * kLineBytes, line);
                    sc->trainLine(line);
                }
                sc->rebuildCodes();
            }

            double total_bits = 0;
            for (unsigned i = 0; i < kLines; ++i) {
                std::array<std::uint8_t, kLineBytes> line;
                profile.gen->generate(i * kLineBytes, line);
                total_bits += engine->compress(line).sizeBits;
            }
            const double ratio =
                kLines * double{kLineBits} / total_bits;
            std::cout << std::setw(10) << ratio;
        }
        std::cout << "\n";
    }

    std::cout << "\nDecompression latencies (cycles): ";
    for (const CompressorId id : allCompressorIds()) {
        auto engine = makeCompressor(id);
        std::cout << compressorName(id) << "="
                  << engine->decompressLatency() << " ";
    }
    std::cout << "\n";
    return 0;
}
