/**
 * @file
 * latte_sim — the command-line front end a downstream user would drive:
 * pick a workload and policy, override machine parameters, and get the
 * run metrics (optionally with the full statistics dump and per-EP
 * trace).
 *
 *   latte_sim --workload KM --policy latte
 *   latte_sim --workload SS --policy static-sc --l1-kb 48 --stats
 *   latte_sim --list
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "compress/backend.hh"
#include "core/driver.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"
#include "runner/arg_parse.hh"
#include "runner/json.hh"
#include "sim/thread_pool.hh"
#include "trace/sink.hh"
#include "workloads/zoo.hh"

using namespace latte;

namespace
{

bool
parsePolicy(const std::string &name, PolicyKind &kind)
{
    const struct { const char *name; PolicyKind kind; } table[] = {
        {"baseline", PolicyKind::Baseline},
        {"static-bdi", PolicyKind::StaticBdi},
        {"static-sc", PolicyKind::StaticSc},
        {"static-bpc", PolicyKind::StaticBpc},
        {"adaptive-hit", PolicyKind::AdaptiveHitCount},
        {"adaptive-cmp", PolicyKind::AdaptiveCmp},
        {"latte", PolicyKind::LatteCc},
        {"latte-bdi-bpc", PolicyKind::LatteCcBdiBpc},
        {"kernel-opt", PolicyKind::KernelOpt},
        {"l2-static-bdi", PolicyKind::L2StaticBdi},
        {"l2-latte", PolicyKind::L2Latte},
        {"latte-l1l2", PolicyKind::LatteCcL1L2},
    };
    for (const auto &entry : table) {
        if (name == entry.name) {
            kind = entry.kind;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_abbr = "KM";
    PolicyKind kind = PolicyKind::LatteCc;
    DriverOptions options;
    bool trace = false;
    std::string json_path;
    std::string trace_out;
    std::string timeline_out;
    std::string metrics_out;
    std::uint64_t metrics_interval = 0;
    bool profile = false;

    // Declarative flag table: lattesim runs ONE cell, so it keeps its
    // own export flags (--json here is the single cell document, not a
    // sweep array) instead of registerCommonFlags().
    runner::ArgParser parser("lattesim");
    parser.beginGroup("lattesim options");
    parser.add("--list", "", "", "list workloads and exit",
               [&](const std::string &) {
                   for (const auto &workload : workloadZoo()) {
                       std::cout << workload.abbr << "\t"
                                 << (workload.cacheSensitive
                                         ? "C-Sens  "
                                         : "C-InSens")
                                 << "\t" << workload.fullName << " ("
                                 << workload.suite << ")\n";
                   }
                   std::exit(0);
               });
    parser.add("--workload", "", "ABBR", "workload to run (default KM)",
               [&](const std::string &v) { workload_abbr = v; });
    parser.add("--policy", "", "NAME",
               "baseline | static-bdi | static-sc | static-bpc | "
               "adaptive-hit | adaptive-cmp | latte | latte-bdi-bpc | "
               "kernel-opt | l2-static-bdi | l2-latte | latte-l1l2",
               [&](const std::string &v) {
                   if (!parsePolicy(v, kind)) {
                       std::cerr << "unknown policy '" << v << "'\n";
                       std::exit(1);
                   }
               });
    parser.add("--l1-kb", "", "N", "L1 data cache size in KiB (default 16)",
               [&](const std::string &v) {
                   options.cfg.l1.sizeBytes = std::stoul(v) * 1024;
               });
    parser.add("--sms", "", "N", "number of SMs (default 15)",
               [&](const std::string &v) {
                   options.cfg.numSms = std::stoul(v);
               });
    parser.add("--hit-latency", "", "N", "base L1 hit latency in cycles",
               [&](const std::string &v) {
                   options.cfg.l1.hitLatency = std::stoul(v);
               });
    parser.add("--ep", "", "N", "LATTE-CC EP length in L1 accesses",
               [&](const std::string &v) {
                   options.cfg.latte.epAccesses = std::stoul(v);
               });
    parser.add("--scheduler", "", "gto|lrr", "warp scheduler",
               [&](const std::string &v) {
                   options.cfg.schedPolicy =
                       v == "lrr" ? GpuConfig::SchedPolicy::LRR
                                  : GpuConfig::SchedPolicy::GTO;
               });
    parser.add("--max-instr", "", "N", "per-kernel instruction budget",
               [&](const std::string &v) {
                   options.maxInstructionsPerKernel = std::stoull(v);
               });
    parser.add("--compress-backend", "", "NAME",
               "compression kernel backend: auto|scalar|sse4|avx2 "
               "(speed only; results are bit-identical)",
               [&](const std::string &v) {
                   std::string error;
                   const CompressorBackend *backend =
                       resolveCompressorBackend(v, &error);
                   if (!backend) {
                       std::cerr << error << "\n";
                       std::exit(1);
                   }
                   setCompressorBackend(*backend);
                   options.compressBackend = v;
               });
    parser.add("--sim-threads", "", "N",
               "SM-stepping threads: a count or 'auto' (speed only; "
               "results are bit-identical)",
               [&](const std::string &v) {
                   std::string error;
                   if (resolveSimThreads(v, &error) == 0) {
                       std::cerr << error << "\n";
                       std::exit(1);
                   }
                   options.simThreads = v;
               });
    parser.add("--trace", "", "", "print the per-EP policy trace",
               [&](const std::string &) { trace = true; });
    parser.add("--json", "", "PATH",
               "write the full run result as JSON",
               [&](const std::string &v) { json_path = v; });
    parser.add("--trace-out", "", "PATH",
               "write a Chrome trace-event JSON (chrome://tracing, "
               "ui.perfetto.dev)",
               [&](const std::string &v) { trace_out = v; });
    parser.add("--timeline-out", "", "PATH",
               "write the per-EP time series as JSON",
               [&](const std::string &v) { timeline_out = v; });
    parser.add("--metrics-out", "", "PATH",
               "write sampled time-series metrics (.prom/.txt "
               "Prometheus, .csv CSV, else JSONL)",
               [&](const std::string &v) { metrics_out = v; });
    parser.add("--metrics-interval", "", "N",
               "cycles between metric samples (default 100000)",
               [&](const std::string &v) {
                   metrics_interval = std::stoull(v);
               });
    parser.add("--profile", "", "",
               "measure wall-clock time per simulator zone (reported "
               "with the metrics export)",
               [&](const std::string &) { profile = true; });
    parser.add("--log-level", "", "LEVEL",
               "stderr log threshold: error|warn|info|debug|trace "
               "(default info, or LATTE_LOG_LEVEL)",
               [&](const std::string &v) {
                   LogLevel level;
                   if (!logLevelFromName(v, level)) {
                       std::cerr << "unknown log level '" << v << "'\n";
                       std::exit(1);
                   }
                   setLogLevel(level);
               });
    parser.add("--log-json", "", "",
               "emit log lines as JSON records (one object per line)",
               [&](const std::string &) { setLogJson(true); });
    parser.add("--quiet", "-q", "",
               "raise the log threshold to warn",
               [&](const std::string &) { setLogLevel(LogLevel::Warn); });
    parser.parse(argc, argv);
    if (argc > 1) {
        std::cerr << "unknown option '" << argv[1] << "'\n"
                  << parser.usage();
        return 1;
    }

    const Workload *workload = findWorkload(workload_abbr);
    if (!workload) {
        std::cerr << "unknown workload '" << workload_abbr
                  << "' (try --list)\n";
        return 1;
    }

    RunRequest request;
    request.workload = workload;
    request.policy = kind;
    request.options = options;

    std::unique_ptr<Tracer> tracer;
    if (!trace_out.empty()) {
        tracer = std::make_unique<Tracer>(std::size_t{1} << 20);
        request.tracer = tracer.get();
    }

    std::unique_ptr<metrics::MetricRegistry> registry;
    if (!metrics_out.empty()) {
        registry =
            std::make_unique<metrics::MetricRegistry>(metrics_interval);
        request.metrics = registry.get();
    }
    if (profile)
        metrics::setProfilerEnabled(true);

    const RunOutcome outcome = run(request);

    // --json gets the full schema-3 cell document (outcome envelope
    // included) even on failure, so downstream tooling sees the cause.
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot write '" << json_path << "'\n";
            return 1;
        }
        out << runner::toJson(outcome).dump(2) << "\n";
    }

    if (!outcome.ok()) {
        std::cerr << "run failed: " << to_string(outcome.error) << "\n";
        return 1;
    }
    const WorkloadRunResult &result = outcome.value();

    if (tracer) {
        std::ofstream out(trace_out);
        if (!out) {
            std::cerr << "cannot write '" << trace_out << "'\n";
            return 1;
        }
        ChromeTraceSink sink(out);
        sink.writeRun(result.workload + "/" + result.policyLabel,
                      *tracer);
        sink.finish();
    }

    if (!timeline_out.empty()) {
        std::ofstream out(timeline_out);
        if (!out) {
            std::cerr << "cannot write '" << timeline_out << "'\n";
            return 1;
        }
        out << runner::timelineToJson({result}).dump(2) << "\n";
    }

    if (registry) {
        std::ofstream out(metrics_out);
        if (!out) {
            std::cerr << "cannot write '" << metrics_out << "'\n";
            return 1;
        }
        const metrics::ExportFormat format =
            metrics::exportFormatForPath(metrics_out);
        const metrics::MetricRegistry::Labels labels = {
            {"workload", result.workload},
            {"policy", result.policyLabel},
        };
        registry->exportAs(out, format, labels);
        if (profile) {
            if (format == metrics::ExportFormat::Jsonl)
                metrics::writeProfileJsonl(out);
            else if (format == metrics::ExportFormat::Prometheus)
                metrics::writeProfilePrometheus(out);
        }
    }

    std::cout << "workload      : " << workload->fullName << " ("
              << workload->abbr << ")\n";
    std::cout << "policy        : " << policyName(kind) << "\n";
    std::cout << "cycles        : " << result.cycles << "\n";
    std::cout << "instructions  : " << result.instructions << "\n";
    std::cout << "IPC           : "
              << static_cast<double>(result.instructions) /
                     static_cast<double>(result.cycles)
              << "\n";
    std::cout << "L1 hits       : " << result.hits << "\n";
    std::cout << "L1 misses     : " << result.misses << "\n";
    std::cout << "L1 miss rate  : " << result.missRate() << "\n";
    std::cout << "energy (mJ)   : " << result.energy.totalMj() << "\n";
    std::cout << "  core        : " << result.energy.coreDynamicMj
              << "\n";
    std::cout << "  data move   : " << result.energy.dataMovementMj()
              << "\n";
    std::cout << "  compression : " << result.energy.compressionMj
              << "\n";
    std::cout << "  static      : " << result.energy.staticMj << "\n";
    std::cout << "avg tolerance : " << result.avgTolerance()
              << " cycles\n";

    for (std::size_t k = 0; k < result.kernels.size(); ++k) {
        std::cout << "kernel[" << k << "] " << result.kernels[k].name
                  << ": " << result.kernels[k].cycles << " cycles";
        if (k < result.kernelBestModes.size()) {
            std::cout << " (oracle mode "
                      << compressorName(result.kernelBestModes[k])
                      << ")";
        }
        std::cout << "\n";
    }

    if (trace) {
        std::cout << "# ep cycle tolerance mode capacityKB\n";
        std::size_t ep = 0;
        for (const auto &point : result.trace) {
            std::cout << ep++ << " " << point.cycle << " "
                      << point.latencyTolerance << " "
                      << compressorName(point.mode) << " "
                      << point.effectiveCapacityBytes / 1024.0 << "\n";
        }
    }
    return 0;
}
