/**
 * @file
 * Latency-tolerance probe: run a workload under the baseline and print
 * the per-EP latency tolerance trace (the measurement behind Figure 5),
 * plus the LATTE-CC mode decisions across the same execution.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "core/driver.hh"
#include "workloads/zoo.hh"

int
main(int argc, char **argv)
{
    using namespace latte;

    const std::string abbr = argc > 1 ? argv[1] : "SS";
    const Workload *workload = findWorkload(abbr);
    if (!workload) {
        std::cerr << "unknown workload '" << abbr << "'\n";
        return 1;
    }

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::LatteCc;
    const RunOutcome outcome = run(request);
    if (!outcome.ok()) {
        std::cerr << "run failed: " << to_string(outcome.error) << "\n";
        return 1;
    }
    const WorkloadRunResult &latte = outcome.value();

    std::cout << "# " << workload->fullName
              << " — per-EP trace from SM 0 under LATTE-CC\n";
    std::cout << "# ep cycle tolerance mode effective_capacity_KB\n";
    std::size_t ep = 0;
    for (const auto &point : latte.trace) {
        std::cout << ep++ << " " << point.cycle << " "
                  << std::fixed << std::setprecision(2)
                  << point.latencyTolerance << " "
                  << compressorName(point.mode) << " "
                  << point.effectiveCapacityBytes / 1024.0 << "\n";
    }

    std::cout << "\n# accesses spent per mode (all SMs)\n";
    const char *mode_names[] = {"None", "BDI", "FPC", "CPACK", "BPC",
                                "SC"};
    for (std::size_t m = 0; m < kNumModes; ++m) {
        if (latte.modeAccesses[m])
            std::cout << mode_names[m] << ": " << latte.modeAccesses[m]
                      << "\n";
    }
    return 0;
}
