/**
 * @file
 * Tests for compression below the L1: the CompressionDomain-backed L2
 * (--l2-compress), its latte controller, link compression on the
 * L2<->DRAM channel (--link-compress), the policy-catalogue rows that
 * drive them, and the sweep/fingerprint surface — including the pin
 * that l2.compress=off leaves every existing RunKey fingerprint
 * byte-identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/driver.hh"
#include "mem/l2cache.hh"
#include "runner/experiment_runner.hh"
#include "runner/json.hh"
#include "runner/result_cache.hh"
#include "runner/sweep_spec.hh"
#include "workloads/zoo.hh"

using namespace latte;
using namespace latte::runner;

namespace
{

/** A cut-down machine so each simulated cell costs milliseconds. */
DriverOptions
tinyOptions()
{
    DriverOptions options;
    options.cfg.numSms = 2;
    options.maxInstructionsPerKernel = 20'000;
    return options;
}

/** A small single-bank L2 whose sets overflow after a few fills. */
GpuConfig
smallL2Config(LevelCompress compress,
              CompressorId algo = CompressorId::Bdi)
{
    GpuConfig cfg;
    cfg.l2.sizeBytes = 8 * 1024; // 32 sets x 2 ways
    cfg.l2.assoc = 2;
    cfg.l2.banks = 1;
    cfg.l2.compress = compress;
    cfg.l2.staticAlgo = algo;
    return cfg;
}

/** Unit-level harness around a directly constructed L2Cache. */
struct L2Harness
{
    explicit L2Harness(const GpuConfig &config)
        : cfg(config), root("root"), noc(cfg, &root), dram(cfg, &root),
          l2(cfg, &noc, &dram, &mem, &root)
    {}

    GpuConfig cfg;
    StatGroup root;
    MemoryImage mem; //!< no regions: zero lines, BDI-compressible
    Interconnect noc;
    DramModel dram;
    L2Cache l2;
};

std::vector<std::string>
dumpAll(const std::vector<RunOutcome> &outcomes)
{
    std::vector<std::string> dumps;
    dumps.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        dumps.push_back(toJson(outcome).dump());
    return dumps;
}

} // namespace

// ------------------------------------------------------- config surface

TEST(L2Compress, LevelCompressSpecsParseAndRender)
{
    CacheLevelConfig level = CacheLevelConfig::l2Defaults();

    ASSERT_TRUE(parseLevelCompressSpec("static:bpc", level));
    EXPECT_EQ(level.compress, LevelCompress::Static);
    EXPECT_EQ(level.staticAlgo, CompressorId::Bpc);
    EXPECT_EQ(levelCompressSpec(level), "static:bpc");

    ASSERT_TRUE(parseLevelCompressSpec("latte", level));
    EXPECT_EQ(level.compress, LevelCompress::Latte);
    EXPECT_EQ(levelCompressSpec(level), "latte");

    ASSERT_TRUE(parseLevelCompressSpec("off", level));
    EXPECT_EQ(level.compress, LevelCompress::Off);
    EXPECT_EQ(levelCompressSpec(level), "off");

    EXPECT_FALSE(parseLevelCompressSpec("", level));
    EXPECT_FALSE(parseLevelCompressSpec("static", level));
    EXPECT_FALSE(parseLevelCompressSpec("static:", level));
    EXPECT_FALSE(parseLevelCompressSpec("static:nope", level));
    EXPECT_FALSE(parseLevelCompressSpec("adaptive", level));

    CompressorId link = CompressorId::None;
    ASSERT_TRUE(parseLinkCompressSpec("bdi", link));
    EXPECT_EQ(link, CompressorId::Bdi);
    ASSERT_TRUE(parseLinkCompressSpec("off", link));
    EXPECT_EQ(link, CompressorId::None);
    EXPECT_FALSE(parseLinkCompressSpec("zlib", link));
}

TEST(L2Compress, OffKeepsRunKeyFingerprintsByteIdentical)
{
    // The acceptance pin: introducing the l2/link knobs must not move a
    // single pre-existing fingerprint, because toJson(DriverOptions)
    // emits the new keys only when they differ from the defaults.
    // These three constants were computed before the compressed L2
    // existed; a change here invalidates every on-disk result cache.
    DriverOptions defaults;
    EXPECT_EQ(fnv1a(toJson(defaults).dump()), 12809840412801288466ull);

    DriverOptions small = tinyOptions();
    EXPECT_EQ(fnv1a(toJson(small).dump()), 11045311320448511549ull);

    DriverOptions varied;
    varied.cfg.l1.sizeBytes = 32 * 1024;
    varied.cfg.l2.sizeBytes = 1024 * 1024;
    varied.cfg.l2.banks = 16;
    varied.cfg.l1.assoc = 8;
    varied.cfg.l2.minLatency = 150;
    varied.cfg.l1.hitLatency = 2;
    varied.tuning.capacityBenefit = false;
    EXPECT_EQ(fnv1a(toJson(varied).dump()), 3364433170339772896ull);

    // An explicit "off" spec is the default: still no new JSON keys.
    DriverOptions explicit_off;
    ASSERT_TRUE(parseLevelCompressSpec("off", explicit_off.cfg.l2));
    EXPECT_EQ(toJson(explicit_off).dump(), toJson(defaults).dump());

    // Turning a knob on must move the fingerprint (cache separation).
    DriverOptions l2_on;
    ASSERT_TRUE(parseLevelCompressSpec("static:bdi", l2_on.cfg.l2));
    EXPECT_NE(fnv1a(toJson(l2_on).dump()),
              fnv1a(toJson(defaults).dump()));
    DriverOptions link_on;
    ASSERT_TRUE(parseLinkCompressSpec("bdi", link_on.cfg.linkCompress));
    EXPECT_NE(fnv1a(toJson(link_on).dump()),
              fnv1a(toJson(defaults).dump()));
    EXPECT_NE(fnv1a(toJson(link_on).dump()),
              fnv1a(toJson(l2_on).dump()));
}

// ---------------------------------------------------- unit-level timing

TEST(L2Compress, StaticInsertHitDecompressAndEvict)
{
    L2Harness h(smallL2Config(LevelCompress::Static, CompressorId::Bdi));
    ASSERT_NE(h.l2.domain(), nullptr);
    EXPECT_EQ(h.l2.controller(), nullptr);

    const std::uint32_t line = h.cfg.l2.lineBytes;
    const std::uint32_t sets = h.cfg.l2.numSets();

    // Read miss: fetched from DRAM, stored compressed (zero lines are
    // BDI's best case).
    const L2Result miss = h.l2.access(0, 0x1000, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(h.l2.misses.value(), 1u);
    EXPECT_EQ(h.l2.compressStats()->insertions.value(), 1u);
    EXPECT_EQ(h.l2.compressStats()->compressedInsertions.value(), 1u);
    EXPECT_EQ(h.l2.compressStats()->bdiCompressions.value(), 1u);

    // Read hit on the compressed line: pays the BDI decompression
    // queue, so it is strictly slower than the raw-line hit the
    // uncompressed L2 would serve.
    const Cycles later = miss.readyCycle + 100;
    const L2Result hit = h.l2.access(later, 0x1000, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(h.l2.compressStats()->decompressions.value(), 1u);

    L2Harness plain(smallL2Config(LevelCompress::Off));
    plain.l2.access(0, 0x1000, false);
    const L2Result plain_hit = plain.l2.access(later, 0x1000, false);
    EXPECT_GT(hit.readyCycle, plain_hit.readyCycle);

    // Overflow one set: distinct tags mapping to set 0 eventually
    // exhaust its 4x tag array and force compressed evictions.
    const std::uint64_t tags = h.cfg.l2.assoc * h.cfg.l2.tagFactor;
    for (std::uint64_t i = 1; i <= tags + 2; ++i) {
        const Addr addr = static_cast<Addr>(i) * sets * line;
        h.l2.access(later + i * 1000, addr, false);
    }
    EXPECT_GT(h.l2.compressStats()->evictions.value(), 0u);
}

TEST(L2Compress, WritesInvalidateAndRefillRaw)
{
    L2Harness h(smallL2Config(LevelCompress::Static, CompressorId::Bdi));

    // Fill compressed, then write the same line: the compressed copy is
    // dropped and re-inserted raw (stores never recompress in place).
    h.l2.access(0, 0x2000, false);
    EXPECT_EQ(h.l2.compressStats()->compressedInsertions.value(), 1u);
    const L2Result write = h.l2.access(500, 0x2000, true);
    EXPECT_TRUE(write.hit);
    EXPECT_EQ(h.l2.compressStats()->writeInvalidations.value(), 1u);
    EXPECT_EQ(h.l2.compressStats()->insertions.value(), 2u);
    EXPECT_EQ(h.l2.compressStats()->compressedInsertions.value(), 1u);

    // A read hit on the now-raw line pays no decompression.
    const L2Result reread = h.l2.access(1000, 0x2000, false);
    EXPECT_TRUE(reread.hit);
    EXPECT_EQ(h.l2.compressStats()->decompressions.value(), 0u);

    // A write miss also fills raw.
    h.l2.access(2000, 0x40000, true);
    EXPECT_EQ(h.l2.compressStats()->insertions.value(), 3u);
    EXPECT_EQ(h.l2.compressStats()->compressedInsertions.value(), 1u);
}

TEST(L2Compress, LinkCompressionShrinksTransfersAndMissLatency)
{
    GpuConfig cfg = smallL2Config(LevelCompress::Off);
    cfg.l2.banks = 12; // concurrent banks, so misses can saturate DRAM
    cfg.linkCompress = CompressorId::Bdi;
    L2Harness h(cfg);
    ASSERT_NE(h.l2.linkStats(), nullptr);

    h.l2.access(0, 0x3000, false);
    EXPECT_EQ(h.l2.linkStats()->transfers.value(), 1u);
    EXPECT_GT(h.l2.linkStats()->bytesSaved.value(), 0u);
    EXPECT_LT(h.l2.linkStats()->bytesMoved.value(),
              h.cfg.l2.lineBytes);

    // The link's benefit is channel occupancy, not unloaded latency (a
    // lone fetch pays compress+decompress for a few saved bus beats).
    // A same-cycle burst of misses spread over all twelve banks
    // saturates the raw channel (one full line per DRAM cycle) while
    // the compressed transfers barely occupy it: the last fetch must
    // complete strictly earlier.
    GpuConfig raw_cfg = smallL2Config(LevelCompress::Off);
    raw_cfg.l2.banks = 12;
    L2Harness raw(raw_cfg);
    const std::uint32_t line = h.cfg.l2.lineBytes;
    Cycles compressed_last = 0;
    Cycles raw_last = 0;
    for (std::uint64_t i = 1; i <= 96; ++i) {
        const Addr addr = 0x100000 + static_cast<Addr>(i) * line;
        compressed_last =
            std::max(compressed_last, h.l2.access(0, addr, false)
                                          .readyCycle);
        raw_last = std::max(raw_last,
                            raw.l2.access(0, addr, false).readyCycle);
    }
    EXPECT_LT(compressed_last, raw_last);
}

TEST(L2Compress, LatteControllerVotesFromL2Signals)
{
    GpuConfig cfg = smallL2Config(LevelCompress::Latte);
    cfg.latte.epAccesses = 64;
    L2Harness h(cfg);
    ASSERT_NE(h.l2.controller(), nullptr);

    // A read-heavy loop over a small working set: enough accesses to
    // cross several EP boundaries and let the dedicated sets duel.
    const std::uint32_t line = h.cfg.l2.lineBytes;
    Cycles now = 0;
    for (int round = 0; round < 8; ++round) {
        for (std::uint32_t i = 0; i < 96; ++i) {
            const L2Result r =
                h.l2.access(now, static_cast<Addr>(i) * line, false);
            now = std::max(now + 3, r.readyCycle);
        }
    }

    const auto &trace = h.l2.controller()->trace();
    ASSERT_FALSE(trace.empty());
    for (const L2TracePoint &point : trace) {
        EXPECT_GE(point.latencyTolerance, 0.0);
    }
    // Zero lines make compression free capacity at no miss cost, so
    // the dueling must settle on a compressed mode, not None.
    EXPECT_NE(h.l2.controller()->currentMode(), CompressorId::None);
    EXPECT_GT(h.l2.compressStats()->compressedInsertions.value(), 0u);
}

// ------------------------------------------------------ policy rows

TEST(L2Compress, PolicyRowsAdjustConfigAndRun)
{
    // NW's integer data is BDI-friendly, so the l2-static-bdi row must
    // actually store compressed lines; the baseline row on the same
    // workload must not touch the L2 compression stats at all.
    const Workload *nw = findWorkload("NW");
    ASSERT_NE(nw, nullptr);

    RunRequest request;
    request.workload = nw;
    request.policy = PolicyKind::L2StaticBdi;
    request.options = tinyOptions();
    const RunOutcome outcome = run(request);
    ASSERT_TRUE(outcome.ok()) << to_string(outcome.error);
    const WorkloadRunResult &result = outcome.value();
    EXPECT_EQ(result.policyLabel, "L2-Static-BDI");
    EXPECT_GT(
        result.stats.at("gpu.l2.compress.compressed_insertions"), 0.0);

    RunRequest base = request;
    base.policy = PolicyKind::Baseline;
    const WorkloadRunResult base_result = run(base).value();
    EXPECT_EQ(base_result.stats.count("gpu.l2.compress.insertions"),
              0u);
    for (const PolicyTracePoint &point : base_result.trace)
        EXPECT_FALSE(point.hasL2);
}

TEST(L2Compress, L2LatteRowBackfillsTheRunTrace)
{
    const Workload *km = findWorkload("KM");
    ASSERT_NE(km, nullptr);

    RunRequest request;
    request.workload = km;
    request.policy = PolicyKind::L2Latte;
    request.options = tinyOptions();
    const RunOutcome outcome = run(request);
    ASSERT_TRUE(outcome.ok()) << to_string(outcome.error);
    const WorkloadRunResult &result = outcome.value();
    EXPECT_EQ(result.policyLabel, "L2-LATTE");

    ASSERT_FALSE(result.trace.empty());
    bool any_l2 = false;
    for (const PolicyTracePoint &point : result.trace) {
        if (point.hasL2) {
            any_l2 = true;
            EXPECT_GE(point.l2Tolerance, 0.0);
        }
    }
    EXPECT_TRUE(any_l2);

    // The trace round-trips through JSON with the per-level fields.
    const Json json = toJson(result);
    WorkloadRunResult restored;
    ASSERT_TRUE(fromJson(json, restored));
    ASSERT_EQ(restored.trace.size(), result.trace.size());
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
        EXPECT_EQ(restored.trace[i].hasL2, result.trace[i].hasL2);
        EXPECT_EQ(restored.trace[i].l2Mode, result.trace[i].l2Mode);
    }
}

TEST(L2Compress, SimThreadsBitIdenticalForL2Rows)
{
    // NW under l2-static-bdi exercises the compressed-fill and the
    // decompression-queue paths; both must stay bit-identical across
    // the parallel cycle loop (KM covers the catalogue-wide sweep in
    // Runner.SimThreadsAreBitIdentical; this pins the BDI-heavy case).
    const Workload *nw = findWorkload("NW");
    ASSERT_NE(nw, nullptr);

    const auto runOnce = [&](const char *threads) {
        RunRequest request;
        request.workload = nw;
        request.policy = PolicyKind::L2StaticBdi;
        request.options = tinyOptions();
        request.options.cfg.numSms = 8;
        request.options.simThreads = threads;
        const RunOutcome outcome = run(request);
        EXPECT_TRUE(outcome.ok()) << to_string(outcome.error);
        return toJson(outcome.value()).dump();
    };
    EXPECT_EQ(runOnce("1"), runOnce("4"));
}

// ------------------------------------------------------- sweep surface

TEST(L2Compress, SweepSpecValidatesTheDottedAxes)
{
    SweepSpec spec;
    spec.workloads = {"KM"};
    spec.policies = {"Baseline"};
    spec.axes.push_back(
        {"l2.compress", {Json("off"), Json("static:bdi"), Json("latte")}});
    spec.axes.push_back({"link.compress", {Json("off"), Json("bdi")}});
    EXPECT_EQ(spec.validate(), "");
    EXPECT_EQ(spec.cellCount(), 6u);

    SweepSpec bad = spec;
    bad.axes[0].values.push_back(Json("static:nope"));
    EXPECT_NE(bad.validate(), "");

    SweepSpec bad_link = spec;
    bad_link.axes[1].values.push_back(Json("zlib"));
    EXPECT_NE(bad_link.validate(), "");
}

TEST(L2Compress, KillAndResumeWithL2Axes)
{
    // A fig11-style grid over the l2.compress axis must journal, crash
    // and resume byte-identically — the compressed-L2 knobs reach the
    // RunKey through the config JSON, so cache hits may only be served
    // to cells with the same axis point.
    const std::string dir =
        ::testing::TempDir() + "/latte_l2compress_resume_test";
    std::filesystem::remove_all(dir);

    SweepSpec spec;
    spec.workloads = {"NW", "KM"};
    spec.policies = {"Baseline"};
    spec.axes.push_back(
        {"l2.compress", {Json("off"), Json("static:bdi"), Json("latte")}});
    ASSERT_EQ(spec.validate(), "");

    std::vector<RunRequest> grid;
    std::string error;
    ASSERT_TRUE(spec.expand(grid, &error, tinyOptions())) << error;
    ASSERT_EQ(grid.size(), 6u);

    // Every axis point must hash to its own cache key.
    std::vector<std::string> fingerprints;
    for (const RunRequest &request : grid)
        fingerprints.push_back(RunKey::of(request).fingerprint());
    std::sort(fingerprints.begin(), fingerprints.end());
    EXPECT_EQ(std::adjacent_find(fingerprints.begin(),
                                 fingerprints.end()),
              fingerprints.end());

    RunnerOptions plain;
    plain.threads = 2;
    plain.progress = false;
    const auto reference = ExperimentRunner(plain).runAll(grid);
    for (const RunOutcome &outcome : reference)
        ASSERT_TRUE(outcome.ok()) << to_string(outcome.error);

    // "Crash" after the first three cells, then resume the whole grid.
    RunnerOptions durable = plain;
    durable.cacheDir = dir + "/cache";
    durable.journalPath = dir + "/journal.jsonl";
    {
        const std::vector<RunRequest> partial(grid.begin(),
                                              grid.begin() + 3);
        ExperimentRunner(durable).runAll(partial);
    }
    ExperimentRunner resumed(durable);
    const auto outcomes = resumed.runAll(grid);
    EXPECT_EQ(resumed.stats().journalSkips, 3u);
    EXPECT_EQ(resumed.stats().executed, 3u);
    EXPECT_EQ(dumpAll(outcomes), dumpAll(reference));

    std::filesystem::remove_all(dir);
}
