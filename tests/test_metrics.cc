/**
 * @file
 * Tests for the metrics subsystem: LatencyHistogram bucket-boundary
 * semantics and percentile queries, the fixed-width common/stats.hh
 * Histogram edges, MetricRegistry sampling and exports, the zone
 * self-profiler, and the metrics <-> trace reconciliation invariant
 * (metric counters equal the corresponding TraceEvent counts).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "compress/compressor.hh"
#include "core/driver.hh"
#include "metrics/latency_histogram.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"
#include "runner/json.hh"
#include "trace/tracer.hh"
#include "workloads/zoo.hh"

using namespace latte;
using namespace latte::metrics;

namespace
{

// --- LatencyHistogram bucket boundaries (pinned semantics) -------------

TEST(LatencyHistogram, BucketBoundaries)
{
    const LatencyHistogram h;

    // Bucket 0 covers [0, 1); negatives clamp to 0.
    EXPECT_EQ(h.bucketIndexFor(0.0), 0u);
    EXPECT_EQ(h.bucketIndexFor(0.5), 0u);
    EXPECT_EQ(h.bucketIndexFor(-3.0), 0u);

    // Bucket i >= 1 covers [2^(i-1), 2^i): an exact power of two lands
    // in the bucket it lower-bounds.
    EXPECT_EQ(h.bucketIndexFor(1.0), 1u);
    EXPECT_EQ(h.bucketIndexFor(1.999), 1u);
    EXPECT_EQ(h.bucketIndexFor(2.0), 2u);
    EXPECT_EQ(h.bucketIndexFor(3.999), 2u);
    EXPECT_EQ(h.bucketIndexFor(4.0), 3u);
    EXPECT_EQ(h.bucketIndexFor(1024.0), 11u);
    EXPECT_EQ(h.bucketIndexFor(1023.999), 10u);

    // Bounds agree with the index function at every edge.
    for (unsigned i = 0; i < h.numBuckets(); ++i) {
        EXPECT_EQ(h.bucketIndexFor(h.bucketLowerBound(i)), i);
        EXPECT_LT(h.bucketLowerBound(i), h.bucketUpperBound(i));
        if (i + 1 < h.numBuckets()) {
            EXPECT_EQ(h.bucketUpperBound(i), h.bucketLowerBound(i + 1));
        }
    }
    EXPECT_EQ(h.bucketLowerBound(0), 0.0);
    EXPECT_EQ(h.bucketUpperBound(0), 1.0);
    EXPECT_EQ(h.bucketLowerBound(1), 1.0);
}

TEST(LatencyHistogram, OverflowBucket)
{
    // 4 regular buckets: [0,1) [1,2) [2,4) [4,8); >= 8 overflows.
    LatencyHistogram h(4);
    EXPECT_EQ(h.bucketIndexFor(7.999), 3u);
    EXPECT_EQ(h.bucketIndexFor(8.0), h.numBuckets());

    h.record(7.999);
    h.record(8.0);
    h.record(1e12);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(LatencyHistogram, PercentileQueries)
{
    LatencyHistogram empty;
    EXPECT_EQ(empty.percentile(50), 0.0);
    EXPECT_EQ(empty.percentile(99), 0.0);

    LatencyHistogram single;
    single.record(37.0);
    // Clamped to [min, max]: a single-sample histogram returns exactly
    // that sample at every percentile.
    EXPECT_DOUBLE_EQ(single.percentile(0), 37.0);
    EXPECT_DOUBLE_EQ(single.percentile(50), 37.0);
    EXPECT_DOUBLE_EQ(single.percentile(100), 37.0);

    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Log buckets are coarse but must stay in the right neighbourhood.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0); // clamped to max()

    // Overflow samples resolve to max().
    LatencyHistogram tiny(2);
    tiny.record(0.5);
    tiny.record(100.0);
    tiny.record(200.0);
    EXPECT_DOUBLE_EQ(tiny.percentile(99), 200.0);
}

TEST(LatencyHistogram, StatsAndReset)
{
    LatencyHistogram h;
    h.record(2.0);
    h.record(6.0);
    h.record(-1.0); // clamps to 0
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
    EXPECT_DOUBLE_EQ(h.sum(), 8.0);
    EXPECT_NEAR(h.mean(), 8.0 / 3.0, 1e-12);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

// --- Fixed-width common/stats.hh Histogram edges -----------------------

TEST(FixedHistogram, BucketEdgesAndOverflow)
{
    StatGroup root("root");
    // Width 10, 4 buckets: [0,10) [10,20) [20,30) [30,40); >= 40
    // overflows.
    Histogram h(&root, "h", "test", 10.0, 4);

    h.sample(0.0);    // bucket 0
    h.sample(9.999);  // bucket 0
    h.sample(10.0);   // value at a bucket edge lands in the upper bucket
    h.sample(39.999); // bucket 3
    h.sample(40.0);   // overflow
    h.sample(-5.0);   // negatives clamp into bucket 0

    EXPECT_EQ(h.buckets()[0], 3u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.totalSamples(), 6u);
    // min/max/sum track the raw samples, not the clamped bucket values.
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 40.0);
}

// --- MetricRegistry sampling and exports -------------------------------

TEST(MetricRegistry, SamplesStatsAndGauges)
{
    StatGroup root("gpu");
    Counter hits(&root, "hits", "test counter");
    ++hits;
    ++hits;

    MetricRegistry registry(100);
    registry.attachStats(&root);
    double gauge_value = 7.0;
    registry.addGauge("my_gauge",
                      [&](Cycles) { return gauge_value; });

    EXPECT_FALSE(registry.due(99));
    EXPECT_TRUE(registry.due(100));
    registry.sample(100);
    EXPECT_FALSE(registry.due(150));
    EXPECT_TRUE(registry.due(200));

    ++hits;
    gauge_value = 8.0;
    registry.sample(200);
    // finalSample dedupes an existing row for the same cycle...
    registry.finalSample(200);
    ASSERT_EQ(registry.rows().size(), 2u);
    // ...but appends when the run ended between samples.
    registry.finalSample(250);
    ASSERT_EQ(registry.rows().size(), 3u);

    const auto names = registry.seriesNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "gpu.hits");
    EXPECT_EQ(names[1], "my_gauge");

    EXPECT_EQ(registry.rows()[0].cycle, 100u);
    EXPECT_DOUBLE_EQ(registry.rows()[0].values[0], 2.0);
    EXPECT_DOUBLE_EQ(registry.rows()[0].values[1], 7.0);
    EXPECT_DOUBLE_EQ(registry.rows()[1].values[0], 3.0);
    EXPECT_DOUBLE_EQ(registry.rows()[1].values[1], 8.0);
    EXPECT_DOUBLE_EQ(registry.lastValue("gpu.hits").value(), 3.0);
    EXPECT_DOUBLE_EQ(registry.lastValue("my_gauge").value(), 8.0);
    EXPECT_FALSE(registry.lastValue("no_such_series").has_value());
}

TEST(MetricRegistry, ExportFormatsParse)
{
    EXPECT_EQ(exportFormatForPath("a/b.prom"), ExportFormat::Prometheus);
    EXPECT_EQ(exportFormatForPath("x.txt"), ExportFormat::Prometheus);
    EXPECT_EQ(exportFormatForPath("x.csv"), ExportFormat::Csv);
    EXPECT_EQ(exportFormatForPath("x.jsonl"), ExportFormat::Jsonl);
    EXPECT_EQ(exportFormatForPath("noext"), ExportFormat::Jsonl);

    StatGroup root("gpu");
    Counter hits(&root, "hits", "test counter");
    ++hits;

    MetricRegistry registry(100);
    registry.attachStats(&root);
    registry.addGauge("g", [](Cycles) { return 1.5; });
    registry.histogram("lat").record(3.0);
    registry.sample(100);
    registry.sample(200);

    const MetricRegistry::Labels labels = {{"workload", "KM"}};

    // Every JSONL line parses as standalone JSON.
    std::ostringstream jsonl;
    registry.exportJsonl(jsonl, labels);
    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t schema_lines = 0, sample_lines = 0, histogram_lines = 0;
    while (std::getline(lines, line)) {
        std::string error;
        const runner::Json parsed = runner::Json::parse(line, &error);
        ASSERT_TRUE(error.empty()) << error << " in: " << line;
        const std::string &type = parsed.at("type").asString();
        if (type == "schema") {
            ++schema_lines;
            EXPECT_EQ(parsed.at("labels").at("workload").asString(),
                      "KM");
        } else if (type == "sample") {
            ++sample_lines;
        } else if (type == "histogram") {
            ++histogram_lines;
            EXPECT_EQ(parsed.at("name").asString(), "lat");
            EXPECT_EQ(parsed.at("count").asUint(), 1u);
        }
    }
    EXPECT_EQ(schema_lines, 1u);
    EXPECT_EQ(sample_lines, 2u);
    EXPECT_EQ(histogram_lines, 1u);

    // CSV: header + one line per row.
    std::ostringstream csv;
    registry.exportCsv(csv, labels);
    std::istringstream csv_lines(csv.str());
    std::vector<std::string> rows;
    while (std::getline(csv_lines, line)) {
        if (!line.empty() && line[0] != '#')
            rows.push_back(line);
    }
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], "cycle,gpu.hits,g");

    // Prometheus: sanitized names (no dots), cumulative histogram with
    // a +Inf bucket matching _count.
    std::ostringstream prom;
    registry.exportPrometheus(prom, labels);
    const std::string text = prom.str();
    EXPECT_NE(text.find("latte_gpu_hits{workload=\"KM\"}"),
              std::string::npos);
    EXPECT_NE(text.find("latte_lat_bucket{workload=\"KM\",le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("latte_lat_count"), std::string::npos);
    EXPECT_EQ(text.find("gpu.hits"), std::string::npos);
}

TEST(MetricRegistry, DetachKeepsSeriesStable)
{
    StatGroup root("gpu");
    Counter hits(&root, "hits", "test counter");

    MetricRegistry registry(100);
    registry.attachStats(&root);
    registry.addGauge("g", [](Cycles) { return 1.0; });
    registry.sample(100);
    registry.detach();

    // Names survive the detach so exports stay column-stable.
    EXPECT_EQ(registry.seriesNames().size(), 2u);
    EXPECT_EQ(registry.rows().size(), 1u);

    // Re-attach (Kernel-OPT leg pattern) keeps appending to the same
    // series.
    registry.attachStats(&root);
    registry.addGauge("g", [](Cycles) { return 2.0; });
    registry.sample(200);
    ASSERT_EQ(registry.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(registry.rows()[1].values[1], 2.0);
}

// --- Self-profiler -----------------------------------------------------

TEST(Profiler, RecordsZoneTotals)
{
    profilerReset();
    setProfilerEnabled(true);
    {
        ProfileScope scope(ProfileZone::CompressorProbe);
        // Do a sliver of work so elapsed time is plausibly nonzero
        // (zero is fine too: calls is what we assert on).
        volatile int sink = 0;
        for (int i = 0; i < 100; ++i)
            sink = sink + i;
    }
    { ProfileScope scope(ProfileZone::CompressorProbe); }
    setProfilerEnabled(false);

    const auto totals = profilerSnapshot();
    const auto idx =
        static_cast<std::size_t>(ProfileZone::CompressorProbe);
    EXPECT_EQ(totals[idx].calls, 2u);

    // Disabled scopes record nothing.
    { ProfileScope scope(ProfileZone::CompressorProbe); }
    EXPECT_EQ(profilerSnapshot()[idx].calls, 2u);

    std::ostringstream jsonl;
    writeProfileJsonl(jsonl);
    std::istringstream lines(jsonl.str());
    std::string line;
    bool found = false;
    while (std::getline(lines, line)) {
        std::string error;
        const runner::Json parsed = runner::Json::parse(line, &error);
        ASSERT_TRUE(error.empty()) << error;
        if (parsed.at("zone").asString() == "compressor_probe") {
            found = true;
            EXPECT_EQ(parsed.at("calls").asUint(), 2u);
        }
    }
    EXPECT_TRUE(found);
    profilerReset();
}

// --- Metrics <-> trace reconciliation ----------------------------------

TEST(MetricsReconciliation, CountersMatchTraceEvents)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::LatteCc;
    request.options.cfg.numSms = 2;
    request.options.maxInstructionsPerKernel = 20'000;

    Tracer tracer;
    MetricRegistry registry;
    request.tracer = &tracer;
    request.metrics = &registry;

    const WorkloadRunResult result = run(request).value();
    ASSERT_FALSE(registry.rows().empty());

    // Sum an L1 stat over all SMs (e.g. gpu.sm*.l1d*.hits) at the
    // final sample row, ignoring nested groups like compress_memo.
    const auto sum_series = [&](const std::string &stat) {
        const auto names = registry.seriesNames();
        const auto &last = registry.rows().back();
        double sum = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const std::string &name = names[i];
            const std::size_t l1d = name.find(".l1d");
            if (l1d == std::string::npos)
                continue;
            const std::size_t dot = name.find('.', l1d + 1);
            if (dot != std::string::npos &&
                name.substr(dot + 1) == stat) {
                sum += last.values[i];
            }
        }
        return static_cast<std::uint64_t>(sum);
    };

    // The final metric sample, the result struct and the trace event
    // counts all describe the same run and must agree exactly.
    EXPECT_EQ(sum_series("hits"), result.hits);
    EXPECT_EQ(sum_series("hits"),
              tracer.countOf(TraceEventKind::L1Hit));
    EXPECT_EQ(sum_series("misses"),
              tracer.countOf(TraceEventKind::L1Miss));
    EXPECT_EQ(sum_series("merged_misses"),
              tracer.countOf(TraceEventKind::L1MissMerged));
    EXPECT_EQ(sum_series("evictions"),
              tracer.countOf(TraceEventKind::L1Evict));
    EXPECT_EQ(sum_series("write_invalidations"),
              tracer.countOf(TraceEventKind::L1WriteInval));

    // Gauge cross-checks: mode changes equal their trace events, and
    // per-mode access residency sums to the result's mode accesses.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  registry.lastValue("mode_changes").value()),
              tracer.countOf(TraceEventKind::ModeChange));
    std::uint64_t mode_total = 0;
    for (std::size_t m = 0; m < kNumModes; ++m) {
        const auto value = registry.lastValue(
            std::string("mode_accesses.") +
            compressorName(static_cast<CompressorId>(m)));
        ASSERT_TRUE(value.has_value());
        mode_total += static_cast<std::uint64_t>(*value);
    }
    std::uint64_t expected_total = 0;
    for (const std::uint64_t n : result.modeAccesses)
        expected_total += n;
    EXPECT_EQ(mode_total, expected_total);

    // The latency histograms saw every hit and primary miss.
    const auto &histograms = registry.histograms();
    ASSERT_TRUE(histograms.count("l1_hit_latency"));
    ASSERT_TRUE(histograms.count("l1_miss_latency"));
    EXPECT_EQ(histograms.at("l1_hit_latency").count(), result.hits);
    EXPECT_EQ(histograms.at("l1_miss_latency").count(),
              tracer.countOf(TraceEventKind::L1Miss));
    EXPECT_EQ(histograms.at("decomp_queue_wait").count(),
              tracer.countOf(TraceEventKind::DecompEnqueue));
}

} // namespace
