/**
 * @file
 * Tests for GpuConfig::validationError / validate: the driver rejects
 * inconsistent machine descriptions (sizes that don't divide, zero
 * counts, LATTE sampling parameters that exceed the cache) instead of
 * simulating garbage.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace latte;

namespace
{

TEST(Config, DefaultConfigIsValid)
{
    const GpuConfig cfg;
    EXPECT_FALSE(cfg.validationError().has_value());
    cfg.validate(); // must not die
}

TEST(Config, RejectsL1SizeNotMultipleOfLineTimesAssoc)
{
    GpuConfig cfg;
    cfg.l1.sizeBytes = 16 * 1024 + 100;
    ASSERT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsZeroL1Size)
{
    GpuConfig cfg;
    cfg.l1.sizeBytes = 0;
    ASSERT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsSubBlockNotDividingLine)
{
    GpuConfig cfg;
    cfg.l1.subBlockBytes = 24;
    ASSERT_TRUE(cfg.validationError().has_value());

    cfg.l1.subBlockBytes = 0;
    ASSERT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsZeroCores)
{
    GpuConfig cfg;
    cfg.numSms = 0;
    EXPECT_TRUE(cfg.validationError().has_value());

    cfg = GpuConfig{};
    cfg.warpSize = 0;
    EXPECT_TRUE(cfg.validationError().has_value());

    cfg = GpuConfig{};
    cfg.maxWarpsPerSm = 0;
    EXPECT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsZeroAssocOrMshrs)
{
    GpuConfig cfg;
    cfg.l1.assoc = 0;
    EXPECT_TRUE(cfg.validationError().has_value());

    cfg = GpuConfig{};
    cfg.l1.mshrEntries = 0;
    EXPECT_TRUE(cfg.validationError().has_value());

    cfg = GpuConfig{};
    cfg.l1.tagFactor = 0;
    EXPECT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsLatteSamplingWiderThanCache)
{
    GpuConfig cfg;
    // 3 modes x dedicated sets must leave room in the L1's set count.
    cfg.latte.dedicatedSetsPerMode = cfg.l1NumSets();
    EXPECT_TRUE(cfg.validationError().has_value());

    cfg = GpuConfig{};
    cfg.latte.epAccesses = 0;
    EXPECT_TRUE(cfg.validationError().has_value());
}

TEST(Config, RejectsLearningLongerThanPeriod)
{
    GpuConfig cfg;
    cfg.latte.learningEps = cfg.latte.periodEps + 1;
    EXPECT_TRUE(cfg.validationError().has_value());
}

TEST(ConfigDeathTest, ValidateDiesOnBrokenConfig)
{
    GpuConfig cfg;
    cfg.l1.subBlockBytes = 24;
    EXPECT_DEATH(cfg.validate(), "invalid GpuConfig");
}

} // namespace
