/**
 * @file
 * Tests for the latted job service: SweepSpec canonical JSON, the
 * acceptance property (a job submitted through the service produces a
 * result byte-identical to the same spec run in-process, and a
 * resubmit is served from cache with zero simulated cells), queue
 * order / quotas / cancellation, journal recovery after an unclean
 * stop, the wire protocol via RequestDispatcher, and the AF_UNIX
 * SocketServer itself (concurrent clients, stale-socket takeover, the
 * live-daemon probe).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/driver.hh"
#include "runner/sweep.hh"
#include "runner/sweep_spec.hh"
#include "service/dispatcher.hh"
#include "service/socket_server.hh"
#include "service/sweep_service.hh"
#include "workloads/zoo.hh"

using namespace latte;
using namespace latte::service;

namespace
{

/** A spec whose cells cost milliseconds, mirroring tinyOptions(). */
runner::SweepSpec
tinySpec()
{
    runner::SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"KM"};
    spec.policies = {"Baseline", "LATTE-CC"};
    spec.options["max_instructions_per_kernel"] =
        runner::Json(std::uint64_t{20'000});
    spec.options["cfg.num_sms"] = runner::Json(std::uint64_t{2});
    return spec;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(Service, SweepSpecJsonRoundTripsCanonically)
{
    runner::SweepSpec spec = tinySpec();
    spec.axes.push_back({"cfg.l1_size_bytes",
                         {runner::Json(std::uint64_t{16384}),
                          runner::Json(std::uint64_t{32768})}});
    spec.retries = 2;
    ASSERT_EQ(spec.validate(), "");

    const std::string dump = spec.toJson().dump();
    std::string error;
    runner::SweepSpec restored;
    ASSERT_TRUE(runner::SweepSpec::fromJson(
        runner::Json::parse(dump, &error), restored, &error))
        << error;
    EXPECT_EQ(restored.toJson().dump(), dump);
    EXPECT_EQ(restored.hash(), spec.hash());
    EXPECT_EQ(restored.cellCount(), spec.cellCount());
}

TEST(Service, ResultMatchesInProcessRunAndResubmitHitsCache)
{
    const std::string state = freshDir("latte_service_accept_state");
    const std::string cache = freshDir("latte_service_accept_cache");
    const std::string ref = freshDir("latte_service_accept_ref.json");
    const runner::SweepSpec spec = tinySpec();

    // Reference: the same spec run in-process through Sweep --json.
    {
        runner::SweepCliOptions cli;
        cli.jobs = 2;
        cli.progress = false;
        cli.jsonPath = ref;
        runner::Sweep sweep(cli);
        sweep.add(spec);
        sweep.run();
    } // destructor writes the --json export
    const std::string expected = readFile(ref);
    ASSERT_FALSE(expected.empty());

    ServiceOptions options;
    options.stateDir = state;
    options.cacheDir = cache;
    options.threads = 2;
    SweepService service(options);

    std::string error;
    const std::uint64_t first = service.submit(spec, "tester", 0, &error);
    ASSERT_NE(first, 0u) << error;
    JobInfo info;
    ASSERT_TRUE(service.waitJob(first, info));
    ASSERT_EQ(info.state, JobState::Done) << info.error;
    EXPECT_EQ(info.cellsDone, spec.cellCount());
    EXPECT_EQ(info.cellsFailed, 0u);

    // The acceptance property: byte-identical to the in-process run.
    EXPECT_EQ(readFile(info.resultPath), expected);

    // Resubmitting the same spec is answered from the shared result
    // cache without simulating a single cycle.
    const std::uint64_t second = service.submit(spec, "tester", 0, &error);
    ASSERT_NE(second, 0u) << error;
    ASSERT_TRUE(service.waitJob(second, info));
    ASSERT_EQ(info.state, JobState::Done) << info.error;
    EXPECT_TRUE(info.servedFromCache);
    EXPECT_EQ(info.cellsExecuted, 0u);
    EXPECT_EQ(info.cellsCached, spec.cellCount());
    EXPECT_EQ(readFile(info.resultPath), expected);

    const ServiceCounters counters = service.counters();
    EXPECT_EQ(counters.submitted, 2u);
    EXPECT_EQ(counters.completed, 2u);
    EXPECT_EQ(counters.jobsServedFromCache, 1u);
}

TEST(Service, InvalidSpecsAreRejected)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_service_invalid_state");
    options.startPaused = true;
    SweepService service(options);

    runner::SweepSpec spec = tinySpec();
    spec.policies = {"No-Such-Policy"};
    std::string error;
    EXPECT_EQ(service.submit(spec, "tester", 0, &error), 0u);
    EXPECT_NE(error.find("invalid spec"), std::string::npos) << error;

    spec = tinySpec();
    spec.options["cfg.no_such_knob"] = runner::Json(std::uint64_t{1});
    EXPECT_EQ(service.submit(spec, "tester", 0, &error), 0u);
    EXPECT_NE(error.find("invalid spec"), std::string::npos) << error;
    EXPECT_EQ(service.counters().rejected, 2u);
}

TEST(Service, QuotasQueueCapAndPriorities)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_service_quota_state");
    options.cacheDir = freshDir("latte_service_quota_cache");
    options.threads = 2;
    options.clientQuota = 2;
    options.maxQueue = 3;
    options.startPaused = true;
    SweepService service(options);

    const runner::SweepSpec spec = tinySpec();
    std::string error;
    const std::uint64_t low = service.submit(spec, "alice", 0, &error);
    ASSERT_NE(low, 0u) << error;
    const std::uint64_t high = service.submit(spec, "alice", 5, &error);
    ASSERT_NE(high, 0u) << error;

    // Third live job for the same client exceeds its quota...
    EXPECT_EQ(service.submit(spec, "alice", 0, &error), 0u);
    EXPECT_NE(error.find("quota"), std::string::npos) << error;
    // ...but another client still gets in.
    const std::uint64_t other = service.submit(spec, "bob", 1, &error);
    ASSERT_NE(other, 0u) << error;
    // Now the global queue cap kicks in for everyone.
    EXPECT_EQ(service.submit(spec, "carol", 0, &error), 0u);
    EXPECT_NE(error.find("queue full"), std::string::npos) << error;
    EXPECT_EQ(service.queueDepth(), 3u);

    // Highest priority first; FIFO within equal priority.
    std::vector<std::uint64_t> started;
    std::mutex started_mutex;
    const std::uint64_t token =
        service.addListener([&](const runner::Json &event) {
            if (event.at("event").asString() == "job_started") {
                std::lock_guard<std::mutex> lock(started_mutex);
                started.push_back(event.at("job").asUint());
            }
        });
    service.resume();
    service.waitIdle();
    service.removeListener(token);
    EXPECT_EQ(started,
              (std::vector<std::uint64_t>{high, other, low}));
}

TEST(Service, CancelQueuedJobImmediately)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_service_cancel_state");
    options.startPaused = true;
    SweepService service(options);

    std::string error;
    const std::uint64_t id =
        service.submit(tinySpec(), "tester", 0, &error);
    ASSERT_NE(id, 0u) << error;
    EXPECT_TRUE(service.cancel(id, &error)) << error;

    JobInfo info;
    ASSERT_TRUE(service.waitJob(id, info));
    EXPECT_EQ(info.state, JobState::Cancelled);
    // A terminal job cannot be cancelled again, nor an unknown id.
    EXPECT_FALSE(service.cancel(id, &error));
    EXPECT_FALSE(service.cancel(999, &error));
    EXPECT_EQ(service.counters().cancelled, 1u);
}

TEST(Service, JournalRecoveryRequeuesUnfinishedJobs)
{
    const std::string state = freshDir("latte_service_recover_state");
    const std::string cache = freshDir("latte_service_recover_cache");
    const runner::SweepSpec spec = tinySpec();
    std::uint64_t first = 0, second = 0;

    {
        ServiceOptions options;
        options.stateDir = state;
        options.cacheDir = cache;
        options.startPaused = true;
        SweepService service(options);
        std::string error;
        first = service.submit(spec, "tester", 0, &error);
        ASSERT_NE(first, 0u) << error;
        runner::SweepSpec other = spec;
        other.name = "tiny-2";
        other.seeds = {7};
        second = service.submit(other, "tester", 0, &error);
        ASSERT_NE(second, 0u) << error;
    } // destroyed with both jobs still queued — like a SIGKILL

    {
        ServiceOptions options;
        options.stateDir = state;
        options.cacheDir = cache;
        options.threads = 2;
        SweepService service(options);
        EXPECT_EQ(service.counters().recovered, 2u);
        service.waitIdle();
        JobInfo info;
        ASSERT_TRUE(service.waitJob(first, info));
        EXPECT_EQ(info.state, JobState::Done) << info.error;
        ASSERT_TRUE(service.waitJob(second, info));
        EXPECT_EQ(info.state, JobState::Done) << info.error;
    }

    // A third incarnation sees both jobs terminal: nothing to recover.
    {
        ServiceOptions options;
        options.stateDir = state;
        options.cacheDir = cache;
        options.startPaused = true;
        SweepService service(options);
        EXPECT_EQ(service.counters().recovered, 0u);
        const std::vector<JobInfo> jobs = service.jobs();
        ASSERT_EQ(jobs.size(), 2u);
        for (const JobInfo &job : jobs)
            EXPECT_EQ(job.state, JobState::Done);
    }
}

TEST(Service, DispatcherSpeaksTheWireProtocol)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_service_proto_state");
    options.startPaused = true;
    SweepService service(options);
    RequestDispatcher dispatcher(service);
    Session session;

    auto errorCode = [](const runner::Json &response) {
        return response.at("error").at("code").asString();
    };

    runner::Json response =
        dispatcher.handle(R"({"type":"ping"})", session);
    EXPECT_TRUE(response.at("ok").asBool());

    EXPECT_EQ(errorCode(dispatcher.handle("{not json", session)),
              "bad_json");
    EXPECT_EQ(errorCode(dispatcher.handle(R"({"type":"nope"})", session)),
              "unknown_type");
    EXPECT_EQ(errorCode(dispatcher.handle(
                  R"({"type":"status","job":42})", session)),
              "unknown_job");
    EXPECT_EQ(errorCode(dispatcher.handle(
                  R"({"type":"submit","spec":{"policies":17}})", session)),
              "invalid_spec");

    // A well-formed submit; the session's client identity sticks.
    const std::string submit =
        R"({"type":"submit","client":"wire","spec":)" +
        tinySpec().toJson().dump() + "}";
    response = dispatcher.handle(submit, session);
    ASSERT_TRUE(response.at("ok").asBool());
    const std::uint64_t id = response.at("job").asUint();
    EXPECT_EQ(session.client, "wire");

    response = dispatcher.handle(
        R"({"type":"status","job":)" + std::to_string(id) + "}",
        session);
    ASSERT_TRUE(response.at("ok").asBool());
    EXPECT_EQ(response.at("info").at("state").asString(), "queued");

    response = dispatcher.handle(R"({"type":"stats"})", session);
    ASSERT_TRUE(response.at("ok").asBool());
    EXPECT_EQ(response.at("stats").at("submitted").asUint(), 1u);
    EXPECT_EQ(response.at("stats").at("queue_depth").asUint(), 1u);

    response = dispatcher.handle(R"({"type":"metrics"})", session);
    ASSERT_TRUE(response.at("ok").asBool());
    EXPECT_NE(response.at("prometheus").asString().find(
                  "latte_service_queue_depth"),
              std::string::npos);

    // Subscribe needs a send channel; this session has none.
    EXPECT_EQ(errorCode(dispatcher.handle(R"({"type":"subscribe"})",
                                          session)),
              "unknown_type");

    bool shutdown_requested = false;
    dispatcher.onShutdown([&] { shutdown_requested = true; });
    response = dispatcher.handle(R"({"type":"shutdown"})", session);
    EXPECT_TRUE(response.at("ok").asBool());
    // The hook is deferred so the ack reaches the wire first; the
    // transport invokes it after writing the response.
    EXPECT_FALSE(shutdown_requested);
    ASSERT_TRUE(static_cast<bool>(session.afterResponse));
    session.afterResponse();
    EXPECT_TRUE(shutdown_requested);
    dispatcher.closeSession(session);
}

/** Connect to @p path, send @p line, read one newline-delimited reply. */
std::string
unixRequest(const std::string &path, const std::string &line)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return {};
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ADD_FAILURE() << "connect " << path << ": "
                      << std::strerror(errno);
        ::close(fd);
        return {};
    }
    const std::string request = line + "\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));

    std::string reply;
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n')
        reply += c;
    ::close(fd);
    return reply;
}

TEST(Service, SocketServerHandlesConcurrentClients)
{
    const std::string dir = freshDir("latte_socket_concurrent");
    std::filesystem::create_directories(dir);
    const std::string socket_path = dir + "/latted.sock";

    ServiceOptions options;
    options.stateDir = dir;
    options.startPaused = true;
    SweepService service(options);
    RequestDispatcher dispatcher(service);
    SocketServer server(dispatcher, socket_path);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::vector<std::string> replies(kClients);
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&socket_path, &replies, i] {
            replies[i] =
                unixRequest(socket_path, R"({"type":"ping"})");
        });
    }
    for (std::thread &client : clients)
        client.join();

    for (int i = 0; i < kClients; ++i) {
        std::string parse_error;
        const runner::Json reply =
            runner::Json::parse(replies[i], &parse_error);
        ASSERT_TRUE(parse_error.empty())
            << "client " << i << ": " << parse_error;
        EXPECT_TRUE(reply.at("ok").asBool()) << "client " << i;
    }
    server.stop();
}

TEST(Service, SocketServerReplacesStaleSocketButNotALiveOne)
{
    const std::string dir = freshDir("latte_socket_stale");
    std::filesystem::create_directories(dir);
    const std::string socket_path = dir + "/latted.sock";

    // A SIGKILLed daemon leaves its socket file behind with nobody
    // listening. Manufacture that state directly.
    {
        sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0)
            << std::strerror(errno);
        ::close(fd); // no unlink: the file stays, dead
    }
    ASSERT_TRUE(std::filesystem::exists(socket_path));

    ServiceOptions options;
    options.stateDir = dir;
    options.startPaused = true;
    SweepService service(options);
    RequestDispatcher dispatcher(service);

    // The probe finds nobody answering and takes the path over.
    SocketServer server(dispatcher, socket_path);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::string parse_error;
    const runner::Json reply = runner::Json::parse(
        unixRequest(socket_path, R"({"type":"ping"})"), &parse_error);
    ASSERT_TRUE(parse_error.empty()) << parse_error;
    EXPECT_TRUE(reply.at("ok").asBool());

    // With the first daemon live, a second one must refuse to start —
    // the probe connects successfully and backs off.
    SocketServer rival(dispatcher, socket_path);
    EXPECT_FALSE(rival.start(&error));
    EXPECT_NE(error.find("another daemon is live"), std::string::npos)
        << error;

    // The loser's failed start must not have unlinked the winner's
    // socket: the original server still answers.
    parse_error.clear();
    const runner::Json again = runner::Json::parse(
        unixRequest(socket_path, R"({"type":"ping"})"), &parse_error);
    ASSERT_TRUE(parse_error.empty()) << parse_error;
    EXPECT_TRUE(again.at("ok").asBool());

    server.stop();
    EXPECT_FALSE(std::filesystem::exists(socket_path));
}

} // namespace
