/**
 * @file
 * End-to-end integration tests: whole-GPU runs under every policy with
 * functional round-trip verification enabled, cross-policy invariants
 * on real workloads, and the driver's Kernel-OPT composition.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "workloads/value_gens.hh"
#include "workloads/zoo.hh"

using namespace latte;

namespace
{

/** A scaled-down workload so integration tests stay fast. */
Workload
miniWorkload(bool phase_change = false)
{
    Workload workload;
    workload.abbr = "MINI";
    workload.fullName = "Miniature hot-reuse benchmark";
    workload.suite = "tests";
    workload.cacheSensitive = true;
    workload.seed = 77;
    workload.setup = [](MemoryImage &mem) {
        mem.addRegion(0x10000000, 8 << 20,
                      std::make_shared<IntArrayGen>(77, 100, 2, 4));
    };

    KernelSpec spec;
    spec.name = "mini_kernel";
    spec.ctas = 60;
    spec.warpsPerCta = 4;
    spec.seed = 77;
    PhaseSpec a;
    a.iterations = 250;
    a.loadsPerIter = 2;
    a.aluPerIter = 2;
    a.aluLatency = 2;
    a.pattern.base = 0x10000000;
    a.pattern.sizeBytes = 8 << 20;
    a.pattern.kind = PatternKind::HotReuse;
    a.pattern.sliceBytes = 8 * 1024;
    a.pattern.hotBytes = 3 * 1024;
    a.pattern.hotFraction = 0.85;
    spec.phases.push_back(a);
    if (phase_change) {
        PhaseSpec b = a;
        b.iterations = 40;
        b.loadsPerIter = 1;
        b.aluPerIter = 4;
        b.aluLatency = 8;
        spec.phases.push_back(b);
    }
    workload.kernels.push_back(spec);
    return workload;
}

/** Build-and-run shorthand over the run(RunRequest) entry point. */
WorkloadRunResult
runPolicy(const Workload &workload, PolicyKind kind,
          const DriverOptions &options = {})
{
    RunRequest request;
    request.workload = &workload;
    request.policy = kind;
    request.options = options;
    return run(request).value();
}

} // namespace

TEST(Integration, AllPoliciesRunWithRoundTripVerification)
{
    const Workload workload = miniWorkload();
    DriverOptions options;
    options.tuning.verifyRoundTrip = true; // panics on any mismatch

    const PolicyKind kinds[] = {
        PolicyKind::Baseline,        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,        PolicyKind::StaticBpc,
        PolicyKind::AdaptiveHitCount, PolicyKind::AdaptiveCmp,
        PolicyKind::LatteCc,         PolicyKind::LatteCcBdiBpc,
    };
    for (const PolicyKind kind : kinds) {
        const auto result = runPolicy(workload, kind, options);
        EXPECT_GT(result.cycles, 0u) << policyName(kind);
        EXPECT_GT(result.instructions, 0u) << policyName(kind);
        EXPECT_GT(result.hits + result.misses, 0u) << policyName(kind);
    }
}

TEST(Integration, RunsAreDeterministic)
{
    const Workload workload = miniWorkload(true);
    const auto a = runPolicy(workload, PolicyKind::LatteCc);
    const auto b = runPolicy(workload, PolicyKind::LatteCc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.modeAccesses, b.modeAccesses);
}

TEST(Integration, PoliciesAgreeOnInstructionCount)
{
    // Compression changes timing, never the executed program.
    const Workload workload = miniWorkload();
    const auto base = runPolicy(workload, PolicyKind::Baseline);
    const auto bdi = runPolicy(workload, PolicyKind::StaticBdi);
    const auto latte = runPolicy(workload, PolicyKind::LatteCc);
    EXPECT_EQ(base.instructions, bdi.instructions);
    EXPECT_EQ(base.instructions, latte.instructions);
}

TEST(Integration, BdiCompressionReducesMissesOnBdiFriendlyData)
{
    const Workload workload = miniWorkload();
    const auto base = runPolicy(workload, PolicyKind::Baseline);
    const auto bdi = runPolicy(workload, PolicyKind::StaticBdi);
    EXPECT_LT(bdi.misses, base.misses)
        << "small-delta int data must compress and cut misses";
    EXPECT_LT(bdi.cycles, base.cycles);
}

TEST(Integration, KernelOptPicksBestPerKernel)
{
    const Workload workload = miniWorkload();
    const auto oracle = runPolicy(workload, PolicyKind::KernelOpt);
    ASSERT_EQ(oracle.kernelBestModes.size(), 1u);
    ASSERT_EQ(oracle.kernels.size(), 1u);

    // The oracle's time cannot exceed any single static scheme's.
    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::StaticBdi,
          PolicyKind::StaticSc}) {
        const auto result = runPolicy(workload, kind);
        EXPECT_LE(oracle.cycles, result.cycles) << policyName(kind);
    }
}

TEST(Integration, LatteTracksBestStaticWithinMargin)
{
    const Workload workload = miniWorkload(true);
    const auto base = runPolicy(workload, PolicyKind::Baseline);
    const auto bdi = runPolicy(workload, PolicyKind::StaticBdi);
    const auto sc = runPolicy(workload, PolicyKind::StaticSc);
    const auto latte = runPolicy(workload, PolicyKind::LatteCc);

    const Cycles best = std::min({base.cycles, bdi.cycles, sc.cycles});
    EXPECT_LT(latte.cycles,
              static_cast<Cycles>(static_cast<double>(best) * 1.35))
        << "adaptive management must stay within 35% of the best "
           "static scheme on a stable workload";
}

TEST(Integration, TraceAndToleranceArePopulated)
{
    const Workload workload = miniWorkload(true);
    const auto latte = runPolicy(workload, PolicyKind::LatteCc);
    EXPECT_FALSE(latte.trace.empty());
    std::uint64_t mode_total = 0;
    for (const auto count : latte.modeAccesses)
        mode_total += count;
    EXPECT_GT(mode_total, 0u);
}

TEST(Integration, EnergyOrderingMatchesWork)
{
    const Workload workload = miniWorkload();
    const auto base = runPolicy(workload, PolicyKind::Baseline);
    const auto bdi = runPolicy(workload, PolicyKind::StaticBdi);
    // BDI runs faster and moves less data: total energy must drop.
    EXPECT_LT(bdi.energy.totalMj(), base.energy.totalMj());
}

TEST(Integration, LargerCacheNeverSlower)
{
    const Workload workload = miniWorkload();
    const auto small = runPolicy(workload, PolicyKind::Baseline);
    DriverOptions big;
    big.cfg.l1.sizeBytes = 64 * 1024;
    const auto large = runPolicy(workload, PolicyKind::Baseline, big);
    EXPECT_LE(large.cycles, small.cycles);
    EXPECT_LE(large.misses, small.misses);
}

TEST(Integration, ZooSmokeEveryWorkloadUnderLatte)
{
    // Cheap smoke: one truncated run per workload with verification on.
    DriverOptions options;
    options.tuning.verifyRoundTrip = true;
    options.maxInstructionsPerKernel = 30000;
    for (const auto &workload : workloadZoo()) {
        const auto result =
            runPolicy(workload, PolicyKind::LatteCc, options);
        EXPECT_GT(result.instructions, 0u) << workload.abbr;
    }
}
