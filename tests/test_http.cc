/**
 * @file
 * Tests for the HTTP scrape surface: request parsing and routing
 * (200/400/404/405), ephemeral-port binding, concurrent scrapes, and
 * the /metrics, /healthz and /jobs endpoints wired to a live
 * SweepService — including the monotone-counter property across
 * scrapes. The client side is a raw AF_INET socket speaking HTTP/1.0,
 * which is exactly what the server promises to understand.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runner/json.hh"
#include "runner/sweep_spec.hh"
#include "service/http_server.hh"
#include "service/sweep_service.hh"

using namespace latte;
using namespace latte::service;

namespace
{

/** Mirrors the service-test spec: cells cost milliseconds. */
runner::SweepSpec
tinySpec()
{
    runner::SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"KM"};
    spec.policies = {"Baseline", "LATTE-CC"};
    spec.options["max_instructions_per_kernel"] =
        runner::Json(std::uint64_t{20'000});
    spec.options["cfg.num_sms"] = runner::Json(std::uint64_t{2});
    return spec;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

struct HttpReply
{
    int status = 0;
    std::string head;
    std::string body;
};

/** Send @p request verbatim to 127.0.0.1:@p port; read until EOF. */
HttpReply
rawRequest(std::uint16_t port, const std::string &request)
{
    HttpReply reply;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return reply;

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ADD_FAILURE() << "connect: " << std::strerror(errno);
        ::close(fd);
        return reply;
    }

    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::send(fd, request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }

    std::string raw;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const std::size_t split = raw.find("\r\n\r\n");
    EXPECT_NE(split, std::string::npos) << raw;
    if (split == std::string::npos)
        return reply;
    reply.head = raw.substr(0, split);
    reply.body = raw.substr(split + 4);
    // "HTTP/1.0 200 OK"
    if (reply.head.size() > 12)
        reply.status = std::atoi(reply.head.c_str() + 9);
    return reply;
}

HttpReply
httpGet(std::uint16_t port, const std::string &path)
{
    return rawRequest(port,
                      "GET " + path + " HTTP/1.0\r\n"
                      "Host: 127.0.0.1\r\n\r\n");
}

/** Value of the unlabeled sample line "name value" in @p exposition. */
double
sampleValue(const std::string &exposition, const std::string &name)
{
    std::size_t pos = 0;
    while ((pos = exposition.find(name + " ", pos)) !=
           std::string::npos) {
        if (pos == 0 || exposition[pos - 1] == '\n')
            return std::atof(
                exposition.c_str() + pos + name.size() + 1);
        pos += name.size();
    }
    ADD_FAILURE() << "no sample for " << name;
    return -1.0;
}

TEST(Http, RoutesRequestsAndReportsErrors)
{
    HttpServer server("0"); // ephemeral port on 127.0.0.1
    server.handle("/ping", [] {
        return HttpServer::Response{200, "text/plain; charset=utf-8",
                                    "pong\n"};
    });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_NE(server.port(), 0u);

    HttpReply reply = httpGet(server.port(), "/ping");
    EXPECT_EQ(reply.status, 200);
    EXPECT_EQ(reply.body, "pong\n");
    EXPECT_NE(reply.head.find("Content-Length: 5"), std::string::npos);
    EXPECT_NE(reply.head.find("Connection: close"), std::string::npos);

    // Query strings are stripped before routing.
    EXPECT_EQ(httpGet(server.port(), "/ping?verbose=1").status, 200);
    EXPECT_EQ(httpGet(server.port(), "/nope").status, 404);
    EXPECT_EQ(rawRequest(server.port(),
                         "POST /ping HTTP/1.0\r\n\r\n")
                  .status,
              405);
    EXPECT_EQ(rawRequest(server.port(), "\r\n\r\n").status, 400);

    server.stop();
}

TEST(Http, RejectsBadAddresses)
{
    std::string error;

    HttpServer bad_port("notaport");
    EXPECT_FALSE(bad_port.start(&error));
    EXPECT_NE(error.find("bad http address"), std::string::npos)
        << error;

    HttpServer too_big("70000");
    EXPECT_FALSE(too_big.start(&error));

    HttpServer bad_host("not.an.ip.addr:0");
    EXPECT_FALSE(bad_host.start(&error));
    EXPECT_NE(error.find("bad http host"), std::string::npos) << error;
}

TEST(Http, ServesConcurrentScrapes)
{
    HttpServer server("0");
    server.handle("/ping", [] {
        return HttpServer::Response{200, "text/plain; charset=utf-8",
                                    "pong\n"};
    });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::vector<int> statuses(kClients, 0);
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&server, &statuses, i] {
            statuses[i] = httpGet(server.port(), "/ping").status;
        });
    }
    for (std::thread &client : clients)
        client.join();
    for (int i = 0; i < kClients; ++i)
        EXPECT_EQ(statuses[i], 200) << "client " << i;

    server.stop();
}

TEST(Http, ServiceEndpointsExposeTheQueue)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_http_endpoints_state");
    options.startPaused = true;
    SweepService service(options);

    std::string error;
    const std::uint64_t id =
        service.submit(tinySpec(), "scraper", 0, &error);
    ASSERT_NE(id, 0u) << error;

    HttpServer server("0");
    registerServiceEndpoints(server, service);
    ASSERT_TRUE(server.start(&error)) << error;

    // /metrics: Prometheus exposition with the queued job visible.
    HttpReply metrics = httpGet(server.port(), "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.head.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_EQ(sampleValue(metrics.body, "latte_service_queue_depth"),
              1.0);
    EXPECT_EQ(sampleValue(metrics.body,
                          "latte_service_jobs_submitted_total"),
              1.0);
    EXPECT_NE(metrics.body.find(
                  "latte_service_jobs{state=\"queued\"} 1"),
              std::string::npos);
    // The live gauges and the sim-pool aggregate ride along.
    EXPECT_NE(metrics.body.find("latte_live_cells_in_flight"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("latte_sim_pool_epochs_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("latte_sim_pool_barrier_wait_ns"),
              std::string::npos);

    // /healthz: machine-readable liveness summary.
    HttpReply healthz = httpGet(server.port(), "/healthz");
    EXPECT_EQ(healthz.status, 200);
    EXPECT_NE(healthz.head.find("application/json"), std::string::npos);
    const runner::Json health = runner::Json::parse(healthz.body, &error);
    ASSERT_TRUE(error.empty()) << error << "\n" << healthz.body;
    EXPECT_EQ(health.at("status").asString(), "ok");
    EXPECT_EQ(health.at("queue_depth").asUint(), 1u);
    EXPECT_EQ(health.at("running_job").asUint(), 0u);
    EXPECT_EQ(health.at("jobs").at("queued").asUint(), 1u);
    EXPECT_EQ(health.at("cells").at("executed").asUint(), 0u);

    // /jobs: the same snapshot the wire "jobs" verb returns.
    HttpReply jobs = httpGet(server.port(), "/jobs");
    EXPECT_EQ(jobs.status, 200);
    const runner::Json listing = runner::Json::parse(jobs.body, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(listing.asArray().size(), 1u);
    EXPECT_EQ(listing.asArray()[0].at("id").asUint(), id);
    EXPECT_EQ(listing.asArray()[0].at("state").asString(), "queued");

    server.stop();
}

TEST(Http, CountersStayMonotoneAcrossScrapes)
{
    ServiceOptions options;
    options.stateDir = freshDir("latte_http_monotone_state");
    options.cacheDir = freshDir("latte_http_monotone_cache");
    options.threads = 2;
    SweepService service(options);

    HttpServer server("0");
    registerServiceEndpoints(server, service);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::string job_error;
    const runner::SweepSpec spec = tinySpec();
    const std::uint64_t first =
        service.submit(spec, "scraper", 0, &job_error);
    ASSERT_NE(first, 0u) << job_error;
    JobInfo info;
    ASSERT_TRUE(service.waitJob(first, info));
    ASSERT_EQ(info.state, JobState::Done) << info.error;

    const std::string scrape1 = httpGet(server.port(), "/metrics").body;

    // A resubmit is served from cache — still a completed job, so every
    // lifetime counter moves forward (or holds), never backward.
    const std::uint64_t second =
        service.submit(spec, "scraper", 0, &job_error);
    ASSERT_NE(second, 0u) << job_error;
    ASSERT_TRUE(service.waitJob(second, info));
    ASSERT_EQ(info.state, JobState::Done) << info.error;

    const std::string scrape2 = httpGet(server.port(), "/metrics").body;

    const char *counters[] = {
        "latte_service_jobs_submitted_total",
        "latte_service_jobs_completed_total",
        "latte_service_cells_done_total",
        "latte_service_cells_executed_total",
        "latte_live_cells_finished_total",
    };
    for (const char *name : counters) {
        EXPECT_GE(sampleValue(scrape2, name), sampleValue(scrape1, name))
            << name;
    }
    EXPECT_EQ(sampleValue(scrape2, "latte_service_jobs_completed_total"),
              2.0);
    EXPECT_EQ(sampleValue(scrape2,
                          "latte_service_jobs_served_from_cache_total"),
              1.0);
    // The executed cells of the first job recorded wall times.
    EXPECT_GE(sampleValue(scrape2, "latte_service_cell_wall_ms_count"),
              static_cast<double>(spec.cellCount()));

    server.stop();
}

} // namespace
