/**
 * @file
 * Parameterised property tests: invariants that must hold across cache
 * geometries, value profiles and policy parameters, swept with TEST_P.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/compressed_cache.hh"
#include "common/ep_clock.hh"
#include "compress/backend.hh"
#include "compress/factory.hh"
#include "compress/sc.hh"
#include "workloads/value_gens.hh"

using namespace latte;

// ------------------------------------------------ cache geometry sweep

/** (l1 size KB, associativity, tag factor, sub-block bytes). */
using Geometry = std::tuple<unsigned, unsigned, unsigned, unsigned>;

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    void
    SetUp() override
    {
        const auto [kb, assoc, tag_factor, sub_block] = GetParam();
        cfg.l1.sizeBytes = kb * 1024;
        cfg.l1.assoc = assoc;
        cfg.l1.tagFactor = tag_factor;
        cfg.l1.subBlockBytes = sub_block;
        root = std::make_unique<StatGroup>("root");
        noc = std::make_unique<Interconnect>(cfg, root.get());
        dram = std::make_unique<DramModel>(cfg, root.get());
        l2 = std::make_unique<L2Cache>(cfg, noc.get(), dram.get(), &mem,
                                       root.get());
        engines = std::make_unique<CompressionEngines>(cfg);
        cache = std::make_unique<CompressedCache>(
            cfg, 0, engines.get(), l2.get(), &mem, root.get());
    }

    void
    install(Addr addr, Cycles &now)
    {
        const auto res = cache->access(now, addr, false);
        if (!res.rejected)
            now = std::max(now + 1, res.readyCycle + 1);
        cache->processFills(now);
    }

    GpuConfig cfg;
    MemoryImage mem;
    std::unique_ptr<StatGroup> root;
    std::unique_ptr<Interconnect> noc;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CompressionEngines> engines;
    std::unique_ptr<CompressedCache> cache;
};

TEST_P(CacheGeometry, GeometryArithmeticConsistent)
{
    EXPECT_EQ(cache->numSets() * cfg.l1.assoc * cfg.l1.lineBytes,
              cfg.l1.sizeBytes);
    EXPECT_EQ(cache->tagsPerSet(), cfg.l1.assoc * cfg.l1.tagFactor);
    EXPECT_EQ(cache->subBlocksPerSet() * cfg.l1.subBlockBytes,
              cfg.l1.assoc * cfg.l1.lineBytes);
}

TEST_P(CacheGeometry, SubBlockUsageNeverExceedsCapacity)
{
    IntArrayGen gen(3, 50, 2, 4);
    Cycles now = 0;
    for (unsigned i = 0; i < 600; ++i) {
        const Addr addr = 0x20000000 + i * 128;
        std::array<std::uint8_t, 128> bytes;
        gen.generate(addr, bytes);
        mem.writeBytes(addr, bytes);
        install(addr, now);
    }
    EXPECT_LE(cache->usedSubBlocks(),
              static_cast<std::uint64_t>(cache->numSets()) *
                  cache->subBlocksPerSet());
    EXPECT_LE(cache->validLines(),
              static_cast<std::uint64_t>(cache->numSets()) *
                  cache->tagsPerSet());
}

TEST_P(CacheGeometry, HitAfterInstallAlways)
{
    Cycles now = 0;
    install(0x30000000, now);
    EXPECT_TRUE(cache->access(now, 0x30000000, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{16, 4, 4, 32},  // Table II default
                      Geometry{16, 4, 2, 32},  // fewer tags
                      Geometry{16, 4, 4, 64},  // coarser sub-blocks
                      Geometry{32, 4, 4, 32},  // bigger cache
                      Geometry{48, 4, 4, 32},  // Sec V-E configuration
                      Geometry{16, 8, 4, 32},  // higher associativity
                      Geometry{64, 4, 4, 32}));

// -------------------------------------------- compression never lies

/** (generator kind, seed). */
using ProfileParam = std::tuple<int, std::uint64_t>;

class CompressionInvariants
    : public ::testing::TestWithParam<ProfileParam>
{
  protected:
    std::shared_ptr<LineGenerator>
    makeGen() const
    {
        const auto [kind, seed] = GetParam();
        switch (kind) {
          case 0: return std::make_shared<ZeroGen>();
          case 1: return std::make_shared<RandomGen>(seed);
          case 2:
            return std::make_shared<IntArrayGen>(seed, 1000, 3, 5);
          case 3:
            return std::make_shared<IntArrayGen>(seed, 5, 60000, 0);
          case 4:
            return std::make_shared<PaletteGen>(seed, 48, true, 1.2,
                                                0.2);
          case 5:
            return std::make_shared<PointerArrayGen>(
                seed, 0x7f0000000000ull, 1 << 20);
          default:
            return std::make_shared<FloatNoiseGen>(seed, 1.0f, 0.8f);
        }
    }
};

TEST_P(CompressionInvariants, RoundTripAndSizeBounds)
{
    auto gen = makeGen();
    for (const CompressorId id : allCompressorIds()) {
        auto engine = makeCompressor(id);
        if (id == CompressorId::Sc) {
            auto *sc = static_cast<ScCompressor *>(engine.get());
            std::array<std::uint8_t, 128> line;
            for (unsigned i = 0; i < 64; ++i) {
                gen->generate(i * 128, line);
                sc->trainLine(line);
            }
            sc->rebuildCodes();
        }
        for (unsigned i = 0; i < 48; ++i) {
            std::array<std::uint8_t, 128> line;
            gen->generate(i * 128, line);
            const CompressedLine compressed = engine->compress(line);

            // Size invariants.
            ASSERT_GT(compressed.sizeBits, 0u);
            ASSERT_LE(compressed.sizeBits, kLineBits);
            ASSERT_GE(compressed.ratio(), 1.0);

            // Functional invariant: exact reconstruction.
            const auto decoded = engine->decompress(compressed);
            ASSERT_EQ(decoded.size(), line.size());
            ASSERT_TRUE(std::equal(line.begin(), line.end(),
                                   decoded.begin()))
                << compressorName(id) << " profile "
                << std::get<0>(GetParam());
        }
    }
}

TEST_P(CompressionInvariants, ProbeMatchesCompress)
{
    // The size-only probes are hand-tuned twins of the full encoders
    // (BDI's first-fit layout scan, FPC's fused classifier, SC's flat
    // length table), so this equivalence is load-bearing: insertLine()
    // trusts probe() for every placement decision. compress() is always
    // scalar, so sweeping the dispatch tiers here also pins every SIMD
    // kernel to the scalar encoding.
    auto gen = makeGen();
    const auto check = [&](Compressor &engine, unsigned lines) {
        for (unsigned i = 0; i < lines; ++i) {
            std::array<std::uint8_t, 128> line;
            gen->generate(i * 128, line);
            const LineMeta probed = engine.probe(line);
            const CompressedLine full = engine.compress(line);
            ASSERT_EQ(probed.algo, full.algo)
                << compressorName(engine.id()) << " line " << i;
            ASSERT_EQ(probed.encoding, full.encoding)
                << compressorName(engine.id()) << " line " << i;
            ASSERT_EQ(probed.sizeBits, full.sizeBits)
                << compressorName(engine.id()) << " line " << i;
            ASSERT_EQ(probed.generation, full.generation)
                << compressorName(engine.id()) << " line " << i;
        }
    };

    const CompressorBackend *entry_backend = &activeCompressorBackend();
    for (const CompressorBackend &backend : compressorBackends()) {
        if (!compressorBackendSupported(backend))
            continue;
        setCompressorBackend(backend);
        for (const CompressorId id : allCompressorIds()) {
            auto engine = makeCompressor(id);
            if (id != CompressorId::Sc) {
                check(*engine, 64);
                continue;
            }

            // SC changes behaviour with its Huffman generation:
            // exercise the untrained book, a trained one, and a rebuild
            // over a different sample window (different codes, bumped
            // generation).
            auto *sc = static_cast<ScCompressor *>(engine.get());
            check(*engine, 16);
            std::array<std::uint8_t, 128> line;
            for (unsigned i = 0; i < 64; ++i) {
                gen->generate(i * 128, line);
                sc->trainLine(line);
            }
            sc->rebuildCodes();
            check(*engine, 64);
            for (unsigned i = 64; i < 96; ++i) {
                gen->generate(i * 128, line);
                sc->trainLine(line);
            }
            sc->rebuildCodes();
            check(*engine, 64);
        }
    }
    setCompressorBackend(*entry_backend);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CompressionInvariants,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(11ull, 222ull, 3333ull)));

// ----------------------------------------- EP parameter sweep (LATTE)

class EpParams : public ::testing::TestWithParam<
                     std::tuple<std::uint32_t, std::uint32_t>>
{};

TEST_P(EpParams, ClockArithmeticHoldsForAllShapes)
{
    const auto [ep_accesses, period_eps] = GetParam();
    LatteParams params;
    params.epAccesses = ep_accesses;
    params.periodEps = period_eps;
    EpClock clock(params);

    const std::uint64_t total =
        static_cast<std::uint64_t>(ep_accesses) * period_eps * 3;
    std::uint64_t eps = 0, periods = 0;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto events = clock.onAccess();
        eps += events.epBoundary;
        periods += events.periodBoundary;
        EXPECT_LT(clock.epInPeriod(), period_eps);
    }
    EXPECT_EQ(eps, static_cast<std::uint64_t>(period_eps) * 3);
    EXPECT_EQ(periods, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EpParams,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                       ::testing::Values(2u, 10u, 16u)));

