/**
 * @file
 * Unit tests for the compression management policies: EP clock
 * arithmetic, the latency tolerance meter, static SC generation
 * handling, LATTE-CC's dedicated-set mapping and AMAT-driven decisions.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/driver.hh"
#include "common/ep_clock.hh"
#include "sim/lt_meter.hh"

using namespace latte;

// ------------------------------------------------------------ EpClock

TEST(EpClock, BoundariesFire)
{
    LatteParams params;
    params.epAccesses = 4;
    params.periodEps = 3;
    EpClock clock(params);

    int ep_boundaries = 0, period_boundaries = 0;
    for (int i = 0; i < 4 * 3 * 2; ++i) {
        const auto events = clock.onAccess();
        if (events.epBoundary)
            ++ep_boundaries;
        if (events.periodBoundary)
            ++period_boundaries;
    }
    EXPECT_EQ(ep_boundaries, 6);
    EXPECT_EQ(period_boundaries, 2);
    EXPECT_EQ(clock.epIndex(), 6u);
    EXPECT_EQ(clock.periodIndex(), 2u);
}

TEST(EpClock, PhaseQueries)
{
    LatteParams params;
    params.epAccesses = 2;
    params.periodEps = 4;
    params.learningEps = 1;
    EpClock clock(params);

    EXPECT_TRUE(clock.inLearningPhase());
    EXPECT_FALSE(clock.inHitTailPhase());
    clock.onAccess();
    clock.onAccess(); // EP 0 done -> EP 1
    EXPECT_FALSE(clock.inLearningPhase());
    EXPECT_TRUE(clock.inHitTailPhase());
    clock.onAccess();
    clock.onAccess(); // EP 2
    EXPECT_FALSE(clock.inHitTailPhase());
    clock.onAccess();
    clock.onAccess(); // EP 3 (final)
    EXPECT_TRUE(clock.inFinalEp());
}

// ------------------------------------------------- LatencyToleranceMeter

TEST(LtMeter, RoundRobinLikeToleranceIsReadyCount)
{
    LatencyToleranceMeter meter;
    // 10 cycles with 5 ready warps, alternating warps (run length 1).
    for (int i = 0; i < 10; ++i) {
        meter.accumulate(5);
        meter.noteIssue(0, static_cast<std::uint32_t>(i % 5));
    }
    EXPECT_DOUBLE_EQ(meter.avgReadyWarps(), 5.0);
    EXPECT_NEAR(meter.avgRunLength(), 2.0, 1.1); // 10 issues, >=5 runs
    // tolerance = (5-1) * runLen
    EXPECT_GE(meter.latencyTolerance(), 4.0);
}

TEST(LtMeter, GreedyRunsMultiplyTolerance)
{
    LatencyToleranceMeter meter;
    // One warp issues 8 consecutive times, then another.
    for (int i = 0; i < 8; ++i) {
        meter.accumulate(3);
        meter.noteIssue(0, 7);
    }
    for (int i = 0; i < 8; ++i) {
        meter.accumulate(3);
        meter.noteIssue(0, 9);
    }
    EXPECT_DOUBLE_EQ(meter.avgRunLength(), 8.0);
    EXPECT_DOUBLE_EQ(meter.latencyTolerance(), 2.0 * 8.0);
}

TEST(LtMeter, IdleCyclesDragToleranceDown)
{
    LatencyToleranceMeter meter;
    meter.accumulate(10, 10);
    meter.accumulate(0, 990);
    EXPECT_NEAR(meter.avgReadyWarps(), 0.1, 1e-9);
    EXPECT_DOUBLE_EQ(meter.latencyTolerance(), 0.0);
}

TEST(LtMeter, HarvestResetsWindow)
{
    LatencyToleranceMeter meter;
    meter.accumulate(6, 4);
    meter.noteIssue(0, 1);
    const double tolerance = meter.harvest();
    EXPECT_GT(tolerance, 0.0);
    EXPECT_EQ(meter.windowCycles(), 0u);
    EXPECT_DOUBLE_EQ(meter.avgReadyWarps(), 0.0);
}

// ---------------------------------------------------------- policies

namespace
{

/** Everything a policy needs, wired to a one-SM rig. */
class PolicyRig
{
  public:
    PolicyRig()
        : root("root"), noc(cfg, &root), dram(cfg, &root),
          l2(cfg, &noc, &dram, &mem, &root), engines(cfg),
          cache(cfg, 0, &engines, &l2, &mem, &root)
    {}

    void
    attach(Policy &policy)
    {
        policy.bind(&cache, &engines, &meter);
        cache.setModeProvider(&policy);
    }

    GpuConfig cfg;
    StatGroup root;
    MemoryImage mem;
    Interconnect noc;
    DramModel dram;
    L2Cache l2;
    CompressionEngines engines;
    CompressedCache cache;
    LatencyToleranceMeter meter;
};

} // namespace

TEST(StaticPolicy, NamesAndModes)
{
    GpuConfig cfg;
    StaticPolicy none(cfg, CompressorId::None);
    StaticPolicy bdi(cfg, CompressorId::Bdi);
    EXPECT_EQ(none.name(), "Baseline");
    EXPECT_EQ(bdi.name(), "Static-BDI");
    EXPECT_EQ(none.modeForInsertion(3), CompressorId::None);
    EXPECT_EQ(bdi.modeForInsertion(3), CompressorId::Bdi);
}

TEST(StaticPolicy, ScBuildsCodesAfterFirstEp)
{
    PolicyRig rig;
    StaticPolicy sc(rig.cfg, CompressorId::Sc);
    rig.attach(sc);

    EXPECT_FALSE(rig.engines.sc.hasCodes());
    // Drive one EP of accesses (256), with insertions training the VFT.
    Cycles now = 0;
    for (std::uint32_t i = 0; i < rig.cfg.latte.epAccesses; ++i) {
        const auto res =
            rig.cache.access(now, 0x100000 + i * 128, false);
        now = std::max(now + 1, res.readyCycle);
        rig.cache.processFills(now);
    }
    EXPECT_TRUE(rig.engines.sc.hasCodes());
    EXPECT_EQ(rig.engines.sc.generation(), 1u);
}

TEST(LatteCc, DedicatedSetMapping)
{
    PolicyRig rig;
    LatteCcPolicy latte(rig.cfg);
    rig.attach(latte);

    // 32 sets, 4 dedicated per mode -> stride 8; sets 0/1/2 mod 8 are
    // None/BDI/SC sampling sets while sampling is active.
    EXPECT_EQ(latte.modeForInsertion(0), CompressorId::None);
    EXPECT_EQ(latte.modeForInsertion(1), CompressorId::Bdi);
    EXPECT_EQ(latte.modeForInsertion(2), CompressorId::Sc);
    EXPECT_EQ(latte.modeForInsertion(8), CompressorId::None);
    EXPECT_EQ(latte.modeForInsertion(9), CompressorId::Bdi);
    // Follower sets get the winner (None initially).
    EXPECT_EQ(latte.modeForInsertion(3), CompressorId::None);
    EXPECT_EQ(latte.modeForInsertion(7), CompressorId::None);
}

TEST(LatteCc, CountersTrackDedicatedSets)
{
    PolicyRig rig;
    LatteCcPolicy latte(rig.cfg);
    rig.attach(latte);

    // Misses in BDI-dedicated set 1 -> nMiss[1] grows.
    latte.observeAccess({0, 1, /*hit=*/false, /*isWrite=*/false,
                         CompressorId::None});
    latte.observeAccess({0, 1, false, false, CompressorId::None});
    latte.observeAccess({0, 1, true, false, CompressorId::Bdi});
    EXPECT_EQ(latte.missCount(1), 2u);
    EXPECT_EQ(latte.hitCount(1), 1u);
    // Follower sets are not counted.
    latte.observeAccess({0, 3, false, false, CompressorId::None});
    EXPECT_EQ(latte.missCount(0), 0u);
    // Writes are not counted.
    latte.observeAccess({0, 1, false, true, CompressorId::None});
    EXPECT_EQ(latte.missCount(1), 2u);
}

TEST(LatteCc, PicksLowLatencyModeWhenToleranceIsZero)
{
    PolicyRig rig;
    LatteCcPolicy latte(rig.cfg);
    rig.attach(latte);

    // Feed identical hit/miss profiles for every mode across EPs with
    // zero measured tolerance: the policy must not move off None, since
    // compression would only add exposed latency.
    for (int ep = 0; ep < 40; ++ep) {
        for (std::uint32_t i = 0; i < rig.cfg.latte.epAccesses; ++i) {
            const std::uint32_t set = i % rig.cache.numSets();
            latte.observeAccess({0, set, i % 2 == 0, false,
                                 CompressorId::None});
        }
    }
    EXPECT_EQ(latte.currentMode(), CompressorId::None);
}

TEST(LatteCc, SwitchesToScWhenItRemovesMisses)
{
    PolicyRig rig;
    LatteCcPolicy latte(rig.cfg);
    rig.attach(latte);

    // SC-dedicated sets (set % 8 == 2) mostly hit; others mostly miss.
    Rng rng(99);
    for (int ep = 0; ep < 60; ++ep) {
        for (std::uint32_t i = 0; i < rig.cfg.latte.epAccesses; ++i) {
            const std::uint32_t set = i % rig.cache.numSets();
            const bool hit =
                rng.chance(set % 8 == 2 ? 0.9 : 0.15);
            latte.observeAccess({0, set, hit, false,
                                 CompressorId::None});
        }
    }
    EXPECT_EQ(latte.currentMode(), CompressorId::Sc)
        << "a large sampled miss-rate gap must pull the winner to SC";
}

TEST(AdaptiveHitCount, ChasesHitsIgnoringLatency)
{
    PolicyRig rig;
    AdaptiveHitCountPolicy policy(rig.cfg);
    rig.attach(policy);

    Rng rng(7);
    for (int ep = 0; ep < 60; ++ep) {
        for (std::uint32_t i = 0; i < rig.cfg.latte.epAccesses; ++i) {
            const std::uint32_t set = i % rig.cache.numSets();
            // SC sets hit notably more often than the others.
            const bool hit =
                rng.chance(set % 8 == 2 ? 0.9 : 0.5);
            policy.observeAccess({0, set, hit, false,
                                  CompressorId::None});
        }
    }
    EXPECT_EQ(policy.currentMode(), CompressorId::Sc);
}

TEST(Driver, PolicyFactoryCoversAllKinds)
{
    GpuConfig cfg;
    const PolicyKind kinds[] = {
        PolicyKind::Baseline,        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,        PolicyKind::StaticBpc,
        PolicyKind::AdaptiveHitCount, PolicyKind::AdaptiveCmp,
        PolicyKind::LatteCc,         PolicyKind::LatteCcBdiBpc,
    };
    for (const PolicyKind kind : kinds) {
        const auto policy = makePolicy(kind, cfg);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), policyName(kind));
    }
}

TEST(DriverDeath, KernelOptIsNotAProvider)
{
    GpuConfig cfg;
    EXPECT_DEATH((void)makePolicy(PolicyKind::KernelOpt, cfg),
                 "Kernel-OPT");
}
