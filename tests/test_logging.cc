/**
 * @file
 * Tests for the leveled structured logger: level names and gating,
 * text/JSON record rendering, correlation scopes, raw-line passthrough
 * and the whole-line guarantee under concurrent writers. Every test
 * diverts the sink with setLogSink() and restores the process-wide
 * logger state on teardown, so suites running after these are
 * unaffected.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "runner/json.hh"

using namespace latte;

namespace
{

// setLogSink takes a plain function pointer, so the capture buffer is
// file-static. The sink runs under the logger's write mutex; the local
// lock only orders it against the test body's reads.
std::mutex g_linesMutex;
std::vector<std::string> g_lines;

void
captureSink(const std::string &line)
{
    std::lock_guard<std::mutex> lock(g_linesMutex);
    g_lines.push_back(line);
}

std::vector<std::string>
capturedLines()
{
    std::lock_guard<std::mutex> lock(g_linesMutex);
    return g_lines;
}

class Logging : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        {
            std::lock_guard<std::mutex> lock(g_linesMutex);
            g_lines.clear();
        }
        setLogSink(&captureSink);
        setLogLevel(LogLevel::Info);
        setLogJson(false);
        setLogThreadName("log-test");
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        setLogLevel(LogLevel::Info);
        setLogJson(false);
    }
};

TEST_F(Logging, LevelNamesRoundTrip)
{
    const LogLevel levels[] = {LogLevel::Error, LogLevel::Warn,
                               LogLevel::Info, LogLevel::Debug,
                               LogLevel::Trace};
    for (const LogLevel level : levels) {
        LogLevel parsed;
        ASSERT_TRUE(logLevelFromName(logLevelName(level), parsed))
            << logLevelName(level);
        EXPECT_EQ(parsed, level);
    }

    LogLevel out = LogLevel::Debug;
    EXPECT_FALSE(logLevelFromName("loud", out));
    EXPECT_EQ(out, LogLevel::Debug); // untouched on failure
    EXPECT_FALSE(logLevelFromName("", out));
}

TEST_F(Logging, ThresholdGatesRecords)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Trace));

    latte_inform("suppressed {}", 1);
    latte_debug("suppressed {}", 2);
    latte_warn("emitted {}", 3);

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("warn"), std::string::npos);
    EXPECT_NE(lines[0].find("emitted 3"), std::string::npos);
    EXPECT_EQ(lines[0].find("suppressed"), std::string::npos);
}

TEST_F(Logging, TextRecordsCarryThreadAndContext)
{
    LogScope scope("job-7/cell-3");
    latte_inform("hello {}", 42);

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);
    // [     0.000123] info  log-test job-7/cell-3: hello 42
    EXPECT_EQ(lines[0].front(), '[');
    EXPECT_NE(lines[0].find("info"), std::string::npos);
    EXPECT_NE(lines[0].find(" log-test job-7/cell-3: hello 42"),
              std::string::npos);
}

TEST_F(Logging, ScopesNestAndRestore)
{
    EXPECT_EQ(logContext(), "");
    {
        LogScope outer("job-1/");
        EXPECT_EQ(logContext(), "job-1/");
        {
            LogScope inner("job-1/cell-4");
            EXPECT_EQ(logContext(), "job-1/cell-4");
        }
        EXPECT_EQ(logContext(), "job-1/");
    }
    EXPECT_EQ(logContext(), "");
}

TEST_F(Logging, JsonRecordsParseAndEscape)
{
    setLogJson(true);
    LogScope scope("job-9/cell-0");
    latte_warn("quote \" backslash \\ newline \n tab \t bell \x07 end");

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);

    std::string error;
    const runner::Json record = runner::Json::parse(lines[0], &error);
    ASSERT_TRUE(error.empty()) << error << "\n" << lines[0];
    EXPECT_EQ(record.at("level").asString(), "warn");
    EXPECT_EQ(record.at("thread").asString(), "log-test");
    EXPECT_EQ(record.at("ctx").asString(), "job-9/cell-0");
    EXPECT_GE(record.at("ts").asDouble(), 0.0);
    // The parser unescapes, so the message round-trips bytewise.
    EXPECT_EQ(record.at("msg").asString(),
              "quote \" backslash \\ newline \n tab \t bell \x07 end");
}

TEST_F(Logging, JsonRecordsOmitEmptyContext)
{
    setLogJson(true);
    latte_inform("no scope here");

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);
    std::string error;
    const runner::Json record = runner::Json::parse(lines[0], &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_FALSE(record.contains("ctx"));
}

TEST_F(Logging, RawLinesPassThroughVerbatimInTextMode)
{
    const std::string progress =
        "[3/4] KM/LATTE-CC                   0.52s  eta 0.2s";
    logRawLine(progress);

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], progress); // no timestamp/level decoration
}

TEST_F(Logging, RawLinesBecomeRecordsInJsonMode)
{
    setLogJson(true);
    logRawLine("[1/4] KM/Baseline 0.1s");

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(), 1u);
    std::string error;
    const runner::Json record = runner::Json::parse(lines[0], &error);
    ASSERT_TRUE(error.empty()) << error << "\n" << lines[0];
    EXPECT_EQ(record.at("level").asString(), "info");
    EXPECT_EQ(record.at("msg").asString(), "[1/4] KM/Baseline 0.1s");
}

TEST_F(Logging, ConcurrentWritersNeverTearLines)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            setLogThreadName(strfmt("w{}", t));
            // A uniform payload per thread: any interleaving inside a
            // line would mix characters from two payloads.
            const std::string payload(48, static_cast<char>('A' + t));
            for (int i = 0; i < kPerThread; ++i)
                latte_warn("{}", payload);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    const std::vector<std::string> lines = capturedLines();
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (const std::string &line : lines) {
        const std::size_t colon = line.rfind(": ");
        ASSERT_NE(colon, std::string::npos) << line;
        const std::string payload = line.substr(colon + 2);
        ASSERT_EQ(payload.size(), 48u) << line;
        for (const char c : payload)
            ASSERT_EQ(c, payload[0]) << line;
    }
}

TEST_F(Logging, StrfmtFormatsPlaceholders)
{
    EXPECT_EQ(strfmt("a {} b {} c", 1, "x"), "a 1 b x c");
    EXPECT_EQ(strfmt("no placeholders"), "no placeholders");
    EXPECT_EQ(strfmt("extra {} {}", 7), "extra 7 {}");
    EXPECT_EQ(strfmt("{}", 2.5), "2.5");
}

TEST_F(Logging, AssertPassesOnTrue)
{
    latte_assert(1 + 1 == 2, "should not fire");
    SUCCEED();
}

} // namespace
