/**
 * @file
 * Tests for the resilience subsystem: the RunOutcome error API (no
 * failure escapes as an exception or exit), the fault-injection
 * matrix, cycle-budget and cancellation handling, the wall-clock
 * watchdog, retry-with-backoff, and journal-gated resume producing
 * byte-identical sweeps after an interruption.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hh"
#include "runner/experiment_runner.hh"
#include "runner/json.hh"
#include "runner/resilience.hh"
#include "runner/result_cache.hh"
#include "runner/sweep.hh"
#include "workloads/zoo.hh"

using namespace latte;
using namespace latte::runner;

namespace
{

/** A cut-down machine so each simulated cell costs milliseconds. */
DriverOptions
tinyOptions()
{
    DriverOptions options;
    options.cfg.numSms = 2;
    options.maxInstructionsPerKernel = 20'000;
    return options;
}

RunRequest
tinyRequest(const char *abbr = "KM",
            PolicyKind kind = PolicyKind::Baseline)
{
    const Workload *workload = findWorkload(abbr);
    EXPECT_NE(workload, nullptr);
    RunRequest request;
    request.workload = workload;
    request.policy = kind;
    request.options = tinyOptions();
    return request;
}

std::vector<std::string>
dumpAll(const std::vector<RunOutcome> &outcomes)
{
    std::vector<std::string> dumps;
    dumps.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        dumps.push_back(toJson(outcome).dump());
    return dumps;
}

TEST(Resilience, FaultMatrixEveryKindYieldsItsErrorCode)
{
    const FaultKind kinds[] = {
        FaultKind::CompressorCorruption,
        FaultKind::DecompQueueStall,
        FaultKind::DramTimeout,
        FaultKind::AllocFailure,
    };
    for (const FaultKind kind : kinds) {
        RunRequest request = tinyRequest();
        request.control.faults.faults.push_back(
            FaultPoint{.kind = kind, .atCycle = 1'000});

        const RunOutcome outcome = run(request);
        EXPECT_EQ(outcome.status, RunStatus::Failed)
            << faultKindName(kind);
        EXPECT_EQ(outcome.error.code, faultErrorCode(kind))
            << faultKindName(kind);
        EXPECT_GE(outcome.error.cycle, 1'000u) << faultKindName(kind);
        EXPECT_FALSE(outcome.result.has_value()) << faultKindName(kind);
        EXPECT_FALSE(outcome.error.message.empty())
            << faultKindName(kind);
        // The error carries its cell context.
        EXPECT_EQ(outcome.error.workload, "KM") << faultKindName(kind);
    }
}

TEST(Resilience, FaultedCellDoesNotSinkTheSweep)
{
    // A sweep mixing healthy and faulted cells completes, the healthy
    // cells finish Ok, and the faulted cell reports its cause.
    std::vector<RunRequest> requests;
    requests.push_back(tinyRequest("KM"));
    requests.push_back(tinyRequest("KM", PolicyKind::LatteCc));
    requests.back().control.faults.faults.push_back(
        FaultPoint{.kind = FaultKind::DramTimeout, .atCycle = 2'000});
    requests.push_back(tinyRequest("SS"));

    RunnerOptions options;
    options.threads = 2;
    options.progress = false;
    ExperimentRunner runner(options);
    const auto outcomes = runner.runAll(requests);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_EQ(outcomes[1].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[1].error.code, RunErrorCode::DramTimeout);
    EXPECT_TRUE(outcomes[2].ok());
    EXPECT_EQ(runner.stats().failed, 1u);
}

TEST(Resilience, TransientFaultClearsOnRetry)
{
    // firstAttempts = 1 models a transient fault: attempt 1 trips it,
    // attempt 2 runs clean. With one retry the cell ends Ok and the
    // first attempt's error is preserved in the retry history.
    RunRequest request = tinyRequest();
    request.control.faults.faults.push_back(
        FaultPoint{.kind = FaultKind::CompressorCorruption,
                   .atCycle = 1'000,
                   .firstAttempts = 1});

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.maxRetries = 1;
    options.retryBackoffMs = 1;
    ExperimentRunner runner(options);
    const auto outcomes = runner.runAll({request});

    ASSERT_EQ(outcomes.size(), 1u);
    const RunOutcome &outcome = outcomes[0];
    ASSERT_TRUE(outcome.ok()) << outcome.error.message;
    EXPECT_EQ(outcome.attempts, 2u);
    ASSERT_EQ(outcome.retryHistory.size(), 1u);
    EXPECT_EQ(outcome.retryHistory[0].code,
              RunErrorCode::CompressorCorruption);
    EXPECT_EQ(runner.stats().retried, 1u);
    EXPECT_EQ(runner.stats().failed, 0u);

    // The retried-to-ok result is bit-identical to a clean run.
    const RunOutcome clean = run(tinyRequest());
    ASSERT_TRUE(clean.ok());
    EXPECT_EQ(toJson(*outcome.result).dump(),
              toJson(*clean.result).dump());
}

TEST(Resilience, PersistentFaultExhaustsRetries)
{
    RunRequest request = tinyRequest();
    request.control.faults.faults.push_back(
        FaultPoint{.kind = FaultKind::AllocFailure, .atCycle = 500});

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.maxRetries = 2;
    options.retryBackoffMs = 1;
    ExperimentRunner runner(options);
    const auto outcomes = runner.runAll({request});

    ASSERT_EQ(outcomes.size(), 1u);
    const RunOutcome &outcome = outcomes[0];
    EXPECT_EQ(outcome.status, RunStatus::Failed);
    EXPECT_EQ(outcome.error.code, RunErrorCode::AllocFailure);
    EXPECT_EQ(outcome.attempts, 3u); // 1 try + 2 retries
    ASSERT_EQ(outcome.retryHistory.size(), 2u);
    for (const RunError &prior : outcome.retryHistory)
        EXPECT_EQ(prior.code, RunErrorCode::AllocFailure);
}

TEST(Resilience, CycleBudgetTimesOutTheCell)
{
    RunRequest request = tinyRequest();
    request.control.cycleBudget = 5'000;

    const RunOutcome outcome = run(request);
    EXPECT_EQ(outcome.status, RunStatus::TimedOut);
    EXPECT_EQ(outcome.error.code, RunErrorCode::CycleBudgetExceeded);
    EXPECT_GE(outcome.error.cycle, 5'000u);
    EXPECT_FALSE(outcome.result.has_value());
}

TEST(Resilience, PreCancelledTokenCancelsImmediately)
{
    CancelToken token;
    token.cancel();

    RunRequest request = tinyRequest();
    request.control.cancel = &token;

    const RunOutcome outcome = run(request);
    EXPECT_EQ(outcome.status, RunStatus::Cancelled);
    EXPECT_EQ(outcome.error.code, RunErrorCode::Cancelled);
}

TEST(Resilience, CancelledCellsAreNotRetried)
{
    CancelToken token;
    token.cancel();
    RunRequest request = tinyRequest();
    request.control.cancel = &token;

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.maxRetries = 3;
    options.retryBackoffMs = 1;
    ExperimentRunner runner(options);
    const auto outcomes = runner.runAll({request});

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::Cancelled);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_TRUE(outcomes[0].retryHistory.empty());
}

TEST(Resilience, InvalidConfigIsAFailureValueNotAnExit)
{
    RunRequest request = tinyRequest();
    request.options.cfg.l1.assoc = 0; // structurally broken

    const RunOutcome outcome = run(request);
    EXPECT_EQ(outcome.status, RunStatus::Failed);
    EXPECT_EQ(outcome.error.code, RunErrorCode::InvalidConfig);
    EXPECT_NE(outcome.error.message.find("l1Assoc"), std::string::npos)
        << outcome.error.message;
}

TEST(Resilience, NullWorkloadIsInvalidRequest)
{
    RunRequest request;
    const RunOutcome outcome = run(request);
    EXPECT_EQ(outcome.status, RunStatus::Failed);
    EXPECT_EQ(outcome.error.code, RunErrorCode::InvalidRequest);
}

TEST(Resilience, WatchdogCancelsOnlyExpiredTokens)
{
    Watchdog watchdog(2);

    CancelToken expired;
    CancelToken healthy;
    watchdog.arm(&expired, 10);
    const std::uint64_t healthy_id = watchdog.arm(&healthy, 60'000);

    // Wait (generously) for the watchdog to trip the short deadline.
    for (int i = 0; i < 500 && !expired.cancelled(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    EXPECT_TRUE(expired.cancelled());
    EXPECT_EQ(expired.reason(), RunErrorCode::WallClockTimeout);
    EXPECT_FALSE(healthy.cancelled());
    EXPECT_EQ(watchdog.expiredCount(), 1u);

    watchdog.disarm(healthy_id);
    EXPECT_FALSE(healthy.cancelled());
}

TEST(Resilience, WatchdogTimesOutAHungCell)
{
    // A full-size machine takes far longer than the 1 ms budget, so
    // the watchdog must cancel it; the simulation winds down
    // cooperatively and reports TimedOut.
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);
    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::LatteCc; // default (big) options

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.cellTimeoutMs = 1;
    ExperimentRunner runner(options);
    const auto outcomes = runner.runAll({request});

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(outcomes[0].error.code, RunErrorCode::WallClockTimeout);
}

TEST(Resilience, JournalRoundTripsAndSkipsTruncatedTail)
{
    const std::string path = ::testing::TempDir() +
                             "/latte_resilience_journal_test.jsonl";
    std::filesystem::remove(path);

    RunError error;
    error.code = RunErrorCode::DramTimeout;
    error.message = "injected";
    error.workload = "KM";
    error.policyLabel = "LATTE-CC";
    error.cycle = 123;
    RunOutcome failed = RunOutcome::failure(error);
    failed.attempts = 2;
    failed.retryHistory.push_back(error);

    {
        SweepJournal journal(path);
        journal.record("cell-a", failed);
        EXPECT_EQ(journal.size(), 1u);
    }
    // Simulate a SIGKILL landing mid-append: a truncated JSON line.
    {
        std::ofstream out(path, std::ios::app);
        out << R"({"fingerprint": "cell-b", "outco)";
    }

    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_FALSE(reloaded.find("cell-b").has_value());

    const auto entry = reloaded.find("cell-a");
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->status, RunStatus::Failed);
    EXPECT_EQ(entry->error.code, RunErrorCode::DramTimeout);
    EXPECT_EQ(entry->error.cycle, 123u);
    EXPECT_EQ(entry->attempts, 2u);
    ASSERT_EQ(entry->retryHistory.size(), 1u);

    std::filesystem::remove(path);
}

TEST(Resilience, ResumedSweepIsByteIdenticalToUninterrupted)
{
    const std::string dir =
        ::testing::TempDir() + "/latte_resilience_resume_test";
    std::filesystem::remove_all(dir);
    const std::string journal = dir + "/journal.jsonl";

    std::vector<RunRequest> grid;
    for (const char *abbr : {"KM", "PRK", "SS"}) {
        for (const PolicyKind kind :
             {PolicyKind::Baseline, PolicyKind::LatteCc}) {
            grid.push_back(tinyRequest(abbr, kind));
        }
    }

    // The reference: one uninterrupted run, no persistence at all.
    RunnerOptions plain;
    plain.threads = 2;
    plain.progress = false;
    const auto reference = ExperimentRunner(plain).runAll(grid);

    // "Crash" after the first four cells: a partial invocation that
    // journals and caches what it finished.
    RunnerOptions durable = plain;
    durable.cacheDir = dir + "/cache";
    durable.journalPath = journal;
    {
        const std::vector<RunRequest> partial(grid.begin(),
                                              grid.begin() + 4);
        ExperimentRunner(durable).runAll(partial);
    }

    // The resumed invocation runs the whole grid: four cells come back
    // via the journal + cache, two simulate fresh.
    ExperimentRunner resumed(durable);
    const auto outcomes = resumed.runAll(grid);
    EXPECT_EQ(resumed.stats().journalSkips, 4u);
    EXPECT_EQ(resumed.stats().executed, 2u);

    EXPECT_EQ(dumpAll(outcomes), dumpAll(reference));

    // A third invocation serves everything without simulating.
    ExperimentRunner warm(durable);
    const auto warm_outcomes = warm.runAll(grid);
    EXPECT_EQ(warm.stats().executed, 0u);
    EXPECT_EQ(warm.stats().journalSkips, grid.size());
    EXPECT_EQ(dumpAll(warm_outcomes), dumpAll(reference));

    std::filesystem::remove_all(dir);
}

TEST(Resilience, ResumeWithSimThreadsIsByteIdentical)
{
    // Kill-and-resume with the parallel cycle loop enabled: a sweep
    // computed at --sim-threads=4 must journal, resume and replay
    // byte-identically to an uninterrupted run — including the
    // simThreads envelope field, which fromJson restores so
    // cache-served cells report the computing run's value.
    const std::string dir =
        ::testing::TempDir() + "/latte_resilience_simthreads_test";
    std::filesystem::remove_all(dir);
    const std::string journal = dir + "/journal.jsonl";

    std::vector<RunRequest> grid;
    for (const char *abbr : {"KM", "PRK", "SS"}) {
        RunRequest request = tinyRequest(abbr, PolicyKind::LatteCc);
        request.options.cfg.numSms = 8;
        request.options.simThreads = "4";
        grid.push_back(std::move(request));
    }

    RunnerOptions plain;
    plain.threads = 2;
    plain.progress = false;
    const auto reference = ExperimentRunner(plain).runAll(grid);
    for (const RunOutcome &outcome : reference) {
        ASSERT_TRUE(outcome.ok()) << to_string(outcome.error);
        EXPECT_EQ(outcome.simThreads, 4u);
    }

    // "Crash" after the first cell, then resume the whole grid.
    RunnerOptions durable = plain;
    durable.cacheDir = dir + "/cache";
    durable.journalPath = journal;
    {
        const std::vector<RunRequest> partial(grid.begin(),
                                              grid.begin() + 1);
        ExperimentRunner(durable).runAll(partial);
    }
    ExperimentRunner resumed(durable);
    const auto outcomes = resumed.runAll(grid);
    EXPECT_EQ(resumed.stats().journalSkips, 1u);
    EXPECT_EQ(resumed.stats().executed, 2u);
    EXPECT_EQ(dumpAll(outcomes), dumpAll(reference));

    // Warm replay: everything served from the journal + cache, still
    // byte-identical, simThreads envelope value included.
    ExperimentRunner warm(durable);
    const auto warm_outcomes = warm.runAll(grid);
    EXPECT_EQ(warm.stats().executed, 0u);
    EXPECT_EQ(dumpAll(warm_outcomes), dumpAll(reference));

    std::filesystem::remove_all(dir);
}

TEST(Resilience, JournalReplaysFailuresWithoutRerunning)
{
    const std::string dir =
        ::testing::TempDir() + "/latte_resilience_failjournal_test";
    std::filesystem::remove_all(dir);

    // A cycle budget (no injected faults, so the cell is journal-
    // eligible) forces a deterministic timeout.
    RunRequest request = tinyRequest();

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.cacheDir = dir + "/cache";
    options.journalPath = dir + "/journal.jsonl";
    options.cellCycleBudget = 5'000;

    ExperimentRunner first(options);
    const auto cold = first.runAll({request});
    ASSERT_EQ(cold.size(), 1u);
    EXPECT_EQ(cold[0].status, RunStatus::TimedOut);
    EXPECT_EQ(first.stats().executed, 1u);

    ExperimentRunner second(options);
    const auto resumed = second.runAll({request});
    EXPECT_EQ(second.stats().executed, 0u);
    EXPECT_EQ(second.stats().journalSkips, 1u);
    ASSERT_EQ(resumed.size(), 1u);
    EXPECT_EQ(resumed[0].status, RunStatus::TimedOut);
    EXPECT_EQ(resumed[0].error.code,
              RunErrorCode::CycleBudgetExceeded);
    EXPECT_EQ(toJson(resumed[0]).dump(), toJson(cold[0]).dump());

    std::filesystem::remove_all(dir);
}

TEST(Resilience, CustomLabelIsAuthoritativeEverywhere)
{
    // A non-empty RunRequest::label wins over the catalogue name for
    // the result, the cache key and the error context alike.
    RunRequest request = tinyRequest();
    request.label = "My-Baseline";

    const RunKey key = RunKey::of(request);
    EXPECT_EQ(key.policyLabel, "My-Baseline");

    const RunOutcome ok = run(request);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().policyLabel, "My-Baseline");

    RunRequest faulted = request;
    faulted.control.faults.faults.push_back(
        FaultPoint{.kind = FaultKind::AllocFailure, .atCycle = 500});
    const RunOutcome bad = run(faulted);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error.policyLabel, "My-Baseline");
}

TEST(Resilience, SweepExportsFailedCellsAsPartialResults)
{
    const std::string path = ::testing::TempDir() +
                             "/latte_resilience_partial_test.json";
    std::filesystem::remove(path);

    {
        SweepCliOptions cli;
        cli.jobs = 2;
        cli.progress = false;
        cli.jsonPath = path;
        Sweep sweep(cli, tinyOptions());

        sweep.add(tinyRequest("KM"));
        RunRequest faulted = tinyRequest("SS");
        faulted.control.faults.faults.push_back(FaultPoint{
            .kind = FaultKind::DecompQueueStall, .atCycle = 2'000});
        sweep.add(faulted);

        EXPECT_TRUE(sweep.outcome(tinyRequest("KM")).ok());
        const RunOutcome &bad = sweep.outcome(faulted);
        EXPECT_EQ(bad.status, RunStatus::Failed);
        EXPECT_EQ(bad.error.code, RunErrorCode::DecompQueueStall);
        // Destructor writes the --json export.
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    const Json doc = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(doc.asArray().size(), 2u);

    bool saw_ok = false, saw_failed = false;
    for (const Json &cell : doc.asArray()) {
        const std::string status = cell.at("status").asString();
        if (status == "ok") {
            saw_ok = true;
            EXPECT_EQ(cell.at("error").type(), Json::Type::Null);
            EXPECT_GT(cell.at("cycles").asUint(), 0u);
        } else {
            saw_failed = true;
            EXPECT_EQ(status, "failed");
            EXPECT_EQ(cell.at("error").at("code").asString(),
                      "decomp_queue_stall");
            EXPECT_EQ(cell.at("workload").asString(), "SS");
        }
    }
    EXPECT_TRUE(saw_ok);
    EXPECT_TRUE(saw_failed);

    std::filesystem::remove(path);
}

TEST(Resilience, ErrorCodeNamesRoundTrip)
{
    const RunErrorCode codes[] = {
        RunErrorCode::None,
        RunErrorCode::InvalidRequest,
        RunErrorCode::InvalidConfig,
        RunErrorCode::WallClockTimeout,
        RunErrorCode::CycleBudgetExceeded,
        RunErrorCode::Cancelled,
        RunErrorCode::CompressorCorruption,
        RunErrorCode::DecompQueueStall,
        RunErrorCode::DramTimeout,
        RunErrorCode::AllocFailure,
        RunErrorCode::Internal,
    };
    for (const RunErrorCode code : codes) {
        const char *name = runErrorCodeName(code);
        ASSERT_NE(name, nullptr);
        const RunErrorCode *back = runErrorCodeFromName(name);
        ASSERT_NE(back, nullptr) << name;
        EXPECT_EQ(*back, code);
    }
    EXPECT_EQ(runErrorCodeFromName("no-such-code"), nullptr);

    const RunStatus statuses[] = {RunStatus::Ok, RunStatus::Failed,
                                  RunStatus::TimedOut,
                                  RunStatus::Cancelled};
    for (const RunStatus status : statuses) {
        const RunStatus *back =
            runStatusFromName(runStatusName(status));
        ASSERT_NE(back, nullptr);
        EXPECT_EQ(*back, status);
    }
}

TEST(Resilience, ToStringRunErrorRoundTripsItsCode)
{
    // to_string(RunError) is THE human-facing form ("<code>: <msg>");
    // its leading token must parse back through runErrorCodeFromName
    // so log lines stay machine-greppable by code.
    RunError error;
    error.code = RunErrorCode::WallClockTimeout;
    error.message = "cell exceeded 5000 ms";
    const std::string text = to_string(error);
    const std::string token = text.substr(0, text.find(':'));
    const RunErrorCode *back = runErrorCodeFromName(token);
    ASSERT_NE(back, nullptr) << text;
    EXPECT_EQ(*back, error.code);
    EXPECT_NE(text.find(error.message), std::string::npos) << text;

    // Without a message the whole string IS the code token.
    RunError bare;
    bare.code = RunErrorCode::Cancelled;
    EXPECT_EQ(to_string(bare),
              runErrorCodeName(RunErrorCode::Cancelled));
    EXPECT_NE(runErrorCodeFromName(to_string(bare)), nullptr);
}

} // namespace
