/**
 * @file
 * Unit tests for the common utilities: bit streams, sign extension,
 * formatting, RNG determinism and the statistics framework.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "common/bit_utils.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace latte;

// ----------------------------------------------------------- bit utils

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(768));
}

TEST(BitUtils, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(BitUtils, RoundUpAndDivCeil)
{
    EXPECT_EQ(roundUp(0, 32), 0u);
    EXPECT_EQ(roundUp(1, 32), 32u);
    EXPECT_EQ(roundUp(32, 32), 32u);
    EXPECT_EQ(roundUp(33, 32), 64u);
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1ffffffffull, 33), -1);
    EXPECT_EQ(signExtend(0x0ffffffffull, 33), 0xffffffffll);
}

TEST(BitUtils, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(127, 1));
    EXPECT_TRUE(fitsSigned(-128, 1));
    EXPECT_FALSE(fitsSigned(128, 1));
    EXPECT_FALSE(fitsSigned(-129, 1));
    EXPECT_TRUE(fitsSigned(32767, 2));
    EXPECT_FALSE(fitsSigned(32768, 2));
    EXPECT_TRUE(fitsSigned(~0ll, 8));
}

TEST(BitUtils, LoadStoreLittleEndian)
{
    std::uint8_t buf[8] = {};
    storeLe(buf, 0x0123456789abcdefull, 8);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
    EXPECT_EQ(loadLe(buf, 8), 0x0123456789abcdefull);
    EXPECT_EQ(loadLe(buf, 2), 0xcdefull);
    EXPECT_EQ(loadLe(buf, 4), 0x89abcdefull);
}

TEST(BitStream, WriteReadRoundTrip)
{
    BitWriter bw;
    bw.write(0b101, 3);
    bw.write(0xdeadbeef, 32);
    bw.pushBit(true);
    bw.write(0x3ff, 10);
    EXPECT_EQ(bw.bitSize(), 46u);

    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(br.read(3), 0b101u);
    EXPECT_EQ(br.read(32), 0xdeadbeefu);
    EXPECT_TRUE(br.readBit());
    EXPECT_EQ(br.read(10), 0x3ffu);
    EXPECT_EQ(br.remaining(), 0u);
}

TEST(BitStream, SixtyFourBitValues)
{
    BitWriter bw;
    bw.write(~0ull, 64);
    bw.write(0, 64);
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(br.read(64), ~0ull);
    EXPECT_EQ(br.read(64), 0ull);
}

TEST(BitStream, WordAtATimeMatchesPerBitReference)
{
    // The writer and reader move whole words per call; pin them against
    // the obviously-correct bit-by-bit path over random mixed widths.
    Rng rng(99);
    for (unsigned trial = 0; trial < 50; ++trial) {
        BitWriter fast;
        BitWriter reference;
        std::vector<std::pair<std::uint64_t, unsigned>> writes;
        while (fast.bitSize() < 1100) {
            const unsigned width =
                1 + static_cast<unsigned>(rng.below(64));
            const std::uint64_t value =
                rng.next() & (width == 64 ? ~0ull
                                          : (1ull << width) - 1);
            fast.write(value, width);
            for (unsigned i = 0; i < width; ++i)
                reference.pushBit((value >> i) & 1);
            writes.emplace_back(value, width);
        }
        ASSERT_EQ(fast.bitSize(), reference.bitSize());
        const auto fast_bytes = fast.bytes();
        const auto ref_bytes = reference.bytes();
        ASSERT_TRUE(std::equal(fast_bytes.begin(), fast_bytes.end(),
                               ref_bytes.begin(), ref_bytes.end()))
            << "trial " << trial;

        BitReader words(fast.bytes(), fast.bitSize());
        BitReader bits(fast.bytes(), fast.bitSize());
        for (const auto &[value, width] : writes) {
            ASSERT_EQ(words.read(width), value);
            std::uint64_t rebuilt = 0;
            for (unsigned i = 0; i < width; ++i)
                rebuilt |= static_cast<std::uint64_t>(bits.readBit())
                           << i;
            ASSERT_EQ(rebuilt, value);
        }
        EXPECT_EQ(words.remaining(), 0u);
    }
}

// ------------------------------------------------------------- logging
// The structured logger itself (levels, scopes, JSON records, sink) is
// covered by the Logging fixture suite in test_logging.cc.

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(latte_panic("boom {}", 42), "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(latte_assert(false, "ctx {}", 7), "assertion failed");
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------------------------------------------------------------- stats

TEST(Stats, CounterBasics)
{
    StatGroup group("g");
    Counter c(&group, "c", "test counter");
    EXPECT_EQ(c.count(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.count(), 6u);
    c.reset();
    EXPECT_EQ(c.count(), 0u);
}

TEST(Stats, AverageBasics)
{
    StatGroup group("g");
    Average a(&group, "a", "test average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.value(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    StatGroup group("g");
    Histogram h(&group, "h", "test histogram", 10.0, 4);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(999); // overflow bucket
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 999.0);
}

TEST(Stats, GroupHierarchyAndLookup)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Counter c(&child, "c", "nested");
    c += 3;

    EXPECT_EQ(root.findStat("child.c"), &c);
    EXPECT_EQ(root.findStat("missing"), nullptr);

    std::map<std::string, double> all;
    root.collect(all);
    EXPECT_DOUBLE_EQ(all.at("root.child.c"), 3.0);

    root.resetStats();
    EXPECT_EQ(c.count(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup root("gpu");
    Counter c(&root, "cycles", "elapsed");
    c += 42;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("gpu.cycles"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

// ------------------------------------------------------------- geomean

TEST(Stats, GeomeanOfPositives)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({1.0}), 1.0);
}

TEST(Stats, GeomeanSkipsNonPositiveEntries)
{
    // Zero and negative ratios (failed/degenerate runs) must not poison
    // the mean with -inf or NaN; they are skipped with a warning.
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({4.0, -3.0, 1.0}), 2.0);
}

TEST(Stats, GeomeanOfNothingIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
}
