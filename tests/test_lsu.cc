/**
 * @file
 * Tests for the load/store unit: one L1 access per cycle, warp wakeup
 * on the last outstanding access, MSHR-full back-off, and store
 * fire-and-forget behaviour.
 */

#include <gtest/gtest.h>

#include "sim/lsu.hh"

using namespace latte;

namespace
{

class LsuFixture : public ::testing::Test
{
  protected:
    LsuFixture()
        : root("root"), noc(cfg, &root), dram(cfg, &root),
          l2(cfg, &noc, &dram, &mem, &root), engines(cfg),
          cache(cfg, 0, &engines, &l2, &mem, &root), lsu(&root),
          warps(4)
    {
        for (unsigned i = 0; i < warps.size(); ++i) {
            warps[i].slot = i;
            warps[i].state = WarpState::Active;
        }
    }

    /** Put warp @p slot into WaitMem expecting @p n accesses. */
    void
    startLoad(std::uint32_t slot, std::vector<Addr> lines)
    {
        warps[slot].state = WarpState::WaitMem;
        warps[slot].readyAt = kNoCycle;
        warps[slot].pendingAccesses =
            static_cast<std::uint32_t>(lines.size());
        warps[slot].memReady = 0;
        lsu.enqueueLoad(slot, lines);
    }

    GpuConfig cfg;
    StatGroup root;
    MemoryImage mem;
    Interconnect noc;
    DramModel dram;
    L2Cache l2;
    CompressionEngines engines;
    CompressedCache cache;
    LoadStoreUnit lsu;
    std::vector<Warp> warps;
};

} // namespace

TEST_F(LsuFixture, OneAccessPerCycle)
{
    startLoad(0, {0x1000, 0x2000, 0x3000});
    EXPECT_EQ(lsu.depth(), 3u);
    lsu.tick(0, cache, warps);
    EXPECT_EQ(lsu.depth(), 2u);
    lsu.tick(1, cache, warps);
    lsu.tick(2, cache, warps);
    EXPECT_FALSE(lsu.busy());
    EXPECT_EQ(lsu.accessesIssued.count(), 3u);
}

TEST_F(LsuFixture, WarpWakesAfterLastAccess)
{
    startLoad(0, {0x1000, 0x2000});
    lsu.tick(0, cache, warps);
    EXPECT_EQ(warps[0].state, WarpState::WaitMem);
    EXPECT_EQ(warps[0].readyAt, kNoCycle);
    lsu.tick(1, cache, warps);
    EXPECT_EQ(warps[0].state, WarpState::Active);
    EXPECT_NE(warps[0].readyAt, kNoCycle);
    // Both are misses: the wakeup is the slower of the two fills.
    EXPECT_GE(warps[0].readyAt, cfg.l2.minLatency);
}

TEST_F(LsuFixture, StoresDoNotTouchWarps)
{
    lsu.enqueueStore(std::vector<Addr>{0x4000});
    lsu.tick(0, cache, warps);
    EXPECT_FALSE(lsu.busy());
    for (const auto &warp : warps)
        EXPECT_EQ(warp.state, WarpState::Active);
    EXPECT_EQ(cache.stores.count(), 1u);
}

TEST_F(LsuFixture, MshrFullBacksOffUntilFill)
{
    // Exhaust the MSHRs with distinct-line loads from warp 1.
    std::vector<Addr> lines;
    for (std::uint32_t i = 0; i < cfg.l1.mshrEntries; ++i)
        lines.push_back(0x100000 + i * 128);
    startLoad(1, lines);
    Cycles now = 0;
    for (std::uint32_t i = 0; i < cfg.l1.mshrEntries; ++i)
        lsu.tick(now++, cache, warps);
    EXPECT_FALSE(lsu.busy());

    // The next access is rejected and the LSU must sleep, not spin.
    startLoad(0, {0x900000});
    lsu.tick(now, cache, warps);
    EXPECT_TRUE(lsu.busy());
    EXPECT_GT(lsu.nextEvent(now), now + 1)
        << "after a rejection the LSU sleeps until the next fill";
    EXPECT_EQ(lsu.retries.count(), 1u);

    // At the fill time the retry succeeds.
    const Cycles retry = lsu.nextEvent(now);
    lsu.tick(retry, cache, warps);
    EXPECT_FALSE(lsu.busy());
}

TEST_F(LsuFixture, InterleavedWarpsTrackIndependently)
{
    startLoad(0, {0x1000});
    startLoad(2, {0x5000});
    lsu.tick(0, cache, warps);
    EXPECT_EQ(warps[0].state, WarpState::Active);
    EXPECT_EQ(warps[2].state, WarpState::WaitMem);
    lsu.tick(1, cache, warps);
    EXPECT_EQ(warps[2].state, WarpState::Active);
}

TEST_F(LsuFixture, ClearDropsQueueAndBackoff)
{
    startLoad(0, {0x1000, 0x2000});
    lsu.clear();
    EXPECT_FALSE(lsu.busy());
    EXPECT_EQ(lsu.depth(), 0u);
}
