/**
 * @file
 * Tests for the workload zoo and value generators: catalog integrity,
 * determinism, compression affinities of the value profiles, and the
 * kernel geometry limits the SM model depends on.
 */

#include <gtest/gtest.h>

#include <set>

#include "compress/factory.hh"
#include "compress/sc.hh"
#include "workloads/value_gens.hh"
#include "workloads/zoo.hh"

using namespace latte;

// ----------------------------------------------------------------- zoo

TEST(Zoo, CatalogIsComplete)
{
    const auto &zoo = workloadZoo();
    EXPECT_GE(zoo.size(), 20u) << "Table III lists 20+ workloads";

    std::set<std::string> abbrs;
    for (const auto &workload : zoo) {
        EXPECT_TRUE(abbrs.insert(workload.abbr).second)
            << "duplicate abbreviation " << workload.abbr;
        EXPECT_FALSE(workload.fullName.empty());
        EXPECT_FALSE(workload.kernels.empty());
        EXPECT_TRUE(workload.setup != nullptr);
    }

    // The paper's headline workloads must be present.
    for (const char *abbr : {"SS", "KM", "MM", "BC", "CLR", "FW", "PRK",
                             "DJK", "MIS", "PF", "BFS", "HW"}) {
        EXPECT_NE(findWorkload(abbr), nullptr) << abbr;
    }
    EXPECT_EQ(findWorkload("NOPE"), nullptr);
}

TEST(Zoo, CategoriesSplitBothWays)
{
    EXPECT_GE(workloadsByCategory(true).size(), 8u);
    EXPECT_GE(workloadsByCategory(false).size(), 8u);
}

TEST(Zoo, KernelsInstantiateWithValidGeometry)
{
    const GpuConfig cfg;
    for (const auto &workload : workloadZoo()) {
        const auto kernels = makeKernels(workload);
        EXPECT_EQ(kernels.size(), workload.kernels.size());
        for (const auto &kernel : kernels) {
            EXPECT_GE(kernel->numCtas(), 1u);
            EXPECT_GE(kernel->warpsPerCta(), 1u);
            EXPECT_LE(kernel->warpsPerCta(), cfg.maxWarpsPerSm);
            EXPECT_GT(kernel->instructionsPerWarp(), 0u);
        }
    }
}

TEST(Zoo, SetupPopulatesMemory)
{
    for (const auto &workload : workloadZoo()) {
        MemoryImage mem;
        workload.setup(mem);
        // The data region must generate non-trivial content lazily for
        // at least one of a few probed lines (zeros are legal for some
        // generators, so just check the call path works).
        const auto &line = mem.line(0x10000000);
        (void)line;
        SUCCEED();
    }
}

// ------------------------------------------------------ value profiles

namespace
{

using Line = std::array<std::uint8_t, 128>;

double
ratioUnder(LineGenerator &gen, CompressorId id, unsigned n_lines = 256)
{
    auto engine = makeCompressor(id);
    std::vector<Line> lines(n_lines);
    for (unsigned i = 0; i < n_lines; ++i)
        gen.generate(i * 128, lines[i]);
    if (id == CompressorId::Sc) {
        auto *sc = static_cast<ScCompressor *>(engine.get());
        for (const auto &line : lines)
            sc->trainLine(line);
        sc->rebuildCodes();
    }
    double bits = 0;
    for (const auto &line : lines)
        bits += engine->compress(line).sizeBits;
    return n_lines * 1024.0 / bits;
}

} // namespace

TEST(ValueGens, Deterministic)
{
    IntArrayGen gen(5, 100, 3, 7);
    Line a, b;
    gen.generate(0x1000, a);
    gen.generate(0x1000, b);
    EXPECT_EQ(a, b);
    gen.generate(0x1080, b);
    EXPECT_NE(a, b);
}

TEST(ValueGens, SmallDeltaIntsFavourBdi)
{
    IntArrayGen gen(5, 100, 3, 5);
    EXPECT_GT(ratioUnder(gen, CompressorId::Bdi), 2.0);
}

TEST(ValueGens, LargeStrideRampsFavourBpcOverBdi)
{
    IntArrayGen gen(6, 100, 50000, 0);
    const double bpc = ratioUnder(gen, CompressorId::Bpc);
    const double bdi = ratioUnder(gen, CompressorId::Bdi);
    EXPECT_GT(bpc, 4.0);
    EXPECT_GT(bpc, 2.0 * bdi);
}

TEST(ValueGens, PaletteFavoursScOverBdi)
{
    PaletteGen gen(7, 64, true, 1.2, 0.15);
    const double sc = ratioUnder(gen, CompressorId::Sc);
    const double bdi = ratioUnder(gen, CompressorId::Bdi);
    EXPECT_GT(sc, 2.0);
    EXPECT_LT(bdi, 1.2);
    EXPECT_GT(sc, 1.5 * bdi);
}

TEST(ValueGens, NoiseFractionCapsScRatio)
{
    PaletteGen clean(8, 32, true, 1.2, 0.0);
    PaletteGen noisy(8, 32, true, 1.2, 0.4);
    EXPECT_GT(ratioUnder(clean, CompressorId::Sc),
              ratioUnder(noisy, CompressorId::Sc));
}

TEST(ValueGens, FloatNoiseResistsEverything)
{
    FloatNoiseGen gen(9, 1.0f, 1.0f);
    for (const CompressorId id :
         {CompressorId::Bdi, CompressorId::Fpc, CompressorId::CpackZ}) {
        EXPECT_LT(ratioUnder(gen, id), 1.3)
            << compressorName(id);
    }
}

TEST(ValueGens, PointersFavourWideBaseBdi)
{
    PointerArrayGen gen(10, 0x7f0000000000ull, 1 << 20);
    EXPECT_GT(ratioUnder(gen, CompressorId::Bdi), 1.4);
}

TEST(ValueGens, MixBlendsProfiles)
{
    auto zeros = std::make_shared<ZeroGen>();
    auto noise = std::make_shared<FloatNoiseGen>(11, 1.0f, 1.0f);
    MixGen mix(12, zeros, noise, 0.5);

    unsigned zero_lines = 0;
    Line line;
    for (unsigned i = 0; i < 200; ++i) {
        mix.generate(i * 128, line);
        bool all_zero = true;
        for (const auto byte : line)
            all_zero &= byte == 0;
        zero_lines += all_zero;
    }
    EXPECT_GT(zero_lines, 60u);
    EXPECT_LT(zero_lines, 140u);
}

TEST(ValueGens, MixHashSpreads)
{
    std::set<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 1000; ++i)
        values.insert(mixHash(1, i));
    EXPECT_EQ(values.size(), 1000u);
}
